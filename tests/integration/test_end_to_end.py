"""End-to-end integration tests: GCN pipelines, experiments, shapes."""

import numpy as np

from repro.bench.experiments import (
    run_figure2,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.core.builder import build_cbm
from repro.gnn.adjacency import make_operator
from repro.gnn.data import synthetic_node_classification
from repro.gnn.gcn import GCN, two_layer_gcn_inference
from repro.gnn.train import accuracy, train_gcn
from repro.graphs.datasets import load_dataset

FAST = ("Cora", "ca-HepPh")


class TestGcnEndToEnd:
    def test_inference_formats_agree_on_dataset(self):
        a = load_dataset("Cora")
        rng = np.random.default_rng(0)
        x = rng.random((a.shape[0], 64), dtype=np.float64).astype(np.float32)
        w0 = rng.random((64, 64), dtype=np.float64).astype(np.float32) - 0.5
        w1 = rng.random((64, 16), dtype=np.float64).astype(np.float32) - 0.5
        y_csr = two_layer_gcn_inference(make_operator(a, "csr"), x, w0, w1)
        y_cbm = two_layer_gcn_inference(make_operator(a, "cbm", alpha=2), x, w0, w1)
        assert np.allclose(y_csr, y_cbm, rtol=1e-3, atol=1e-3)

    def test_training_learns_community_structure(self):
        """The GCN must beat a features-only baseline on a noisy task."""
        task = synthetic_node_classification(
            300, classes=3, feature_dim=16, feature_noise=3.0, seed=42
        )
        op = make_operator(task.adjacency, "cbm", alpha=0)
        model = GCN([16, 16, 3], seed=0, requires_grad=True)
        train_gcn(
            model,
            op,
            task.features,
            task.labels,
            train_mask=task.train_mask,
            epochs=120,
            lr=0.02,
        )
        logits = model.forward(op, task.features)
        test_acc = accuracy(logits, task.labels, task.test_mask)
        assert test_acc > 0.7


class TestExperimentRunners:
    def test_table1_all_rows(self):
        rows, text = run_table1()
        assert len(rows) == 8
        assert "Table I" in text

    def test_table2_subset(self):
        rows, text = run_table2(datasets=FAST, alphas=(0, 32))
        assert len(rows) == 4
        # alpha=32 never compresses better than alpha=0
        by_graph = {}
        for r in rows:
            by_graph.setdefault(r["Graph"], {})[r["Alpha"]] = float(r["Ratio"])
        for g, d in by_graph.items():
            assert d[32] <= d[0] + 1e-9, g

    def test_figure2_subset(self):
        rows, text = run_figure2(datasets=("ca-HepPh",), alphas=(0, 8), p=64, measure_wall=False)
        assert len(rows) == 2
        assert "Figure 2" in text

    def test_table3_subset(self):
        rows, _ = run_table3(datasets=("Cora",), p=64, variants=("A", "DAD"), measure_wall=False)
        assert {r["Kernel"] for r in rows} == {"AX", "DADX"}

    def test_table4_subset(self):
        rows, _ = run_table4(datasets=("Cora",), p=64, measure_wall=False)
        assert len(rows) == 1
        assert float(rows[0]["ModelSeq"]) > 0

    def test_table5_sorted_by_ratio(self):
        rows, _ = run_table5(datasets=FAST)
        ratios = [float(r["Ratio"]) for r in rows]
        assert ratios == sorted(ratios)


class TestPaperShapes:
    """The qualitative claims of the paper's evaluation, as assertions."""

    def test_clique_families_compress_better_than_citation(self):
        r_cit = build_cbm(load_dataset("Cora"), alpha=0)[1].compression_ratio
        r_col = build_cbm(load_dataset("COLLAB"), alpha=0)[1].compression_ratio
        assert r_col > 3 * r_cit

    def test_compression_ratio_tracks_clustering(self):
        """Spearman-style check: ranking by clustering is positively
        correlated with ranking by compression ratio (Table V)."""
        from repro.graphs.stats import average_clustering_coefficient

        names = ["PubMed", "ca-HepPh", "COLLAB"]
        cc = []
        ratio = []
        for n in names:
            a = load_dataset(n)
            cc.append(average_clustering_coefficient(a))
            ratio.append(build_cbm(a, alpha=0)[1].compression_ratio)
        assert np.argsort(cc).tolist() == np.argsort(ratio).tolist()

    def test_alpha_raises_parallelism(self):
        """Larger alpha -> more virtual-root branches (Section V-C)."""
        a = load_dataset("ca-HepPh")
        b0 = len(build_cbm(a, alpha=0)[0].tree.branches())
        b32 = len(build_cbm(a, alpha=32)[0].tree.branches())
        assert b32 > b0

    def test_alpha_speeds_up_construction(self):
        """Table II: construction is never slower at alpha=32 by much —
        the candidate set shrinks."""
        from repro.core.distance import candidate_edges

        a = load_dataset("ca-HepPh")
        e0 = candidate_edges(a, 0).num_edges
        e32 = candidate_edges(a, 32).num_edges
        assert e32 < e0
