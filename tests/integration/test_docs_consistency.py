"""Documentation consistency: the README/quickstart claims actually run."""

import pathlib
import re


import repro

ROOT = pathlib.Path(__file__).resolve().parents[2]


class TestQuickstartSnippet:
    def test_package_docstring_example_runs(self):
        """The example in repro.__doc__ executes verbatim."""
        doc = repro.__doc__
        code = "\n".join(
            line[4:]
            for line in doc.splitlines()
            if line.startswith("    ") and not line.strip().startswith("#")
        )
        namespace: dict = {}
        exec(code, namespace)  # noqa: S102 - executing our own documented example

    def test_readme_quickstart_runs(self):
        text = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
        assert blocks, "README must contain a python quickstart"
        namespace: dict = {}
        exec(blocks[0], namespace)  # noqa: S102


class TestReadmeApiClaims:
    def test_public_names_exist(self):
        for name in (
            "build_cbm",
            "build_clustered",
            "build_bl2001",
            "load_cbm",
            "save_cbm",
            "verify_cbm",
            "CBMMatrix",
            "load_dataset",
            "paper_stats",
        ):
            assert hasattr(repro, name), name

    def test_submodule_claims(self):
        from repro.gnn import GCN, GIN, GraphSAGE, SGC, APPNP, make_operator, train_gcn  # noqa: F401
        from repro.parallel import parallel_matmul, strong_scaling_curve  # noqa: F401
        from repro.graphs import rcm_order, signature_order  # noqa: F401
        from repro.graphs.io import load_edge_list  # noqa: F401
        from repro.core import cut_depth, split_branches  # noqa: F401
        from repro.staf import build_staf  # noqa: F401

    def test_design_doc_mentions_every_bench_file(self):
        design = (ROOT / "DESIGN.md").read_text()
        for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            assert bench.name in design, f"{bench.name} missing from DESIGN.md"

    def test_examples_listed_in_readme(self):
        readme = (ROOT / "README.md").read_text()
        for example in sorted((ROOT / "examples").glob("*.py")):
            assert example.name in readme, f"{example.name} missing from README"
