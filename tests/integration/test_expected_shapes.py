"""Regression bands: the reproduction's headline numbers stay in range.

These tests encode the *shape* agreement with the paper that DESIGN.md
promises: per-dataset compression ratios within a factor ~2 of Table II,
orderings preserved, and the model's speedups on the right side of 1.
They guard future refactors against silently drifting off the paper.
"""

import pytest

from repro.core.builder import build_cbm
from repro.graphs.datasets import load_dataset, paper_stats
from repro.parallel.simulate import predict_cbm_spmm, predict_csr_spmm

# Measured at calibration time (alpha = 0); the band allows +-35 %.
CALIBRATED_RATIOS = {
    "Cora": 1.02,
    "PubMed": 1.00,
    "ca-AstroPh": 1.63,
    "ca-HepPh": 2.55,
    "COLLAB": 10.39,
    "coPapersDBLP": 5.77,
    "coPapersCiteseer": 10.81,
    "ogbn-proteins": 2.33,
}


@pytest.mark.parametrize("name", sorted(CALIBRATED_RATIOS))
def test_ratio_within_band_of_calibration(name):
    _, rep = build_cbm(load_dataset(name), alpha=0)
    expected = CALIBRATED_RATIOS[name]
    assert expected / 1.35 <= rep.compression_ratio <= expected * 1.35


@pytest.mark.parametrize("name", sorted(CALIBRATED_RATIOS))
def test_ratio_within_2x_of_paper(name):
    _, rep = build_cbm(load_dataset(name), alpha=0)
    paper = paper_stats(name).compression_ratio_a0
    assert paper / 2.0 <= rep.compression_ratio <= paper * 2.0


def test_family_ordering_matches_table5():
    """citation < {coauthor-small, ppi} < {copapers, COLLAB}."""
    ratios = {
        name: build_cbm(load_dataset(name), alpha=0)[1].compression_ratio
        for name in CALIBRATED_RATIOS
    }
    low = max(ratios["Cora"], ratios["PubMed"])
    mid = min(ratios["ca-AstroPh"], ratios["ca-HepPh"], ratios["ogbn-proteins"])
    high = min(ratios["COLLAB"], ratios["coPapersDBLP"], ratios["coPapersCiteseer"])
    assert low < mid < high


@pytest.mark.parametrize(
    "name,seq_min",
    [("COLLAB", 3.0), ("coPapersCiteseer", 3.0), ("ca-HepPh", 1.3)],
)
def test_model_sequential_speedup_bands(name, seq_min):
    """Kernels that win big in the paper win big in the model."""
    a = load_dataset(name)
    ps = paper_stats(name)
    s_nnz = ps.edges / a.nnz
    s_rows = ps.nodes / a.shape[0]
    cbm, _ = build_cbm(a, alpha=4)
    c = predict_csr_spmm(a, 500, cores=1, scale_nnz=s_nnz, scale_rows=s_rows).total_s
    b = predict_cbm_spmm(cbm, 500, cores=1, scale_nnz=s_nnz, scale_rows=s_rows).total_s
    assert c / b >= seq_min


def test_model_citation_graphs_near_parity():
    """Cora/PubMed must not show phantom speedups."""
    for name in ("Cora", "PubMed"):
        a = load_dataset(name)
        ps = paper_stats(name)
        s_nnz = ps.edges / a.nnz
        s_rows = ps.nodes / a.shape[0]
        cbm, _ = build_cbm(a, alpha=4)
        c = predict_csr_spmm(a, 500, cores=1, scale_nnz=s_nnz, scale_rows=s_rows).total_s
        b = predict_cbm_spmm(cbm, 500, cores=1, scale_nnz=s_nnz, scale_rows=s_rows).total_s
        assert 0.8 <= c / b <= 1.25


def test_parallel_crossover_collab():
    """The paper's COLLAB signature: 16-core speedup exceeds 1-core's."""
    name = "COLLAB"
    a = load_dataset(name)
    ps = paper_stats(name)
    s_nnz = ps.edges / a.nnz
    s_rows = ps.nodes / a.shape[0]
    cbm16, _ = build_cbm(a, alpha=16)
    cbm1, _ = build_cbm(a, alpha=4)
    c1 = predict_csr_spmm(a, 500, cores=1, scale_nnz=s_nnz, scale_rows=s_rows).total_s
    c16 = predict_csr_spmm(a, 500, cores=16, scale_nnz=s_nnz, scale_rows=s_rows).total_s
    b1 = predict_cbm_spmm(cbm1, 500, cores=1, scale_nnz=s_nnz, scale_rows=s_rows).total_s
    b16 = predict_cbm_spmm(cbm16, 500, cores=16, scale_nnz=s_nnz, scale_rows=s_rows).total_s
    assert (c16 / b16) > 0.9 * (c1 / b1)


def test_mid_size_cache_effect_hepph():
    """The paper's ca-HepPh signature: the baseline scales better on 16
    cores (its CSR fits the combined private caches), so the parallel
    speedup drops below the sequential one."""
    name = "ca-HepPh"
    a = load_dataset(name)
    ps = paper_stats(name)
    s_nnz = ps.edges / a.nnz
    s_rows = ps.nodes / a.shape[0]
    cbm, _ = build_cbm(a, alpha=4)
    c1 = predict_csr_spmm(a, 500, cores=1, scale_nnz=s_nnz, scale_rows=s_rows).total_s
    c16 = predict_csr_spmm(a, 500, cores=16, scale_nnz=s_nnz, scale_rows=s_rows).total_s
    b1 = predict_cbm_spmm(cbm, 500, cores=1, scale_nnz=s_nnz, scale_rows=s_rows).total_s
    b16 = predict_cbm_spmm(cbm, 500, cores=16, scale_nnz=s_nnz, scale_rows=s_rows).total_s
    assert (c16 / b16) < (c1 / b1)
