"""Integration tests: full CLI workflow and example-script entry points."""

import pytest

from repro.cli import main
from repro.sparse.io import save_matrix_market

from tests.conftest import random_adjacency_csr


class TestCliWorkflow:
    def test_compress_save_inspect_verify_bench(self, tmp_path, capsys):
        """The end-to-end preprocessing story the paper assumes: compress
        once, persist, reuse."""
        archive = tmp_path / "cora.npz"
        assert main(["compress", "Cora", "-a", "2", "-o", str(archive)]) == 0
        assert archive.exists()
        assert main(["inspect", str(archive)]) == 0
        assert main(["verify", "Cora", "-a", "2", "--runs", "2", "--columns", "16"]) == 0
        assert main(["bench", "Cora", "-a", "2", "-p", "16", "--repeats", "3"]) == 0
        assert main(["model", "Cora", "-a", "2", "-p", "64"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "CacheTier" in out

    def test_mtx_file_pipeline(self, tmp_path, capsys):
        """External matrices (not in the registry) flow through the same CLI."""
        a = random_adjacency_csr(30, density=0.3, seed=1)
        mtx = tmp_path / "external.mtx"
        save_matrix_market(mtx, a, field="pattern")
        assert main(["stats", str(mtx), "--no-clustering"]) == 0
        archive = tmp_path / "external.npz"
        assert main(["compress", str(mtx), "-o", str(archive)]) == 0
        assert main(["inspect", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "30 nodes" in out

    def test_verify_fails_loudly_on_unknown(self):
        with pytest.raises(SystemExit):
            main(["verify", "NotAGraph"])


class TestExamplesEntryPoints:
    """Each example's main() runs end to end (smallest datasets)."""

    @pytest.fixture(autouse=True)
    def _examples_on_path(self, monkeypatch):
        import pathlib

        examples = pathlib.Path(__file__).resolve().parents[2] / "examples"
        monkeypatch.syspath_prepend(str(examples))

    def test_quickstart_main(self, capsys):
        import quickstart

        quickstart.main()
        out = capsys.readouterr().out
        assert "compression ratio" in out

    def test_gcn_inference_main(self, capsys):
        import gcn_inference

        gcn_inference.main("Cora")
        assert "speedup" in capsys.readouterr().out

    def test_alpha_tuning_main(self, capsys):
        import alpha_tuning

        alpha_tuning.main("Cora")
        assert "best alpha" in capsys.readouterr().out

    def test_related_work_main(self, capsys):
        import related_work_comparison

        related_work_comparison.main("Cora")
        assert "STAF" in capsys.readouterr().out
