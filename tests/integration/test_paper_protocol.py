"""The paper's own correctness protocol (Section VI-B), scaled down.

The paper verifies its kernels by multiplying every graph's adjacency
matrix in CBM format with 50 random 500-column matrices and checking the
result against the CSR baseline within a relative tolerance of 1e-5.
Here: every registered dataset, 5 random 100-column matrices, rtol 1e-4
(single-precision accumulation over an extra update stage).
"""

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.core.cbm import Variant
from repro.graphs.datasets import list_datasets, load_dataset
from repro.graphs.laplacian import gcn_normalization, normalized_adjacency
from repro.sparse.ops import spmm

RUNS = 5
COLUMNS = 100
SMALL = [n for n in list_datasets() if n in ("Cora", "ca-HepPh", "PubMed")]


@pytest.mark.parametrize("name", list_datasets())
def test_ax_kernel_against_csr(name):
    a = load_dataset(name)
    cbm, _ = build_cbm(a, alpha=0)
    rng = np.random.default_rng(123)
    for _ in range(RUNS):
        x = rng.random((a.shape[1], COLUMNS), dtype=np.float64).astype(np.float32)
        assert np.allclose(cbm.matmul(x), spmm(a, x), rtol=1e-4, atol=1e-4)


@pytest.mark.parametrize("name", SMALL)
@pytest.mark.parametrize("alpha", [1, 8, 32])
def test_ax_kernel_across_alphas(name, alpha):
    a = load_dataset(name)
    cbm, _ = build_cbm(a, alpha=alpha)
    rng = np.random.default_rng(7)
    x = rng.random((a.shape[1], COLUMNS), dtype=np.float64).astype(np.float32)
    assert np.allclose(cbm.matmul(x), spmm(a, x), rtol=1e-4, atol=1e-4)


@pytest.mark.parametrize("name", SMALL)
def test_dad_kernel_against_materialised(name):
    """The GCN-normalised Â in CBM(DAD) matches the materialised CSR Â."""
    a = load_dataset(name)
    binary, diag = gcn_normalization(a)
    cbm, _ = build_cbm(binary, alpha=0, variant=Variant.DAD, diag=diag)
    a_hat = normalized_adjacency(a)
    rng = np.random.default_rng(11)
    x = rng.random((a.shape[1], COLUMNS), dtype=np.float64).astype(np.float32)
    assert np.allclose(cbm.matmul(x), spmm(a_hat, x), rtol=1e-4, atol=1e-4)


@pytest.mark.parametrize("name", SMALL)
def test_ad_kernel_against_scaled(name):
    a = load_dataset(name)
    rng = np.random.default_rng(13)
    d = rng.random(a.shape[0]) + 0.5
    cbm, _ = build_cbm(a, alpha=2, variant=Variant.AD, diag=d)
    baseline = a.scale_columns(d)
    x = rng.random((a.shape[1], COLUMNS), dtype=np.float64).astype(np.float32)
    assert np.allclose(cbm.matmul(x), spmm(baseline, x), rtol=1e-4, atol=1e-4)


@pytest.mark.parametrize("name", list_datasets())
def test_compression_ratio_at_least_one_within_tolerance(name):
    """Property 1 corollary: the CBM footprint essentially never exceeds
    CSR's (tree bookkeeping may add a sliver on incompressible graphs)."""
    a = load_dataset(name)
    _, rep = build_cbm(a, alpha=0)
    assert rep.compression_ratio > 0.95
