"""Unit tests for graph statistics (validated against networkx)."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import NotBinaryError, ShapeError
from repro.graphs.stats import (
    average_clustering_coefficient,
    average_degree,
    compute_stats,
    degree_histogram,
    local_clustering,
    triangle_counts,
)
from repro.sparse.convert import from_dense

from tests.conftest import random_adjacency_csr


def to_nx(a):
    return nx.from_numpy_array(a.toarray())


class TestDegrees:
    def test_average_degree(self):
        a = random_adjacency_csr(20, seed=0)
        assert average_degree(a) == pytest.approx(a.nnz / 20)

    def test_degree_histogram_sums_to_n(self):
        a = random_adjacency_csr(20, seed=1)
        assert degree_histogram(a).sum() == 20

    def test_empty_graph(self):
        a = from_dense(np.zeros((5, 5), dtype=np.float32))
        assert average_degree(a) == 0.0
        assert average_clustering_coefficient(a) == 0.0


class TestTriangles:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        a = random_adjacency_csr(25, density=0.25, seed=seed)
        ours = triangle_counts(a)
        theirs = nx.triangles(to_nx(a))
        assert ours.tolist() == [theirs[i] for i in range(25)]

    def test_triangle_free_graph(self):
        # A star graph has no triangles.
        d = np.zeros((6, 6), dtype=np.float32)
        d[0, 1:] = 1
        d[1:, 0] = 1
        assert triangle_counts(from_dense(d)).sum() == 0

    def test_complete_graph(self):
        n = 6
        d = (1 - np.eye(n)).astype(np.float32)
        tri = triangle_counts(from_dense(d))
        expected = (n - 1) * (n - 2) // 2
        assert np.all(tri == expected)

    def test_rejects_rectangular(self):
        with pytest.raises(ShapeError):
            triangle_counts(from_dense(np.ones((2, 3), dtype=np.float32)))

    def test_rejects_weighted(self):
        d = np.zeros((3, 3), dtype=np.float32)
        d[0, 1] = d[1, 0] = 2.0
        with pytest.raises(NotBinaryError):
            triangle_counts(from_dense(d))


class TestClustering:
    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_local_matches_networkx(self, seed):
        a = random_adjacency_csr(22, density=0.3, seed=seed)
        ours = local_clustering(a)
        theirs = nx.clustering(to_nx(a))
        for i in range(22):
            assert ours[i] == pytest.approx(theirs[i], abs=1e-12)

    @pytest.mark.parametrize("seed", [6, 7])
    def test_average_matches_networkx(self, seed):
        a = random_adjacency_csr(20, density=0.3, seed=seed)
        assert average_clustering_coefficient(a) == pytest.approx(
            nx.average_clustering(to_nx(a)), abs=1e-12
        )

    def test_complete_graph_coefficient_one(self):
        d = (1 - np.eye(5)).astype(np.float32)
        assert average_clustering_coefficient(from_dense(d)) == pytest.approx(1.0)


class TestComputeStats:
    def test_fields(self):
        a = random_adjacency_csr(15, seed=8)
        st = compute_stats(a)
        assert st.nodes == 15
        assert st.edges == a.nnz // 2
        assert st.csr_bytes == a.memory_bytes()
        assert 0 <= st.average_clustering <= 1

    def test_skip_clustering(self):
        a = random_adjacency_csr(15, seed=9)
        st = compute_stats(a, clustering=False)
        assert np.isnan(st.average_clustering)

    def test_csr_mib(self):
        a = random_adjacency_csr(15, seed=10)
        st = compute_stats(a, clustering=False)
        assert st.csr_mib == pytest.approx(st.csr_bytes / 2**20)
