"""Tests for remaining behavioural gaps spotted in review."""

import numpy as np

from repro.core.analysis import savings_histogram
from repro.core.builder import build_cbm
from repro.gnn.adjacency import make_operator
from repro.gnn.data import synthetic_node_classification
from repro.gnn.gcn import GCN
from repro.gnn.train import train_gcn
from repro.graphs.ordering import bfs_order, rcm_order, signature_order
from repro.sparse.convert import from_dense
from repro.staf import build_staf
from repro.utils.fmt import format_table

from tests.conftest import random_adjacency_csr


class TestTrainValidation:
    def test_val_accuracy_recorded(self):
        task = synthetic_node_classification(60, classes=2, feature_dim=4, seed=0)
        op = make_operator(task.adjacency, "csr")
        model = GCN([4, 3, 2], seed=1, requires_grad=True)
        res = train_gcn(
            model,
            op,
            task.features,
            task.labels,
            train_mask=task.train_mask,
            val_mask=task.val_mask,
            epochs=5,
        )
        assert len(res.val_accuracy) == 5
        assert all(0.0 <= v <= 1.0 for v in res.val_accuracy)

    def test_no_val_mask_leaves_empty(self):
        task = synthetic_node_classification(40, classes=2, feature_dim=4, seed=1)
        op = make_operator(task.adjacency, "csr")
        model = GCN([4, 3, 2], seed=2, requires_grad=True)
        res = train_gcn(
            model, op, task.features, task.labels, train_mask=task.train_mask, epochs=3
        )
        assert res.val_accuracy == []


class TestAnalysisOptions:
    def test_histogram_custom_bins(self):
        a = random_adjacency_csr(25, seed=2)
        cbm, _ = build_cbm(a, alpha=0)
        hist = savings_histogram(cbm, a.row_nnz(), bins=4)
        assert len(hist) == 4


class TestOrderingEdgeCases:
    def test_single_node(self):
        a = from_dense(np.zeros((1, 1), dtype=np.float32))
        for fn in (bfs_order, rcm_order, signature_order):
            assert fn(a).tolist() == [0]

    def test_empty_graph(self):
        a = from_dense(np.zeros((0, 0), dtype=np.float32))
        assert bfs_order(a).size == 0
        assert rcm_order(a).size == 0


class TestStafOnDatasets:
    def test_matvec_on_dataset(self):
        from repro.graphs.datasets import load_dataset

        a = load_dataset("Cora")
        staf = build_staf(a)
        v = np.random.default_rng(0).random(a.shape[1]).astype(np.float32)
        assert np.allclose(staf.matvec(v), a @ v, rtol=1e-3, atol=1e-4)

    def test_memory_composition(self):
        a = random_adjacency_csr(20, seed=3)
        staf = build_staf(a)
        assert staf.memory_bytes() == 8 * staf.num_nodes + 4 * 20


class TestFormatTableAlignment:
    def test_suffixed_numbers_right_aligned(self):
        txt = format_table(["v"], [["1.50x"], ["10.25x"]])
        lines = txt.splitlines()
        # Right alignment: shorter value is padded on the left.
        assert lines[2].endswith("1.50x")
        assert lines[3].endswith("10.25x")

    def test_mixed_column_types(self):
        txt = format_table(["name", "pct"], [["alpha", "12%"], ["b", "3%"]])
        assert "alpha" in txt and "12%" in txt
