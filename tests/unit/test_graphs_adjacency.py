"""Unit tests for adjacency construction and checks."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.graphs.adjacency import (
    add_self_loops,
    adjacency_from_edges,
    is_symmetric,
    is_undirected_simple,
    overlap_matrix,
)
from repro.sparse.convert import from_dense

from tests.conftest import random_adjacency_csr


class TestAdjacencyFromEdges:
    def test_undirected_stores_both(self):
        a = adjacency_from_edges([[0, 1]], 3)
        arr = a.toarray()
        assert arr[0, 1] == 1 and arr[1, 0] == 1

    def test_directed_mode(self):
        a = adjacency_from_edges([[0, 1]], 3, undirected=False)
        arr = a.toarray()
        assert arr[0, 1] == 1 and arr[1, 0] == 0

    def test_self_loops_removed(self):
        a = adjacency_from_edges([[1, 1], [0, 1]], 3)
        assert a.toarray()[1, 1] == 0

    def test_self_loops_kept_when_requested(self):
        a = adjacency_from_edges([[1, 1]], 3, remove_self_loops=False, undirected=False)
        assert a.toarray()[1, 1] == 1

    def test_duplicates_collapse_to_binary(self):
        a = adjacency_from_edges([[0, 1], [0, 1], [1, 0]], 3)
        assert a.is_binary()
        assert a.nnz == 2

    def test_empty_edges(self):
        a = adjacency_from_edges(np.empty((0, 2)), 4)
        assert a.nnz == 0

    def test_bad_shape(self):
        with pytest.raises(ShapeError):
            adjacency_from_edges([[0, 1, 2]], 3)


class TestChecks:
    def test_is_symmetric_true(self):
        assert is_symmetric(random_adjacency_csr(15, seed=0))

    def test_is_symmetric_false(self):
        a = from_dense(np.array([[0, 1], [0, 0]], dtype=np.float32))
        assert not is_symmetric(a)

    def test_is_undirected_simple(self):
        assert is_undirected_simple(random_adjacency_csr(15, seed=1))

    def test_diagonal_breaks_simple(self):
        d = np.zeros((3, 3), dtype=np.float32)
        d[0, 0] = 1
        assert not is_undirected_simple(from_dense(d))

    def test_weighted_breaks_simple(self):
        d = np.zeros((3, 3), dtype=np.float32)
        d[0, 1] = d[1, 0] = 2.0
        assert not is_undirected_simple(from_dense(d))


class TestSelfLoopsAndOverlap:
    def test_add_self_loops_sets_diagonal(self):
        a = random_adjacency_csr(10, seed=2)
        loops = add_self_loops(a)
        assert np.all(np.diag(loops.toarray()) == 1)
        assert loops.is_binary()

    def test_add_self_loops_idempotent(self):
        a = random_adjacency_csr(10, seed=3)
        once = add_self_loops(a)
        twice = add_self_loops(once)
        assert np.allclose(once.toarray(), twice.toarray())

    def test_add_self_loops_rejects_rectangular(self):
        with pytest.raises(ShapeError):
            add_self_loops(from_dense(np.ones((2, 3), dtype=np.float32)))

    def test_overlap_matrix_counts_shared_neighbours(self):
        a = random_adjacency_csr(12, seed=4)
        dense = a.toarray()
        ov = overlap_matrix(a).toarray()
        assert np.allclose(ov, dense @ dense.T)
