"""Unit tests for the dense GNN building blocks."""

import numpy as np
import pytest

from repro.errors import GNNError
from repro.gnn.layers import Dropout, Linear, relu, relu_grad, softmax


class TestActivations:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert np.array_equal(relu(x), [0.0, 0.0, 2.0])

    def test_relu_grad(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert np.array_equal(relu_grad(x), [0.0, 0.0, 1.0])

    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(0).random((5, 7))
        s = softmax(x, axis=1)
        assert np.allclose(s.sum(axis=1), 1.0)

    def test_softmax_stable_for_large_inputs(self):
        s = softmax(np.array([[1e4, 1e4 + 1.0]]))
        assert np.all(np.isfinite(s))
        assert s[0, 1] > s[0, 0]


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, seed=0)
        y = layer(np.ones((5, 4), dtype=np.float32))
        assert y.shape == (5, 3)

    def test_bias_toggle(self):
        layer = Linear(4, 3, bias=False, seed=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_he_init(self):
        layer = Linear(100, 50, init="he", seed=1)
        assert abs(layer.weight.std() - np.sqrt(2.0 / 100)) < 0.02

    def test_unknown_init(self):
        with pytest.raises(GNNError):
            Linear(2, 2, init="magic")

    def test_bad_dims(self):
        with pytest.raises(GNNError):
            Linear(0, 3)

    def test_dim_mismatch(self):
        with pytest.raises(GNNError):
            Linear(4, 3, seed=0)(np.ones((5, 7)))

    def test_backward_gradients(self):
        """Analytic gradients match finite differences."""
        rng = np.random.default_rng(2)
        layer = Linear(3, 2, seed=3, requires_grad=True)
        x = rng.random((4, 3)).astype(np.float32)
        g_out = rng.random((4, 2)).astype(np.float32)
        y = layer(x)
        g_in = layer.backward(g_out)
        # loss = sum(y * g_out): dL/dW = x.T @ g_out, dL/dx = g_out @ W.T
        assert np.allclose(layer.grad_weight, x.T @ g_out, rtol=1e-5)
        assert np.allclose(layer.grad_bias, g_out.sum(axis=0), rtol=1e-5)
        assert np.allclose(g_in, g_out @ layer.weight.T, rtol=1e-5)

    def test_backward_without_forward(self):
        layer = Linear(3, 2, requires_grad=True)
        with pytest.raises(GNNError):
            layer.backward(np.ones((1, 2)))

    def test_gradients_before_backward(self):
        layer = Linear(3, 2, requires_grad=True)
        with pytest.raises(GNNError):
            layer.gradients()


class TestDropout:
    def test_identity_in_eval(self):
        d = Dropout(0.5, seed=0)
        x = np.ones((4, 4))
        assert np.array_equal(d(x, training=False), x)

    def test_scales_in_training(self):
        d = Dropout(0.5, seed=1)
        x = np.ones((1000, 10))
        y = d(x, training=True)
        # Inverted dropout keeps expectation ~1.
        assert abs(y.mean() - 1.0) < 0.05
        assert set(np.unique(y)) <= {0.0, 2.0}

    def test_backward_uses_same_mask(self):
        d = Dropout(0.5, seed=2)
        x = np.ones((10, 10))
        y = d(x, training=True)
        g = d.backward(np.ones_like(x))
        assert np.array_equal(g != 0, y != 0)

    def test_invalid_probability(self):
        with pytest.raises(GNNError):
            Dropout(1.0)
        with pytest.raises(GNNError):
            Dropout(-0.1)
