"""Unit tests for the MST and arborescence constructions."""

import networkx as nx
import numpy as np
import pytest

from repro.core.arborescence import minimum_arborescence
from repro.core.distance import DistanceGraph, candidate_edges
from repro.core.mst import UnionFind, kruskal_mst, prim_mst
from repro.core.tree import VIRTUAL
from repro.errors import CompressionError

from tests.conftest import random_adjacency_csr, random_binary_csr


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(4)
        assert uf.find(0) != uf.find(1)

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.find(0) == uf.find(1)

    def test_union_idempotent(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert not uf.union(1, 0)

    def test_transitive(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.find(2) == uf.find(0)


def _mst_weight_networkx(g: DistanceGraph) -> int:
    """Oracle: networkx MST weight of the virtual-extended graph."""
    G = nx.Graph()
    n = g.n
    for x in range(n):
        G.add_edge(n, x, weight=int(g.row_nnz[x]))
    for s, d, w in zip(g.src, g.dst, g.weight, strict=True):
        u, v, w = int(s), int(d), int(w)
        if not G.has_edge(u, v) or G[u][v]["weight"] > w:
            G.add_edge(u, v, weight=w)
    return sum(d["weight"] for _, _, d in nx.minimum_spanning_tree(G).edges(data=True))


class TestMST:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_kruskal_matches_networkx_weight(self, seed):
        a = random_adjacency_csr(25, density=0.3, seed=seed)
        g = candidate_edges(a, None)
        tree = kruskal_mst(g)
        assert tree.total_weight() == _mst_weight_networkx(g)

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_prim_and_kruskal_agree(self, seed):
        a = random_binary_csr(30, density=0.3, seed=seed)
        g = candidate_edges(a, None)
        assert prim_mst(g).total_weight() == kruskal_mst(g).total_weight()

    def test_rejects_directed_graph(self):
        a = random_adjacency_csr(10, seed=8)
        g = candidate_edges(a, 2)
        with pytest.raises(CompressionError):
            kruskal_mst(g)
        with pytest.raises(CompressionError):
            prim_mst(g)

    def test_all_rows_get_parents(self):
        a = random_adjacency_csr(20, seed=9)
        tree = kruskal_mst(candidate_edges(a, None))
        assert tree.n == 20
        # depth defined everywhere = spanning
        assert tree.depth().max() < 20

    def test_empty_graph_all_virtual(self):
        from repro.sparse.convert import from_dense

        a = from_dense(np.zeros((5, 5), dtype=np.float32))
        tree = kruskal_mst(candidate_edges(a, None))
        assert np.all(tree.parent == VIRTUAL)
        assert tree.total_weight() == 0


class TestArborescence:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_alpha0_matches_mst_weight(self, seed):
        """At alpha=0 the pruned MCA has the same total cost as the MST."""
        a = random_adjacency_csr(24, density=0.35, seed=seed)
        mst = kruskal_mst(candidate_edges(a, None))
        mca = minimum_arborescence(candidate_edges(a, 0))
        assert mca.total_weight() == mst.total_weight()

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_networkx_edmonds(self, seed):
        a = random_adjacency_csr(18, density=0.4, seed=seed)
        g = candidate_edges(a, 2)
        ours = minimum_arborescence(g)
        # networkx oracle on the same directed graph + virtual edges.
        G = nx.MultiDiGraph()
        n = g.n
        for x in range(n):
            G.add_edge(n, x, weight=int(g.row_nnz[x]))
        for s, d, w in zip(g.src, g.dst, g.weight, strict=True):
            G.add_edge(int(s), int(d), weight=int(w))
        arb = nx.algorithms.tree.branchings.minimum_spanning_arborescence(G)
        oracle = sum(d["weight"] for _, _, d in arb.edges(data=True))
        assert ours.total_weight() == oracle

    def test_undirected_input_accepted(self):
        a = random_adjacency_csr(15, seed=6)
        g = candidate_edges(a, None)
        tree = minimum_arborescence(g)
        assert tree.n == 15

    def test_monotone_in_alpha(self):
        """Total weight can only grow as alpha prunes more edges."""
        a = random_adjacency_csr(30, density=0.4, seed=7)
        weights = [
            minimum_arborescence(candidate_edges(a, alpha)).total_weight()
            for alpha in (0, 1, 2, 4, 8)
        ]
        assert weights == sorted(weights)

    def test_weight_never_exceeds_nnz(self):
        """Property 1: total deltas <= nnz(A)."""
        for seed in (8, 9):
            a = random_adjacency_csr(25, density=0.3, seed=seed)
            for alpha in (0, 4):
                tree = minimum_arborescence(candidate_edges(a, alpha))
                assert tree.total_weight() <= a.nnz

    def test_forced_cycle_contraction(self):
        """Two nearly identical rows prefer each other; contraction must
        resolve the 2-cycle through the virtual node."""
        from repro.sparse.convert import from_dense

        d = np.zeros((4, 8), dtype=np.float32)
        d[0, :6] = 1
        d[1, :6] = 1
        d[1, 6] = 1  # rows 0,1 differ by one delta
        d[2, 7] = 1
        d[3, 0] = 1
        a = from_dense(d)
        tree = minimum_arborescence(candidate_edges(a, 0))
        # The 2-cycle must be broken: exactly one of rows 0/1 is compressed
        # against the other (the remaining one enters from outside the pair).
        pair_parents = {int(tree.parent[0]), int(tree.parent[1])}
        assert len(pair_parents & {0, 1}) == 1
        # Optimal cost: row 3 (nnz 1) + edge 3->0 (5 deltas) + edge 0->1
        # (1 delta) + row 2 (nnz 1) = 8, cheaper than the virtual edge to 0.
        assert tree.total_weight() == 8
        assert tree.total_weight() <= a.nnz
