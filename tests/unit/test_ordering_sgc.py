"""Unit tests for node orderings and the SGC model."""

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.errors import GNNError
from repro.gnn.adjacency import make_operator
from repro.gnn.sgc import SGC, propagate
from repro.graphs.laplacian import normalized_adjacency
from repro.graphs.ordering import (
    bandwidth,
    bfs_order,
    degree_order,
    permute_symmetric,
    rcm_order,
    signature_order,
)
from repro.sparse.convert import from_dense

from tests.conftest import random_adjacency_csr


def path_graph(n):
    d = np.zeros((n, n), dtype=np.float32)
    for i in range(n - 1):
        d[i, i + 1] = d[i + 1, i] = 1
    return from_dense(d)


class TestOrders:
    @pytest.mark.parametrize(
        "order_fn", [bfs_order, rcm_order, degree_order, signature_order]
    )
    def test_is_permutation(self, order_fn):
        a = random_adjacency_csr(25, seed=0)
        order = order_fn(a)
        assert sorted(order.tolist()) == list(range(25))

    def test_bfs_start_first(self):
        a = random_adjacency_csr(20, seed=1)
        assert bfs_order(a, start=7)[0] == 7

    def test_bfs_bad_start(self):
        with pytest.raises(IndexError):
            bfs_order(random_adjacency_csr(5, seed=2), start=9)

    def test_bfs_covers_disconnected(self):
        d = np.zeros((4, 4), dtype=np.float32)
        d[0, 1] = d[1, 0] = 1  # nodes 2, 3 isolated
        order = bfs_order(from_dense(d))
        assert sorted(order.tolist()) == [0, 1, 2, 3]

    def test_degree_order_directions(self):
        a = random_adjacency_csr(20, seed=3)
        deg = a.row_nnz()
        desc = degree_order(a)
        asc = degree_order(a, descending=False)
        assert deg[desc[0]] == deg.max()
        assert deg[asc[0]] == deg.min()

    def test_rcm_reduces_bandwidth_on_shuffled_path(self):
        """A shuffled path graph has large bandwidth; RCM restores O(1)."""
        rng = np.random.default_rng(4)
        a = path_graph(60)
        shuffled = permute_symmetric(a, rng.permutation(60))
        assert bandwidth(shuffled) > 5
        restored = permute_symmetric(shuffled, rcm_order(shuffled))
        assert bandwidth(restored) <= 2

    def test_bandwidth_empty(self):
        assert bandwidth(from_dense(np.zeros((3, 3), dtype=np.float32))) == 0


class TestPermute:
    def test_identity(self):
        a = random_adjacency_csr(15, seed=5)
        same = permute_symmetric(a, np.arange(15))
        assert np.allclose(same.toarray(), a.toarray())

    def test_semantics(self):
        a = random_adjacency_csr(12, seed=6)
        order = np.random.default_rng(0).permutation(12)
        b = permute_symmetric(a, order)
        da, db = a.toarray(), b.toarray()
        for i in range(12):
            for j in range(12):
                assert db[i, j] == da[order[i], order[j]]

    def test_rejects_non_permutation(self):
        a = random_adjacency_csr(5, seed=7)
        with pytest.raises(ValueError):
            permute_symmetric(a, np.zeros(5, dtype=np.int64))

    def test_cbm_compression_is_order_invariant(self):
        """Reordering rows never changes the global CBM tree weight."""
        a = random_adjacency_csr(30, density=0.3, seed=8)
        order = np.random.default_rng(1).permutation(30)
        b = permute_symmetric(a, order)
        _, rep_a = build_cbm(a, alpha=0)
        _, rep_b = build_cbm(b, alpha=0)
        assert rep_a.total_deltas == rep_b.total_deltas

    def test_signature_order_groups_identical_rows(self):
        """Identical adjacency rows become adjacent under signature order
        (why the clustered builder uses this order internally)."""
        rng = np.random.default_rng(2)
        d = np.zeros((30, 30), dtype=np.float32)
        pattern = (rng.random(30) < 0.3).astype(np.float32)
        dup = rng.choice(30, size=10, replace=False)
        d[dup] = pattern
        a = from_dense(d)
        order = signature_order(a)
        positions = sorted(int(np.flatnonzero(order == x)[0]) for x in dup)
        assert positions == list(range(positions[0], positions[0] + 10))


class TestSGC:
    def test_propagate_matches_matrix_power(self):
        a = random_adjacency_csr(20, seed=9)
        op = make_operator(a, "csr")
        x = np.random.default_rng(0).random((20, 4)).astype(np.float32)
        a_hat = normalized_adjacency(a).toarray().astype(np.float64)
        ref = a_hat @ (a_hat @ x)
        assert np.allclose(propagate(op, x, 2), ref, rtol=1e-3, atol=1e-5)

    def test_propagate_k0_identity(self):
        a = random_adjacency_csr(10, seed=10)
        x = np.ones((10, 2), dtype=np.float32)
        assert np.array_equal(propagate(make_operator(a, "csr"), x, 0), x)

    def test_propagate_bad_k(self):
        a = random_adjacency_csr(10, seed=11)
        with pytest.raises(GNNError):
            propagate(make_operator(a, "csr"), np.ones((10, 2)), -1)

    def test_formats_agree(self):
        a = random_adjacency_csr(25, seed=12)
        x = np.random.default_rng(1).random((25, 6)).astype(np.float32)
        y1 = propagate(make_operator(a, "csr"), x, 3)
        y2 = propagate(make_operator(a, "cbm", alpha=2), x, 3)
        assert np.allclose(y1, y2, rtol=1e-3, atol=1e-4)

    def test_model_precompute_and_forward(self):
        a = random_adjacency_csr(20, seed=13)
        op = make_operator(a, "csr")
        x = np.random.default_rng(2).random((20, 8)).astype(np.float32)
        model = SGC(8, 3, k=2, seed=0)
        cached = model.precompute(op, x)
        out = model.forward()
        assert out.shape == (20, 3)
        assert np.allclose(out, cached @ model.linear.weight + model.linear.bias)

    def test_forward_without_precompute_needs_args(self):
        model = SGC(4, 2, k=1)
        with pytest.raises(GNNError):
            model.forward()

    def test_bad_k(self):
        with pytest.raises(GNNError):
            SGC(4, 2, k=0)
