"""Unit tests for the compression pipeline and the clustered variant."""

import numpy as np
import pytest

from repro.core.builder import build_cbm, build_clustered, cluster_rows
from repro.errors import NotBinaryError
from repro.sparse.convert import from_dense

from tests.conftest import random_adjacency_csr


class TestBuildCbm:
    def test_accepts_rectangular(self):
        """Bipartite incidence matrices compress like adjacencies: the
        tree relates rows, so square-ness is not required."""
        a = from_dense(np.ones((3, 4), dtype=np.float32))
        cbm, rep = build_cbm(a)
        x = np.ones((4, 2), dtype=np.float32)
        assert np.allclose(cbm.matmul(x), a.toarray() @ x)
        # identical rows: two of three compress to zero deltas
        assert rep.total_deltas == 4

    def test_rejects_non_binary(self):
        a = from_dense(np.array([[0, 2.0], [2.0, 0]], dtype=np.float32))
        with pytest.raises(NotBinaryError):
            build_cbm(a)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            build_cbm(random_adjacency_csr(10, seed=0), alpha=-1)

    def test_report_fields_consistent(self):
        a = random_adjacency_csr(25, seed=1)
        cbm, rep = build_cbm(a, alpha=0)
        assert rep.source_nnz == a.nnz
        assert rep.total_deltas == cbm.num_deltas
        assert rep.tree_edges == cbm.tree.num_tree_edges
        assert rep.roots + rep.tree_edges == a.shape[0]
        assert rep.memory_bytes == cbm.memory_bytes()
        assert rep.seconds >= 0

    def test_alpha_zero_uses_mst_method(self):
        a = random_adjacency_csr(20, seed=2)
        via_mst, _ = build_cbm(a, alpha=0, method="mst")
        via_mca, _ = build_cbm(a, alpha=0, method="mca")
        assert via_mst.delta.nnz == via_mca.delta.nnz

    def test_paper_figure_matrix(self, paper_figure_matrix):
        """Rows 0 and 3 are identical: one must compress to zero deltas."""
        cbm, rep = build_cbm(paper_figure_matrix, alpha=0)
        tree = cbm.tree
        pair = {int(tree.parent[0]), int(tree.parent[3])}
        assert 0 in pair or 3 in pair
        zero_rows = [x for x in (0, 3) if tree.weight[x] == 0]
        assert len(zero_rows) == 1

    def test_compression_monotone_in_alpha(self):
        a = random_adjacency_csr(40, density=0.4, seed=3)
        ratios = [build_cbm(a, alpha=al)[1].compression_ratio for al in (0, 2, 8, 32)]
        assert all(r1 >= r2 - 1e-9 for r1, r2 in zip(ratios, ratios[1:], strict=False))

    def test_roots_monotone_in_alpha(self):
        a = random_adjacency_csr(40, density=0.4, seed=4)
        roots = [build_cbm(a, alpha=al)[1].roots for al in (0, 2, 8, 32)]
        assert roots == sorted(roots)


class TestClusterRows:
    def test_labels_cover_all_rows(self):
        a = random_adjacency_csr(30, seed=5)
        labels = cluster_rows(a, 8)
        assert labels.shape == (30,)
        counts = np.bincount(labels)
        assert counts.max() <= 8

    def test_invalid_cluster_size(self):
        with pytest.raises(ValueError):
            cluster_rows(random_adjacency_csr(10, seed=6), 0)

    def test_handles_empty_rows(self):
        d = np.zeros((5, 5), dtype=np.float32)
        d[0, 1] = d[1, 0] = 1
        labels = cluster_rows(from_dense(d), 2)
        assert labels.shape == (5,)


class TestBuildClustered:
    @pytest.mark.parametrize("cluster_size", [4, 16, 64])
    def test_correct_product(self, cluster_size):
        a = random_adjacency_csr(40, density=0.3, seed=7)
        cbm, _ = build_clustered(a, cluster_size=cluster_size)
        x = np.random.default_rng(0).random((40, 6)).astype(np.float32)
        assert np.allclose(cbm.matmul(x), a.toarray() @ x, rtol=1e-4)

    def test_compression_not_better_than_global(self):
        a = random_adjacency_csr(50, density=0.35, seed=8)
        _, global_rep = build_cbm(a, alpha=0)
        _, clustered_rep = build_clustered(a, cluster_size=10)
        assert clustered_rep.compression_ratio <= global_rep.compression_ratio + 1e-9

    def test_more_roots_than_global(self):
        a = random_adjacency_csr(50, density=0.35, seed=9)
        _, global_rep = build_cbm(a, alpha=0)
        _, clustered_rep = build_clustered(a, cluster_size=10)
        assert clustered_rep.roots >= global_rep.roots

    def test_fewer_candidates_than_global(self):
        a = random_adjacency_csr(50, density=0.35, seed=10)
        _, global_rep = build_cbm(a, alpha=0)
        _, clustered_rep = build_clustered(a, cluster_size=10)
        assert clustered_rep.candidate_edges <= global_rep.candidate_edges

    def test_property1_still_holds(self):
        a = random_adjacency_csr(40, seed=11)
        cbm, _ = build_clustered(a, cluster_size=8)
        assert cbm.num_deltas <= a.nnz

    def test_with_alpha(self):
        a = random_adjacency_csr(40, density=0.3, seed=12)
        cbm, _ = build_clustered(a, alpha=4, cluster_size=16)
        x = np.random.default_rng(1).random((40, 4)).astype(np.float32)
        assert np.allclose(cbm.matmul(x), a.toarray() @ x, rtol=1e-4)
