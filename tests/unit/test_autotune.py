"""Unit suite for the adaptive format-routing stack (repro.autotune).

Covers the calibrated cost model, the per-block router and its
hysteresis, the hybrid executor's cover validation and watchdog ring,
the chaos injector's determinism, the tune() race contract, the
storeless Retuner publish path, and the serving-layer surface the
operator sees (health/describe format block, breaker window reset,
drift re-tune trigger).
"""

import numpy as np
import pytest

from repro.autotune import (
    BlockDecision,
    CostModel,
    FormatRouter,
    HybridAdjacency,
    HybridPlan,
    Retuner,
    RouterPolicy,
    TuneChaos,
    TuneDecision,
    TuneStats,
    WatchdogPolicy,
    block_costs,
    build_hybrid,
    tune,
)
from repro.core.builder import build_cbm
from repro.errors import ShapeError
from repro.serving import AdjacencySlot, InferenceService
from repro.sparse.blocked import coalesce_bounds, partition_rows
from repro.sparse.convert import from_dense
from repro.sparse.ops import spmm
from repro.streaming.drift import DriftPolicy, DriftTracker

from tests.conftest import random_adjacency_csr


def _fixture(n=48, density=0.2, seed=0, alpha=0):
    a = random_adjacency_csr(n, density=density, seed=seed)
    cbm, _ = build_cbm(a, alpha=alpha)
    return a, cbm


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------


class TestCostModel:
    def test_calibrate_rates_positive(self):
        a, cbm = _fixture()
        model = CostModel.calibrate(a, cbm, columns=8)
        assert model.sec_per_op_csr > 0
        assert model.sec_per_op_update > 0
        assert model.sec_per_level >= 0
        assert model.sec_per_call > 0
        assert model.meta["columns"] == 8

    def test_predictions_monotone_in_width(self):
        a, cbm = _fixture()
        model = CostModel.calibrate(a, cbm, columns=8)
        assert model.predict_csr(a.nnz, 32, rows=48, n_cols=48) > model.predict_csr(
            a.nnz, 4, rows=48, n_cols=48
        )
        assert model.predict_cbm(
            200, 30, 4, 32, rows=48, n_cols=48
        ) > model.predict_cbm(200, 30, 4, 4, rows=48, n_cols=48)

    def test_scaled_is_the_chaos_lever(self):
        model = CostModel(1e-9, 2e-9, 1e-8, 1e-7)
        lied = model.scaled(csr=0.25)
        assert lied.sec_per_op_csr == pytest.approx(0.25e-9)
        assert lied.sec_per_op_update == model.sec_per_op_update
        assert lied.meta["scaled"] == {"csr": 0.25, "cbm": 1.0}
        lied = model.scaled(cbm=0.5)
        assert lied.sec_per_op_update == pytest.approx(1e-9)
        assert lied.sec_per_level == pytest.approx(0.5e-8)

    def test_dict_round_trip(self):
        a, cbm = _fixture()
        model = CostModel.calibrate(a, cbm, columns=4)
        clone = CostModel.from_dict(model.to_dict())
        assert clone.sec_per_op_csr == model.sec_per_op_csr
        assert clone.sec_per_call == model.sec_per_call
        assert clone.meta == model.meta

    def test_block_costs_cover_all_rows(self):
        a, cbm = _fixture()
        model = CostModel.calibrate(a, cbm, columns=4)
        bounds = coalesce_bounds(partition_rows(a.row_nnz(), 4), min_rows=4)
        costs = block_costs(a, cbm, bounds, 4, model)
        assert costs[0].lo == 0 and costs[-1].hi == a.shape[0]
        assert sum(c.nnz for c in costs) == a.nnz
        assert all(c.csr_s > 0 and c.cbm_s > 0 for c in costs)


# ---------------------------------------------------------------------------
# Router and decisions
# ---------------------------------------------------------------------------


class TestRouter:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RouterPolicy(margin=1.5)
        with pytest.raises(ValueError):
            RouterPolicy(pin="coo")

    def test_decision_tiles_rows(self):
        a, cbm = _fixture(n=64)
        model = CostModel.calibrate(a, cbm, columns=4)
        d = FormatRouter(model).decide(a, cbm, 4)
        assert d.blocks[0].lo == 0 and d.blocks[-1].hi == 64
        assert all(x.hi == y.lo for x, y in zip(d.blocks, d.blocks[1:]))
        assert set(d.predicted) == {"csr", "cbm", "routed"}
        assert d.predicted["routed"] <= min(d.predicted["csr"], d.predicted["cbm"]) + 1e-12

    def test_pin_forces_every_block(self):
        a, cbm = _fixture()
        model = CostModel.calibrate(a, cbm, columns=4)
        for fmt in ("csr", "cbm"):
            d = FormatRouter(model).decide(
                a, cbm, 4, policy=RouterPolicy(pin=fmt)
            )
            assert d.route == fmt
            assert {b.fmt for b in d.blocks} == {fmt}

    def test_hysteresis_holds_incumbent_inside_margin(self):
        a, cbm = _fixture(n=64)
        model = CostModel.calibrate(a, cbm, columns=4)
        router = FormatRouter(model)
        fresh = router.decide(a, cbm, 4, policy=RouterPolicy(margin=0.0))
        # An incumbent with every block flipped: a margin of ~1 means no
        # challenger can win by enough, so the incumbent must be held.
        flipped = TuneDecision(
            blocks=[
                BlockDecision(b.lo, b.hi, "csr" if b.fmt == "cbm" else "cbm")
                for b in fresh.blocks
            ],
            columns=4,
        )
        held = router.decide(
            a, cbm, 4, policy=RouterPolicy(margin=0.99), incumbent=flipped
        )
        assert [b.fmt for b in held.blocks] == [b.fmt for b in flipped.blocks]

    def test_decision_meta_round_trip(self):
        d = TuneDecision(
            blocks=[BlockDecision(0, 10, "cbm"), BlockDecision(10, 30, "csr")],
            columns=8,
            predicted={"csr": 1.0, "cbm": 2.0, "routed": 0.5},
        )
        assert d.route == "hybrid"
        assert d.fmt_for(9) == "cbm" and d.fmt_for(10) == "csr"
        assert d.fmt_for(99) is None
        clone = TuneDecision.from_meta(d.to_meta())
        assert clone.block_map() == d.block_map()
        assert clone.columns == 8 and clone.route == "hybrid"

    def test_pure_decision_validation(self):
        assert TuneDecision.pure("csr", 10, 4).route == "csr"
        with pytest.raises(ValueError):
            TuneDecision.pure("dense", 10, 4)


# ---------------------------------------------------------------------------
# Watchdog ring
# ---------------------------------------------------------------------------


class TestTuneStats:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            WatchdogPolicy(tolerance=0.9)
        with pytest.raises(ValueError):
            WatchdogPolicy(trigger_fraction=0.0)
        with pytest.raises(ValueError):
            WatchdogPolicy(cooldown_s=-1)

    def test_trigger_needs_full_window_and_cooldown(self):
        clock = FakeClock()
        stats = TuneStats(
            WatchdogPolicy(window=4, tolerance=1.5, trigger_fraction=0.5, cooldown_s=10.0),
            clock=clock,
        )
        for _ in range(3):
            stats.record(1.0, 3.0)  # ratio 3: a miss
        assert not stats.should_retune()  # window not full
        stats.record(1.0, 3.0)
        assert not stats.should_retune()  # cooldown still holds
        clock.t = 11.0
        assert stats.should_retune()
        assert stats.misprediction_ratio() == 1.0

    def test_honest_plan_never_triggers(self):
        clock = FakeClock(t=100.0)
        stats = TuneStats(WatchdogPolicy(window=4, cooldown_s=0.0), clock=clock)
        for _ in range(8):
            stats.record(1.0, 1.0)
        assert not stats.should_retune()
        assert stats.mispredictions == 0

    def test_reset_clears_window_and_rearms_cooldown(self):
        clock = FakeClock()
        stats = TuneStats(
            WatchdogPolicy(window=2, tolerance=1.5, trigger_fraction=0.5, cooldown_s=5.0),
            clock=clock,
        )
        clock.t = 6.0
        stats.record(1.0, 9.0)
        stats.record(1.0, 9.0)
        assert stats.should_retune()
        stats.reset()
        assert stats.snapshot()["window_fill"] == 0
        stats.record(1.0, 9.0)
        stats.record(1.0, 9.0)
        assert not stats.should_retune()  # cooldown restarted at reset


# ---------------------------------------------------------------------------
# Hybrid executor
# ---------------------------------------------------------------------------


class TestHybridPlan:
    def test_cover_validation(self):
        a, cbm = _fixture(n=40)

        def decision(blocks):
            return TuneDecision(
                blocks=[BlockDecision(lo, hi, fmt) for lo, hi, fmt in blocks],
                columns=4,
            )

        for bad in (
            [(0, 20, "csr"), (22, 40, "cbm")],   # gap
            [(0, 20, "csr"), (18, 40, "cbm")],   # overlap
            [(0, 30, "csr")],                     # short
            [(5, 40, "csr")],                     # missing head
            [(0, 20, "csr"), (20, 20, "cbm"), (20, 40, "csr")],  # empty block
        ):
            with pytest.raises(ShapeError):
                HybridPlan(cbm, a, decision(bad))

    def test_zero_nnz_block_falls_back_to_csr(self):
        d = np.zeros((12, 12), dtype=np.float32)
        d[:6, :6] = 1.0 - np.eye(6, dtype=np.float32)
        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=0)
        decision = TuneDecision(
            blocks=[BlockDecision(0, 6, "cbm"), BlockDecision(6, 12, "cbm")],
            columns=2,
        )
        hybrid = HybridPlan(cbm, a, decision)
        assert [b.fmt for b in hybrid.blocks] == ["cbm", "csr"]
        x = np.ones((12, 2), dtype=np.float32)
        try:
            assert np.array_equal(hybrid.matmul(x), spmm(a, x))
        finally:
            hybrid.drain()

    def test_matmul_records_stats_and_validates_shapes(self):
        a, cbm = _fixture(n=32)
        model = CostModel.calibrate(a, cbm, columns=4)
        decision = TuneDecision(
            blocks=[BlockDecision(0, 16, "cbm"), BlockDecision(16, 32, "csr")],
            columns=4,
        )
        hybrid = HybridPlan(cbm, a, decision, model=model)
        try:
            with pytest.raises(ShapeError):
                hybrid.matmul(np.ones((31, 4), dtype=np.float32))
            with pytest.raises(ShapeError):
                hybrid.matmul(
                    np.ones((32, 4), dtype=np.float32),
                    out=np.empty((32, 3), dtype=np.float32),
                )
            out = hybrid.matmul(np.ones((32, 4), dtype=np.float32))
            hybrid.release(out)
            v = hybrid.matvec(np.ones(32, dtype=np.float32))
            assert v.shape == (32,)
            snap = hybrid.stats.snapshot()
            assert snap["executions"] == 2
            assert hybrid.predicted_s(8) > hybrid.predicted_s(1) > 0
            assert hybrid.block_map() == [[0, 16, "cbm"], [16, 32, "csr"]]
        finally:
            hybrid.drain()

    def test_adjacency_requires_square(self):
        d = np.ones((4, 6), dtype=np.float32)
        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=0)
        hybrid = HybridPlan(
            cbm, a, TuneDecision(blocks=[BlockDecision(0, 4, "csr")], columns=2)
        )
        with pytest.raises(ShapeError):
            HybridAdjacency(hybrid)

    def test_adjacency_dispatches_vector_and_matrix(self):
        a, cbm = _fixture(n=24)
        hybrid = HybridPlan(
            cbm, a, TuneDecision(blocks=[BlockDecision(0, 24, "csr")], columns=2)
        )
        adj = HybridAdjacency(hybrid)
        try:
            assert adj.n == 24
            x = np.ones((24, 2), dtype=np.float32)
            assert np.array_equal(adj.matmul(x), spmm(a, x))
            assert adj.matmul(np.ones(24, dtype=np.float32)).shape == (24,)
        finally:
            hybrid.drain()


# ---------------------------------------------------------------------------
# Chaos injector
# ---------------------------------------------------------------------------


class TestTuneChaos:
    def test_validation(self):
        with pytest.raises(ValueError):
            TuneChaos(0, lie_factor=1.0)
        with pytest.raises(ValueError):
            TuneChaos(0, victim="dense")
        with pytest.raises(ValueError):
            TuneChaos(0, lie_tunes=-1)

    def test_lie_prices_victim_optimistically_then_expires(self):
        model = CostModel(1e-9, 2e-9, 1e-8, 1e-7)
        chaos = TuneChaos(3, lie_factor=8.0, lie_tunes=1, victim="csr")
        lied = chaos.wrap(model)
        assert lied.sec_per_op_csr == pytest.approx(model.sec_per_op_csr / 8.0)
        assert chaos.log[0]["lie"] == "csr"
        assert not chaos.lying
        honest = chaos.wrap(model)
        assert honest is model
        assert chaos.log[1]["lie"] is None

    def test_deterministic_under_seed(self):
        a, _ = _fixture(n=40)
        c1, c2 = TuneChaos(7), TuneChaos(7)
        m = CostModel(1e-9, 2e-9, 1e-8, 1e-7)
        assert c1.wrap(m).to_dict() == c2.wrap(m).to_dict()
        b1 = c1.scatter_batch(a, 0, 20, edges=16)
        b2 = c2.scatter_batch(a, 0, 20, edges=16)
        assert np.array_equal(b1.inserts, b2.inserts)
        k1 = c1.clique_batch(a, 0, 20, size=5)
        k2 = c2.clique_batch(a, 0, 20, size=5)
        assert np.array_equal(k1.inserts, k2.inserts)

    def test_batches_respect_row_windows(self):
        a, _ = _fixture(n=40)
        chaos = TuneChaos(1)
        batch = chaos.scatter_batch(a, 10, 20, edges=32)
        assert np.all(batch.inserts[:, 0] >= 10)
        assert np.all(batch.inserts[:, 0] < 20)
        with pytest.raises(ValueError):
            chaos.clique_batch(a, 30, 10)


# ---------------------------------------------------------------------------
# tune(): the race contract
# ---------------------------------------------------------------------------


class TestTune:
    def test_model_only_mode_does_not_measure(self):
        a, cbm = _fixture()
        report = tune(a, cbm, 4, policy=RouterPolicy(measure=False))
        assert report.measured is False
        assert report.candidates == {}
        assert report.chosen == report.decision.route

    def test_pin_overrides_everything(self):
        a, cbm = _fixture()
        report = tune(a, cbm, 4, policy=RouterPolicy(pin="csr"))
        assert report.chosen == "csr"
        assert report.decision.route == "csr"
        assert report.candidates == {}

    def test_measured_race_serves_the_winner(self):
        a, cbm = _fixture(n=64)
        report = tune(a, cbm, 4, policy=RouterPolicy(measure=True))
        assert {"csr", "cbm"} <= set(report.candidates)
        assert report.chosen == min(report.candidates, key=report.candidates.get)
        assert report.decision.route == report.chosen
        assert report.seconds > 0
        d = report.to_dict()
        assert d["chosen"] == report.chosen
        assert d["blocks"][0]["lo"] == 0

    def test_build_hybrid_route_mapping(self):
        a, cbm = _fixture()
        n = a.shape[0]
        assert build_hybrid(cbm, a, TuneDecision.pure("cbm", n, 4)) is None
        plan = build_hybrid(cbm, a, TuneDecision.pure("csr", n, 4))
        assert isinstance(plan, HybridPlan)
        plan.drain()


# ---------------------------------------------------------------------------
# Retuner (storeless publish path)
# ---------------------------------------------------------------------------


class FakeService:
    def __init__(self, slot):
        self.slot = slot
        self.swaps = []
        self.notes = []

    def current_slot(self):
        return self.slot

    def swap_slot(self, fresh):
        self.swaps.append(fresh)
        self.slot = fresh

    def note_retune(self, *, reason="", report=None):
        self.notes.append((reason, getattr(report, "chosen", None)))


class TestRetuner:
    def _slot(self, n=48):
        a = random_adjacency_csr(n, density=0.2, seed=3)
        return AdjacencySlot.from_graph(a)

    def test_retune_once_publishes_fresh_slot(self):
        svc = FakeService(self._slot())
        old = svc.slot
        retuner = Retuner(
            svc, columns=4, policy=RouterPolicy(measure=False), repeats=5
        )
        assert retuner.repeats == 5
        report = retuner.retune_once("manual")
        assert svc.slot is not old
        assert svc.slot.tune_decision is report.decision
        assert svc.notes == [("manual", report.chosen)]
        assert retuner.retunes == 1
        assert retuner.describe()["reasons"] == ["manual"]
        assert retuner.last_retune_at is not None

    def test_check_once_trigger_priority(self):
        svc = FakeService(self._slot())
        retuner = Retuner(svc, columns=4, policy=RouterPolicy(measure=False))
        assert retuner.check_once() is None
        retuner.trigger()
        assert retuner.check_once() == "trigger"
        assert retuner.check_once() is None  # forced flag consumed

    def test_check_once_sees_misprediction_and_drift(self):
        slot = self._slot()

        class TripStats:
            def should_retune(self):
                return True

        class TripHybrid:
            stats = TripStats()

        class TripTracker:
            def __init__(self):
                self.consumed = 0

            def should_retune(self):
                return self.consumed == 0

            def consume_retune(self):
                self.consumed += 1

        svc = FakeService(slot)
        retuner = Retuner(svc, columns=4, policy=RouterPolicy(measure=False))
        slot.hybrid = TripHybrid()
        assert retuner.check_once() == "misprediction"
        slot.hybrid = None
        slot.tracker = TripTracker()
        assert retuner.check_once() == "drift"
        assert slot.tracker.consumed == 1
        assert retuner.check_once() is None


# ---------------------------------------------------------------------------
# Serving surface: health/describe, breaker window, drift trigger
# ---------------------------------------------------------------------------


class TestServingSurface:
    def test_health_and_describe_expose_format_block(self):
        a = random_adjacency_csr(40, density=0.2, seed=5)
        slot = AdjacencySlot.from_graph(a)
        with InferenceService(slot, workers=1) as svc:
            fmt = svc.health()["format"]
            assert fmt["route"] == "cbm"
            assert fmt["blocks"] == [[0, 40, "cbm"]]
            assert fmt["tune"] is None and fmt["last_retune"] is None

            decision = TuneDecision.pure("csr", 40, 4)
            fresh = AdjacencySlot(slot.cbm, slot.source)
            fresh.apply_tune(
                decision, build_hybrid(slot.cbm, slot.source, decision), tuned_at=123.0
            )
            svc.swap_slot(fresh)
            svc.note_retune(reason="drift", report=None)

            health = svc.health()
            assert health["format"]["route"] == "csr"
            assert health["format"]["blocks"] == [[0, 40, "csr"]]
            assert health["format"]["tuned_at"] == 123.0
            assert health["format"]["tune"]["executions"] == 0
            assert health["format"]["last_retune"]["reason"] == "drift"
            assert health["service"]["retunes"] == 1

            desc = svc.describe()
            assert desc["format"]["route"] == "csr"
            assert desc["decision"]["route"] == "csr"
            assert desc["hybrid"]["blocks"][0]["format"] == "csr"

    def test_note_retune_resets_breaker_window_not_state(self):
        from repro.serving import CircuitBreaker, ServeTier

        a = random_adjacency_csr(24, density=0.2, seed=7)
        slot = AdjacencySlot.from_graph(a)
        breaker = CircuitBreaker()
        with InferenceService(slot, workers=1, breaker=breaker) as svc:
            breaker.record(ServeTier.FAST, False)
            breaker.record(ServeTier.FAST, False)
            assert breaker.describe()["window"] == 2
            svc.note_retune(reason="misprediction")
            d = breaker.describe()
            assert d["window"] == 0
            assert d["state"] == "closed"
            log = breaker.transition_log()
            assert any("window_reset:retune:misprediction" == e["event"] for e in log)

    def test_drift_tracker_retune_trigger_lifecycle(self):
        # Baseline: highly compressible near-identical rows. Live: the
        # same shape rebuilt from scattered rows — far more ops.
        base = np.ones((30, 30), dtype=np.float32) - np.eye(30, dtype=np.float32)
        cheap, _ = build_cbm(from_dense(base), alpha=0)
        noisy = (np.random.default_rng(0).random((30, 30)) < 0.4).astype(np.float32)
        np.fill_diagonal(noisy, 0.0)
        costly, _ = build_cbm(from_dense(noisy), alpha=0)

        tracker = DriftTracker(
            DriftPolicy(max_drift=50.0, retune_drift=0.05, columns=4)
        )
        tracker.mark_rebuilt(cheap, version=1)
        assert not tracker.should_retune()
        tracker.note_patch(costly, version=1, edges=10)
        assert tracker.should_retune()
        snap = tracker.snapshot()
        assert snap["retune_pending"] is True
        assert snap["retunes_signalled"] == 1

        tracker.consume_retune()
        assert not tracker.should_retune()
        tracker.note_patch(costly, version=1, edges=1)
        assert tracker.should_retune()  # re-arms on the next crossing

        tracker.mark_rebuilt(costly, version=2)
        assert not tracker.should_retune()  # fresh tree re-prices everything
