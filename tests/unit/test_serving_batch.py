"""Micro-batching stage suite: layout packing, batch formation, the
stacked execution paths, and the CI perf-regression gate.

The load-bearing invariants:

* every member of a batch receives output **bitwise identical** to what
  it would have received unbatched (column-wise independence of the
  kernels plus contiguous per-member GEMM blocks);
* a batch never mixes adjacency generations (hot swap closes it early);
* failure isolation is per-batch with per-request attribution — poison
  is charged to the poisoned member only, co-travellers are requeued
  without consuming retry budget;
* the regression gate has teeth: a doctored slow current record fails,
  and zero comparable levels also fails (no silent empty pass).
"""

import importlib.util
import json
import pathlib
import queue
import types
from collections import deque

import numpy as np
import pytest

from repro.errors import (
    DeadlineExceeded,
    NumericalError,
    ParallelError,
    ShapeError,
)
from repro.serving import (
    KIND_GCN,
    KIND_PRODUCT,
    AdjacencySlot,
    BatchCollector,
    BatchConfig,
    BatchLayout,
    CircuitBreaker,
    Deadline,
    InferenceService,
    RetryPolicy,
    ServeTier,
    quantize_columns,
)
from repro.staticcheck import analyze_batch_layout
from repro.sparse.ops import spmm, spmv

from tests.conftest import random_adjacency_csr

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class FakeRequest:
    """Just the attributes the collector reads: kind, width, deadline."""

    def __init__(self, width=1, kind=KIND_PRODUCT, budget_s=10.0, *, clock):
        self.kind = kind
        self.width = width
        self.deadline = Deadline(budget_s, clock=clock)
        self.attempts = 0


class ScriptedQueue:
    """Queue stand-in that advances the fake clock instead of blocking.

    A real ``queue.Queue`` would sleep wall-clock time on
    ``get(timeout=...)`` while the collector's *fake* clock stands
    still; this drains a scripted item list and, when empty, advances
    the clock by the requested timeout and raises ``Empty`` — exactly
    what the collector would observe after a real timed wait.
    """

    def __init__(self, items, clock: FakeClock):
        self.items = deque(items)
        self.clock = clock

    def get(self, timeout=None):
        if self.items:
            return self.items.popleft()
        if timeout is None:
            raise AssertionError("collector blocked on an exhausted scripted queue")
        self.clock.advance(timeout)
        raise queue.Empty


def make_collector(items, cfg, clock):
    return BatchCollector(ScriptedQueue(items, clock), cfg, clock=clock)


SLOT_G0 = types.SimpleNamespace(generation=0)


# ---------------------------------------------------------------------------
# Layout packing and quantisation
# ---------------------------------------------------------------------------
class TestLayout:
    def test_quantize_rounds_up(self):
        assert quantize_columns(1, 8) == 8
        assert quantize_columns(8, 8) == 8
        assert quantize_columns(9, 8) == 16
        assert quantize_columns(5, 1) == 5

    def test_quantize_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            quantize_columns(0, 8)
        with pytest.raises((ValueError, TypeError)):
            quantize_columns(4, 0)

    def test_pack_is_dense_left_to_right(self):
        layout = BatchLayout.pack([2, 1, 3], quantum=8, n_rows=7)
        assert layout.members == ((0, 2), (2, 1), (3, 3))
        assert layout.spans() == [(0, 2), (2, 3), (3, 6)]
        assert layout.used_columns == 6
        assert layout.total_columns == 8
        assert layout.padding_columns == 2
        assert layout.n_rows == 7

    def test_pack_without_quantum_has_no_padding(self):
        layout = BatchLayout.pack([4, 4])
        assert layout.total_columns == 8
        assert layout.padding_columns == 0

    def test_config_validation(self):
        with pytest.raises((ValueError, TypeError)):
            BatchConfig(max_columns=0)
        with pytest.raises((ValueError, TypeError)):
            BatchConfig(latency_budget_s=0)
        with pytest.raises(ValueError):
            BatchConfig(close_margin_s=-0.001)
        with pytest.raises((ValueError, TypeError)):
            BatchConfig(quantum=0)


# ---------------------------------------------------------------------------
# Batch formation (FakeClock-driven close paths)
# ---------------------------------------------------------------------------
class TestCollector:
    def test_budget_close_coalesces_queued_requests(self):
        clock = FakeClock()
        cfg = BatchConfig(max_columns=64, latency_budget_s=0.003, close_margin_s=0.001)
        reqs = [FakeRequest(width=2, clock=clock) for _ in range(3)]
        collector = make_collector(reqs, cfg, clock)
        batch = collector.next_batch(lambda: SLOT_G0)
        assert batch.members == reqs
        assert batch.width == 6
        assert batch.generation == 0
        snap = collector.stats.snapshot()
        assert snap["batches"] == 1
        assert snap["budget_closes"] == 1
        assert snap["deadline_closes"] == 0

    def test_deadline_close_beats_budget(self):
        clock = FakeClock()
        cfg = BatchConfig(max_columns=64, latency_budget_s=0.100, close_margin_s=0.003)
        # Tightest member expires at t=0.004; close margin 3 ms puts the
        # close point at t=0.001, far before the 100 ms budget.
        reqs = [
            FakeRequest(width=1, budget_s=0.004, clock=clock),
            FakeRequest(width=1, budget_s=10.0, clock=clock),
        ]
        collector = make_collector(reqs, cfg, clock)
        batch = collector.next_batch(lambda: SLOT_G0)
        assert len(batch.members) == 2
        snap = collector.stats.snapshot()
        assert snap["deadline_closes"] == 1
        assert snap["budget_closes"] == 0

    def test_width_close_at_exact_cap(self):
        clock = FakeClock()
        cfg = BatchConfig(max_columns=4, latency_budget_s=0.003)
        reqs = [FakeRequest(width=2, clock=clock), FakeRequest(width=2, clock=clock)]
        collector = make_collector(reqs, cfg, clock)
        batch = collector.next_batch(lambda: SLOT_G0)
        assert batch.width == 4
        assert collector.stats.snapshot()["width_closes"] == 1

    def test_width_overflow_goes_to_pending_and_seeds_next_batch(self):
        clock = FakeClock()
        cfg = BatchConfig(max_columns=4, latency_budget_s=0.003)
        reqs = [FakeRequest(width=3, clock=clock), FakeRequest(width=3, clock=clock)]
        collector = make_collector(reqs, cfg, clock)
        first = collector.next_batch(lambda: SLOT_G0)
        assert first.members == [reqs[0]]
        assert collector.stats.snapshot()["width_closes"] == 1
        assert collector.pending_count() == 1
        second = collector.next_batch(lambda: SLOT_G0)
        assert second.members == [reqs[1]]
        assert collector.pending_count() == 0

    def test_kind_mismatch_parks_request_without_closing(self):
        clock = FakeClock()
        cfg = BatchConfig(max_columns=64, latency_budget_s=0.003)
        product = FakeRequest(width=2, kind=KIND_PRODUCT, clock=clock)
        gcn = FakeRequest(width=2, kind=KIND_GCN, clock=clock)
        collector = make_collector([product, gcn], cfg, clock)
        first = collector.next_batch(lambda: SLOT_G0)
        assert first.kind == KIND_PRODUCT
        assert first.members == [product]
        # The GCN request was parked, not dropped, and width_closes was
        # not charged for a *kind* mismatch.
        assert collector.stats.snapshot()["width_closes"] == 0
        assert collector.pending_count() == 1
        second = collector.next_batch(lambda: SLOT_G0)
        assert second.kind == KIND_GCN
        assert second.members == [gcn]

    def test_swap_mid_collection_closes_batch(self):
        clock = FakeClock()
        cfg = BatchConfig(max_columns=64, latency_budget_s=0.010)
        reqs = [FakeRequest(width=1, clock=clock) for _ in range(2)]
        slot = types.SimpleNamespace(generation=0)

        calls = [0]

        def current_slot():
            # Generation flips right after the batch binds its slot.
            calls[0] += 1
            if calls[0] > 1:
                slot.generation = 1
            return slot

        collector = make_collector(reqs, cfg, clock)
        batch = collector.next_batch(current_slot)
        assert batch.generation == 0
        assert batch.members == [reqs[0]]
        assert collector.stats.snapshot()["swap_closes"] == 1
        # The second request is still in the scripted queue, untouched.

    def test_pill_swallowed_mid_collection_is_credited_back(self):
        clock = FakeClock()
        cfg = BatchConfig(max_columns=64, latency_budget_s=0.010)
        req = FakeRequest(width=1, clock=clock)
        collector = make_collector([req, None], cfg, clock)
        batch = collector.next_batch(lambda: SLOT_G0)
        assert batch.members == [req]
        # The swallowed shutdown pill is delivered on the next call.
        assert collector.next_batch(lambda: SLOT_G0) is None

    def test_pill_as_first_item_returns_none(self):
        clock = FakeClock()
        collector = make_collector([None], BatchConfig(), clock)
        assert collector.next_batch(lambda: SLOT_G0) is None

    def test_requeue_prefers_pending_over_fresh(self):
        clock = FakeClock()
        cfg = BatchConfig(max_columns=64, latency_budget_s=0.003)
        fresh = FakeRequest(width=1, clock=clock)
        retry = FakeRequest(width=1, clock=clock)
        collector = make_collector([fresh], cfg, clock)
        collector.requeue([retry])
        batch = collector.next_batch(lambda: SLOT_G0)
        # The requeued retry seeds the batch; the fresh arrival joins it.
        assert batch.members[0] is retry
        assert fresh in batch.members
        assert collector.stats.snapshot()["requeued"] == 1

    def test_drain_pending_empties_the_deque(self):
        clock = FakeClock()
        collector = make_collector([], BatchConfig(), clock)
        reqs = [FakeRequest(clock=clock) for _ in range(3)]
        collector.requeue(reqs)
        assert collector.pending_count() == 3
        assert collector.drain_pending() == reqs
        assert collector.pending_count() == 0


# ---------------------------------------------------------------------------
# Stacked execution: bitwise parity with unbatched serving
# ---------------------------------------------------------------------------
def _slot_pair(n=40, seed=7, alpha=2):
    a = random_adjacency_csr(n, 0.15, seed)
    return a, AdjacencySlot.from_graph(a, alpha=alpha)


class TestBatchedParity:
    def test_product_batched_equals_unbatched_bitwise(self):
        a, _ = _slot_pair()
        rng = np.random.default_rng(0)
        # Mixed widths and a 1-D vector rider in the same workload.
        operands = [
            rng.standard_normal((a.shape[0], w)).astype(np.float32)
            for w in (1, 3, 2, 5)
        ] + [rng.standard_normal(a.shape[0]).astype(np.float32)]
        results = {}
        for mode in ("unbatched", "batched"):
            slot = AdjacencySlot.from_graph(a, alpha=2)
            with InferenceService(
                slot,
                batch=(
                    BatchConfig(latency_budget_s=0.05) if mode == "batched" else None
                ),
                seed=3,
            ) as svc:
                futures = [svc.submit(x) for x in operands]
                results[mode] = [f.result(30.0) for f in futures]
        for x, yb, yu in zip(operands, results["batched"], results["unbatched"]):
            # Bitwise identical to the unbatched forward; numerically
            # equal to the CSR reference (the CBM kernel accumulates in
            # a different order, so the reference is tolerance-based).
            assert yb.shape == yu.shape
            assert np.array_equal(yb, yu)
            ref = spmv(a, x) if x.ndim == 1 else spmm(a, x)
            np.testing.assert_allclose(yb, ref, rtol=1e-4, atol=1e-4)

    def test_gcn_batched_equals_unbatched(self):
        a, _ = _slot_pair()
        rng = np.random.default_rng(1)
        p, hidden, classes = 3, 4, 2
        weights = (
            rng.standard_normal((p, hidden)).astype(np.float32),
            rng.standard_normal((hidden, classes)).astype(np.float32),
        )
        xs = [
            rng.standard_normal((a.shape[0], p)).astype(np.float32)
            for _ in range(6)
        ]
        results = {}
        for mode in ("unbatched", "batched"):
            slot = AdjacencySlot.from_graph(a, alpha=2, normalized=True)
            svc = InferenceService(
                slot,
                weights=weights,
                batch=(
                    BatchConfig(latency_budget_s=0.05) if mode == "batched" else None
                ),
                seed=3,
            )
            with svc:
                futures = [svc.submit(x) for x in xs]
                results[mode] = [f.result(30.0) for f in futures]
            if mode == "batched":
                snap = svc.stats.snapshot()
                assert snap["coalesced"] > 0, "batch never formed; parity untested"
        for yb, yu in zip(results["batched"], results["unbatched"]):
            assert np.array_equal(yb, yu)

    def test_gcn_rejects_wrong_feature_width(self):
        a, _ = _slot_pair()
        slot = AdjacencySlot.from_graph(a, alpha=0, normalized=True)
        rng = np.random.default_rng(2)
        weights = (
            rng.standard_normal((3, 4)).astype(np.float32),
            rng.standard_normal((4, 2)).astype(np.float32),
        )
        with InferenceService(slot, weights=weights, batch=BatchConfig()) as svc:
            with pytest.raises(ShapeError):
                svc.submit(np.ones((a.shape[0], 5), dtype=np.float32))
            with pytest.raises(ShapeError):
                svc.submit(np.ones(a.shape[0], dtype=np.float32))

    def test_expired_deadline_rejected_per_member(self):
        _, slot = _slot_pair()
        x = np.ones((slot.cbm.shape[1], 2), dtype=np.float32)
        with InferenceService(slot, batch=BatchConfig(latency_budget_s=0.001)) as svc:
            svc.submit(x).result(30.0)  # warm: plan build off the hot path
            fut = svc.submit(x, deadline_s=1e-6)
            with pytest.raises(DeadlineExceeded):
                fut.result(30.0)
        assert svc.stats.snapshot()["deadline_misses"] >= 1

    def test_single_batched_compute_worker(self):
        # The batch IS the concurrency: more compute threads only convoy
        # on the GIL, so the batched service runs exactly one worker no
        # matter what `workers` says.
        _, slot = _slot_pair()
        with InferenceService(slot, workers=4, batch=BatchConfig()) as svc:
            health = svc.health()
            assert health["live_workers"] == 1
            assert health["batching"]["pending"] == 0
            assert "batches" in health["batching"]["collector"]
        with InferenceService(slot, workers=2) as svc:
            assert svc.health()["live_workers"] == 2
            assert svc.health()["batching"] is None


# ---------------------------------------------------------------------------
# Failure isolation and attribution
# ---------------------------------------------------------------------------
class TestBatchFailureIsolation:
    def test_poisoned_member_attributed_co_travellers_survive(self):
        a, slot = _slot_pair()
        rng = np.random.default_rng(4)
        clean_x = [
            rng.standard_normal((a.shape[0], 2)).astype(np.float32) for _ in range(3)
        ]
        poison = np.full((a.shape[0], 2), np.nan, dtype=np.float32)
        with InferenceService(
            slot, batch=BatchConfig(latency_budget_s=0.2), seed=5
        ) as svc:
            svc.submit(clean_x[0]).result(30.0)  # warm outside the poisoned batch
            futures = [svc.submit(x) for x in (clean_x[0], poison, *clean_x[1:])]
            results = []
            for i, fut in enumerate(futures):
                if i == 1:
                    with pytest.raises(NumericalError) as err:
                        fut.result(30.0)
                    assert getattr(err.value, "input_rejection", False)
                else:
                    results.append(fut.result(30.0))
        for x, y in zip([clean_x[0], *clean_x[1:]], results):
            np.testing.assert_allclose(y, spmm(a, x), rtol=1e-4, atol=1e-4)
        snap = svc.stats.snapshot()
        assert snap["input_rejections"] >= 1

    def test_batch_victims_requeue_without_attempt_charge(self):
        # Drive _attribute_poison directly: a poisoned member plus a
        # clean co-traveller — the co-traveller re-enters the collector
        # with attempts untouched.
        _, slot = _slot_pair()
        svc = InferenceService(slot, batch=BatchConfig(latency_budget_s=0.001))
        from repro.serving.batching import Batch
        from repro.serving.service import _Request

        clock = FakeClock()
        poisoned = _Request(
            np.full((slot.cbm.shape[1], 1), np.nan, dtype=np.float32),
            Deadline(10.0, clock=clock),
            vector=False,
        )
        clean = _Request(
            np.ones((slot.cbm.shape[1], 1), dtype=np.float32),
            Deadline(10.0, clock=clock),
            vector=False,
        )
        batch = Batch(slot, KIND_PRODUCT, clock=clock)
        batch.members = [poisoned, clean]
        err = NumericalError("stacked operand contains NaN/Inf")
        err.input_rejection = True
        svc._attribute_poison(batch, err)

        assert poisoned.future.done()
        rejected = poisoned.future.exception(0)
        assert isinstance(rejected, NumericalError)
        assert getattr(rejected, "input_rejection", False)
        assert not clean.future.done()
        assert clean.attempts == 0
        assert svc._collector.pending_count() == 1
        assert svc.stats.snapshot()["batch_victims"] == 1

    def test_transient_batch_failure_requeues_with_attempt_charge(self):
        _, slot = _slot_pair()
        svc = InferenceService(
            slot,
            batch=BatchConfig(latency_budget_s=0.001),
            retry=RetryPolicy(max_attempts=3, base_s=0.0001, cap_s=0.001),
        )
        from repro.serving.batching import Batch
        from repro.serving.service import _Request

        clock = FakeClock()
        fresh = _Request(
            np.ones((slot.cbm.shape[1], 1), dtype=np.float32),
            Deadline(10.0, clock=clock),
            vector=False,
        )
        exhausted = _Request(
            np.ones((slot.cbm.shape[1], 1), dtype=np.float32),
            Deadline(10.0, clock=clock),
            vector=False,
        )
        exhausted.attempts = 2  # this charge is its last allowed attempt
        batch = Batch(slot, KIND_PRODUCT, clock=clock)
        batch.members = [fresh, exhausted]
        svc._retry_or_fail_batch(
            batch, ParallelError("worker died"), np.random.default_rng(0)
        )

        # Both charged one attempt; only the one with budget re-enters.
        assert fresh.attempts == 1
        assert exhausted.attempts == 3
        assert not fresh.future.done()
        assert svc._collector.pending_count() == 1
        assert isinstance(exhausted.future.exception(0), ParallelError)
        snap = svc.stats.snapshot()
        assert snap["retries"] == 1
        assert snap["failed"] == 1

    def test_swap_mid_stream_keeps_generations_pure(self):
        a0 = random_adjacency_csr(40, 0.15, 11)
        a1 = random_adjacency_csr(40, 0.15, 12)
        slot0 = AdjacencySlot.from_graph(a0, alpha=2)
        rng = np.random.default_rng(6)
        xs = [
            rng.standard_normal((40, 2)).astype(np.float32) for _ in range(8)
        ]
        refs = {0: a0, 1: a1}
        with InferenceService(
            slot0, batch=BatchConfig(latency_budget_s=0.01), seed=7
        ) as svc:
            futures = [svc.submit(x) for x in xs[:4]]
            svc.swap_slot(AdjacencySlot.from_graph(a1, alpha=2))
            futures += [svc.submit(x) for x in xs[4:]]
            for x, fut in zip(xs, futures):
                y = fut.result(30.0)
                gen = fut.generation
                assert gen in refs
                # The result matches the adjacency of the generation the
                # batch executed against — never a mixture.  (The two
                # random graphs differ far beyond float tolerance, so a
                # close match to the wrong generation is impossible.)
                np.testing.assert_allclose(y, spmm(refs[gen], x), rtol=1e-4, atol=1e-4)


# ---------------------------------------------------------------------------
# Breaker probe width and pooled stacked buffers
# ---------------------------------------------------------------------------
class TestProbeWidthAndPool:
    def test_probe_width_bounds_half_open_probes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2,
            window=4,
            cooldown_s=0.5,
            probe_width=4,
            clock=clock,
        )
        for _ in range(2):
            tier, probe = breaker.acquire(width=1)
            breaker.record(tier, False, probe=probe)
        assert breaker.tier is not ServeTier.FAST
        clock.advance(1.0)  # cooldown elapses -> HALF_OPEN
        # A wide stacked batch never carries the probe; narrow ones do.
        tier_wide, probe_wide = breaker.acquire(width=32)
        assert not probe_wide
        tier_narrow, probe_narrow = breaker.acquire(width=4)
        assert probe_narrow

    def test_stacked_operand_padding_zero_filled_after_reuse(self):
        _, slot = _slot_pair()
        plan = slot.cbm.plan()
        xs = plan.stacked_operand(5, np.float32, quantum=8)
        assert xs.shape[1] == 8
        assert np.all(xs[:, 5:] == 0.0)
        xs[:] = np.nan  # dirty the whole buffer, including padding
        plan.release(xs)
        again = plan.stacked_operand(3, np.float32, quantum=8)
        # Recycled garbage in padding would feed the kernels: must be
        # re-zeroed on every acquire.
        assert np.all(again[:, 3:] == 0.0)
        plan.release(again)


# ---------------------------------------------------------------------------
# Static hazards on stacked layouts
# ---------------------------------------------------------------------------
class TestBatchLayoutHazards:
    def test_clean_packed_layout_passes(self):
        report = analyze_batch_layout(BatchLayout.pack([2, 3, 1], quantum=8))
        assert report.ok
        assert report.checks["batch.disjoint"]
        assert report.checks["batch.widths"]

    def test_overlap_is_cross_member_aliasing(self):
        layout = BatchLayout(members=((0, 4), (2, 4)), total_columns=8)
        report = analyze_batch_layout(layout)
        assert report.has("HZ-X001")
        assert not report.checks["batch.disjoint"]

    def test_out_of_bounds_span(self):
        layout = BatchLayout(members=((0, 4), (4, 8)), total_columns=8)
        report = analyze_batch_layout(layout)
        assert report.has("HZ-X002")

    def test_uninitialised_gap(self):
        layout = BatchLayout(members=((0, 2), (4, 2)), total_columns=8)
        report = analyze_batch_layout(layout)
        assert report.has("HZ-X003")

    def test_zero_width_member(self):
        layout = BatchLayout(members=((0, 0), (0, 2)), total_columns=8)
        report = analyze_batch_layout(layout)
        assert report.has("HZ-X004")
        assert not report.checks["batch.widths"]


# ---------------------------------------------------------------------------
# Regression gate (benchmarks/check_regression.py)
# ---------------------------------------------------------------------------
def _load_gate():
    path = REPO_ROOT / "benchmarks" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _record(dataset="Cora", rps=(1000.0, 2000.0), calibration=5000.0):
    return {
        "workload": {"dataset": dataset},
        "calibration_rps": calibration,
        "levels": [
            {"concurrency": c, "batched": {"rps": r}}
            for c, r in zip((4, 16), rps)
        ],
    }


class TestRegressionGate:
    def test_identical_records_pass(self):
        gate = _load_gate()
        report = gate.compare(_record(), _record())
        assert report["ok"]
        assert report["compared"] == 2
        assert all(row["change"] == 0.0 for row in report["rows"])

    def test_negative_control_doctored_slowdown_fails(self):
        # The acceptance criterion's negative control: a current record
        # 40% slower than baseline must trip the 15% gate.
        gate = _load_gate()
        slow = _record(rps=(600.0, 1200.0))
        report = gate.compare(slow, _record())
        assert not report["ok"]
        assert report["failures"] == 2
        assert all(row["status"] == "regressed" for row in report["rows"])

    def test_within_threshold_passes(self):
        gate = _load_gate()
        slightly_slow = _record(rps=(900.0, 1800.0))  # -10%, inside 15%
        report = gate.compare(slightly_slow, _record())
        assert report["ok"]

    def test_zero_comparable_levels_fails(self):
        # "Nothing matched, nothing failed" must not pass silently.
        gate = _load_gate()
        report = gate.compare(_record(dataset="PubMed"), _record(dataset="Cora"))
        assert not report["ok"]
        assert report["compared"] == 0
        assert all(row["status"] == "missing-in-current" for row in report["rows"])

    def test_calibration_normalisation_forgives_slow_machines(self):
        # A CI runner half the speed of the baseline machine scales rps
        # and calibration together: normalised passes, absolute fails.
        gate = _load_gate()
        slow_machine = _record(rps=(500.0, 1000.0), calibration=2500.0)
        assert gate.compare(slow_machine, _record())["ok"]
        assert not gate.compare(slow_machine, _record(), absolute=True)["ok"]

    def test_main_exit_codes(self, tmp_path):
        gate = _load_gate()
        cur = tmp_path / "cur.json"
        base = tmp_path / "base.json"
        base.write_text(json.dumps(_record()))
        cur.write_text(json.dumps(_record(rps=(500.0, 900.0))))
        assert gate.main(["--current", str(cur), "--baseline", str(base)]) == 1
        cur.write_text(json.dumps(_record()))
        assert gate.main(["--current", str(cur), "--baseline", str(base)]) == 0

    def test_committed_baseline_is_comparable_to_smoke_output(self):
        # The committed baseline must stay structurally valid — the gate
        # should find comparable levels when handed the baseline itself.
        gate = _load_gate()
        baseline = json.loads(
            (REPO_ROOT / "benchmarks" / "baselines" / "serving_batch_smoke.json")
            .read_text()
        )
        report = gate.compare(baseline, baseline)
        assert report["ok"]
        assert report["compared"] >= 1
