"""Unit tests for the multiplication kernels and engine selection."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse.convert import from_dense
from repro.sparse.ops import (
    Engine,
    axpy,
    get_default_engine,
    set_default_engine,
    sparse_sparse_matmul,
    spmm,
    spmv,
)


def dense(seed=0, shape=(7, 9)):
    rng = np.random.default_rng(seed)
    return ((rng.random(shape) < 0.4) * rng.random(shape)).astype(np.float32)


class TestSpmm:
    @pytest.mark.parametrize("engine", [Engine.REFERENCE, Engine.SCIPY])
    def test_matches_dense(self, engine):
        d = dense(0)
        b = np.random.default_rng(1).random((9, 5)).astype(np.float32)
        out = spmm(from_dense(d), b, engine=engine)
        assert np.allclose(out, d @ b, rtol=1e-5)

    def test_engines_agree(self):
        d = dense(2)
        b = np.random.default_rng(3).random((9, 6)).astype(np.float32)
        a = from_dense(d)
        assert np.allclose(
            spmm(a, b, engine=Engine.REFERENCE), spmm(a, b, engine=Engine.SCIPY), rtol=1e-6
        )

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            spmm(from_dense(dense()), np.ones((3, 2)))

    def test_wrong_ndim(self):
        with pytest.raises(ShapeError):
            spmm(from_dense(dense()), np.ones(9))

    def test_empty_rows(self):
        d = np.zeros((4, 4), dtype=np.float32)
        d[1, 2] = 3.0
        b = np.eye(4, dtype=np.float32)
        out = spmm(from_dense(d), b, engine=Engine.REFERENCE)
        assert np.allclose(out, d)


class TestSpmv:
    @pytest.mark.parametrize("engine", [Engine.REFERENCE, Engine.SCIPY])
    def test_matches_dense(self, engine):
        d = dense(4)
        v = np.random.default_rng(5).random(9).astype(np.float32)
        assert np.allclose(spmv(from_dense(d), v, engine=engine), d @ v, rtol=1e-5)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            spmv(from_dense(dense()), np.ones(3))


class TestAxpy:
    def test_alpha_one_inplace(self):
        y = np.ones(5, dtype=np.float64)
        x = np.arange(5, dtype=np.float64)
        out = axpy(1.0, x, y)
        assert out is y
        assert np.allclose(y, 1 + np.arange(5))

    def test_general_alpha(self):
        y = np.zeros(3)
        axpy(2.5, np.ones(3), y)
        assert np.allclose(y, 2.5)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            axpy(1.0, np.ones(3), np.ones(4))


class TestSparseSparse:
    def test_matches_dense_product(self):
        d1, d2 = dense(6, (5, 7)), dense(7, (7, 4))
        out = sparse_sparse_matmul(from_dense(d1), from_dense(d2))
        assert np.allclose(out.toarray(), d1 @ d2, rtol=1e-5)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            sparse_sparse_matmul(from_dense(dense(0, (3, 4))), from_dense(dense(1, (3, 4))))


class TestEngineSwitch:
    def test_set_and_restore(self):
        prev = set_default_engine(Engine.REFERENCE)
        try:
            assert get_default_engine() is Engine.REFERENCE
            d = dense(8)
            b = np.ones((9, 2), dtype=np.float32)
            assert np.allclose(spmm(from_dense(d), b), d @ b, rtol=1e-5)
        finally:
            set_default_engine(prev)

    def test_accepts_string(self):
        prev = set_default_engine("reference")
        try:
            assert get_default_engine() is Engine.REFERENCE
        finally:
            set_default_engine(prev)

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_default_engine("cuda")
