"""Unit tests for edge-list I/O and compression diagnostics."""

import numpy as np
import pytest

from repro.core.analysis import (
    compression_profile,
    row_savings,
    savings_histogram,
    top_savers,
)
from repro.core.builder import build_cbm
from repro.errors import FormatError
from repro.graphs.io import load_edge_list, save_edge_list

from tests.conftest import clustered_adjacency, random_adjacency_csr


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        a = random_adjacency_csr(20, seed=0)
        path = tmp_path / "g.txt"
        save_edge_list(path, a, header="test graph")
        b, ids = load_edge_list(path)
        assert np.array_equal(ids, np.arange(20)[np.isin(np.arange(20), ids)])
        # Isolated nodes vanish from edge lists; compare on the support.
        dense = a.toarray()[np.ix_(ids, ids)]
        assert np.allclose(b.toarray(), dense)

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# header\n\n0 1\n# another\n1 2\n")
        a, ids = load_edge_list(path)
        assert a.shape == (3, 3)
        assert a.nnz == 4

    def test_non_contiguous_ids_compacted(self, tmp_path):
        path = tmp_path / "ids.txt"
        path.write_text("100 500\n500 90000\n")
        a, ids = load_edge_list(path)
        assert ids.tolist() == [100, 500, 90000]
        assert a.shape == (3, 3)

    def test_duplicate_and_self_loops_cleaned(self, tmp_path):
        path = tmp_path / "d.txt"
        path.write_text("0 1\n1 0\n0 1\n2 2\n2 0\n")
        a, ids = load_edge_list(path)
        dense = a.toarray()
        assert dense[ids.tolist().index(2), ids.tolist().index(2)] == 0
        assert a.is_binary()

    def test_directed_mode(self, tmp_path):
        path = tmp_path / "dir.txt"
        path.write_text("0 1\n")
        a, _ = load_edge_list(path, undirected=False)
        assert a.nnz == 1

    def test_gzip_support(self, tmp_path):
        import gzip

        path = tmp_path / "g.txt.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("0 1\n1 2\n")
        a, _ = load_edge_list(path)
        assert a.nnz == 4

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(FormatError):
            load_edge_list(path)

    def test_non_integer_ids(self, tmp_path):
        path = tmp_path / "alpha.txt"
        path.write_text("a b\n")
        with pytest.raises(FormatError):
            load_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        a, ids = load_edge_list(path)
        assert a.shape == (0, 0)
        assert len(ids) == 0


class TestAnalysis:
    def test_row_savings_consistent(self, clustered_adjacency):
        cbm, rep = build_cbm(clustered_adjacency, alpha=0)
        rows = row_savings(cbm, clustered_adjacency.row_nnz())
        assert len(rows) == cbm.n
        total_saved = sum(r.saved for r in rows)
        assert total_saved == clustered_adjacency.nnz - cbm.num_deltas

    def test_wrong_length_rejected(self, clustered_adjacency):
        cbm, _ = build_cbm(clustered_adjacency, alpha=0)
        with pytest.raises(ValueError):
            row_savings(cbm, np.ones(3))

    def test_histogram_counts_all_nonzero_rows(self, clustered_adjacency):
        cbm, _ = build_cbm(clustered_adjacency, alpha=0)
        hist = savings_histogram(cbm, clustered_adjacency.row_nnz())
        nz_rows = int((clustered_adjacency.row_nnz() > 0).sum())
        assert sum(c for _, c in hist) == nz_rows

    def test_top_savers_sorted(self, clustered_adjacency):
        cbm, _ = build_cbm(clustered_adjacency, alpha=0)
        top = top_savers(cbm, clustered_adjacency.row_nnz(), k=5)
        savings = [r.saved for r in top]
        assert savings == sorted(savings, reverse=True)

    def test_profile_fields(self, clustered_adjacency):
        cbm, _ = build_cbm(clustered_adjacency, alpha=0)
        prof = compression_profile(cbm, clustered_adjacency.row_nnz())
        assert prof["rows_compressed"] + prof["rows_stored_plain"] == cbm.n
        assert prof["total_saved_deltas"] >= 0
        assert 0.0 <= prof["mean_relative_saving"] <= 1.0
