"""Numerical-robustness tests: accumulation depth, extreme scalings, dtypes.

The CBM update stage accumulates partial sums along compression-tree
paths, so float32 rounding grows with tree depth; these tests pin that
the error stays within practical tolerances on the worst shapes (a chain
tree) and under extreme diagonal scalings — the regimes the paper's
rtol-1e-5 protocol never exercises.
"""

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.sparse.csr import CSRMatrix

from tests.conftest import random_adjacency_csr


def chain_matrix(n: int) -> CSRMatrix:
    """Cumulative lower-triangular matrix: row i = columns {0..i}.

    Compresses to a single n-deep chain (1 delta per row) — the maximum
    accumulation depth per stored delta."""
    indptr = np.cumsum(np.concatenate([[0], np.arange(1, n + 1)]))
    indices = np.concatenate([np.arange(i + 1) for i in range(n)])
    return CSRMatrix(indptr, indices, np.ones(len(indices), dtype=np.float32), (n, n))


class TestDeepAccumulation:
    def test_chain_tree_error_bounded(self):
        n = 300
        a = chain_matrix(n)
        cbm, rep = build_cbm(a, alpha=0)
        assert cbm.tree.depth().max() >= n - 2  # really is a chain
        x = np.random.default_rng(0).random((n, 8)).astype(np.float32)
        exact = a.toarray().astype(np.float64) @ x
        got = cbm.matmul(x)
        rel = np.max(np.abs(got - exact) / np.maximum(np.abs(exact), 1e-9))
        assert rel < 1e-4  # float32 partial sums over a 300-deep chain

    def test_chain_matches_csr_backend_not_just_truth(self):
        """CBM and the CSR backend accumulate differently; both must land
        within tolerance of each other, which is what the paper checks."""
        from repro.sparse.ops import spmm

        n = 200
        a = chain_matrix(n)
        cbm, _ = build_cbm(a, alpha=0)
        x = np.random.default_rng(1).random((n, 4)).astype(np.float32)
        assert np.allclose(cbm.matmul(x), spmm(a, x), rtol=1e-4, atol=1e-4)


class TestExtremeScalings:
    @pytest.mark.parametrize("scale", [1e-6, 1e6])
    def test_dad_uniform_extreme_diag(self, scale):
        a = random_adjacency_csr(30, seed=0)
        d = np.full(30, scale)
        cbm, _ = build_cbm(a, alpha=0, variant="DAD", diag=d)
        x = np.random.default_rng(2).random((30, 4)).astype(np.float32)
        ref = (d[:, None] * a.toarray().astype(np.float64) * d) @ x
        got = cbm.matmul(x)
        assert np.allclose(got, ref, rtol=1e-3)

    def test_fused_mode_with_wide_diag_range(self):
        """Fused Eq. 6 divides by the parent's diagonal; a 6-decade spread
        must not blow up relative error."""
        rng = np.random.default_rng(3)
        a = random_adjacency_csr(40, density=0.3, seed=1)
        d = 10.0 ** rng.uniform(-3, 3, size=40)
        cbm, _ = build_cbm(a, alpha=0, variant="DAD", diag=d)
        x = rng.random((40, 4)).astype(np.float32)
        ref = (d[:, None] * a.toarray().astype(np.float64) * d) @ x
        for scaling in ("deferred", "fused"):
            got = cbm.matmul(x, scaling=scaling)
            rel = np.max(np.abs(got - ref) / np.maximum(np.abs(ref), 1e-12))
            assert rel < 1e-3, scaling


class TestDtypes:
    def test_float64_operand(self):
        a = random_adjacency_csr(20, seed=2)
        cbm, _ = build_cbm(a, alpha=0)
        x = np.random.default_rng(4).random((20, 3))  # float64
        ref = a.toarray().astype(np.float64) @ x
        assert np.allclose(cbm.matmul(x), ref, rtol=1e-6)

    def test_integer_operand_coerced(self):
        a = random_adjacency_csr(15, seed=3)
        cbm, _ = build_cbm(a, alpha=0)
        x = np.arange(15 * 2).reshape(15, 2)
        ref = a.toarray() @ x.astype(np.float64)
        assert np.allclose(cbm.matmul(x), ref, rtol=1e-5)

    def test_matvec_dtype_follows_operand(self):
        a = random_adjacency_csr(15, seed=4)
        cbm, _ = build_cbm(a, alpha=0)
        v64 = np.random.default_rng(5).random(15)
        out = cbm.matvec(v64)
        assert out.dtype == np.float64
