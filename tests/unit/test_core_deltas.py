"""Unit tests for delta extraction and the delta matrix."""

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.core.deltas import (
    build_delta_matrix,
    delta_sets,
    reconstruct_rows,
    scale_delta_matrix,
)
from repro.core.distance import candidate_edges
from repro.core.mst import kruskal_mst
from repro.core.tree import VIRTUAL, CompressionTree
from repro.errors import CompressionError
from repro.sparse.convert import from_dense

from tests.conftest import random_adjacency_csr, random_binary_csr


def tree_for(a):
    return kruskal_mst(candidate_edges(a, None))


class TestDeltaSets:
    def test_virtual_parent_is_full_row(self):
        a = random_binary_csr(10, seed=0)
        tree = CompressionTree(parent=np.full(10, VIRTUAL), weight=a.row_nnz())
        for x in range(10):
            plus, minus = delta_sets(a, tree, x)
            assert np.array_equal(plus, a.row(x))
            assert minus.size == 0

    def test_real_parent_set_semantics(self):
        d = np.array([[1, 1, 0, 0], [1, 0, 1, 0]], dtype=np.float32)
        a = from_dense(d)
        tree = CompressionTree(parent=np.array([VIRTUAL, 0]), weight=np.array([2, 2]))
        plus, minus = delta_sets(a, tree, 1)
        assert plus.tolist() == [2]
        assert minus.tolist() == [1]


class TestBuildDeltaMatrix:
    def test_row_semantics(self):
        a = random_binary_csr(15, density=0.4, seed=1)
        tree = tree_for(a)
        delta = build_delta_matrix(a, tree)
        dense = a.toarray()
        dd = delta.toarray()
        for x in range(15):
            p = tree.parent[x]
            ref = dense[x] - (dense[p] if p != VIRTUAL else 0)
            assert np.allclose(dd[x], ref)

    def test_delta_count_matches_tree_weight(self):
        a = random_adjacency_csr(20, seed=2)
        tree = tree_for(a)
        delta = build_delta_matrix(a, tree)
        assert delta.nnz == tree.total_weight()

    def test_property1_nnz_bound(self):
        """Property 1: nnz(A') <= nnz(A)."""
        for seed in range(5):
            a = random_adjacency_csr(25, density=0.3, seed=seed)
            delta = build_delta_matrix(a, tree_for(a))
            assert delta.nnz <= a.nnz

    def test_mismatched_tree_rejected(self):
        a = random_binary_csr(10, seed=3)
        tree = CompressionTree(parent=np.full(5, VIRTUAL))
        with pytest.raises(CompressionError):
            build_delta_matrix(a, tree)

    def test_weight_mismatch_detected(self):
        a = random_binary_csr(8, density=0.5, seed=4)
        bad = CompressionTree(
            parent=np.full(8, VIRTUAL), weight=np.full(8, 999, dtype=np.int64)
        )
        with pytest.raises(CompressionError):
            build_delta_matrix(a, bad)

    def test_columns_sorted(self):
        a = random_adjacency_csr(20, seed=5)
        delta = build_delta_matrix(a, tree_for(a))
        for x in range(20):
            row = delta.row(x)
            assert np.all(np.diff(row) > 0)


class TestScaleDeltaMatrix:
    def test_same_sparsity(self):
        a = random_adjacency_csr(15, seed=6)
        delta = build_delta_matrix(a, tree_for(a))
        d = np.random.default_rng(0).random(15) + 0.5
        scaled = scale_delta_matrix(delta, d)
        assert np.array_equal(scaled.indices, delta.indices)
        assert np.array_equal(scaled.indptr, delta.indptr)

    def test_values_scaled_by_column(self):
        a = random_adjacency_csr(12, seed=7)
        delta = build_delta_matrix(a, tree_for(a))
        d = np.arange(1, 13, dtype=np.float32)
        scaled = scale_delta_matrix(delta, d)
        assert np.allclose(scaled.toarray(), delta.toarray() * d, rtol=1e-6)


class TestReconstruct:
    @pytest.mark.parametrize("seed", range(4))
    def test_roundtrip(self, seed):
        a = random_adjacency_csr(20, density=0.35, seed=seed)
        tree = tree_for(a)
        delta = build_delta_matrix(a, tree)
        back = reconstruct_rows(delta, tree)
        assert np.allclose(back.toarray(), a.toarray())

    def test_roundtrip_via_builder(self):
        a = random_adjacency_csr(25, seed=11)
        cbm, _ = build_cbm(a, alpha=2)
        assert np.allclose(cbm.tocsr().toarray(), a.toarray())

    def test_virtual_row_with_negative_delta_rejected(self):
        delta = from_dense(np.array([[-1.0, 1.0]], dtype=np.float32))
        tree = CompressionTree(parent=np.array([VIRTUAL]), weight=np.array([2]))
        with pytest.raises(CompressionError):
            reconstruct_rows(delta, tree)
