"""Unit tests for the crash-safe persistence tier (:mod:`repro.recovery`).

Covers the atomic write primitive (protocol, sync hook, failure
cleanup), the journaled :class:`GenerationStore` (commit marker,
quarantine-not-delete recovery, rollback, retention), the serving
layer's generation swap with fallback, and the kill-9 crash harness —
including the end-to-end "SIGKILL a training run, relaunch, resume from
the last committed epoch" scenario and the negative control proving the
harness detects a broken commit protocol.
"""

import json
import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.core.io import save_cbm
from repro.errors import IntegrityError, RecoveryError
from repro.gnn.adjacency import make_operator
from repro.gnn.gcn import GCN
from repro.gnn.train import (
    CHECKPOINT_PAYLOAD,
    TrainCheckpoint,
    load_latest_checkpoint,
    train_gcn,
)
from repro.recovery import GenerationStore, atomic_write, set_sync_hook
from repro.recovery.atomic import TMP_SUFFIX, is_tmp_debris
from repro.recovery.crashsim import run_soak, run_trial
from repro.serving import AdjacencySlot, InferenceService

from tests.conftest import random_adjacency_csr


# ---------------------------------------------------------------------------
# atomic_write
# ---------------------------------------------------------------------------

class TestAtomicWrite:
    def test_replaces_destination_on_clean_exit(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        with atomic_write(path, mode="w", encoding="utf-8") as fh:
            fh.write("new")
        assert path.read_text() == "new"
        assert list(tmp_path.iterdir()) == [path]  # no temp debris

    def test_exception_leaves_destination_untouched(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        with pytest.raises(RuntimeError):
            with atomic_write(path, mode="w", encoding="utf-8") as fh:
                fh.write("half-")
                raise RuntimeError("boom")
        assert path.read_text() == "old"
        assert list(tmp_path.iterdir()) == [path]

    def test_binary_mode_roundtrip(self, tmp_path):
        path = tmp_path / "blob.bin"
        with atomic_write(path) as fh:
            fh.write(b"\x00\x01\x02")
        assert path.read_bytes() == b"\x00\x01\x02"

    @pytest.mark.parametrize("mode", ["r", "a", "r+", "w+"])
    def test_rejects_non_write_modes(self, tmp_path, mode):
        with pytest.raises(ValueError):
            with atomic_write(tmp_path / "x", mode=mode):
                pass  # pragma: no cover - must raise before entering

    def test_sync_hook_sees_protocol_points_in_order(self, tmp_path):
        points = []
        previous = set_sync_hook(lambda point, path: points.append(point))
        try:
            with atomic_write(tmp_path / "x", mode="w", encoding="utf-8") as fh:
                fh.write("y")
        finally:
            assert set_sync_hook(previous) is not None
        assert points == ["wrote", "replace", "renamed"]

    def test_hook_abort_before_rename_keeps_old_file(self, tmp_path):
        """A crash simulated before os.replace leaves the old bytes."""
        path = tmp_path / "x"
        path.write_text("old")

        def bomb(point, _path):
            if point == "replace":
                raise KeyboardInterrupt  # stand-in for process death

        previous = set_sync_hook(bomb)
        try:
            with pytest.raises(KeyboardInterrupt):
                with atomic_write(path, mode="w", encoding="utf-8") as fh:
                    fh.write("new")
        finally:
            set_sync_hook(previous)
        assert path.read_text() == "old"

    def test_tmp_debris_naming(self):
        assert is_tmp_debris(f"foo.npz.abc{TMP_SUFFIX}")
        assert not is_tmp_debris("foo.npz")


# ---------------------------------------------------------------------------
# GenerationStore
# ---------------------------------------------------------------------------

def _commit_blob(store, payload=b"payload", name="blob.bin", **meta):
    with store.begin(meta=meta) as txn:
        with atomic_write(txn.path(name)) as fh:
            fh.write(payload)
    return txn.generation


class TestGenerationStore:
    def test_commit_then_latest(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        gen = _commit_blob(store, kind="test")
        assert gen.index == 1
        latest = store.latest()
        assert latest is not None and latest.index == 1
        assert latest.meta == {"kind": "test"}
        assert latest.file("blob.bin").read_bytes() == b"payload"
        latest.verify()

    def test_empty_store_has_no_latest(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        assert store.latest() is None
        assert store.generations() == []

    def test_indices_are_monotonic(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        assert [_commit_blob(store).index for _ in range(3)] == [1, 2, 3]

    def test_uncommitted_generation_is_invisible(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        _commit_blob(store)
        # A crashed writer's directory: payload present, no manifest.
        torn = store.root / "gen-000002"
        torn.mkdir()
        (torn / "blob.bin").write_bytes(b"half")
        assert store.latest().index == 1

    def test_aborted_txn_is_quarantined(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        with pytest.raises(RuntimeError):
            with store.begin() as txn:
                with atomic_write(txn.path("blob.bin")) as fh:
                    fh.write(b"x")
                raise RuntimeError("builder failed")
        assert store.latest() is None
        assert any(
            p.name.startswith("gen-000001--aborted")
            for p in store.quarantine_dir.iterdir()
        )

    def test_empty_generation_rejected(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        with pytest.raises(RecoveryError, match="no payload"):
            with store.begin():
                pass

    def test_payload_name_validation(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        txn = store.begin()
        with pytest.raises(RecoveryError):
            txn.path(os.path.join("sub", "x"))
        with pytest.raises(RecoveryError):
            txn.path("MANIFEST.json")

    def test_unlisted_payload_rejected(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        gen = _commit_blob(store)
        with pytest.raises(RecoveryError, match="no payload"):
            gen.file("other.bin")

    def test_verify_detects_post_commit_corruption(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        gen = _commit_blob(store, payload=b"payload-bytes")
        path = gen.file("blob.bin")
        blob = bytearray(path.read_bytes())
        blob[0] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(IntegrityError, match="CRC-32"):
            gen.verify()

    def test_rollback_quarantines_newest(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        for _ in range(3):
            _commit_blob(store)
        latest = store.rollback(1)
        assert latest.index == 2
        assert [g.index for g in store.generations()] == [1, 2]
        assert any(
            "rolled-back" in p.name for p in store.quarantine_dir.iterdir()
        )

    def test_rollback_too_deep_rejected(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        _commit_blob(store)
        with pytest.raises(RecoveryError):
            store.rollback(2)

    def test_retention_prunes_old_generations(self, tmp_path):
        store = GenerationStore(tmp_path / "store", retain=2)
        for _ in range(5):
            _commit_blob(store)
        assert [g.index for g in store.generations()] == [4, 5]
        # Pruned generations are deleted (superseded), not quarantined.
        assert not store.quarantine_dir.exists()


class TestRecovery:
    def test_recover_keeps_good_quarantines_bad(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        for _ in range(2):
            _commit_blob(store)
        # Torn uncommitted dir + stray temp file + corrupted committed gen.
        torn = store.root / "gen-000003"
        torn.mkdir()
        (torn / f"blob.bin.abc{TMP_SUFFIX}").write_bytes(b"half")
        (store.root / f"stray{TMP_SUFFIX}").write_bytes(b"x")
        bad = store.generations()[0].file("blob.bin")
        bad.write_bytes(b"rewritten to the wrong bytes")

        report = GenerationStore(tmp_path / "store").recover()
        assert report.kept == [2]
        reasons = dict(report.quarantined)
        assert reasons["gen-000003"] == "uncommitted"
        assert "stray_tmp" not in reasons  # counted separately
        assert report.stray_tmp == 1
        assert any("gen-000001" in name for name in reasons)
        # Nothing was deleted: every failure is preserved in quarantine/.
        qnames = [p.name for p in store.quarantine_dir.iterdir()]
        assert any(n.startswith("gen-000003") for n in qnames)
        assert any(n.startswith("gen-000001") for n in qnames)
        log = (store.quarantine_dir / "QUARANTINE.log").read_text()
        assert "uncommitted" in log

    def test_recover_sweeps_debris_inside_committed_generation(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        gen = _commit_blob(store)
        (gen.path / f"blob.bin.xyz{TMP_SUFFIX}").write_bytes(b"torn")
        report = store.recover()
        assert report.kept == [1]
        assert report.stray_tmp == 1
        assert store.latest().index == 1

    def test_recover_quarantines_unreadable_manifest(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        gen = _commit_blob(store)
        (gen.path / "MANIFEST.json").write_text("{not json", encoding="utf-8")
        report = store.recover()
        assert report.kept == []
        assert dict(report.quarantined)["gen-000001"] == "manifest-unreadable"

    def test_recover_quarantines_unknown_store_format(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        gen = _commit_blob(store)
        manifest = json.loads((gen.path / "MANIFEST.json").read_text())
        manifest["store_format"] = 99
        (gen.path / "MANIFEST.json").write_text(json.dumps(manifest))
        report = store.recover()
        assert report.kept == []
        assert "unknown-store-format" in dict(report.quarantined)["gen-000001"]

    def test_recover_audits_cbm_archives(self, tmp_path):
        """A CRC-clean but structurally broken CBM archive is caught by
        the staticcheck artifact audit wired into recovery."""
        a = random_adjacency_csr(20, seed=1)
        cbm, _ = build_cbm(a, alpha=2)
        store = GenerationStore(tmp_path / "store")
        with store.begin() as txn:
            # Not a CBM archive at all, but committed with a valid CRC.
            with atomic_write(txn.path("adjacency.npz", kind="cbm")) as fh:
                np.savez_compressed(fh, junk=np.ones(3))
        report = store.recover()
        assert report.kept == []
        assert report.quarantined
        # And a genuine archive passes the same audit.
        with store.begin() as txn:
            save_cbm(txn.path("adjacency.npz", kind="cbm"), cbm)
        report = store.recover()
        assert len(report.kept) == 1

    def test_report_to_dict_roundtrips(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        _commit_blob(store)
        d = store.recover().to_dict()
        assert d["kept"] == [1] and d["examined"] == 1
        json.dumps(d)  # must be JSON-serialisable for the soak report


# ---------------------------------------------------------------------------
# Serving swap from a generation store
# ---------------------------------------------------------------------------

def _commit_archive(store, seed=1):
    a = random_adjacency_csr(24, seed=seed)
    cbm, _ = build_cbm(a, alpha=2)
    with store.begin(meta={"seed": seed}) as txn:
        save_cbm(txn.path("adjacency.npz", kind="cbm"), cbm)
    return txn.generation


class TestSwapGeneration:
    def _service(self):
        slot = AdjacencySlot.from_graph(random_adjacency_csr(24, seed=0), alpha=2)
        return InferenceService(slot, workers=1)

    def test_swaps_to_newest_committed(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        _commit_archive(store, seed=1)
        newest = _commit_archive(store, seed=2)
        with self._service() as svc:
            summary = svc.swap_generation(store)
        assert summary["store_generation"] == newest.index
        assert summary["fallbacks"] == 0

    def test_falls_back_past_corrupt_newest(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        good = _commit_archive(store, seed=1)
        bad = _commit_archive(store, seed=2)
        payload = bad.file("adjacency.npz")
        blob = payload.read_bytes()
        payload.write_bytes(blob[: len(blob) // 2])  # torn after commit
        with self._service() as svc:
            summary = svc.swap_generation(store)
        assert summary["store_generation"] == good.index
        assert summary["fallbacks"] == 1
        # The rejected generation went to quarantine with its reason.
        assert any(
            "swap-rejected" in p.name for p in store.quarantine_dir.iterdir()
        )
        assert [g.index for g in store.generations()] == [good.index]

    def test_empty_store_raises_recovery_error(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        with self._service() as svc:
            with pytest.raises(RecoveryError):
                svc.swap_generation(store)

    def test_all_generations_bad_raises_integrity_error(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        for seed in (1, 2):
            gen = _commit_archive(store, seed=seed)
            gen.file("adjacency.npz").write_bytes(b"garbage")
        with self._service() as svc:
            with pytest.raises(IntegrityError, match="no loadable"):
                svc.swap_generation(store)


# ---------------------------------------------------------------------------
# Durable training checkpoints
# ---------------------------------------------------------------------------

def _train_fixture(seed=0):
    a = random_adjacency_csr(24, seed=7)
    rng = np.random.default_rng(seed)
    x = rng.random((24, 6)).astype(np.float32)
    labels = rng.integers(0, 3, 24)
    mask = np.ones(24, dtype=bool)
    return a, x, labels, mask


class TestDurableCheckpoints:
    def test_periodic_commits_and_latest_resume(self, tmp_path):
        a, x, labels, mask = _train_fixture()
        store = GenerationStore(tmp_path / "ckpt", retain=3)
        model = GCN([6, 6, 3], requires_grad=True, seed=1)
        train_gcn(
            model, make_operator(a, "csr"), x, labels, train_mask=mask,
            epochs=5, checkpoint_every=1, checkpoint_store=store,
        )
        assert [g.index for g in store.generations()] == [3, 4, 5]
        ck = load_latest_checkpoint(store, model=model)
        assert isinstance(ck, TrainCheckpoint) and ck.epoch == 5

        # Resuming "latest" with a higher epoch budget continues, and the
        # resumed history matches an uninterrupted run of the same seeds.
        result = train_gcn(
            model, make_operator(a, "csr"), x, labels, train_mask=mask,
            epochs=8, checkpoint_every=1, checkpoint_store=store,
            resume_from="latest",
        )
        assert len(result.losses) == 8

    def test_resume_latest_on_empty_store_starts_fresh(self, tmp_path):
        a, x, labels, mask = _train_fixture()
        store = GenerationStore(tmp_path / "ckpt")
        model = GCN([6, 6, 3], requires_grad=True, seed=1)
        result = train_gcn(
            model, make_operator(a, "csr"), x, labels, train_mask=mask,
            epochs=2, checkpoint_every=1, checkpoint_store=store,
            resume_from="latest",
        )
        assert len(result.losses) == 2

    def test_load_latest_skips_corrupt_newest(self, tmp_path):
        a, x, labels, mask = _train_fixture()
        store = GenerationStore(tmp_path / "ckpt")
        model = GCN([6, 6, 3], requires_grad=True, seed=1)
        train_gcn(
            model, make_operator(a, "csr"), x, labels, train_mask=mask,
            epochs=3, checkpoint_every=1, checkpoint_store=store,
        )
        newest = store.generations()[-1]
        payload = newest.file(CHECKPOINT_PAYLOAD)
        payload.write_bytes(payload.read_bytes()[:40])  # torn after commit
        ck = load_latest_checkpoint(store, model=model)
        assert ck is not None and ck.epoch == 2


# ---------------------------------------------------------------------------
# Kill-9 crash harness
# ---------------------------------------------------------------------------

class TestCrashHarness:
    def test_trial_kills_at_first_sync_point(self):
        trial = run_trial("archive", crash_at=1, seed=3, iterations=1)
        assert trial.killed
        assert trial.ok, trial.violations
        assert trial.announced == []  # died before any commit returned
        assert trial.root is None  # clean trials delete their root

    def test_trial_completes_past_all_sync_points(self):
        trial = run_trial("archive", crash_at=10_000, seed=3, iterations=2)
        assert not trial.killed
        assert trial.ok, trial.violations
        assert trial.announced == [1, 2]
        assert trial.kept == [1, 2]

    def test_broken_protocol_trial_detects_lost_commit(self):
        trial = run_trial("archive", crash_at=1, seed=3, iterations=1,
                          break_protocol=True)
        assert trial.killed
        assert not trial.ok
        assert any("lost after recovery" in v for v in trial.violations)
        assert trial.root is not None and os.path.isdir(trial.root)
        import shutil

        shutil.rmtree(trial.root, ignore_errors=True)

    def test_small_soak_holds_invariants(self):
        report = run_soak(trials=4, seed=5, workloads=("archive", "multi"),
                          iterations=2)
        assert report["ok"], report["violations"]
        assert report["killed"] >= 1  # at least one trial actually died

    @pytest.mark.chaos
    def test_full_soak_all_workloads(self):
        report = run_soak(trials=12, seed=0, iterations=2)
        assert report["ok"], report["violations"]
        assert report["killed"] >= 6
        assert report["commits_observed"] >= 1
        assert report["max_recovery_s"] < 10.0

    @pytest.mark.chaos
    def test_negative_control_soak_fails(self):
        report = run_soak(trials=3, seed=0, workloads=("archive",),
                          iterations=2, break_protocol=True)
        assert not report["ok"]
        assert any("lost after recovery" in v for v in report["violations"])
        import shutil

        for v in report["violations"]:
            marker = "root="
            if marker in v:
                root = v.split(marker, 1)[1].split("]", 1)[0]
                shutil.rmtree(root, ignore_errors=True)


class TestKilledTrainerResumesEndToEnd:
    """SIGKILL a real training subprocess, then resume it to completion."""

    @pytest.mark.chaos
    def test_resume_after_kill9(self, tmp_path):
        root = tmp_path / "ckpt"
        code = (
            "from repro.recovery.crashsim import run_worker\n"
            f"run_worker('trainer', {str(root)!r}, crash_at={{crash_at}}, "
            "seed=5, iterations=6)\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        # First launch dies mid-run at a sync point inside epoch ~3.
        proc = subprocess.run(
            [sys.executable, "-c", code.format(crash_at=20)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        store = GenerationStore(root)
        report = store.recover()
        killed_at = store.latest()
        assert killed_at is not None, report.to_dict()
        resumed_from = killed_at.meta["epoch"]
        assert 0 < resumed_from < 6

        # Relaunching the *same command* (crash point far beyond the run)
        # resumes from the last committed epoch and finishes all 6.
        proc = subprocess.run(
            [sys.executable, "-c", code.format(crash_at=10_000)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "DONE" in proc.stdout
        final = GenerationStore(root).latest()
        assert final.meta["epoch"] == 6
        ck = load_latest_checkpoint(store)
        assert ck.epoch == 6
        assert len(ck.losses) == 6
