"""Unit tests for the parallel substrate: machine model, cache model,
scheduler simulation, threaded executor, and kernel predictions."""

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.core.tree import VIRTUAL, CompressionTree
from repro.errors import ParallelError
from repro.parallel.cache import CacheModel, WorkingSet
from repro.parallel.executor import ThreadedUpdateExecutor, parallel_matmul
from repro.parallel.machine import XEON_GOLD_6130, CacheLevel, MachineSpec
from repro.parallel.schedule import (
    branch_costs,
    simulate_dynamic_schedule,
    update_stage_schedule,
)
from repro.parallel.simulate import predict_cbm_spmm, predict_csr_spmm

from tests.conftest import random_adjacency_csr


class TestMachineSpec:
    def test_paper_testbed_constants(self):
        m = XEON_GOLD_6130
        assert m.cores == 16
        assert m.clock_hz == 2.1e9
        assert m.shared_cache_bytes() == 22 * 1024 * 1024
        assert m.private_cache_bytes(1) == (32 + 1024) * 1024

    def test_private_cache_scales_with_cores(self):
        m = XEON_GOLD_6130
        assert m.private_cache_bytes(16) == 16 * m.private_cache_bytes(1)

    def test_cores_used_bounds(self):
        with pytest.raises(ValueError):
            XEON_GOLD_6130.private_cache_bytes(0)
        with pytest.raises(ValueError):
            XEON_GOLD_6130.private_cache_bytes(17)

    def test_bandwidth_tiers_ordered(self):
        """Smaller working sets see no less bandwidth than larger ones."""
        m = XEON_GOLD_6130
        small = m.effective_bandwidth(16 * 1024, 1)
        medium = m.effective_bandwidth(10 * 2**20, 1)
        large = m.effective_bandwidth(2**30, 1)
        assert small >= medium >= large

    def test_dram_bandwidth_grows_sublinearly(self):
        m = XEON_GOLD_6130
        one = m.effective_bandwidth(2**30, 1)
        sixteen = m.effective_bandwidth(2**30, 16)
        assert one < sixteen <= m.dram_bandwidth_bytes_per_s

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec(name="bad", cores=0, clock_hz=1e9, flops_per_cycle=1)
        with pytest.raises(ValueError):
            CacheLevel("L1", -5, False, 1e9)


class TestCacheModel:
    def test_resident_tiers(self):
        cm = CacheModel(XEON_GOLD_6130)
        assert cm.resident_tier(WorkingSet(16 * 1024, 0), 1) == "private"
        assert cm.resident_tier(WorkingSet(10 * 2**20, 0), 1) == "shared"
        assert cm.resident_tier(WorkingSet(2**30, 0), 1) == "dram"

    def test_tier_improves_with_cores(self):
        """The paper's mid-size-graph effect: a 3 MiB structure is private
        across 16 cores but not on one."""
        cm = CacheModel(XEON_GOLD_6130)
        ws = WorkingSet(3 * 2**20, 0)
        assert cm.resident_tier(ws, 1) == "shared"
        assert cm.resident_tier(ws, 16) == "private"

    def test_traffic_and_time(self):
        cm = CacheModel(XEON_GOLD_6130)
        ws = WorkingSet(1000, 2000)
        assert cm.traffic_bytes(ws, passes=2.0) == 2 * 3000
        assert cm.bandwidth_time(ws, 1) > 0

    def test_negative_ws_rejected(self):
        with pytest.raises(ValueError):
            WorkingSet(-1, 0)


class TestScheduler:
    def test_single_thread_is_total_work(self):
        r = simulate_dynamic_schedule(np.array([3.0, 1.0, 2.0]), 1)
        assert r.makespan == 6.0
        assert r.speedup == 1.0

    def test_perfect_balance(self):
        r = simulate_dynamic_schedule(np.ones(8), 4)
        assert r.makespan == 2.0
        assert r.utilisation == 1.0

    def test_critical_task_bounds_makespan(self):
        r = simulate_dynamic_schedule(np.array([10.0, 1.0, 1.0]), 4)
        assert r.makespan == 10.0
        assert r.critical_path == 10.0

    def test_greedy_two_approximation(self):
        rng = np.random.default_rng(0)
        costs = rng.random(50) * 10
        r = simulate_dynamic_schedule(costs, 8)
        lower = max(costs.max(), costs.sum() / 8)
        assert lower <= r.makespan <= 2 * lower

    def test_empty_tasks(self):
        r = simulate_dynamic_schedule(np.array([]), 4)
        assert r.makespan == 0.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ParallelError):
            simulate_dynamic_schedule(np.array([-1.0]), 2)

    def test_branch_costs_exclude_roots(self):
        tree = CompressionTree(parent=np.array([VIRTUAL, 0, 1, VIRTUAL]))
        costs = branch_costs(tree, p=10)
        assert sorted(costs.tolist()) == [0.0, 20.0]

    def test_dad_costs_triple(self):
        tree = CompressionTree(parent=np.array([VIRTUAL, 0]))
        assert branch_costs(tree, 10, dad=True)[0] == 3 * branch_costs(tree, 10)[0]

    def test_more_threads_never_slower(self):
        a = random_adjacency_csr(60, density=0.3, seed=1)
        cbm, _ = build_cbm(a, alpha=0)
        m1 = update_stage_schedule(cbm.tree, 100, 1).makespan
        m4 = update_stage_schedule(cbm.tree, 100, 4).makespan
        m16 = update_stage_schedule(cbm.tree, 100, 16).makespan
        assert m1 >= m4 >= m16


class TestThreadedExecutor:
    @pytest.mark.parametrize("threads", [1, 2, 8])
    def test_matches_sequential(self, threads):
        a = random_adjacency_csr(50, density=0.3, seed=2)
        cbm, _ = build_cbm(a, alpha=0)
        x = np.random.default_rng(0).random((50, 7)).astype(np.float32)
        out = parallel_matmul(cbm, x, threads=threads)
        assert np.allclose(out, a.toarray() @ x, rtol=1e-4)

    def test_dad_variant(self):
        rng = np.random.default_rng(1)
        a = random_adjacency_csr(40, density=0.3, seed=3)
        d = rng.random(40) + 0.5
        cbm, _ = build_cbm(a, alpha=2, variant="DAD", diag=d)
        x = rng.random((40, 5)).astype(np.float32)
        ref = (d[:, None] * a.toarray() * d) @ x
        assert np.allclose(parallel_matmul(cbm, x, threads=4), ref, rtol=1e-4)

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            ThreadedUpdateExecutor(0)

    def test_empty_tree_noop(self):
        tree = CompressionTree(parent=np.array([], dtype=np.int64))
        c = np.zeros((0, 3), dtype=np.float32)
        ThreadedUpdateExecutor(2).run_update(tree, c)


class TestPredictions:
    def test_positive_times(self):
        a = random_adjacency_csr(50, density=0.3, seed=4)
        cbm, _ = build_cbm(a, alpha=0)
        for cores in (1, 16):
            assert predict_csr_spmm(a, 100, cores=cores).total_s > 0
            assert predict_cbm_spmm(cbm, 100, cores=cores).total_s > 0

    def test_more_cores_never_slower(self):
        a = random_adjacency_csr(50, density=0.3, seed=5)
        cbm, _ = build_cbm(a, alpha=0)
        assert (
            predict_csr_spmm(a, 100, cores=16).total_s
            <= predict_csr_spmm(a, 100, cores=1).total_s
        )
        assert (
            predict_cbm_spmm(cbm, 100, cores=16).total_s
            <= predict_cbm_spmm(cbm, 100, cores=1).total_s
        )

    def test_scale_increases_time(self):
        a = random_adjacency_csr(50, density=0.3, seed=6)
        base = predict_csr_spmm(a, 100, cores=1).total_s
        scaled = predict_csr_spmm(a, 100, cores=1, scale_nnz=40.0, scale_rows=40.0).total_s
        assert scaled > base

    def test_compressible_graph_predicted_faster(self, clustered_adjacency):
        cbm, rep = build_cbm(clustered_adjacency, alpha=0)
        assert rep.compression_ratio > 2
        csr_t = predict_csr_spmm(clustered_adjacency, 500, cores=1, scale_nnz=1e4, scale_rows=1e3).total_s
        cbm_t = predict_cbm_spmm(cbm, 500, cores=1, scale_nnz=1e4, scale_rows=1e3).total_s
        assert cbm_t < csr_t

    def test_invalid_args(self):
        a = random_adjacency_csr(10, seed=7)
        with pytest.raises(ValueError):
            predict_csr_spmm(a, 0)
        with pytest.raises(ValueError):
            predict_csr_spmm(a, 10, cores=0)
        with pytest.raises(ValueError):
            predict_csr_spmm(a, 10, scale_nnz=0.0)
