"""Unit tests for label-propagation clustering in the clustered builder."""

import numpy as np
import pytest

from repro.core.builder import (
    build_clustered,
    cluster_rows_label_propagation,
)
from repro.errors import ShapeError
from repro.sparse.convert import from_dense

from tests.conftest import random_adjacency_csr


def community_graph(blocks=3, size=20, seed=7):
    rng = np.random.default_rng(seed)
    n = blocks * size
    d = np.zeros((n, n), dtype=np.float32)
    for b in range(blocks):
        d[b * size : (b + 1) * size, b * size : (b + 1) * size] = 1.0
    for i, j in rng.integers(0, n, size=(10, 2)):
        if i != j:
            d[i, j] = d[j, i] = 1 - d[i, j]
    np.fill_diagonal(d, 0)
    return from_dense(d)


class TestLabelPropagation:
    def test_recovers_planted_communities(self):
        a = community_graph()
        labels = cluster_rows_label_propagation(a, cluster_size=25)
        # Each planted block maps (almost entirely) to one cluster.
        for b in range(3):
            block_labels = labels[b * 20 : (b + 1) * 20]
            values, counts = np.unique(block_labels, return_counts=True)
            assert counts.max() >= 16

    def test_cluster_size_cap_respected(self):
        a = community_graph()
        labels = cluster_rows_label_propagation(a, cluster_size=8)
        assert np.bincount(labels).max() <= 8

    def test_all_rows_labelled(self):
        a = random_adjacency_csr(40, seed=1)
        labels = cluster_rows_label_propagation(a, 10)
        assert labels.shape == (40,)
        assert labels.min() >= 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            cluster_rows_label_propagation(random_adjacency_csr(10, seed=2), 0)

    def test_deterministic(self):
        a = random_adjacency_csr(30, seed=3)
        l1 = cluster_rows_label_propagation(a, 8)
        l2 = cluster_rows_label_propagation(a, 8)
        assert np.array_equal(l1, l2)


class TestBuilderIntegration:
    def test_lp_beats_signature_on_communities(self):
        """Community-aware clustering compresses community graphs better."""
        a = community_graph(seed=9)
        _, rep_sig = build_clustered(a, cluster_size=25, clustering="signature")
        _, rep_lp = build_clustered(a, cluster_size=25, clustering="label_propagation")
        assert rep_lp.compression_ratio >= rep_sig.compression_ratio - 1e-9

    def test_lp_correct_product(self):
        a = community_graph(seed=10)
        cbm, _ = build_clustered(a, cluster_size=16, clustering="label_propagation")
        x = np.random.default_rng(0).random((a.shape[0], 4)).astype(np.float32)
        assert np.allclose(cbm.matmul(x), a.toarray() @ x, rtol=1e-4)

    def test_explicit_labels(self):
        a = random_adjacency_csr(30, seed=11)
        labels = np.arange(30) % 3
        cbm, _ = build_clustered(a, labels=labels)
        x = np.random.default_rng(1).random((30, 3)).astype(np.float32)
        assert np.allclose(cbm.matmul(x), a.toarray() @ x, rtol=1e-4)

    def test_bad_labels_length(self):
        a = random_adjacency_csr(10, seed=12)
        with pytest.raises(ShapeError):
            build_clustered(a, labels=np.zeros(3, dtype=np.int64))

    def test_unknown_clustering(self):
        a = random_adjacency_csr(10, seed=13)
        with pytest.raises(ValueError):
            build_clustered(a, clustering="metis")
