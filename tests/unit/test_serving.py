"""Serving-layer suite: admission control, deadlines, retries, the
circuit-breaker ladder, hot swap, and thread-safety of the shared pieces.

The load-bearing invariant mirrors the reliability suite's: a request
either returns a product matching the CSR reference or raises a *typed*
error — never a silently wrong buffer, and never a hang.  Chaos-driven
classes carry the ``chaos`` marker (same CI job as the reliability
chaos classes).
"""

import threading
import time
import warnings

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.core.io import save_cbm
from repro.errors import (
    DeadlineExceeded,
    IntegrityError,
    NumericalError,
    OverloadError,
    ParallelError,
    ReproError,
    ServiceUnavailable,
    ServingError,
    ShapeError,
    WatchdogTimeout,
)
from repro.parallel.executor import ThreadedUpdateExecutor
from repro.reliability import FallbackWarning, GuardedKernel
from repro.reliability.chaos import (
    ChaosExecutor,
    ChaosExecutorFactory,
    corrupt_archive,
    corrupt_deltas,
)
from repro.reliability.guard import GuardStats
from repro.serving import (
    AdjacencySlot,
    BreakerState,
    CircuitBreaker,
    Deadline,
    InferenceService,
    RetryPolicy,
    ServeTier,
    is_transient,
    run_soak,
)
from repro.sparse.ops import spmm, spmv

from tests.conftest import random_adjacency_csr


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# ---------------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------------

class TestDeadline:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_remaining_counts_down_and_clamps(self):
        clock = FakeClock()
        d = Deadline(1.0, clock=clock)
        assert d.remaining() == pytest.approx(1.0)
        assert not d.expired
        clock.advance(0.4)
        assert d.remaining() == pytest.approx(0.6)
        assert d.elapsed() == pytest.approx(0.4)
        clock.advance(1.0)
        assert d.remaining() == 0.0
        assert d.expired

    def test_expires_at_is_absolute(self):
        clock = FakeClock(100.0)
        d = Deadline(2.5, clock=clock)
        assert d.expires_at == pytest.approx(102.5)


# ---------------------------------------------------------------------------
# RetryPolicy / is_transient
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_s=0.5, cap_s=0.1)

    def test_delays_are_bounded_and_jittered(self):
        policy = RetryPolicy(max_attempts=5, base_s=0.01, cap_s=0.1)
        rng = np.random.default_rng(3)
        gen = policy.delays(rng)
        delays = [next(gen) for _ in range(50)]
        assert all(policy.base_s <= d <= policy.cap_s for d in delays)
        # Decorrelated jitter: not all equal, grows toward the cap.
        assert len(set(delays)) > 10
        assert max(delays) > 0.05

    def test_transient_classification(self):
        assert is_transient(ParallelError("worker died"))
        assert is_transient(WatchdogTimeout("stall"))
        assert is_transient(NumericalError("non-finite output"))
        rejected = NumericalError("bad operand")
        rejected.input_rejection = True
        assert not is_transient(rejected)
        assert not is_transient(OverloadError("full", retry_after=0.1))
        assert not is_transient(DeadlineExceeded("late"))
        assert not is_transient(ValueError("not a library error"))

    def test_serving_errors_are_repro_errors(self):
        assert issubclass(OverloadError, ServingError)
        assert issubclass(DeadlineExceeded, ReproError)
        assert OverloadError("x", retry_after=0.25).retry_after == 0.25


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------

def _fail(breaker, n):
    for _ in range(n):
        tier, probe = breaker.acquire()
        breaker.record(tier, False, probe=probe)


def _succeed(breaker, n):
    for _ in range(n):
        tier, probe = breaker.acquire()
        breaker.record(tier, True, probe=probe)


class TestCircuitBreaker:
    def _breaker(self, clock, **kw):
        kw.setdefault("window", 8)
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("failure_rate", 0.5)
        kw.setdefault("cooldown_s", 1.0)
        kw.setdefault("max_cooldown_s", 8.0)
        kw.setdefault("probe_budget", 2)
        return CircuitBreaker(clock=clock, **kw)

    def test_starts_closed_fast_and_success_keeps_it_there(self):
        b = self._breaker(FakeClock())
        _succeed(b, 20)
        assert b.state is BreakerState.CLOSED
        assert b.tier is ServeTier.FAST

    def test_trips_one_tier_on_failure_rate(self):
        b = self._breaker(FakeClock())
        _fail(b, 3)
        assert b.state is BreakerState.OPEN
        assert b.tier is ServeTier.GUARDED

    def test_no_probe_before_cooldown(self):
        clock = FakeClock()
        b = self._breaker(clock)
        _fail(b, 3)
        clock.advance(0.5)
        tier, probe = b.acquire()
        assert (tier, probe) == (ServeTier.GUARDED, False)

    def test_half_open_probes_one_tier_faster(self):
        clock = FakeClock()
        b = self._breaker(clock)
        _fail(b, 3)
        clock.advance(1.1)
        tier, probe = b.acquire()
        assert (tier, probe) == (ServeTier.FAST, True)
        assert b.state is BreakerState.HALF_OPEN
        # Beyond the probe budget the safe tier keeps serving.
        b.acquire()
        tier3, probe3 = b.acquire()
        assert (tier3, probe3) == (ServeTier.GUARDED, False)

    def test_failed_probe_reopens_and_doubles_cooldown(self):
        clock = FakeClock()
        b = self._breaker(clock)
        _fail(b, 3)
        clock.advance(1.1)
        tier, probe = b.acquire()
        b.record(tier, False, probe=probe)
        assert b.state is BreakerState.OPEN
        assert b.tier is ServeTier.GUARDED
        assert b.describe()["cooldown_s"] == pytest.approx(2.0)
        # Not yet: doubled cooldown has not elapsed.
        clock.advance(1.5)
        assert b.acquire() == (ServeTier.GUARDED, False)
        clock.advance(1.0)
        assert b.acquire() == (ServeTier.FAST, True)

    def test_probe_budget_successes_promote_to_closed_fast(self):
        clock = FakeClock()
        b = self._breaker(clock)
        _fail(b, 3)
        clock.advance(1.1)
        for _ in range(2):
            tier, probe = b.acquire()
            assert probe
            b.record(tier, True, probe=probe)
        assert b.state is BreakerState.CLOSED
        assert b.tier is ServeTier.FAST

    def test_failures_while_open_still_trip_to_degraded(self):
        b = self._breaker(FakeClock())
        _fail(b, 3)
        assert b.tier is ServeTier.GUARDED
        _fail(b, 3)  # internal fallbacks keep failing while OPEN
        assert b.tier is ServeTier.DEGRADED
        # DEGRADED is the floor: more failures change nothing.
        _fail(b, 5)
        assert b.tier is ServeTier.DEGRADED

    def test_stepwise_recovery_degraded_to_fast(self):
        clock = FakeClock()
        b = self._breaker(clock)
        _fail(b, 3)
        _fail(b, 3)
        assert b.tier is ServeTier.DEGRADED
        clock.advance(1.1)
        for _ in range(2):  # probes run at GUARDED
            tier, probe = b.acquire()
            assert (tier, probe) == (ServeTier.GUARDED, True)
            b.record(tier, True, probe=probe)
        assert b.tier is ServeTier.GUARDED
        assert b.state is BreakerState.OPEN  # re-opened to climb further
        clock.advance(1.1)
        for _ in range(2):  # probes run at FAST
            tier, probe = b.acquire()
            assert (tier, probe) == (ServeTier.FAST, True)
            b.record(tier, True, probe=probe)
        assert b.tier is ServeTier.FAST
        assert b.state is BreakerState.CLOSED
        events = [t["event"] for t in b.transition_log()]
        assert events == ["trip", "trip", "half_open", "promote", "half_open", "promote"]

    def test_stale_probe_outcome_is_ignored(self):
        clock = FakeClock()
        b = self._breaker(clock)
        _fail(b, 3)
        clock.advance(1.1)
        tier, probe = b.acquire()
        assert probe
        # A failed probe reopens the breaker first...
        b.record(ServeTier.FAST, False, probe=True)
        assert b.state is BreakerState.OPEN
        tier_before = b.tier
        # ...so a probe outcome issued before the state change must not
        # promote (it would skip the fresh cooldown).
        b.record(tier, True, probe=True)
        assert b.state is BreakerState.OPEN
        assert b.tier is tier_before

    def test_note_internal_failure_feeds_the_window(self):
        b = self._breaker(FakeClock())
        for _ in range(3):
            b.note_internal_failure()
        assert b.tier is ServeTier.GUARDED


# ---------------------------------------------------------------------------
# Shared GuardStats: thread safety + warning dedup (satellites)
# ---------------------------------------------------------------------------

class TestGuardStatsConcurrency:
    def test_counters_are_exact_under_contention(self):
        stats = GuardStats()
        n_threads, per_thread = 8, 500

        def hammer(seed):
            exc = ParallelError("x") if seed % 2 else NumericalError("y")
            for _ in range(per_thread):
                stats.record_call()
                stats.record_fallback(exc)
                stats.record_input_rejection()
                stats.record_suppressed_warning()

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = stats.snapshot()
        total = n_threads * per_thread
        assert snap["calls"] == total
        assert snap["fallbacks"] == total
        assert snap["input_rejections"] == total
        assert snap["warnings_suppressed"] == total
        assert snap["reasons"] == {
            "ParallelError": total // 2,
            "NumericalError": total // 2,
        }
        stats.reset()
        assert stats.snapshot()["calls"] == 0

    def test_snapshot_is_consistent(self):
        stats = GuardStats()
        stats.record_fallback(ParallelError("x"))
        snap = stats.snapshot()
        assert snap["fallbacks"] == sum(snap["reasons"].values())


class TestFallbackWarningDedup:
    def test_first_verbatim_then_counted(self):
        a = random_adjacency_csr(24, density=0.3, seed=2)
        cbm, _ = build_cbm(a, alpha=0)
        corrupt_deltas(cbm, mode="nan", seed=0)
        guard = GuardedKernel(cbm, source=a)
        x = np.random.default_rng(0).random((24, 4)).astype(np.float32)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(12):
                c = guard.matmul(x)
                np.testing.assert_allclose(c, spmm(a, x), rtol=1e-5)
        fallback_warnings = [w for w in caught if issubclass(w.category, FallbackWarning)]
        # 12 identical failures: one verbatim warning, one power-of-ten
        # summary at the 10th, the rest suppressed.
        assert len(fallback_warnings) == 2
        assert "degrading" in str(fallback_warnings[0].message)
        assert "10 times" in str(fallback_warnings[1].message)
        snap = guard.stats.snapshot()
        assert snap["fallbacks"] == 12
        assert snap["warnings_suppressed"] == 10

    def test_distinct_reasons_warn_separately(self):
        a = random_adjacency_csr(24, density=0.3, seed=3)
        cbm, _ = build_cbm(a, alpha=0)
        guard = GuardedKernel(
            cbm, source=a, threads=2,
            executor_factory=lambda t, **kw: ChaosExecutor(t, fail_on_branch=0, **kw),
        )
        x = np.random.default_rng(1).random((24, 4)).astype(np.float32)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            guard.matmul(x)  # ParallelError reason
        corrupt_deltas(cbm, mode="nan", seed=1)
        serial = GuardedKernel(cbm, source=a, stats=guard.stats)
        with warnings.catch_warnings(record=True) as caught2:
            warnings.simplefilter("always")
            serial.matmul(x)  # NumericalError reason, same shared stats
        assert len([w for w in caught if issubclass(w.category, FallbackWarning)]) == 1
        assert len([w for w in caught2 if issubclass(w.category, FallbackWarning)]) == 1
        assert set(guard.stats.snapshot()["reasons"]) == {"ParallelError", "NumericalError"}


# ---------------------------------------------------------------------------
# InferenceService
# ---------------------------------------------------------------------------

def _slot(n=40, seed=11, alpha=0):
    a = random_adjacency_csr(n, density=0.25, seed=seed)
    return a, AdjacencySlot.from_graph(a, alpha=alpha)


class _SlowService(InferenceService):
    """Deterministic worker slowdown for admission-control tests."""

    compute_delay = 0.15

    def _compute(self, req, tier):
        time.sleep(self.compute_delay)
        return super()._compute(req, tier)


class TestInferenceService:
    def test_happy_path_matches_reference(self):
        a, slot = _slot()
        x = np.random.default_rng(0).random((40, 6)).astype(np.float32)
        with InferenceService(slot, workers=2) as svc:
            y = svc.submit(x).result(5.0)
            np.testing.assert_allclose(y, spmm(a, x), rtol=1e-5)
            assert svc.health()["service"]["completed"] == 1

    def test_vector_requests(self):
        a, slot = _slot()
        v = np.random.default_rng(1).random(40).astype(np.float32)
        with InferenceService(slot, workers=1) as svc:
            u = svc.submit(v).result(5.0)
            np.testing.assert_allclose(u, spmv(a, v), rtol=1e-5)

    def test_gcn_forward_serving(self):
        from repro.gnn.adjacency import CSRAdjacency
        from repro.gnn.gcn import two_layer_gcn_inference

        a = random_adjacency_csr(40, density=0.25, seed=4)
        slot = AdjacencySlot.from_graph(a, normalized=True)
        rng = np.random.default_rng(5)
        x = rng.random((40, 8)).astype(np.float32)
        w0 = rng.random((8, 6)).astype(np.float32) - 0.5
        w1 = rng.random((6, 3)).astype(np.float32) - 0.5
        expected = two_layer_gcn_inference(CSRAdjacency(slot.source), x, w0, w1)
        with InferenceService(slot, workers=1, weights=(w0, w1)) as svc:
            y = svc.submit(x).result(5.0)
        np.testing.assert_allclose(y, expected, rtol=1e-4, atol=1e-5)

    def test_not_ready_and_closed_reject(self):
        _, slot = _slot()
        svc = InferenceService(slot)
        x = np.zeros((40, 2), dtype=np.float32)
        with pytest.raises(ServiceUnavailable):
            svc.submit(x)
        svc.start()
        svc.close()
        with pytest.raises(ServiceUnavailable):
            svc.submit(x)
        assert svc.state == "stopped"
        svc.close()  # idempotent

    def test_shape_validation_at_the_door(self):
        _, slot = _slot()
        with InferenceService(slot) as svc:
            with pytest.raises(ShapeError):
                svc.submit(np.zeros((13, 2), dtype=np.float32))
            with pytest.raises(ShapeError):
                svc.submit(np.zeros((40, 2, 2), dtype=np.float32))

    def test_overload_sheds_with_retry_after(self):
        _, slot = _slot()
        svc = _SlowService(slot, workers=1, queue_capacity=2)
        x = np.random.default_rng(2).random((40, 4)).astype(np.float32)
        with svc:
            futures, sheds = [], []
            for _ in range(8):
                try:
                    futures.append(svc.submit(x))
                except OverloadError as exc:
                    sheds.append(exc)
            assert sheds, "bounded queue never shed"
            assert all(s.retry_after > 0 for s in sheds)
            assert svc.stats.snapshot()["shed"] == len(sheds)
            for f in futures:
                f.result(10.0)  # admitted requests all resolve

    def test_deadline_expires_in_queue(self):
        _, slot = _slot()
        svc = _SlowService(slot, workers=1, queue_capacity=4)
        x = np.random.default_rng(3).random((40, 4)).astype(np.float32)
        with svc:
            blocker = svc.submit(x, deadline_s=5.0)
            doomed = svc.submit(x, deadline_s=0.02)
            with pytest.raises(DeadlineExceeded):
                doomed.result(10.0)
            blocker.result(10.0)
            assert svc.stats.snapshot()["deadline_misses"] >= 1

    def test_nan_input_is_client_error_not_breaker_failure(self):
        a, slot = _slot()
        x = np.random.default_rng(4).random((40, 4)).astype(np.float32)
        x[3, 1] = np.nan
        with InferenceService(slot, workers=1) as svc:
            fut = svc.submit(x)
            with pytest.raises(NumericalError) as ei:
                fut.result(5.0)
            assert getattr(ei.value, "input_rejection", False)
            assert svc.breaker.tier is ServeTier.FAST
            assert svc.breaker.state is BreakerState.CLOSED
            assert svc.stats.snapshot()["input_rejections"] == 1

    def test_transient_failure_is_retried_to_success(self):
        a, slot = _slot(alpha=2)

        class FailOnce:
            def __init__(self):
                self.calls = 0
                self.lock = threading.Lock()

            def __call__(self, threads, **kw):
                with self.lock:
                    self.calls += 1
                    first = self.calls == 1
                if first:
                    return ChaosExecutor(threads, fail_on_branch=0, **kw)
                return ThreadedUpdateExecutor(threads, **kw)

        factory = FailOnce()
        x = np.random.default_rng(5).random((40, 4)).astype(np.float32)
        with InferenceService(
            slot, workers=1, threads=2, executor_factory=factory,
            retry=RetryPolicy(max_attempts=3, base_s=0.001, cap_s=0.01),
        ) as svc:
            y = svc.submit(x).result(10.0)
        np.testing.assert_allclose(y, spmm(a, x), rtol=1e-4)
        assert svc.stats.snapshot()["retries"] >= 1
        assert factory.calls >= 2

    @pytest.mark.chaos
    def test_persistent_chaos_trips_to_degraded_but_stays_correct(self):
        a, slot = _slot(n=50, alpha=2)
        chaos = ChaosExecutorFactory(fail_rate=1.0, seed=0)
        breaker = CircuitBreaker(
            window=8, failure_threshold=2, failure_rate=0.5,
            cooldown_s=30.0, probe_budget=2,  # long cooldown: no recovery here
        )
        x = np.random.default_rng(6).random((50, 4)).astype(np.float32)
        expected = spmm(a, x)
        with InferenceService(
            slot, workers=1, threads=2, executor_factory=chaos, breaker=breaker,
            retry=RetryPolicy(max_attempts=1, base_s=0.001, cap_s=0.01),
        ) as svc:
            failures = 0
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", FallbackWarning)
                for _ in range(12):
                    fut = svc.submit(x)
                    try:
                        y = fut.result(10.0)
                    except ReproError:
                        # Fail-fast FAST-tier errors before the breaker
                        # trips are typed and allowed; silent corruption
                        # is not.
                        failures += 1
                        continue
                    np.testing.assert_allclose(y, expected, rtol=1e-4)
        # Once GUARDED/DEGRADED take over, every request succeeds: the
        # typed failures are confined to the pre-trip FAST window.
        assert failures <= 4
        assert breaker.tier is ServeTier.DEGRADED
        events = [t["event"] for t in breaker.transition_log()]
        assert events.count("trip") >= 2

    def test_drain_completes_inflight_work(self):
        _, slot = _slot()
        svc = _SlowService(slot, workers=2, queue_capacity=8)
        svc.compute_delay = 0.05
        x = np.random.default_rng(7).random((40, 4)).astype(np.float32)
        with svc:
            futures = [svc.submit(x) for _ in range(4)]
            assert svc.drain(timeout=10.0)
            assert all(f.done() for f in futures)
            with pytest.raises(ServiceUnavailable):
                svc.submit(x)  # draining: no new admissions

    def test_health_shape(self):
        _, slot = _slot()
        with InferenceService(slot) as svc:
            h = svc.health()
        for key in ("state", "ready", "queue_depth", "queue_capacity",
                    "breaker", "service", "guard", "generation", "live_workers"):
            assert key in h


# ---------------------------------------------------------------------------
# Hot swap
# ---------------------------------------------------------------------------

class TestHotSwap:
    def test_swap_archive_serves_the_new_matrix(self, tmp_path):
        a1, slot = _slot(seed=20)
        a2 = random_adjacency_csr(40, density=0.3, seed=21)
        cbm2, _ = build_cbm(a2, alpha=0)
        path = tmp_path / "next.npz"
        save_cbm(path, cbm2)
        x = np.random.default_rng(8).random((40, 4)).astype(np.float32)
        with InferenceService(slot, workers=1) as svc:
            np.testing.assert_allclose(svc.submit(x).result(5.0), spmm(a1, x), rtol=1e-5)
            info = svc.swap_archive(path, warm_width=4)
            assert info["generation"] == 1
            y = svc.submit(x).result(5.0)
            np.testing.assert_allclose(y, spmm(a2, x), rtol=1e-5)
            assert svc.health()["generation"] == 1
            assert svc.stats.snapshot()["swaps"] == 1

    def test_corrupted_archive_is_rejected_and_old_slot_keeps_serving(self, tmp_path):
        a1, slot = _slot(seed=22)
        a2 = random_adjacency_csr(40, density=0.3, seed=23)
        cbm2, _ = build_cbm(a2, alpha=0)
        path = tmp_path / "bad.npz"
        save_cbm(path, cbm2)
        corrupt_archive(path, array="delta_data", mode="perturb", seed=0)
        x = np.random.default_rng(9).random((40, 4)).astype(np.float32)
        with InferenceService(slot, workers=1) as svc:
            with pytest.raises(IntegrityError):
                svc.swap_archive(path)
            # Old generation still serving, correctly.
            assert svc.health()["generation"] == 0
            np.testing.assert_allclose(svc.submit(x).result(5.0), spmm(a1, x), rtol=1e-5)

    def test_retire_drains_workspaces(self):
        a, slot = _slot(seed=24)
        x = np.random.default_rng(10).random((40, 4)).astype(np.float32)
        slot.prepare(width=4)
        plan = slot.cbm.plan()
        c = plan.execute(x)  # exercise the pool
        del c
        assert slot.retire() > 0
        # Slot still computes after a drain (pool refills on demand).
        np.testing.assert_allclose(slot.cbm.matmul(x), spmm(a, x), rtol=1e-5)


# ---------------------------------------------------------------------------
# Concurrent executor stress (satellite): one shared executor, many runs
# ---------------------------------------------------------------------------

@pytest.mark.chaos
class TestConcurrentExecutorContention:
    def _setup(self, n=48, seed=30, p=5):
        a = random_adjacency_csr(n, density=0.3, seed=seed)
        cbm, _ = build_cbm(a, alpha=2)
        x = np.random.default_rng(seed).random((n, p)).astype(np.float32)
        return a, cbm, x, spmm(a, x)

    def _run_concurrently(self, executor, cbm, x, n_threads, deadline=None):
        plan = cbm.plan()
        outcomes = []
        lock = threading.Lock()
        start = threading.Barrier(n_threads)

        def worker():
            c = plan.multiply(x)
            start.wait()
            try:
                executor.run_update(cbm.tree, c, None, branches=plan.branches,
                                    deadline=deadline)
                result = ("ok", c)
            except (ParallelError, WatchdogTimeout) as exc:
                result = (type(exc).__name__, c)
            with lock:
                outcomes.append(result)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert not any(t.is_alive() for t in threads), "a run hung"
        return outcomes

    def test_injected_kill_under_contention_restores_or_invalidates(self):
        a, cbm, x, expected = self._setup()
        # The pick counter is shared: exactly one branch replay across all
        # concurrent runs raises, so exactly one run fails.
        executor = ChaosExecutor(2, fail_on_branch=1)
        outcomes = self._run_concurrently(executor, cbm, x, n_threads=6)
        kinds = [k for k, _ in outcomes]
        assert kinds.count("ParallelError") == 1
        assert kinds.count("ok") == 5
        for kind, c in outcomes:
            if kind == "ok":
                np.testing.assert_allclose(c, expected, rtol=1e-4)
            else:  # invalidate contract: the buffer is poisoned, loudly
                assert np.isnan(c).all()

    def test_injected_stall_under_contention_trips_only_its_run(self):
        a, cbm, x, expected = self._setup(seed=31)
        executor = ChaosExecutor(
            2, stall_on_branch=1, stall_seconds=30.0,
            branch_timeout=0.15, on_failure="restore",
        )
        outcomes = self._run_concurrently(executor, cbm, x, n_threads=4)
        kinds = [k for k, _ in outcomes]
        assert kinds.count("WatchdogTimeout") == 1
        assert kinds.count("ok") == 3
        mult_only = cbm.plan().multiply(x)
        for kind, c in outcomes:
            if kind == "ok":
                np.testing.assert_allclose(c, expected, rtol=1e-4)
            else:  # restore contract: pre-update multiply-stage contents
                np.testing.assert_allclose(c, mult_only, rtol=1e-4)

    def test_deadline_cancels_whole_run(self):
        a, cbm, x, _ = self._setup(seed=32)
        executor = ChaosExecutor(2, stall_on_branch=0, stall_seconds=30.0)
        plan = cbm.plan()
        c = plan.multiply(x)
        t0 = time.monotonic()
        with pytest.raises(WatchdogTimeout, match="deadline"):
            executor.run_update(cbm.tree, c, None, branches=plan.branches,
                                deadline=time.monotonic() + 0.2)
        assert time.monotonic() - t0 < 5.0  # cancelled, not stalled out
        assert np.isnan(c).all()


# ---------------------------------------------------------------------------
# End-to-end mini soak (chaos job)
# ---------------------------------------------------------------------------

@pytest.mark.chaos
def test_mini_soak_end_to_end():
    from repro.graphs.generators import erdos_renyi_graph

    a = erdos_renyi_graph(250, 6.0, seed=13)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", FallbackWarning)
        report = run_soak(
            a, clients=4, requests_per_client=8, p=8, deadline_s=2.0,
            fail_rate=0.6, stall_rate=0.1, recovery_rounds=60, seed=5,
        )
    assert report["checks"]["zero_wrong_results"], report["violations"]
    assert report["checks"]["zero_hung_requests"], report["violations"]
    assert report["checks"]["overload_was_shed"], report["violations"]
    assert report["checks"]["tripped_to_degraded"], report["violations"]
    assert report["checks"]["recovered_to_fast"], report["violations"]
    assert report["ok"]
    # The report is the acceptance evidence: these keys must be present.
    for key in ("phases", "breaker_transitions", "chaos", "service", "guard"):
        assert key in report
