"""Unit tests for the timing harness."""

import pytest

from repro.bench.harness import BenchResult, compare, time_kernel
from repro.utils.timing import MeasuredTime


class TestTimeKernel:
    def test_collects_samples(self):
        r = time_kernel("noop", lambda: None, repeats=4, min_total=0.0)
        assert r.name == "noop"
        assert r.time.n >= 3
        assert r.mean_s >= 0.0

    def test_scalar_ops_carried(self):
        r = time_kernel("k", lambda: None, scalar_ops=123, repeats=3, min_total=0.0)
        assert r.scalar_ops == 123


class TestCompare:
    def test_speedup_direction(self):
        import time

        cmp_ = compare(
            "slow",
            lambda: time.sleep(0.004),
            "fast",
            lambda: None,
            repeats=3,
            min_total=0.0,
        )
        assert cmp_.speedup > 1.0

    def test_ops_ratio(self):
        cmp_ = compare(
            "b", lambda: None, "c", lambda: None,
            baseline_ops=100, candidate_ops=50, repeats=3, min_total=0.0,
        )
        assert cmp_.ops_ratio == 2.0

    def test_ops_ratio_none_when_missing(self):
        cmp_ = compare("b", lambda: None, "c", lambda: None, repeats=3, min_total=0.0)
        assert cmp_.ops_ratio is None

    def test_zero_candidate_ops(self):
        cmp_ = compare(
            "b", lambda: None, "c", lambda: None,
            baseline_ops=10, candidate_ops=0, repeats=3, min_total=0.0,
        )
        assert cmp_.ops_ratio == float("inf")


class TestBenchResult:
    def test_stats_passthrough(self):
        r = BenchResult("x", MeasuredTime(samples=[1.0, 3.0]))
        assert r.mean_s == 2.0
        assert r.std_s == pytest.approx(2.0**0.5)
