"""Unit tests for the CSR container."""

import numpy as np
import pytest

from repro.errors import FormatError, NotBinaryError, ShapeError
from repro.sparse.convert import from_dense
from repro.sparse.csr import CSRMatrix

from tests.conftest import random_binary_dense


def dense_fixture(seed=0):
    rng = np.random.default_rng(seed)
    d = (rng.random((8, 10)) < 0.4).astype(np.float32) * (1 + rng.random((8, 10)).astype(np.float32))
    return d


class TestFormatValidation:
    def test_valid_matrix_passes(self):
        from_dense(dense_fixture()).check_format()

    def test_wrong_indptr_length(self):
        with pytest.raises(FormatError):
            CSRMatrix([0, 1], [0], [1.0], (3, 3))

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(FormatError):
            CSRMatrix([1, 1], [0], [1.0], (1, 1))

    def test_indptr_must_end_at_nnz(self):
        with pytest.raises(FormatError):
            CSRMatrix([0, 2], [0], [1.0], (1, 2))

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(FormatError):
            CSRMatrix([0, 2, 1, 3], [0, 1, 0], [1.0, 1.0, 1.0], (3, 2))

    def test_column_out_of_range(self):
        with pytest.raises(FormatError):
            CSRMatrix([0, 1], [5], [1.0], (1, 2))

    def test_unsorted_columns_rejected(self):
        with pytest.raises(FormatError):
            CSRMatrix([0, 2], [1, 0], [1.0, 1.0], (1, 2))

    def test_duplicate_columns_rejected(self):
        with pytest.raises(FormatError):
            CSRMatrix([0, 2], [1, 1], [1.0, 1.0], (1, 2))

    def test_indices_data_length_mismatch(self):
        with pytest.raises(FormatError):
            CSRMatrix([0, 1], [0], [1.0, 2.0], (1, 1))

    def test_boundary_allows_column_reset_between_rows(self):
        # Row 0 ends at column 3, row 1 starts at column 0: legal.
        CSRMatrix([0, 2, 4], [1, 3, 0, 2], [1, 1, 1, 1], (2, 4)).check_format()


class TestAccessors:
    def test_row_view(self):
        d = dense_fixture()
        a = from_dense(d)
        for i in range(d.shape[0]):
            assert np.array_equal(a.row(i), np.flatnonzero(d[i]))

    def test_row_nnz(self):
        d = dense_fixture()
        a = from_dense(d)
        assert np.array_equal(a.row_nnz(), (d != 0).sum(axis=1))

    def test_is_binary(self):
        assert from_dense(random_binary_dense(6, 6, 0.4, 1)).is_binary()
        assert not from_dense(dense_fixture()).is_binary()

    def test_require_binary_raises(self):
        with pytest.raises(NotBinaryError):
            from_dense(dense_fixture()).require_binary()


class TestConversionsAndTranspose:
    def test_toarray_roundtrip(self):
        d = dense_fixture(3)
        assert np.allclose(from_dense(d).toarray(), d)

    def test_tocoo_roundtrip(self):
        d = dense_fixture(4)
        assert np.allclose(from_dense(d).tocoo().toarray(), d)

    def test_tocsc_roundtrip(self):
        d = dense_fixture(5)
        assert np.allclose(from_dense(d).tocsc().toarray(), d)

    def test_transpose(self):
        d = dense_fixture(6)
        assert np.allclose(from_dense(d).transpose().toarray(), d.T)

    def test_transpose_twice_is_identity(self):
        d = dense_fixture(7)
        a = from_dense(d)
        assert np.allclose(a.transpose().transpose().toarray(), d)

    def test_copy_is_independent(self):
        a = from_dense(dense_fixture(8))
        b = a.copy()
        b.data[:] = 0
        assert a.data.sum() > 0


class TestScaling:
    def test_scale_columns(self):
        d = dense_fixture(9)
        dvec = np.arange(1, d.shape[1] + 1, dtype=np.float64)
        assert np.allclose(from_dense(d).scale_columns(dvec).toarray(), d * dvec, rtol=1e-6)

    def test_scale_rows(self):
        d = dense_fixture(10)
        dvec = np.arange(1, d.shape[0] + 1, dtype=np.float64)
        assert np.allclose(
            from_dense(d).scale_rows(dvec).toarray(), d * dvec[:, None], rtol=1e-6
        )

    def test_scale_columns_wrong_length(self):
        with pytest.raises(ShapeError):
            from_dense(dense_fixture()).scale_columns(np.ones(3))

    def test_scale_rows_wrong_length(self):
        with pytest.raises(ShapeError):
            from_dense(dense_fixture()).scale_rows(np.ones(3))


class TestMemoryAccounting:
    def test_paper_convention(self):
        """S_CSR = 8 nnz + 4 (n+1) reproduces Table I for Cora's numbers."""
        # Cora: n=2708, nnz=10556 -> 0.09 MiB.
        n, nnz = 2708, 10556
        indptr = np.zeros(n + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(np.bincount(np.zeros(nnz, dtype=np.int64), minlength=n))
        a = CSRMatrix(indptr, np.arange(nnz) % n, np.ones(nnz), (n, n), check=False)
        mib = a.memory_bytes() / 2**20
        assert abs(mib - 0.09) < 0.005

    def test_matmul_operator(self):
        d = dense_fixture(11)
        a = from_dense(d)
        x = np.random.default_rng(1).random((d.shape[1], 4)).astype(np.float32)
        assert np.allclose(a @ x, d @ x, rtol=1e-5)
        v = x[:, 0]
        assert np.allclose(a @ v, d @ v, rtol=1e-5)
