"""Unit tests for the STAF (Single Tree Adjacency Forest) comparator."""

import numpy as np
import pytest

from repro.errors import NotBinaryError, ShapeError
from repro.sparse.convert import from_dense
from repro.staf import build_staf

from tests.conftest import random_adjacency_csr, random_binary_csr


class TestConstruction:
    def test_rejects_non_binary(self):
        a = from_dense(np.array([[0, 2.0], [1.0, 0]], dtype=np.float32))
        with pytest.raises(NotBinaryError):
            build_staf(a)

    def test_node_count_bounded_by_nnz(self):
        """The trie never stores more nodes than nnz (suffix sharing only
        removes nodes)."""
        for seed in range(4):
            a = random_binary_csr(30, density=0.3, seed=seed)
            st = build_staf(a)
            assert st.num_nodes <= a.nnz

    def test_identical_rows_share_full_path(self):
        d = np.zeros((3, 6), dtype=np.float32)
        d[0, [1, 3, 5]] = 1
        d[1, [1, 3, 5]] = 1  # identical to row 0
        d[2, [0]] = 1
        st = build_staf(from_dense(d))
        assert st.num_nodes == 4  # 3 shared + 1
        assert st.terminal[0] == st.terminal[1]

    def test_shared_suffix_partial_sharing(self):
        d = np.zeros((2, 6), dtype=np.float32)
        d[0, [1, 4, 5]] = 1
        d[1, [2, 4, 5]] = 1  # shares suffix (4, 5)
        st = build_staf(from_dense(d))
        assert st.num_nodes == 4  # 5,4 shared; 1 and 2 separate

    def test_empty_rows(self):
        d = np.zeros((3, 3), dtype=np.float32)
        d[1, 2] = 1
        st = build_staf(from_dense(d))
        assert st.terminal[0] == -1 and st.terminal[2] == -1
        assert st.num_nodes == 1

    def test_empty_matrix(self):
        st = build_staf(from_dense(np.zeros((3, 3), dtype=np.float32)))
        assert st.num_nodes == 0
        out = st.matmul(np.ones((3, 2), dtype=np.float32))
        assert np.all(out == 0)


class TestMultiplication:
    @pytest.mark.parametrize("seed", range(5))
    def test_matmul_matches_dense(self, seed):
        a = random_binary_csr(25, density=0.35, seed=seed)
        st = build_staf(a)
        x = np.random.default_rng(seed).random((25, 6)).astype(np.float32)
        assert np.allclose(st.matmul(x), a.toarray() @ x, rtol=1e-4, atol=1e-5)

    def test_matvec(self):
        a = random_adjacency_csr(20, seed=6)
        st = build_staf(a)
        v = np.random.default_rng(0).random(20).astype(np.float32)
        assert np.allclose(st.matvec(v), a.toarray() @ v, rtol=1e-4)

    def test_operator(self):
        a = random_adjacency_csr(15, seed=7)
        st = build_staf(a)
        x = np.ones((15, 2), dtype=np.float32)
        assert np.allclose(st @ x, a.toarray() @ x, rtol=1e-5)
        assert np.allclose(st @ x[:, 0], a.toarray() @ x[:, 0], rtol=1e-5)

    def test_shape_mismatch(self):
        st = build_staf(random_adjacency_csr(10, seed=8))
        with pytest.raises(ShapeError):
            st.matmul(np.ones((3, 2), dtype=np.float32))


class TestAccounting:
    def test_scalar_ops(self):
        a = random_adjacency_csr(20, seed=9)
        st = build_staf(a)
        assert st.scalar_ops(10) == st.num_nodes * 10
        with pytest.raises(ValueError):
            st.scalar_ops(-1)

    def test_compression_on_identical_rows(self):
        """Duplicated rows compress almost 2x in STAF."""
        rng = np.random.default_rng(1)
        base = (rng.random((1, 200)) < 0.2).astype(np.float32)
        d = np.repeat(base, 40, axis=0)
        st = build_staf(from_dense(d))
        assert st.compression_ratio() > 1.5

    def test_cbm_beats_staf_on_clustered_graph(self, clustered_adjacency):
        """The paper's Section VII claim: whole-row deltas beat
        suffix-only sharing on clustered graphs."""
        from repro.core.builder import build_cbm

        st = build_staf(clustered_adjacency)
        cbm, rep = build_cbm(clustered_adjacency, alpha=0)
        assert rep.compression_ratio > st.compression_ratio()
