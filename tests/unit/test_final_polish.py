"""Final polish tests: idempotence, glyph cycling, renderer edges."""

import numpy as np
import pytest

from repro.bench.plots import ascii_chart
from repro.core.builder import build_cbm
from repro.core.rebalance import cut_depth, split_branches
from repro.parallel.trace import render_gantt, traced_schedule

from tests.conftest import random_adjacency_csr


class TestRebalanceIdempotence:
    def test_cut_depth_idempotent(self):
        a = random_adjacency_csr(50, density=0.35, seed=0)
        cbm, _ = build_cbm(a, alpha=0)
        once = cut_depth(cbm, 2)
        twice = cut_depth(once, 2)
        assert np.array_equal(once.tree.parent, twice.tree.parent)

    def test_split_branches_idempotent(self):
        a = random_adjacency_csr(50, density=0.35, seed=1)
        cbm, _ = build_cbm(a, alpha=0)
        once = split_branches(cbm, 6)
        twice = split_branches(once, 6)
        assert np.array_equal(once.tree.parent, twice.tree.parent)

    def test_composed_rebalance(self):
        """Depth cut after branch split keeps both bounds and correctness."""
        a = random_adjacency_csr(60, density=0.35, seed=2)
        cbm, _ = build_cbm(a, alpha=0)
        out = cut_depth(split_branches(cbm, 8), 3)
        assert out.tree.depth().max(initial=0) <= 3
        assert max((len(b) for b in out.tree.branches()), default=0) <= 8
        x = np.random.default_rng(0).random((60, 4)).astype(np.float32)
        assert np.allclose(out.matmul(x), a.toarray() @ x, rtol=1e-4)


class TestChartGlyphs:
    def test_many_series_cycle_glyphs(self):
        series = {f"s{i}": [float(i), float(i + 1)] for i in range(10)}
        text = ascii_chart([0, 1], series)
        assert "legend" in text
        # ten series render without raising; glyphs wrap around
        assert "s9" in text

    def test_negative_values_supported(self):
        text = ascii_chart([0, 1, 2], {"a": [-2.0, 0.0, 2.0]})
        assert "-2" in text


class TestGanttEdges:
    def test_width_one(self):
        trace = traced_schedule([1.0, 1.0], 1)
        text = render_gantt(trace, width=1)
        assert "T00" in text

    def test_invalid_width(self):
        trace = traced_schedule([1.0], 1)
        with pytest.raises(ValueError):
            render_gantt(trace, width=0)

    def test_more_threads_than_tasks(self):
        trace = traced_schedule([2.0], 8)
        assert trace.threads == 8
        assert len(trace.events) == 1
        assert trace.utilisation < 1.0
