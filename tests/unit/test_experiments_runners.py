"""Unit tests for the experiment runners' measured paths and options."""

import pytest

from repro.bench.experiments import (
    _scales,
    run_figure2,
    run_table2,
    run_table3,
    run_table4,
)
from repro.graphs.datasets import load_dataset, paper_stats


class TestScales:
    def test_scales_reflect_paper_ratios(self):
        a = load_dataset("Cora")
        s_nnz, s_rows = _scales("Cora", a)
        ps = paper_stats("Cora")
        assert s_nnz == pytest.approx(ps.edges / a.nnz)
        assert s_rows == pytest.approx(ps.nodes / a.shape[0])


class TestMeasuredPaths:
    def test_figure2_with_wall_clock(self):
        rows, _ = run_figure2(datasets=("Cora",), alphas=(0,), p=32, measure_wall=True)
        assert len(rows) == 1
        assert float(rows[0]["WallSeq"]) > 0
        assert float(rows[0]["OpsRatio"]) > 0

    def test_table3_with_wall_clock(self):
        rows, _ = run_table3(
            datasets=("Cora",), p=32, variants=("A",), measure_wall=True
        )
        assert float(rows[0]["WallSeq"]) > 0

    def test_table4_with_wall_clock(self):
        rows, _ = run_table4(datasets=("Cora",), p=32, measure_wall=True)
        assert float(rows[0]["WallSeq"]) > 0

    def test_table2_custom_alphas(self):
        rows, _ = run_table2(datasets=("Cora",), alphas=(1, 2, 4))
        assert [r["Alpha"] for r in rows] == [1, 2, 4]
        # Non-paper alphas have no published ratio to show.
        assert all(r["Ratio(paper)"] == "-" for r in rows)


class TestRowShapes:
    def test_figure2_ops_ratio_close_to_wall_free_mode(self):
        """measure_wall=False must still report the ops ratio."""
        rows, _ = run_figure2(datasets=("Cora",), alphas=(0,), p=32, measure_wall=False)
        assert rows[0]["WallSeq"] == "-"
        assert float(rows[0]["OpsRatio"]) > 0

    def test_table3_variant_labels(self):
        rows, _ = run_table3(
            datasets=("Cora",), p=32, variants=("A", "AD", "DAD"), measure_wall=False
        )
        assert [r["Kernel"] for r in rows] == ["AX", "ADX", "DADX"]
