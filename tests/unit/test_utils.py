"""Unit tests for validation, RNG, timing, and formatting utilities."""

import math

import numpy as np
import pytest

from repro.errors import DTypeError, ShapeError
from repro.utils.fmt import format_table, human_bytes, human_time
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timing import MeasuredTime, Timer, measure
from repro.utils.validation import (
    check_axis_index,
    check_dense,
    check_nonnegative,
    check_positive,
    check_square,
    ensure_array,
)


class TestValidation:
    def test_ensure_array_accepts_list(self):
        assert ensure_array([1, 2, 3]).tolist() == [1, 2, 3]

    def test_ensure_array_rejects_object_dtype(self):
        with pytest.raises(DTypeError):
            ensure_array(np.array([object()]))

    def test_check_dense_rejects_strings(self):
        with pytest.raises(DTypeError):
            check_dense(np.array(["a", "b"]))

    def test_check_dense_ndim(self):
        with pytest.raises(ShapeError):
            check_dense(np.ones(3), ndim=2)

    def test_check_square(self):
        check_square((3, 3))
        with pytest.raises(ShapeError):
            check_square((3, 4))

    def test_check_positive(self):
        check_positive(1, "x")
        with pytest.raises(ValueError):
            check_positive(0, "x")

    def test_check_nonnegative(self):
        check_nonnegative(0, "x")
        with pytest.raises(ValueError):
            check_nonnegative(-1, "x")

    def test_check_axis_index(self):
        check_axis_index(0, 3)
        with pytest.raises(IndexError):
            check_axis_index(3, 3)
        with pytest.raises(IndexError):
            check_axis_index(-1, 3)


class TestRng:
    def test_int_seed_deterministic(self):
        assert as_rng(42).random() == as_rng(42).random()

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_spawn_independent(self):
        kids = spawn_rngs(0, 3)
        vals = [k.random() for k in kids]
        assert len(set(vals)) == 3

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn_rngs(1, 2)]
        b = [g.random() for g in spawn_rngs(1, 2)]
        assert a == b

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestTiming:
    def test_timer_context(self):
        with Timer() as t:
            pass
        assert t.elapsed >= 0

    def test_measure_collects_samples(self):
        m = measure(lambda: None, warmup=0, min_repeats=3, max_repeats=5, min_total=0.0)
        assert 3 <= m.n <= 5
        assert m.mean >= 0
        assert m.best <= m.mean or math.isclose(m.best, m.mean)

    def test_measure_invalid_repeats(self):
        with pytest.raises(ValueError):
            measure(lambda: None, min_repeats=5, max_repeats=2)

    def test_measured_time_stats(self):
        m = MeasuredTime(samples=[1.0, 2.0, 3.0])
        assert m.mean == 2.0
        assert m.best == 1.0
        assert m.std == pytest.approx(1.0)

    def test_empty_measured_time(self):
        m = MeasuredTime()
        assert math.isnan(m.mean)
        assert m.std == 0.0


class TestFmt:
    def test_human_bytes_units(self):
        assert human_bytes(512) == "512 B"
        assert human_bytes(2048) == "2.00 KiB"
        assert human_bytes(3 * 2**20) == "3.00 MiB"

    def test_human_bytes_negative(self):
        with pytest.raises(ValueError):
            human_bytes(-1)

    def test_human_time_units(self):
        assert human_time(2.0).endswith("s")
        assert "ms" in human_time(5e-3)
        assert "us" in human_time(5e-6)
        assert "ns" in human_time(5e-9)

    def test_human_time_nan(self):
        assert human_time(float("nan")) == "nan"

    def test_format_table_alignment(self):
        txt = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = txt.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]

    def test_format_table_title(self):
        txt = format_table(["x"], [[1]], title="T")
        assert txt.splitlines()[0] == "T"

    def test_format_table_bad_row(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])
