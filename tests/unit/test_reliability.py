"""Reliability suite: every injected fault ends in a correct fallback or
a typed error — never a silently wrong product.

Grown out of the original failure-injection tests (corrupted structures
fail loudly), this suite is driven by the deterministic chaos harness in
:mod:`repro.reliability.chaos`: corrupted archives, killed/stalled
update-stage workers, NaN feature matrices, corrupted trees/deltas, and
diverging training runs.  Chaos-driven classes carry the ``chaos``
marker so CI can run them as a dedicated job
(``pytest -m chaos``).
"""

import warnings

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.core.cbm import CBMMatrix
from repro.core.io import load_cbm, save_cbm
from repro.core.tree import VIRTUAL, CompressionTree
from repro.core.verify import verify_cbm
from repro.errors import (
    CheckpointError,
    CompressionError,
    ConvergenceError,
    DatasetError,
    FormatError,
    IntegrityError,
    NumericalError,
    ParallelError,
    ReproError,
    TreeError,
    WatchdogTimeout,
)
from repro.parallel.executor import ThreadedUpdateExecutor, parallel_matmul
from repro.reliability import FallbackWarning, GuardedAdjacency, GuardedKernel
from repro.reliability.chaos import (
    ChaosExecutor,
    ChaosFault,
    corrupt_archive,
    corrupt_deltas,
    corrupt_tree_parents,
    inject_nan,
    read_archive_meta,
)
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import spmm

from tests.conftest import random_adjacency_csr


def _guarded_setup(n=30, alpha=0, seed=5, p=6):
    """(adjacency, healthy CBM, operand, CSR reference product)."""
    a = random_adjacency_csr(n, density=0.25, seed=seed)
    cbm, _ = build_cbm(a, alpha=alpha)
    x = np.random.default_rng(seed).random((n, p)).astype(np.float32)
    return a, cbm, x, spmm(a, x)


# ---------------------------------------------------------------------------
# Migrated failure-injection coverage: corrupted structures fail loudly.
# ---------------------------------------------------------------------------


class TestCorruptCSR:
    def test_truncated_indices(self):
        a = random_adjacency_csr(10, seed=0)
        with pytest.raises(FormatError):
            CSRMatrix(a.indptr, a.indices[:-1], a.data, a.shape)

    def test_indptr_overflow(self):
        a = random_adjacency_csr(10, seed=1)
        bad = a.indptr.copy()
        bad[-1] += 5
        with pytest.raises(FormatError):
            CSRMatrix(bad, a.indices, a.data, a.shape)

    def test_shuffled_columns_detected(self):
        a = random_adjacency_csr(10, seed=2)
        if a.row_nnz().max() < 2:
            pytest.skip("need a row with 2+ entries")
        bad = a.indices.copy()
        # Reverse the first multi-entry row's columns.
        x = int(np.argmax(a.row_nnz() >= 2))
        lo, hi = a.indptr[x], a.indptr[x + 1]
        bad[lo:hi] = bad[lo:hi][::-1]
        with pytest.raises(FormatError):
            CSRMatrix(a.indptr, bad, a.data, a.shape)


class TestCorruptTree:
    def test_two_cycle(self):
        with pytest.raises(TreeError):
            CompressionTree(parent=np.array([1, 0]))

    def test_mixed_forest_with_cycle(self):
        with pytest.raises(TreeError):
            CompressionTree(parent=np.array([VIRTUAL, 2, 1, 0]))

    def test_tree_delta_size_mismatch(self):
        a = random_adjacency_csr(10, seed=3)
        cbm, _ = build_cbm(a, alpha=0)
        small_tree = CompressionTree(parent=np.full(5, VIRTUAL))
        with pytest.raises(ReproError):
            CBMMatrix(tree=small_tree, delta=cbm.delta)

    @pytest.mark.chaos
    @pytest.mark.parametrize("mode", ["cycle", "out_of_range"])
    def test_chaos_corrupted_parents_rejected(self, mode):
        a = random_adjacency_csr(20, seed=9)
        cbm, _ = build_cbm(a, alpha=0)
        bad = corrupt_tree_parents(cbm.tree.parent, mode=mode, seed=3)
        with pytest.raises(TreeError):
            CompressionTree(parent=bad)


class TestCorruptDeltas:
    def test_wrong_sign_caught_by_verify(self):
        a = random_adjacency_csr(20, seed=4)
        cbm, _ = build_cbm(a, alpha=0)
        cbm.delta.data[:] = np.abs(cbm.delta.data)  # erase all negatives
        report = verify_cbm(cbm, a, runs=2, columns=8)
        # Either numerically wrong or structurally unreconstructable.
        if cbm.tree.num_tree_edges > 0 and (cbm.delta.data < 0).sum() == 0:
            assert not report.passed or cbm.num_deltas == a.nnz

    def test_reconstruction_rejects_orphan_negative(self):
        from repro.core.deltas import reconstruct_rows
        from repro.sparse.convert import from_dense

        delta = from_dense(np.array([[-1.0, 0.0], [0.0, 1.0]], dtype=np.float32))
        tree = CompressionTree(parent=np.array([VIRTUAL, VIRTUAL]), weight=np.array([1, 1]))
        with pytest.raises(CompressionError):
            reconstruct_rows(delta, tree)


class TestScheduleGuards:
    def test_nan_cost_rejected(self):
        from repro.parallel.schedule import simulate_dynamic_schedule

        with pytest.raises(ParallelError):
            simulate_dynamic_schedule(np.array([1.0, -2.0]), 2)


# ---------------------------------------------------------------------------
# Error rendering (satellite): DatasetError must not repr-quote its message.
# ---------------------------------------------------------------------------


class TestErrorRendering:
    def test_dataset_error_renders_verbatim(self):
        msg = "unknown dataset 'nope'; available: Cora, COLLAB"
        err = DatasetError(msg)
        assert str(err) == msg  # KeyError.__str__ would add quotes
        assert isinstance(err, KeyError)

    def test_registry_miss_message_readable(self):
        from repro.graphs.datasets import load_dataset

        with pytest.raises(DatasetError) as exc_info:
            load_dataset("definitely-not-a-dataset")
        rendered = str(exc_info.value)
        assert not rendered.startswith(("'", '"'))


# ---------------------------------------------------------------------------
# Executor: watchdog, cancellation, restore-or-invalidate, pill capping.
# ---------------------------------------------------------------------------


@pytest.mark.chaos
class TestExecutorFailures:
    def _plan_and_buffer(self, n=40, seed=5, p=4):
        a = random_adjacency_csr(n, density=0.3, seed=seed)
        cbm, _ = build_cbm(a, alpha=0)
        if cbm.tree.num_tree_edges == 0:
            pytest.skip("no update work on this graph")
        plan = cbm.plan()
        x = np.random.default_rng(seed).random((n, p)).astype(np.float32)
        return a, cbm, plan, x, plan.multiply(x)

    def test_worker_exception_propagates(self):
        """A failure inside a worker thread surfaces as ParallelError."""
        a = random_adjacency_csr(20, seed=5)
        cbm, _ = build_cbm(a, alpha=0)
        if cbm.tree.num_tree_edges == 0:
            pytest.skip("no update work on this graph")
        c = np.zeros((5, 3), dtype=np.float32)  # too few rows -> IndexError
        with pytest.raises(ParallelError):
            ThreadedUpdateExecutor(2).run_update(cbm.tree, c)

    def test_worker_death_invalidates_buffer(self):
        _, cbm, plan, _, c = self._plan_and_buffer()
        ex = ChaosExecutor(2, fail_on_branch=0)
        with pytest.raises(ParallelError) as exc_info:
            ex.run_update(cbm.tree, c, branches=plan.branches)
        assert isinstance(exc_info.value.__cause__, ChaosFault)
        assert np.isnan(c).all(), "a failed run must never leave a half-updated buffer"

    def test_worker_death_restores_buffer(self):
        _, cbm, plan, _, c = self._plan_and_buffer()
        snapshot = c.copy()
        ex = ChaosExecutor(2, fail_on_branch=0, on_failure="restore")
        with pytest.raises(ParallelError):
            ex.run_update(cbm.tree, c, branches=plan.branches)
        np.testing.assert_array_equal(c, snapshot)

    def test_stalled_worker_trips_watchdog(self):
        _, cbm, plan, _, c = self._plan_and_buffer()
        ex = ChaosExecutor(
            2, stall_on_branch=0, stall_seconds=30.0, branch_timeout=0.05
        )
        with pytest.raises(WatchdogTimeout):
            ex.run_update(cbm.tree, c, branches=plan.branches)
        assert np.isnan(c).all()

    def test_watchdog_timeout_is_parallel_error(self):
        assert issubclass(WatchdogTimeout, ParallelError)

    def test_healthy_run_with_watchdog_enabled(self):
        a, cbm, plan, x, c = self._plan_and_buffer()
        ThreadedUpdateExecutor(2, branch_timeout=30.0).run_update(
            cbm.tree, c, branches=plan.branches
        )
        np.testing.assert_allclose(c, spmm(a, x), rtol=1e-4, atol=1e-4)

    def test_pool_capped_when_threads_exceed_branches(self):
        """threads >> branches: exactly one pill per started worker, and the
        oversized pool still produces the correct product."""
        a, cbm, plan, x, c = self._plan_and_buffer()
        n_branches = len(plan.branches)
        ThreadedUpdateExecutor(n_branches + 61).run_update(
            cbm.tree, c, branches=plan.branches
        )
        np.testing.assert_allclose(c, spmm(a, x), rtol=1e-4, atol=1e-4)

    def test_parallel_matmul_forwards_watchdog_options(self):
        a = random_adjacency_csr(30, density=0.3, seed=6)
        cbm, _ = build_cbm(a, alpha=0)
        x = np.random.default_rng(6).random((30, 5)).astype(np.float32)
        c = parallel_matmul(cbm, x, threads=2, branch_timeout=30.0)
        np.testing.assert_allclose(c, spmm(a, x), rtol=1e-4, atol=1e-4)


# ---------------------------------------------------------------------------
# Archive integrity: checksummed save/load.
# ---------------------------------------------------------------------------


@pytest.mark.chaos
class TestArchiveIntegrity:
    def _saved(self, tmp_path, variant_kwargs=None):
        a = random_adjacency_csr(25, density=0.25, seed=11)
        cbm, _ = build_cbm(a, alpha=2, **(variant_kwargs or {}))
        path = tmp_path / "m.npz"
        save_cbm(path, cbm)
        return a, cbm, path

    def test_round_trip_is_checksummed(self, tmp_path):
        _, cbm, path = self._saved(tmp_path)
        meta = read_archive_meta(path)
        assert meta["version"] == 2
        assert set(meta["checksums"]) >= {"delta_data", "tree_parent"}
        loaded = load_cbm(path)
        np.testing.assert_allclose(loaded.todense(), cbm.todense())

    @pytest.mark.parametrize(
        "array", ["delta_data", "delta_indices", "tree_parent", "tree_weight"]
    )
    def test_perturbed_payload_raises_integrity_error(self, tmp_path, array):
        _, _, path = self._saved(tmp_path)
        corrupt_archive(path, array=array, mode="perturb", seed=1)
        with pytest.raises(IntegrityError):
            load_cbm(path)

    def test_zeroed_payload_raises_integrity_error(self, tmp_path):
        _, _, path = self._saved(tmp_path)
        corrupt_archive(path, array="delta_data", mode="zero")
        with pytest.raises(IntegrityError):
            load_cbm(path)

    def test_dropped_payload_raises_integrity_error(self, tmp_path):
        _, _, path = self._saved(tmp_path)
        corrupt_archive(path, array="tree_weight", mode="drop")
        with pytest.raises(IntegrityError):
            load_cbm(path)

    def test_integrity_error_is_format_error(self):
        assert issubclass(IntegrityError, FormatError)

    def test_version1_archive_without_checksums_still_loads(self, tmp_path):
        import json

        _, cbm, path = self._saved(tmp_path)
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        meta = json.loads(bytes(arrays.pop("meta")).decode("utf-8"))
        meta["version"] = 1
        del meta["checksums"]
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        loaded = load_cbm(path)
        np.testing.assert_allclose(loaded.todense(), cbm.todense())


# ---------------------------------------------------------------------------
# GuardedKernel: validation + CSR fallback.
# ---------------------------------------------------------------------------


@pytest.mark.chaos
class TestGuardedKernel:
    def test_healthy_path_no_fallback(self):
        a, cbm, x, ref = _guarded_setup()
        guard = GuardedKernel(cbm, source=a)
        np.testing.assert_allclose(guard.matmul(x), ref, rtol=1e-4, atol=1e-4)
        assert guard.stats.calls == 1
        assert guard.stats.fallbacks == 0

    def test_nan_input_raises_typed_error(self):
        a, cbm, x, _ = _guarded_setup()
        guard = GuardedKernel(cbm, source=a)
        with pytest.raises(NumericalError):
            guard.matmul(inject_nan(x, seed=2))
        assert guard.stats.input_rejections == 1
        assert guard.stats.fallbacks == 0  # garbage in is not recoverable

    def test_corrupt_deltas_fall_back_to_csr(self):
        a, cbm, x, ref = _guarded_setup()
        corrupt_deltas(cbm, mode="nan", seed=1)
        guard = GuardedKernel(cbm, source=a)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            c = guard.matmul(x)
        np.testing.assert_allclose(c, ref, rtol=1e-4, atol=1e-4)
        assert guard.stats.fallbacks == 1
        assert guard.stats.reasons == {"NumericalError": 1}
        assert any(issubclass(w.category, FallbackWarning) for w in caught)

    def test_strict_mode_raises_instead_of_falling_back(self):
        a, cbm, x, _ = _guarded_setup()
        corrupt_deltas(cbm, mode="nan", seed=1)
        guard = GuardedKernel(cbm, source=a, strict=True)
        with pytest.raises(NumericalError):
            guard.matmul(x)
        assert guard.stats.fallbacks == 0

    def test_worker_death_falls_back_to_reference(self, monkeypatch):
        import repro.parallel.executor as executor_mod

        a, cbm, x, ref = _guarded_setup(n=40)
        if not cbm.plan().branches:
            pytest.skip("no branches on this graph")

        def chaos_executor(threads, **kwargs):
            return ChaosExecutor(threads, fail_on_branch=0, **kwargs)

        monkeypatch.setattr(executor_mod, "ThreadedUpdateExecutor", chaos_executor)
        guard = GuardedKernel(cbm, source=a, threads=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", FallbackWarning)
            c = guard.matmul(x)
        np.testing.assert_allclose(c, ref, rtol=1e-4, atol=1e-4)
        assert guard.stats.fallbacks == 1
        assert "ParallelError" in guard.stats.reasons

    def test_stalled_worker_falls_back_via_watchdog(self, monkeypatch):
        import repro.parallel.executor as executor_mod

        a, cbm, x, ref = _guarded_setup(n=40)
        if not cbm.plan().branches:
            pytest.skip("no branches on this graph")

        def chaos_executor(threads, **kwargs):
            kwargs.setdefault("branch_timeout", 0.05)
            return ChaosExecutor(
                threads, stall_on_branch=0, stall_seconds=30.0, **kwargs
            )

        monkeypatch.setattr(executor_mod, "ThreadedUpdateExecutor", chaos_executor)
        guard = GuardedKernel(cbm, source=a, threads=2, branch_timeout=0.05)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", FallbackWarning)
            c = guard.matmul(x)
        np.testing.assert_allclose(c, ref, rtol=1e-4, atol=1e-4)
        assert guard.stats.reasons.get("WatchdogTimeout") == 1

    def test_guarded_matvec_falls_back(self):
        a, cbm, _, _ = _guarded_setup()
        v = np.random.default_rng(3).random(cbm.shape[1]).astype(np.float32)
        ref = spmm(a, v[:, None])[:, 0]
        corrupt_deltas(cbm, mode="nan", seed=2)
        guard = GuardedKernel(cbm, source=a)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", FallbackWarning)
            u = guard.matvec(v)
        np.testing.assert_allclose(u, ref, rtol=1e-4, atol=1e-4)
        assert guard.stats.fallbacks == 1

    def test_no_source_reraises_when_unrecoverable(self):
        _, cbm, x, _ = _guarded_setup()
        corrupt_deltas(cbm, mode="nan", seed=1)
        guard = GuardedKernel(cbm)  # no CSR reference available
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", FallbackWarning)
            with pytest.raises(NumericalError):
                guard.matmul(x)

    def test_guarded_adjacency_matches_csr_operator(self):
        from repro.gnn.adjacency import CSRAdjacency
        from repro.gnn.gcn import two_layer_gcn_inference

        a = random_adjacency_csr(30, density=0.25, seed=8)
        rng = np.random.default_rng(8)
        x = rng.random((30, 6)).astype(np.float32)
        w0 = rng.random((6, 5)).astype(np.float32)
        w1 = rng.random((5, 3)).astype(np.float32)
        guarded = GuardedAdjacency.from_graph(a, alpha=2)
        baseline = CSRAdjacency.from_graph(a)
        np.testing.assert_allclose(
            two_layer_gcn_inference(guarded, x, w0, w1),
            two_layer_gcn_inference(baseline, x, w0, w1),
            rtol=1e-3,
            atol=1e-3,
        )
        assert guarded.guard.stats.fallbacks == 0

    def test_guarded_adjacency_survives_corruption(self):
        from repro.gnn.adjacency import CSRAdjacency
        from repro.gnn.gcn import two_layer_gcn_inference

        a = random_adjacency_csr(30, density=0.25, seed=8)
        rng = np.random.default_rng(8)
        x = rng.random((30, 6)).astype(np.float32)
        w0 = rng.random((6, 5)).astype(np.float32)
        w1 = rng.random((5, 3)).astype(np.float32)
        guarded = GuardedAdjacency.from_graph(a, alpha=2)
        corrupt_deltas(guarded.guard.cbm, mode="nan", seed=4)
        baseline = CSRAdjacency.from_graph(a)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", FallbackWarning)
            z = two_layer_gcn_inference(guarded, x, w0, w1)
        np.testing.assert_allclose(
            z, two_layer_gcn_inference(baseline, x, w0, w1), rtol=1e-3, atol=1e-3
        )
        assert guarded.guard.stats.fallbacks >= 1


# ---------------------------------------------------------------------------
# Training reliability: divergence detection + checkpoint/resume.
# ---------------------------------------------------------------------------


@pytest.mark.chaos
class TestTrainingReliability:
    def _setup(self, n=30, f=6, classes=3, seed=1):
        from repro.gnn.adjacency import CSRAdjacency
        from repro.gnn.gcn import GCN

        a = random_adjacency_csr(n, density=0.25, seed=seed)
        rng = np.random.default_rng(seed)
        x = rng.random((n, f)).astype(np.float32)
        labels = rng.integers(0, classes, n)
        mask = np.ones(n, dtype=bool)
        adj = CSRAdjacency.from_graph(a)

        def fresh():
            return GCN([f, 8, classes], seed=7, requires_grad=True)

        return adj, x, labels, mask, fresh

    def test_divergence_raises_convergence_error(self):
        from repro.gnn.train import train_gcn

        adj, x, labels, mask, fresh = self._setup()
        model = fresh()
        with np.errstate(all="ignore"), pytest.raises(ConvergenceError) as exc_info:
            train_gcn(
                model, adj, x, labels, train_mask=mask, epochs=10, lr=float("inf")
            )
        # Blows up on the very first step: no healthy state to roll back to.
        assert exc_info.value.last_good is None

    def test_nan_features_diverge_with_typed_error(self):
        from repro.gnn.train import train_gcn

        adj, x, labels, mask, fresh = self._setup()
        with pytest.raises(ConvergenceError):
            train_gcn(
                fresh(), adj, inject_nan(x, seed=5), labels,
                train_mask=mask, epochs=3, lr=0.05,
            )

    def test_checkpoint_resume_reproduces_run(self, tmp_path):
        from repro.gnn.train import train_gcn

        adj, x, labels, mask, fresh = self._setup()
        full = train_gcn(fresh(), adj, x, labels, train_mask=mask, epochs=10, lr=0.05)
        ck_path = tmp_path / "train.ck.npz"
        train_gcn(
            fresh(), adj, x, labels, train_mask=mask, epochs=5, lr=0.05,
            checkpoint_every=5, checkpoint_path=ck_path,
        )
        resumed = train_gcn(
            fresh(), adj, x, labels, train_mask=mask, epochs=10, lr=0.05,
            resume_from=ck_path,
        )
        assert len(resumed.losses) == 10
        np.testing.assert_allclose(resumed.losses, full.losses, rtol=1e-6, atol=1e-8)

    def test_divergence_after_resume_rolls_back_to_checkpoint(self, tmp_path):
        from repro.gnn.train import load_checkpoint, train_gcn

        adj, x, labels, mask, fresh = self._setup()
        ck_path = tmp_path / "train.ck.npz"
        model = fresh()
        train_gcn(
            model, adj, x, labels, train_mask=mask, epochs=4, lr=0.05,
            checkpoint_every=4, checkpoint_path=ck_path,
        )
        ck = load_checkpoint(ck_path)
        with np.errstate(all="ignore"), pytest.raises(ConvergenceError) as exc_info:
            train_gcn(
                model, adj, x, labels, train_mask=mask, epochs=8,
                lr=float("inf"), resume_from=ck,
            )
        assert exc_info.value.last_good is ck
        for p, saved in zip(model.parameters(), ck.params, strict=True):
            np.testing.assert_array_equal(p, saved)

    def test_checkpoint_requires_path(self):
        from repro.gnn.train import train_gcn

        adj, x, labels, mask, fresh = self._setup()
        with pytest.raises(CheckpointError):
            train_gcn(
                fresh(), adj, x, labels, train_mask=mask, epochs=2, lr=0.05,
                checkpoint_every=1,
            )

    def test_load_checkpoint_rejects_garbage(self, tmp_path):
        from repro.gnn.train import load_checkpoint

        bad = tmp_path / "bad.npz"
        np.savez_compressed(bad, junk=np.arange(3))
        with pytest.raises(CheckpointError):
            load_checkpoint(bad)
