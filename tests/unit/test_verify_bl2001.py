"""Unit tests for the verification protocol and the Björklund–Lingas ablation."""

import numpy as np
import pytest

from repro.core.bl2001 import build_bl2001
from repro.core.builder import build_cbm
from repro.core.tree import VIRTUAL
from repro.core.verify import estimate_candidate_memory, verify_cbm
from repro.errors import NotBinaryError, ShapeError
from repro.sparse.convert import from_dense

from tests.conftest import random_adjacency_csr


class TestVerify:
    def test_pass_on_correct_build(self):
        a = random_adjacency_csr(30, seed=0)
        cbm, _ = build_cbm(a, alpha=0)
        report = verify_cbm(cbm, a, runs=3, columns=16)
        assert report.passed
        assert report.structural_match
        assert report.max_relative_error < 1e-4

    def test_dad_variant_verified(self):
        rng = np.random.default_rng(1)
        a = random_adjacency_csr(25, seed=2)
        d = rng.random(25) + 0.5
        cbm, _ = build_cbm(a, alpha=2, variant="DAD", diag=d)
        assert verify_cbm(cbm, a, runs=3, columns=8).passed

    def test_detects_corruption(self):
        a = random_adjacency_csr(25, seed=3)
        cbm, _ = build_cbm(a, alpha=0)
        cbm.delta.data[0] *= -1  # flip one delta sign
        report = verify_cbm(cbm, a, runs=2, columns=8)
        assert not report.passed

    def test_invalid_args(self):
        a = random_adjacency_csr(10, seed=4)
        cbm, _ = build_cbm(a)
        with pytest.raises(ValueError):
            verify_cbm(cbm, a, runs=0)
        with pytest.raises(ValueError):
            verify_cbm(cbm, a, columns=0)

    def test_candidate_memory_estimate(self):
        a = random_adjacency_csr(30, density=0.3, seed=5)
        est = estimate_candidate_memory(a)
        col_deg = np.bincount(a.indices, minlength=30)
        assert est == 16 * int((col_deg.astype(np.int64) ** 2).sum())

    def test_candidate_memory_monotone_in_density(self):
        lo = estimate_candidate_memory(random_adjacency_csr(40, 0.1, seed=6))
        hi = estimate_candidate_memory(random_adjacency_csr(40, 0.5, seed=6))
        assert hi > lo


class TestBL2001:
    def test_rejects_bad_input(self):
        with pytest.raises(ShapeError):
            build_bl2001(from_dense(np.ones((2, 3), dtype=np.float32)))
        with pytest.raises(NotBinaryError):
            build_bl2001(from_dense(np.array([[0, 2.0], [2.0, 0]], dtype=np.float32)))

    @pytest.mark.parametrize("seed", range(4))
    def test_product_correct(self, seed):
        a = random_adjacency_csr(30, density=0.3, seed=seed)
        cbm, _ = build_bl2001(a)
        x = np.random.default_rng(0).random((30, 5)).astype(np.float32)
        assert np.allclose(cbm.matmul(x), a.toarray() @ x, rtol=1e-4)

    @pytest.mark.parametrize("seed", range(4))
    def test_never_beats_cbm(self, seed):
        """The virtual node only helps: CBM deltas <= BL deltas."""
        a = random_adjacency_csr(35, density=0.35, seed=10 + seed)
        _, rep_cbm = build_cbm(a, alpha=0)
        _, rep_bl = build_bl2001(a)
        assert rep_cbm.total_deltas <= rep_bl.total_deltas

    def test_property1_violation_possible(self):
        """BL keeps tree edges even when deltas exceed the row's nnz —
        the failure mode the virtual node exists to prevent."""
        # Rows 0/1 overlap in one column but are otherwise disjoint, so
        # their Hamming distance (8) exceeds either row's nnz (5).
        d = np.zeros((12, 12), dtype=np.float32)
        d[0, [0, 1, 2, 3, 4]] = 1
        d[1, [4, 5, 6, 7, 8]] = 1
        a = from_dense(d)
        bl, rep_bl = build_bl2001(a)
        _, rep_cbm = build_cbm(a, alpha=0)
        assert rep_bl.total_deltas > a.nnz  # Property 1 broken
        assert rep_cbm.total_deltas <= a.nnz  # CBM keeps it

    def test_roots_are_component_minima(self):
        d = np.zeros((8, 8), dtype=np.float32)
        d[0, [0, 1, 2]] = 1
        d[1, [0, 1]] = 1  # same component as 0, smaller nnz -> root
        d[2, [5]] = 1  # isolated rows: their own roots
        a = from_dense(d)
        bl, _ = build_bl2001(a)
        assert bl.tree.parent[1] == VIRTUAL
        assert bl.tree.parent[0] == 1
