"""Unit tests for the lock-order / blocking-call analysis (SC7xx).

Each test feeds a small synthetic module through ``scan_lock_source``
and asserts on the findings and the acquisition graph — deadlock cycles
(SC701), blocking calls under a lock (SC702), ``Condition.wait``
outside a predicate loop (SC703) — plus the interprocedural call
resolution paths (self-methods, module functions, typed helper
attributes, condition aliasing) and the repo-level acceptance that the
shipped tree is SC7xx-clean.
"""

from __future__ import annotations

import pathlib

from repro.staticcheck import analyze_locks
from repro.staticcheck.locks import scan_lock_source


def _codes(scan):
    return sorted(f.code for f in scan.findings)


class TestLockOrderCycles:
    def test_ab_ba_module_locks(self):
        src = (
            "import threading\n"
            "a_lock = threading.Lock()\n"
            "b_lock = threading.Lock()\n"
            "def fwd():\n"
            "    with a_lock:\n"
            "        with b_lock:\n"
            "            pass\n"
            "def bwd():\n"
            "    with b_lock:\n"
            "        with a_lock:\n"
            "            pass\n"
        )
        scan = scan_lock_source(src)
        assert "SC701" in _codes(scan)
        assert scan.graph.cycles()

    def test_consistent_order_is_clean(self):
        src = (
            "import threading\n"
            "a_lock = threading.Lock()\n"
            "b_lock = threading.Lock()\n"
            "def one():\n"
            "    with a_lock:\n"
            "        with b_lock:\n"
            "            pass\n"
            "def two():\n"
            "    with a_lock:\n"
            "        with b_lock:\n"
            "            pass\n"
        )
        scan = scan_lock_source(src)
        assert _codes(scan) == []
        assert not scan.graph.cycles()

    def test_cycle_through_a_call_chain(self):
        # fwd takes A then calls helper (which takes B); bwd takes B then
        # calls other (which takes A): the cycle only exists
        # interprocedurally.
        src = (
            "import threading\n"
            "a_lock = threading.Lock()\n"
            "b_lock = threading.Lock()\n"
            "def helper():\n"
            "    with b_lock:\n"
            "        pass\n"
            "def other():\n"
            "    with a_lock:\n"
            "        pass\n"
            "def fwd():\n"
            "    with a_lock:\n"
            "        helper()\n"
            "def bwd():\n"
            "    with b_lock:\n"
            "        other()\n"
        )
        scan = scan_lock_source(src)
        assert "SC701" in _codes(scan)

    def test_self_method_resolution_builds_edges(self):
        src = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._a_lock = threading.Lock()\n"
            "        self._b_lock = threading.Lock()\n"
            "    def inner(self):\n"
            "        with self._b_lock:\n"
            "            pass\n"
            "    def outer(self):\n"
            "        with self._a_lock:\n"
            "            self.inner()\n"
        )
        scan = scan_lock_source(src)
        assert scan.graph.has_edge("S._a_lock", "S._b_lock")
        assert _codes(scan) == []

    def test_typed_helper_attribute_resolution(self):
        # self.stats = Stats(); calls through self.stats resolve to the
        # helper class, so the lock its methods take reaches the graph —
        # the blind spot the dynamic witness exposed (SC704).
        src = (
            "import threading\n"
            "class Stats:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            pass\n"
            "class Owner:\n"
            "    def __init__(self):\n"
            "        self._swap_lock = threading.Lock()\n"
            "        self.stats = Stats()\n"
            "    def swap(self):\n"
            "        with self._swap_lock:\n"
            "            self.stats.bump()\n"
        )
        scan = scan_lock_source(src)
        assert scan.graph.has_edge("Owner._swap_lock", "Stats._lock")

    def test_condition_aliases_to_wrapped_lock(self):
        # Condition(self._lock) is the SAME underlying lock, not a second
        # one — with-ing both must not invent an edge or a cycle.
        src = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._cond = threading.Condition(self._lock)\n"
            "    def a(self):\n"
            "        with self._lock:\n"
            "            pass\n"
            "    def b(self):\n"
            "        with self._cond:\n"
            "            pass\n"
        )
        scan = scan_lock_source(src)
        assert _codes(scan) == []
        assert not scan.graph.cycles()


class TestBlockingUnderLock:
    def test_future_result_under_lock(self):
        src = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def f(self, fut):\n"
            "        with self._lock:\n"
            "            return fut.result()\n"
        )
        assert _codes(scan_lock_source(src)) == ["SC702"]

    def test_pool_submit_under_lock(self):
        src = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def f(self, pool, job):\n"
            "        with self._lock:\n"
            "            pool.submit(job)\n"
        )
        assert _codes(scan_lock_source(src)) == ["SC702"]

    def test_result_outside_lock_is_clean(self):
        src = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def f(self, fut):\n"
            "        with self._lock:\n"
            "            pass\n"
            "        return fut.result()\n"
        )
        assert _codes(scan_lock_source(src)) == []

    def test_cond_wait_on_held_condition_is_not_a_convoy(self):
        src = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._cond = threading.Condition()\n"
            "    def f(self):\n"
            "        with self._cond:\n"
            "            while not self.ready:\n"
            "                self._cond.wait()\n"
        )
        assert _codes(scan_lock_source(src)) == []

    def test_pragma_suppresses_sc702(self):
        src = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def f(self, fut):\n"
            "        with self._lock:\n"
            "            return fut.result()  # staticcheck: ignore[SC702]\n"
        )
        assert _codes(scan_lock_source(src)) == []


class TestConditionPredicateLoop:
    def test_wait_outside_while_flagged(self):
        src = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._cond = threading.Condition()\n"
            "    def f(self):\n"
            "        with self._cond:\n"
            "            self._cond.wait()\n"
        )
        assert _codes(scan_lock_source(src)) == ["SC703"]

    def test_wait_inside_while_is_clean(self):
        src = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._cond = threading.Condition()\n"
            "    def f(self):\n"
            "        with self._cond:\n"
            "            while not self.ready:\n"
            "                self._cond.wait()\n"
        )
        assert _codes(scan_lock_source(src)) == []


class TestRepoAcceptance:
    def test_shipped_tree_is_sc7xx_clean(self):
        root = pathlib.Path(__file__).resolve().parents[2]
        report, graph = analyze_locks([root / "src" / "repro"], root=root)
        assert report.ok, report.render()
        assert report.checks["locks.acyclic"] is True
        assert report.checks["locks.nonblocking"] is True
        assert report.checks["locks.predicate_wait"] is True
        # the pass actually discovered the repo's locks (not a no-op)
        assert len(graph.locks) >= 10

    def test_graph_suffix_matching_for_witness_names(self):
        src = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._a_lock = threading.Lock()\n"
            "        self._b_lock = threading.Lock()\n"
            "    def f(self):\n"
            "        with self._a_lock:\n"
            "            with self._b_lock:\n"
            "                pass\n"
        )
        graph = scan_lock_source(src).graph
        assert graph.has_edge("S._a_lock", "S._b_lock")
