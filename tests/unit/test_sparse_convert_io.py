"""Unit tests for conversions and Matrix Market I/O."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import DTypeError, FormatError, ShapeError
from repro.sparse.convert import from_dense, from_scipy, to_scipy_csr
from repro.sparse.io import load_matrix_market, save_matrix_market


def dense(seed=0):
    rng = np.random.default_rng(seed)
    return ((rng.random((6, 8)) < 0.35) * rng.random((6, 8))).astype(np.float32)


class TestConvert:
    def test_from_dense_roundtrip(self):
        d = dense()
        assert np.allclose(from_dense(d).toarray(), d)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ShapeError):
            from_dense(np.ones(4))

    def test_from_dense_rejects_object(self):
        with pytest.raises(DTypeError):
            from_dense(np.array([[object()]]))

    def test_from_scipy_roundtrip(self):
        d = dense(1)
        s = sp.csr_matrix(d)
        assert np.allclose(from_scipy(s).toarray(), d)

    def test_from_scipy_coo_input(self):
        d = dense(2)
        assert np.allclose(from_scipy(sp.coo_matrix(d)).toarray(), d)

    def test_to_scipy_values_match(self):
        a = from_dense(dense(3))
        s = to_scipy_csr(a)
        assert np.allclose(s.toarray(), a.toarray())
        assert s.shape == a.shape


class TestMatrixMarket:
    def test_real_roundtrip(self, tmp_path):
        d = dense(4)
        a = from_dense(d)
        path = tmp_path / "m.mtx"
        save_matrix_market(path, a, field="real")
        b = load_matrix_market(path)
        assert np.allclose(b.toarray(), d, rtol=1e-6)

    def test_pattern_roundtrip(self, tmp_path):
        d = (dense(5) != 0).astype(np.float32)
        a = from_dense(d)
        path = tmp_path / "p.mtx"
        save_matrix_market(path, a, field="pattern")
        b = load_matrix_market(path)
        assert np.allclose(b.toarray(), d)

    def test_integer_roundtrip(self, tmp_path):
        d = np.array([[0, 2], [3, 0]], dtype=np.float32)
        path = tmp_path / "i.mtx"
        save_matrix_market(path, from_dense(d), field="integer")
        assert np.allclose(load_matrix_market(path).toarray(), d)

    def test_unknown_field_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_matrix_market(tmp_path / "x.mtx", from_dense(dense()), field="complex")

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("not a matrix market file\n1 1 0\n")
        with pytest.raises(FormatError):
            load_matrix_market(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "trunc.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n")
        with pytest.raises(FormatError):
            load_matrix_market(path)

    def test_symmetric_expansion(self, tmp_path):
        path = tmp_path / "sym.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n3 3 7.0\n"
        )
        arr = load_matrix_market(path).toarray()
        assert arr[1, 0] == 5.0 and arr[0, 1] == 5.0
        assert arr[2, 2] == 7.0  # diagonal not duplicated
