"""Unit tests for post-hoc tree rebalancing and CSR row extraction."""

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.core.rebalance import cut_depth, split_branches
from repro.errors import ShapeError

from tests.conftest import random_adjacency_csr


def deep_cbm(seed=0):
    """A CBM whose tree has some depth (clustered rows chain together)."""
    rng = np.random.default_rng(seed)
    n = 80
    d = np.zeros((n, n), dtype=np.float32)
    d[:40, :40] = 1.0
    flips = rng.integers(0, n, size=(40, 2))
    for i, j in flips:
        if i != j:
            d[i, j] = d[j, i] = 1 - d[i, j]
    np.fill_diagonal(d, 0)
    from repro.sparse.convert import from_dense

    a = from_dense(d)
    cbm, _ = build_cbm(a, alpha=0)
    return a, cbm


class TestCutDepth:
    def test_depth_bounded(self):
        a, cbm = deep_cbm()
        if cbm.tree.depth().max() <= 2:
            pytest.skip("tree too shallow to exercise cutting")
        cut = cut_depth(cbm, 2)
        assert cut.tree.depth().max() <= 2

    def test_product_unchanged(self):
        a, cbm = deep_cbm(1)
        cut = cut_depth(cbm, 1)
        x = np.random.default_rng(0).random((a.shape[0], 5)).astype(np.float32)
        assert np.allclose(cut.matmul(x), a.toarray() @ x, rtol=1e-4)

    def test_property1_preserved(self):
        a, cbm = deep_cbm(2)
        cut = cut_depth(cbm, 1)
        assert cut.num_deltas <= a.nnz

    def test_compression_only_degrades(self):
        a, cbm = deep_cbm(3)
        cut = cut_depth(cbm, 1)
        assert cut.num_deltas >= cbm.num_deltas

    def test_noop_when_within_bound(self):
        a, cbm = deep_cbm(4)
        maxd = int(cbm.tree.depth().max())
        same = cut_depth(cbm, maxd)
        assert same is cbm

    def test_invalid_depth(self):
        _, cbm = deep_cbm(5)
        with pytest.raises(ValueError):
            cut_depth(cbm, 0)

    def test_dad_variant(self):
        rng = np.random.default_rng(6)
        a = random_adjacency_csr(40, density=0.35, seed=6)
        d = rng.random(40) + 0.5
        cbm, _ = build_cbm(a, alpha=0, variant="DAD", diag=d)
        cut = cut_depth(cbm, 1)
        x = rng.random((40, 4)).astype(np.float32)
        ref = (d[:, None] * a.toarray() * d) @ x
        assert np.allclose(cut.matmul(x), ref, rtol=1e-4)


class TestSplitBranches:
    def test_branch_size_bounded(self):
        a, cbm = deep_cbm(7)
        largest = max(len(b) for b in cbm.tree.branches())
        if largest <= 5:
            pytest.skip("branches already small")
        split = split_branches(cbm, 5)
        assert max(len(b) for b in split.tree.branches()) <= 5

    def test_product_unchanged(self):
        a, cbm = deep_cbm(8)
        split = split_branches(cbm, 4)
        x = np.random.default_rng(1).random((a.shape[0], 5)).astype(np.float32)
        assert np.allclose(split.matmul(x), a.toarray() @ x, rtol=1e-4)

    def test_improves_schedule_makespan(self):
        from repro.parallel.schedule import update_stage_schedule

        a, cbm = deep_cbm(9)
        largest = max(len(b) for b in cbm.tree.branches())
        if largest <= 8:
            pytest.skip("nothing to split")
        split = split_branches(cbm, 8)
        before = update_stage_schedule(cbm.tree, 64, 16).makespan
        after = update_stage_schedule(split.tree, 64, 16).makespan
        assert after <= before

    def test_invalid_size(self):
        _, cbm = deep_cbm(10)
        with pytest.raises(ValueError):
            split_branches(cbm, 0)


class TestRebalanceRoundTrip:
    """Rebalanced CBMs survive the archive round-trip bitwise and pass
    the full static artifact audit (Properties 1-2, structure, CRC)."""

    def test_cut_depth_archive_round_trip_bitwise(self, tmp_path):
        from repro.core.io import load_cbm, save_cbm

        a, cbm = deep_cbm(20)
        cut = cut_depth(cbm, 2)
        path = tmp_path / "cut.npz"
        save_cbm(path, cut)
        loaded = load_cbm(path)
        x = np.random.default_rng(4).random((a.shape[0], 8)).astype(np.float32)
        assert np.array_equal(loaded.matmul(x), cut.matmul(x))
        assert np.array_equal(loaded.tocsr().toarray(), a.toarray())

    def test_split_branches_archive_round_trip_bitwise(self, tmp_path):
        from repro.core.io import load_cbm, save_cbm

        a, cbm = deep_cbm(21)
        split = split_branches(cbm, 4)
        path = tmp_path / "split.npz"
        save_cbm(path, split)
        loaded = load_cbm(path)
        x = np.random.default_rng(5).random((a.shape[0], 8)).astype(np.float32)
        assert np.array_equal(loaded.matmul(x), split.matmul(x))
        assert np.array_equal(loaded.tocsr().toarray(), a.toarray())

    def test_rebalanced_passes_full_artifact_audit(self, tmp_path):
        from repro.core.io import save_cbm
        from repro.staticcheck import audit_archive, audit_cbm

        a, cbm = deep_cbm(22)
        rebalanced = split_branches(cut_depth(cbm, 3), 6)
        in_memory = audit_cbm(rebalanced, subject="rebalanced")
        assert in_memory.ok, [f"{f.code}: {f.message}" for f in in_memory.findings]
        path = tmp_path / "rebalanced.npz"
        save_cbm(path, rebalanced)
        on_disk = audit_archive(path)
        assert on_disk.ok, [f"{f.code}: {f.message}" for f in on_disk.findings]

    def test_rebuild_after_patches_matches_rebalanced(self):
        """A drifted matrix rebuilt + rebalanced equals its source exactly."""
        from repro.core.builder import build_cbm as rebuild
        from repro.streaming import EdgeBatch, MutableAdjacency

        a, _ = deep_cbm(23)
        m = MutableAdjacency.from_graph(a)
        for j in range(3):
            _, _, src = m.snapshot()
            m.apply(EdgeBatch.random(src, inserts=3, deletes=3, seed=j))
        _, _, src = m.snapshot()
        fresh, _ = rebuild(src, alpha=0)
        rebalanced = cut_depth(fresh, 2)
        assert np.array_equal(rebalanced.tocsr().toarray(), src.toarray())
        x = np.random.default_rng(6).random((a.shape[0], 4)).astype(np.float32)
        assert np.allclose(rebalanced.matmul(x), fresh.matmul(x), rtol=1e-4)


class TestExtractRows:
    def test_subset_and_order(self):
        a = random_adjacency_csr(20, seed=11)
        sub = a.extract_rows([5, 2, 17])
        dense = a.toarray()
        assert np.allclose(sub.toarray(), dense[[5, 2, 17]])

    def test_duplicates_allowed(self):
        a = random_adjacency_csr(10, seed=12)
        sub = a.extract_rows([3, 3])
        assert np.allclose(sub.toarray()[0], sub.toarray()[1])

    def test_empty_selection(self):
        a = random_adjacency_csr(10, seed=13)
        sub = a.extract_rows([])
        assert sub.shape == (0, 10)
        assert sub.nnz == 0

    def test_out_of_range(self):
        a = random_adjacency_csr(10, seed=14)
        with pytest.raises(ShapeError):
            a.extract_rows([99])

    def test_preserves_values(self):
        a = random_adjacency_csr(10, seed=15).scale_columns(np.arange(1.0, 11.0))
        sub = a.extract_rows([4])
        assert np.allclose(sub.toarray()[0], a.toarray()[4])
