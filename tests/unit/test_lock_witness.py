"""Unit tests for the dynamic lock-witness recorder (SC704/SC705).

Covers the witness mechanics (per-thread ordering, inversion
detection), object instrumentation (locks, RLocks, conditions,
idempotence), the cross-check against a static graph, and the
end-to-end acceptance: a live miniature serving workload must exhibit
no acquisition order the static SC7xx graph failed to predict.
"""

from __future__ import annotations

import threading

from repro.staticcheck import LockWitness, cross_check, instrument
from repro.staticcheck.locks import scan_lock_source
from repro.staticcheck.witness import WitnessedCondition, WitnessedLock

from tests.conftest import random_adjacency_csr


class TestLockWitness:
    def test_nested_acquisition_records_edge(self):
        w = LockWitness()
        w.on_acquire("A")
        w.on_acquire("B")
        w.on_release("B")
        w.on_release("A")
        assert w.edges == {("A", "B"): 1}
        assert w.acquisitions == {"A": 1, "B": 1}

    def test_sequential_acquisitions_record_no_edge(self):
        w = LockWitness()
        w.on_acquire("A")
        w.on_release("A")
        w.on_acquire("B")
        w.on_release("B")
        assert w.edges == {}

    def test_inversions_require_both_directions(self):
        w = LockWitness()
        w.on_acquire("A"); w.on_acquire("B")
        w.on_release("B"); w.on_release("A")
        assert w.inversions() == []
        w.on_acquire("B"); w.on_acquire("A")
        w.on_release("A"); w.on_release("B")
        assert w.inversions() == [("A", "B")]

    def test_per_thread_stacks_do_not_cross(self):
        w = LockWitness()
        w.on_acquire("A")
        seen = {}

        def other():
            w.on_acquire("B")
            seen["edges"] = dict(w.edges)
            w.on_release("B")

        t = threading.Thread(target=other)
        t.start()
        t.join()
        w.on_release("A")
        # thread 2 held nothing of its own when it took B
        assert seen["edges"] == {}


class TestInstrument:
    class _Thing:
        def __init__(self):
            self._lock = threading.Lock()
            self._r_lock = threading.RLock()
            self._cond = threading.Condition()
            self.data = 0

    def test_wraps_locks_rlocks_and_conditions(self):
        obj = self._Thing()
        w = LockWitness()
        wrapped = instrument(obj, w)
        assert sorted(wrapped) == ["_Thing._cond", "_Thing._lock", "_Thing._r_lock"]
        assert isinstance(obj._lock, WitnessedLock)
        assert isinstance(obj._cond, WitnessedCondition)

    def test_instrument_is_idempotent(self):
        obj = self._Thing()
        w = LockWitness()
        instrument(obj, w)
        assert instrument(obj, w) == []

    def test_proxies_still_lock(self):
        obj = self._Thing()
        w = LockWitness()
        instrument(obj, w)
        with obj._lock:
            assert obj._lock.locked()
            with obj._r_lock:
                pass
        assert w.edges == {("_Thing._lock", "_Thing._r_lock"): 1}

    def test_condition_proxy_wait_notify(self):
        obj = self._Thing()
        w = LockWitness()
        instrument(obj, w)
        done = []

        def waiter():
            with obj._cond:
                while not done:
                    obj._cond.wait(timeout=5.0)

        t = threading.Thread(target=waiter)
        t.start()
        with obj._cond:
            done.append(1)
            obj._cond.notify_all()
        t.join(5.0)
        assert not t.is_alive()
        assert w.acquisitions["_Thing._cond"] >= 2


class TestCrossCheck:
    _GRAPH_SRC = (
        "import threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._a_lock = threading.Lock()\n"
        "        self._b_lock = threading.Lock()\n"
        "    def f(self):\n"
        "        with self._a_lock:\n"
        "            with self._b_lock:\n"
        "                pass\n"
    )

    def test_predicted_edge_passes(self):
        graph = scan_lock_source(self._GRAPH_SRC).graph
        w = LockWitness()
        w.on_acquire("S._a_lock"); w.on_acquire("S._b_lock")
        w.on_release("S._b_lock"); w.on_release("S._a_lock")
        rep = cross_check(w, graph)
        assert rep.ok
        assert rep.checks["witness.predicted"] is True

    def test_unpredicted_edge_is_sc704_warning(self):
        graph = scan_lock_source(self._GRAPH_SRC).graph
        w = LockWitness()
        w.on_acquire("S._b_lock"); w.on_acquire("S._ghost_lock")
        w.on_release("S._ghost_lock"); w.on_release("S._b_lock")
        rep = cross_check(w, graph)
        assert rep.has("SC704")
        assert [f.code for f in rep.warnings] == ["SC704"]
        assert rep.checks["witness.predicted"] is False

    def test_witnessed_inversion_is_sc705_error(self):
        graph = scan_lock_source(self._GRAPH_SRC).graph
        w = LockWitness()
        w.on_acquire("S._a_lock"); w.on_acquire("S._b_lock")
        w.on_release("S._b_lock"); w.on_release("S._a_lock")
        w.on_acquire("S._b_lock"); w.on_acquire("S._a_lock")
        w.on_release("S._a_lock"); w.on_release("S._b_lock")
        rep = cross_check(w, graph)
        assert rep.has("SC705")
        assert rep.checks["witness.acyclic"] is False


class TestServiceWitnessAcceptance:
    def test_live_serving_workload_matches_static_graph(self):
        """Tentpole acceptance: no witnessed edge escapes the SC7xx graph."""
        import pathlib

        from repro.cli import _witness_exercise
        from repro.staticcheck import analyze_locks

        root = pathlib.Path(__file__).resolve().parents[2]
        _, graph = analyze_locks([root / "src" / "repro"], root=root)
        a = random_adjacency_csr(60, density=0.15, seed=11)
        witness = _witness_exercise(a, alpha=2, seed=11)
        assert sum(witness.acquisitions.values()) > 0
        rep = cross_check(witness, graph)
        assert rep.ok, rep.render()
