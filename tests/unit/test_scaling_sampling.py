"""Unit tests for strong-scaling curves and mini-batch sampling."""

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.errors import GNNError
from repro.gnn.adjacency import make_operator
from repro.gnn.gcn import GCN
from repro.gnn.sampling import induced_subgraph, k_hop_neighborhood, minibatch_inference
from repro.parallel.scaling import (
    parallel_efficiency,
    saturation_cores,
    strong_scaling_curve,
)

from tests.conftest import random_adjacency_csr


class TestStrongScaling:
    @pytest.fixture
    def curve(self):
        a = random_adjacency_csr(50, density=0.3, seed=0)
        cbm, _ = build_cbm(a, alpha=0)
        return strong_scaling_curve(a, cbm, 128, scale_nnz=100.0, scale_rows=50.0)

    def test_points_for_each_core_count(self, curve):
        assert [pt.cores for pt in curve] == [1, 2, 4, 8, 16]
        assert all(pt.csr_s > 0 and pt.cbm_s > 0 for pt in curve)

    def test_times_non_increasing(self, curve):
        for a, b in zip(curve, curve[1:], strict=False):
            assert b.csr_s <= a.csr_s * 1.001
            assert b.cbm_s <= a.cbm_s * 1.001

    def test_efficiency_at_one_core_is_one(self, curve):
        eff = parallel_efficiency(curve)
        assert eff["csr"][0] == pytest.approx(1.0)
        assert eff["cbm"][0] == pytest.approx(1.0)

    def test_efficiency_requires_one_core_start(self, curve):
        with pytest.raises(ValueError):
            parallel_efficiency(curve[1:])

    def test_saturation_within_range(self, curve):
        sat = saturation_cores(curve)
        assert 1 <= sat["csr"] <= 16
        assert 1 <= sat["cbm"] <= 16


class TestKHop:
    def test_zero_hops_is_seeds(self):
        a = random_adjacency_csr(20, seed=1)
        out = k_hop_neighborhood(a, [3, 7], 0)
        assert out.tolist() == [3, 7]

    def test_one_hop_contains_neighbours(self):
        a = random_adjacency_csr(20, seed=2)
        out = set(k_hop_neighborhood(a, [0], 1).tolist())
        assert out.issuperset({0, *a.row(0).tolist()})

    def test_monotone_in_hops(self):
        a = random_adjacency_csr(30, seed=3)
        h1 = set(k_hop_neighborhood(a, [0], 1).tolist())
        h2 = set(k_hop_neighborhood(a, [0], 2).tolist())
        assert h1.issubset(h2)

    def test_fanout_caps_growth(self):
        a = random_adjacency_csr(40, density=0.4, seed=4)
        full = k_hop_neighborhood(a, [0], 1)
        capped = k_hop_neighborhood(a, [0], 1, fanout=2, seed=0)
        assert len(capped) <= min(len(full), 3)

    def test_bad_args(self):
        a = random_adjacency_csr(10, seed=5)
        with pytest.raises(GNNError):
            k_hop_neighborhood(a, [0], -1)
        with pytest.raises(GNNError):
            k_hop_neighborhood(a, [99], 1)


class TestInducedSubgraph:
    def test_matches_dense_slice(self):
        a = random_adjacency_csr(20, seed=6)
        nodes = np.array([2, 5, 9, 13])
        sub, ids = induced_subgraph(a, nodes)
        dense = a.toarray()
        assert np.allclose(sub.toarray(), dense[np.ix_(ids, ids)])

    def test_deduplicates(self):
        a = random_adjacency_csr(15, seed=7)
        sub, ids = induced_subgraph(a, [3, 3, 3])
        assert ids.tolist() == [3]
        assert sub.shape == (1, 1)

    def test_out_of_range(self):
        a = random_adjacency_csr(10, seed=8)
        with pytest.raises(GNNError):
            induced_subgraph(a, [50])


class TestMinibatchInference:
    def test_exact_matches_full_batch(self):
        """With full receptive fields, batched == full-batch predictions.

        A 2-layer GCN's receptive field is 2 hops, so hops=2 is exact."""
        a = random_adjacency_csr(40, density=0.25, seed=9)
        x = np.random.default_rng(0).random((40, 8)).astype(np.float32)
        model = GCN([8, 6, 3], seed=1)
        full = model(make_operator(a, "csr"), x)
        targets = np.arange(40)
        batched = minibatch_inference(
            a, x, model, targets, hops=2, batch_size=13, kind="csr"
        )
        assert np.allclose(batched, full[targets], rtol=1e-3, atol=1e-4)

    def test_cbm_subgraphs_match_csr_subgraphs(self):
        a = random_adjacency_csr(30, density=0.3, seed=10)
        x = np.random.default_rng(1).random((30, 6)).astype(np.float32)
        model = GCN([6, 5, 2], seed=2)
        targets = np.array([0, 7, 19])
        out_csr = minibatch_inference(a, x, model, targets, hops=2, kind="csr")
        out_cbm = minibatch_inference(a, x, model, targets, hops=2, kind="cbm")
        assert np.allclose(out_csr, out_cbm, rtol=1e-3, atol=1e-4)

    def test_halo_makes_boundary_exact(self):
        """Without the halo, truncated boundary degrees perturb the GCN
        normalisation; with it, batched == full-batch."""
        a = random_adjacency_csr(60, density=0.15, seed=12)
        x = np.random.default_rng(2).random((60, 6)).astype(np.float32)
        model = GCN([6, 5, 2], seed=3)
        full = model(make_operator(a, "csr"), x)
        targets = np.array([0, 1, 2])
        exact = minibatch_inference(a, x, model, targets, hops=2, kind="csr")
        assert np.allclose(exact, full[targets], rtol=1e-4, atol=1e-5)

    def test_feature_shape_checked(self):
        a = random_adjacency_csr(10, seed=11)
        model = GCN([4, 3, 2])
        with pytest.raises(GNNError):
            minibatch_inference(a, np.ones((3, 4)), model, [0], hops=1)
