"""Unit tests for GCN / GIN / GraphSAGE and the adjacency operators."""

import numpy as np
import pytest

from repro.errors import GNNError
from repro.gnn.adjacency import CBMAdjacency, CSRAdjacency, make_operator
from repro.gnn.gcn import GCN, two_layer_gcn_inference
from repro.gnn.gin import GIN
from repro.gnn.sage import GraphSAGE
from repro.graphs.laplacian import normalized_adjacency

from tests.conftest import random_adjacency_csr


@pytest.fixture
def graph():
    return random_adjacency_csr(35, density=0.25, seed=1)


@pytest.fixture
def features():
    return np.random.default_rng(0).random((35, 12)).astype(np.float32)


class TestAdjacencyOps:
    def test_factory(self, graph):
        assert isinstance(make_operator(graph, "csr"), CSRAdjacency)
        assert isinstance(make_operator(graph, "cbm"), CBMAdjacency)
        with pytest.raises(ValueError):
            make_operator(graph, "dense")

    def test_csr_and_cbm_agree(self, graph, features):
        csr_op = make_operator(graph, "csr")
        cbm_op = make_operator(graph, "cbm", alpha=2)
        assert np.allclose(csr_op.matmul(features), cbm_op.matmul(features), rtol=1e-3, atol=1e-5)

    def test_csr_matches_materialised(self, graph, features):
        op = make_operator(graph, "csr")
        ref = normalized_adjacency(graph).toarray() @ features
        assert np.allclose(op.matmul(features), ref, rtol=1e-4)

    def test_cbm_requires_dad(self, graph):
        from repro.core.builder import build_cbm

        cbm, _ = build_cbm(graph, alpha=0)  # plain A variant
        with pytest.raises(ValueError):
            CBMAdjacency(cbm)

    def test_memory_accounting(self, graph):
        csr_op = make_operator(graph, "csr")
        cbm_op = make_operator(graph, "cbm")
        assert csr_op.memory_bytes() > 0
        assert cbm_op.memory_bytes() > 0


class TestGCN:
    def test_forward_shapes(self, graph, features):
        model = GCN([12, 8, 3], seed=0)
        out = model(make_operator(graph, "csr"), features)
        assert out.shape == (35, 3)

    def test_two_formats_agree(self, graph, features):
        model = GCN([12, 8, 3], seed=0)
        y1 = model(make_operator(graph, "csr"), features)
        y2 = model(make_operator(graph, "cbm", alpha=1), features)
        assert np.allclose(y1, y2, rtol=1e-3, atol=1e-4)

    def test_functional_form_matches_model(self, graph, features):
        """two_layer_gcn_inference == GCN([d, h, c]) without bias and dropout."""
        model = GCN([12, 8, 3], seed=0)
        op = make_operator(graph, "csr")
        w0 = model.layers[0].linear.weight
        w1 = model.layers[1].linear.weight
        assert np.allclose(
            two_layer_gcn_inference(op, features, w0, w1), model(op, features), rtol=1e-5
        )

    def test_wrong_node_count(self, graph):
        model = GCN([12, 8, 3])
        with pytest.raises(GNNError):
            model(make_operator(graph, "csr"), np.ones((3, 12), dtype=np.float32))

    def test_needs_two_dims(self):
        with pytest.raises(GNNError):
            GCN([5])

    def test_dropout_only_in_training(self, graph, features):
        model = GCN([12, 8, 3], dropout=0.5, seed=0)
        op = make_operator(graph, "csr")
        a = model(op, features, training=False)
        b = model(op, features, training=False)
        assert np.array_equal(a, b)

    def test_deeper_stack(self, graph, features):
        model = GCN([12, 10, 8, 3], seed=1)
        assert model(make_operator(graph, "csr"), features).shape == (35, 3)


class TestGINAndSage:
    def test_gin_shapes(self, graph, features):
        model = GIN([12, 8, 4])
        out = model(make_operator(graph, "csr"), features)
        assert out.shape == (35, 4)

    def test_gin_needs_dims(self):
        with pytest.raises(GNNError):
            GIN([3])

    def test_gin_wrong_nodes(self, graph):
        with pytest.raises(GNNError):
            GIN([12, 4])(make_operator(graph, "csr"), np.ones((2, 12), dtype=np.float32))

    def test_gin_eps_changes_output(self, graph, features):
        op = make_operator(graph, "csr")
        a = GIN([12, 4], eps=0.0, seed=0)(op, features)
        b = GIN([12, 4], eps=1.0, seed=0)(op, features)
        assert not np.allclose(a, b)

    def test_sage_shapes(self, graph, features):
        model = GraphSAGE([12, 8, 4])
        deg = graph.row_nnz().astype(np.float64)
        out = model(make_operator(graph, "csr"), features, deg)
        assert out.shape == (35, 4)

    def test_sage_isolated_nodes(self, features):
        import numpy as np
        from repro.sparse.convert import from_dense

        d = np.zeros((35, 35), dtype=np.float32)
        d[0, 1] = d[1, 0] = 1
        a = from_dense(d)
        model = GraphSAGE([12, 4])
        out = model(make_operator(a, "csr"), features, a.row_nnz().astype(np.float64))
        assert np.all(np.isfinite(out))

    def test_sage_bad_degrees(self, graph, features):
        model = GraphSAGE([12, 4])
        with pytest.raises(GNNError):
            model(make_operator(graph, "csr"), features, np.ones(3))
