"""Unit tests for the D1AD2 variant and the R-MAT generator."""

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.errors import ShapeError
from repro.graphs.adjacency import is_undirected_simple
from repro.graphs.generators import rmat_graph
from repro.graphs.stats import average_clustering_coefficient

from tests.conftest import random_adjacency_csr


class TestD1AD2:
    @pytest.fixture
    def setup(self):
        rng = np.random.default_rng(0)
        a = random_adjacency_csr(30, density=0.3, seed=1)
        d1 = rng.random(30) + 0.5
        d2 = rng.random(30) + 0.5
        return rng, a, d1, d2

    def test_requires_both_diagonals(self, setup):
        _, a, d1, d2 = setup
        with pytest.raises(ShapeError):
            build_cbm(a, variant="D1AD2", diag=d2)  # missing diag_left

    def test_diag_left_wrong_length(self, setup):
        _, a, _, d2 = setup
        with pytest.raises(ShapeError):
            build_cbm(a, variant="D1AD2", diag=d2, diag_left=np.ones(3))

    def test_zero_diag_left_rejected(self, setup):
        _, a, _, d2 = setup
        with pytest.raises(ValueError):
            build_cbm(a, variant="D1AD2", diag=d2, diag_left=np.zeros(30))

    @pytest.mark.parametrize("scaling", ["deferred", "fused"])
    @pytest.mark.parametrize("update", ["level", "edge"])
    def test_matches_dense(self, setup, scaling, update):
        rng, a, d1, d2 = setup
        cbm, _ = build_cbm(a, alpha=2, variant="D1AD2", diag=d2, diag_left=d1)
        x = rng.random((30, 5)).astype(np.float32)
        ref = (d1[:, None] * a.toarray() * d2) @ x
        assert np.allclose(cbm.matmul(x, scaling=scaling, update=update), ref, rtol=1e-4)

    def test_reduces_to_dad_when_diagonals_equal(self, setup):
        rng, a, d1, _ = setup
        general, _ = build_cbm(a, alpha=0, variant="D1AD2", diag=d1, diag_left=d1)
        dad, _ = build_cbm(a, alpha=0, variant="DAD", diag=d1)
        x = rng.random((30, 4)).astype(np.float32)
        assert np.allclose(general.matmul(x), dad.matmul(x), rtol=1e-6)

    def test_tocsr(self, setup):
        _, a, d1, d2 = setup
        cbm, _ = build_cbm(a, alpha=0, variant="D1AD2", diag=d2, diag_left=d1)
        ref = d1[:, None] * a.toarray() * d2
        assert np.allclose(cbm.tocsr().toarray(), ref, rtol=1e-5)

    def test_scalar_ops_match_dad(self, setup):
        _, a, d1, d2 = setup
        general, _ = build_cbm(a, alpha=0, variant="D1AD2", diag=d2, diag_left=d1)
        dad, _ = build_cbm(a, alpha=0, variant="DAD", diag=d1)
        assert general.scalar_ops(8).total == dad.scalar_ops(8).total


class TestRmat:
    def test_basic_properties(self):
        a = rmat_graph(9, 12.0, seed=0)
        assert a.shape == (512, 512)
        assert is_undirected_simple(a)

    def test_deterministic(self):
        a, b = rmat_graph(8, 8.0, seed=3), rmat_graph(8, 8.0, seed=3)
        assert np.array_equal(a.indices, b.indices)

    def test_heavy_tail(self):
        """Skewed quadrants concentrate edges on low ids (power-law-ish)."""
        a = rmat_graph(10, 16.0, seed=1)
        deg = a.row_nnz()
        assert deg.max() > 8 * deg.mean()

    def test_uniform_quadrants_look_like_er(self):
        a = rmat_graph(9, 10.0, a=0.25, b=0.25, c=0.25, seed=2)
        deg = a.row_nnz()
        assert deg.max() < 5 * max(deg.mean(), 1)

    def test_low_clustering(self):
        a = rmat_graph(9, 10.0, seed=4)
        assert average_clustering_coefficient(a) < 0.3

    def test_bad_probabilities(self):
        with pytest.raises(ValueError):
            rmat_graph(5, 4.0, a=0.7, b=0.3, c=0.3)

    def test_cbm_on_rmat_is_safe(self):
        """Property 1 on a hostile (clique-free) input: CBM never loses
        more than the tree bookkeeping."""
        a = rmat_graph(9, 10.0, seed=5)
        cbm, rep = build_cbm(a, alpha=0)
        assert cbm.num_deltas <= a.nnz
        assert rep.compression_ratio > 0.95
        x = np.random.default_rng(0).random((a.shape[0], 4)).astype(np.float32)
        assert np.allclose(cbm.matmul(x), a @ x, rtol=1e-4, atol=1e-4)
