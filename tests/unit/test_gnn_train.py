"""Unit tests for the training loop: loss, optimiser, gradient checks."""

import numpy as np
import pytest

from repro.errors import GNNError
from repro.gnn.adjacency import make_operator
from repro.gnn.data import synthetic_node_classification
from repro.gnn.gcn import GCN
from repro.gnn.train import Adam, TrainResult, accuracy, cross_entropy, train_gcn


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        labels = np.array([0, 1])
        loss, grad = cross_entropy(logits, labels)
        assert loss < 1e-4
        assert np.abs(grad).max() < 1e-4

    def test_uniform_prediction_log_k(self):
        logits = np.zeros((4, 3))
        labels = np.array([0, 1, 2, 0])
        loss, _ = cross_entropy(logits, labels)
        assert loss == pytest.approx(np.log(3), rel=1e-6)

    def test_mask_restricts_gradient(self):
        logits = np.zeros((4, 2))
        labels = np.array([0, 1, 0, 1])
        mask = np.array([True, False, False, True])
        _, grad = cross_entropy(logits, labels, mask)
        assert np.all(grad[1] == 0) and np.all(grad[2] == 0)
        assert np.any(grad[0] != 0)

    def test_empty_mask_rejected(self):
        with pytest.raises(GNNError):
            cross_entropy(np.zeros((2, 2)), np.array([0, 1]), np.zeros(2, dtype=bool))

    def test_label_length_mismatch(self):
        with pytest.raises(GNNError):
            cross_entropy(np.zeros((2, 2)), np.array([0]))

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(0)
        logits = rng.random((5, 3))
        labels = rng.integers(0, 3, size=5)
        loss, grad = cross_entropy(logits, labels)
        eps = 1e-6
        for i in range(5):
            for j in range(3):
                lp = logits.copy()
                lp[i, j] += eps
                lplus, _ = cross_entropy(lp, labels)
                fd = (lplus - loss) / eps
                assert grad[i, j] == pytest.approx(fd, abs=1e-4)


class TestAccuracy:
    def test_full(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0
        assert accuracy(logits, np.array([1, 0])) == 0.0

    def test_masked(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        mask = np.array([True, False])
        assert accuracy(logits, np.array([0, 0]), mask) == 1.0

    def test_empty_mask(self):
        with pytest.raises(GNNError):
            accuracy(np.zeros((2, 2)), np.array([0, 1]), np.zeros(2, dtype=bool))


class TestAdam:
    def test_reduces_quadratic(self):
        w = np.array([5.0])
        opt = Adam([w], lr=0.1)
        for _ in range(200):
            opt.step([2 * w])  # d/dw of w^2
        assert abs(w[0]) < 0.5

    def test_gradient_count_mismatch(self):
        opt = Adam([np.zeros(2)])
        with pytest.raises(GNNError):
            opt.step([np.zeros(2), np.zeros(2)])

    def test_bad_lr(self):
        with pytest.raises(GNNError):
            Adam([np.zeros(1)], lr=0.0)


class TestGcnBackward:
    def test_model_gradients_match_finite_difference(self):
        """End-to-end gradient check through two GCN layers."""
        task = synthetic_node_classification(40, classes=2, feature_dim=5, seed=1)
        op = make_operator(task.adjacency, "csr")
        model = GCN([5, 4, 2], seed=2, requires_grad=True)

        def loss_value():
            logits = model.forward(op, task.features)
            loss, _ = cross_entropy(logits, task.labels, task.train_mask)
            return loss

        logits = model.forward(op, task.features)
        _, grad = cross_entropy(logits, task.labels, task.train_mask)
        model.backward(op, grad)
        analytic = [g.copy() for g in model.gradients()]
        params = model.parameters()
        eps = 1e-3
        rng = np.random.default_rng(3)
        for p, g in zip(params, analytic, strict=True):
            # Spot-check a few coordinates per parameter tensor.
            flat_idx = rng.choice(p.size, size=min(4, p.size), replace=False)
            for k in flat_idx:
                idx = np.unravel_index(k, p.shape)
                orig = p[idx]
                p[idx] = orig + eps
                lp = loss_value()
                p[idx] = orig - eps
                lm = loss_value()
                p[idx] = orig
                fd = (lp - lm) / (2 * eps)
                assert g[idx] == pytest.approx(fd, abs=3e-3)

    def test_train_reduces_loss(self):
        task = synthetic_node_classification(80, classes=3, feature_dim=8, seed=4)
        op = make_operator(task.adjacency, "csr")
        model = GCN([8, 8, 3], seed=5, requires_grad=True)
        res = train_gcn(
            model, op, task.features, task.labels, train_mask=task.train_mask, epochs=40, lr=0.05
        )
        assert res.final_loss < res.losses[0]

    def test_train_on_cbm_matches_csr_loss_curve(self):
        task = synthetic_node_classification(60, classes=2, feature_dim=6, seed=6)
        losses = {}
        for kind in ("csr", "cbm"):
            op = make_operator(task.adjacency, kind)
            model = GCN([6, 5, 2], seed=7, requires_grad=True)
            res = train_gcn(
                model, op, task.features, task.labels, train_mask=task.train_mask, epochs=10, lr=0.02
            )
            losses[kind] = res.losses
        assert np.allclose(losses["csr"], losses["cbm"], rtol=1e-3, atol=1e-4)

    def test_requires_grad_enforced(self):
        task = synthetic_node_classification(30, classes=2, feature_dim=4, seed=8)
        op = make_operator(task.adjacency, "csr")
        model = GCN([4, 3, 2])
        with pytest.raises(GNNError):
            train_gcn(model, op, task.features, task.labels, train_mask=task.train_mask)

    def test_result_dataclass(self):
        r = TrainResult(losses=[2.0, 1.0])
        assert r.final_loss == 1.0
        assert np.isnan(TrainResult().final_loss)


class TestSyntheticTask:
    def test_masks_disjoint_and_cover(self):
        task = synthetic_node_classification(100, seed=9)
        total = task.train_mask.astype(int) + task.val_mask.astype(int) + task.test_mask.astype(int)
        assert np.all(total == 1)

    def test_num_classes(self):
        task = synthetic_node_classification(50, classes=5, seed=10)
        assert task.num_classes == 5
        assert task.n == 50

    def test_labels_match_blocks(self):
        task = synthetic_node_classification(40, classes=4, seed=11)
        assert len(np.unique(task.labels)) == 4


class TestCheckpointSignatureValidation:
    """``load_checkpoint(..., model=)`` rejects mismatched checkpoints
    with a clear :class:`IntegrityError` *before* anything is restored."""

    def _checkpoint(self, tmp_path, dims=(6, 5, 2), seed=7):
        from repro.gnn.train import TrainCheckpoint, save_checkpoint

        model = GCN(list(dims), seed=seed, requires_grad=True)
        opt = Adam(model.parameters(), lr=0.01)
        ck = TrainCheckpoint.capture(model, opt, TrainResult(losses=[1.0]))
        path = tmp_path / "ck.npz"
        save_checkpoint(path, ck)
        return path, model

    def test_matching_model_loads_and_validates(self, tmp_path):
        from repro.gnn.train import load_checkpoint

        path, model = self._checkpoint(tmp_path)
        ck = load_checkpoint(path, model=model)
        assert ck.epoch == 1
        for p, saved in zip(model.parameters(), ck.params, strict=True):
            assert p.shape == saved.shape

    def test_shape_mismatch_is_named_integrity_error(self, tmp_path):
        from repro.errors import IntegrityError
        from repro.gnn.train import load_checkpoint

        path, _ = self._checkpoint(tmp_path, dims=(6, 5, 2))
        other = GCN([6, 9, 2], seed=7, requires_grad=True)
        with pytest.raises(IntegrityError, match=r"param_0 has shape"):
            load_checkpoint(path, model=other)

    def test_param_count_mismatch_is_integrity_error(self, tmp_path):
        from repro.errors import IntegrityError
        from repro.gnn.train import load_checkpoint

        path, _ = self._checkpoint(tmp_path, dims=(6, 5, 2))
        deeper = GCN([6, 5, 5, 2], seed=7, requires_grad=True)
        with pytest.raises(IntegrityError, match="parameter arrays"):
            load_checkpoint(path, model=deeper)

    def test_incompatible_dtype_is_integrity_error(self, tmp_path):
        import json

        from repro.errors import IntegrityError
        from repro.gnn.train import load_checkpoint

        path, model = self._checkpoint(tmp_path)
        data = dict(np.load(path))
        data["param_0"] = data["param_0"].astype(np.complex64)
        meta = json.loads(bytes(data.pop("meta")).decode())
        arrays = {"meta": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)}
        arrays.update(data)
        np.savez_compressed(path, **arrays)
        with pytest.raises(IntegrityError, match=r"param_0 has dtype"):
            load_checkpoint(path, model=model)

    def test_torn_checkpoint_is_integrity_error(self, tmp_path):
        from repro.errors import IntegrityError
        from repro.gnn.train import load_checkpoint

        path, model = self._checkpoint(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(IntegrityError, match="truncated or torn"):
            load_checkpoint(path, model=model)

    def test_without_model_no_signature_check(self, tmp_path):
        from repro.gnn.train import load_checkpoint

        path, _ = self._checkpoint(tmp_path)
        ck = load_checkpoint(path)  # structural load only
        assert ck.adam_t == 0
