"""Unit tests for the static-analysis subsystem (repro.staticcheck).

Covers the hazard analyzer against hand-built racy plans AND against
every schedule `plan_update_schedule` produces on the example graphs
(all must be race-free), the contract linter rule by rule, the report
plumbing, and the `repro check` CLI surface.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.parallel.schedule import (
    ScheduleResult,
    branch_costs_from_branches,
    plan_update_schedule,
)
from repro.runtime.buffers import WorkspacePool
from repro.staticcheck import (
    AuditReport,
    Severity,
    analyze_branches,
    analyze_level_schedule,
    analyze_plan,
    analyze_pool,
    analyze_schedule,
    lint_paths,
    lint_source,
    load_baseline,
)
from repro.staticcheck.hazards import analyze_watchdog

from tests.conftest import random_adjacency_csr


# ----------------------------------------------------------------------
# Report plumbing


class TestAuditReport:
    def test_add_and_severities(self):
        rep = AuditReport(subject="s")
        rep.add("X001", "boom")
        rep.add("X002", "meh", severity=Severity.WARNING)
        assert not rep.ok
        assert [f.code for f in rep.errors] == ["X001"]
        assert [f.code for f in rep.warnings] == ["X002"]
        assert rep.has("X00") and not rep.has("Y")

    def test_passed_does_not_override_failed(self):
        rep = AuditReport(subject="s")
        rep.failed("a")
        rep.passed("a")
        assert rep.checks["a"] is False

    def test_merge_combines_checks(self):
        a = AuditReport(subject="a")
        a.passed("x")
        b = AuditReport(subject="b")
        b.failed("x")
        b.add("X001", "boom")
        a.merge(b)
        assert a.checks["x"] is False
        assert len(a.findings) == 1

    def test_render_and_dict(self):
        rep = AuditReport(subject="s")
        rep.add("X001", "boom", line=3)
        assert "X001" in rep.render()
        d = rep.to_dict()
        assert d["ok"] is False
        assert d["findings"][0]["line"] == 3
        assert rep.findings[0].render() == "s:3: X001 boom"


# ----------------------------------------------------------------------
# Hazard analyzer: hand-built racy plans


class TestBranchHazards:
    def test_clean_two_branches(self):
        # 0 <- 1, 2 <- 3 (two independent chains off the virtual root).
        parent = np.array([-1, 0, -1, 2])
        branches = [np.array([0, 1]), np.array([2, 3])]
        rep = analyze_branches(branches, parent)
        assert rep.ok, rep.render()

    def test_write_write_shared_row(self):
        parent = np.array([-1, 0, -1, 2])
        branches = [np.array([0, 1]), np.array([2, 3, 1])]
        rep = analyze_branches(branches, parent)
        assert rep.has("HZ-W001")

    def test_write_write_duplicate_within_branch(self):
        parent = np.array([-1, 0])
        branches = [np.array([0, 1, 1])]
        rep = analyze_branches(branches, parent)
        assert rep.has("HZ-W002")

    def test_read_before_write_misordered(self):
        # 1's parent 0 appears after it inside the branch.
        parent = np.array([-1, 0])
        branches = [np.array([1, 0])]
        rep = analyze_branches(branches, parent)
        assert rep.has("HZ-R001") or rep.has("HZ-R002")
        assert not rep.ok

    def test_cross_branch_dependency(self):
        # Branch split mid-chain: branch 2 starts at row 1 whose parent 0
        # lives in (and is written by) branch 1.
        parent = np.array([-1, 0, 1])
        branches = [np.array([0]), np.array([1, 2])]
        rep = analyze_branches(branches, parent)
        assert rep.has("HZ-R002")

    def test_coverage_gap(self):
        parent = np.array([-1, 0, -1])
        branches = [np.array([0, 1])]  # row 2 never replayed
        rep = analyze_branches(branches, parent)
        assert rep.has("HZ-B001")


class TestLevelHazards:
    def test_clean_levels(self):
        # depth-1 rows {1}, depth-2 rows {2} with parents resolved.
        pairs = [(np.array([1]), np.array([0])), (np.array([2]), np.array([1]))]
        rep = analyze_level_schedule(pairs, n_rows=3)
        assert rep.ok, rep.render()

    def test_edge_scheduled_before_parent_level(self):
        # Row 2 reads row 1 in the first level, but row 1 is only written
        # by the second level.
        pairs = [(np.array([2]), np.array([1])), (np.array([1]), np.array([0]))]
        rep = analyze_level_schedule(pairs, n_rows=3)
        assert rep.has("HZ-L001")

    def test_duplicate_write_within_level(self):
        pairs = [(np.array([1, 1]), np.array([0, 0]))]
        rep = analyze_level_schedule(pairs, n_rows=2)
        assert rep.has("HZ-L002")

    def test_row_written_by_two_levels(self):
        pairs = [(np.array([1]), np.array([0])), (np.array([1]), np.array([0]))]
        rep = analyze_level_schedule(pairs, n_rows=2)
        assert rep.has("HZ-L003")

    def test_out_of_range_rows(self):
        pairs = [(np.array([5]), np.array([0]))]
        rep = analyze_level_schedule(pairs, n_rows=3)
        assert rep.has("HZ-L004")


class TestPoolAndWatchdogHazards:
    def test_clean_pool(self):
        pool = WorkspacePool()
        pool.warm((4, 3), count=2)
        rep = analyze_pool(pool)
        assert rep.ok, rep.render()

    def test_duplicate_buffer_flagged(self):
        pool = WorkspacePool()
        buf = np.empty((4, 3), dtype=np.float32)
        # Force the same object into two free lists (bypasses release()'s
        # dedup, as a buggy pool implementation would).
        with pool._lock:
            pool._free[(("a",), "x")] = [buf]
            pool._free[(("b",), "y")] = [buf]
        rep = analyze_pool(pool)
        assert rep.has("HZ-P001")

    def test_view_aliasing_flagged(self):
        pool = WorkspacePool()
        base = np.empty((8, 3), dtype=np.float32)
        with pool._lock:
            pool._free[(("base",), "x")] = [base]
            pool._free[(("view",), "y")] = [base[:4]]
        rep = analyze_pool(pool)
        assert rep.has("HZ-P002")

    def test_watchdog_gap_without_owner(self):
        branches = [np.array([0, 1]), np.array([2])]
        rep = analyze_watchdog(branches)
        assert rep.has("HZ-G001")
        assert rep.findings[0].severity is Severity.WARNING

    def test_watchdog_covered_by_timeout_or_deadline(self):
        branches = [np.array([0, 1])]
        assert analyze_watchdog(branches, branch_timeout=5.0).ok
        assert analyze_watchdog(branches, deadline=123.0).ok
        assert analyze_watchdog([]).ok  # nothing to cover


class TestScheduleHazards:
    def test_simulated_schedules_are_consistent(self):
        costs = np.array([5.0, 3.0, 2.0, 2.0])
        from repro.parallel.schedule import simulate_dynamic_schedule

        for threads in (1, 2, 4, 8):
            res = simulate_dynamic_schedule(costs, threads)
            assert analyze_schedule(res, costs).ok

    def test_impossible_makespan_flagged(self):
        forged = ScheduleResult(
            makespan=1.0,
            total_work=10.0,
            critical_path=5.0,
            threads=2,
            utilisation=5.0,
            tasks=3,
        )
        rep = analyze_schedule(forged, np.array([5.0, 3.0, 2.0]))
        assert rep.has("HZ-S001") and rep.has("HZ-S002")

    def test_cost_disagreement_flagged(self):
        res = ScheduleResult(
            makespan=5.0,
            total_work=5.0,
            critical_path=5.0,
            threads=1,
            utilisation=1.0,
            tasks=1,
        )
        rep = analyze_schedule(res, np.array([7.0]))
        assert rep.has("HZ-S003")


class TestRealPlansAreRaceFree:
    """Acceptance: every plan/schedule on the example graphs proves clean."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("alpha", [0, 2, 4])
    def test_plans_clean(self, seed, alpha):
        a = random_adjacency_csr(48, density=0.2, seed=seed)
        cbm, _ = build_cbm(a, alpha=alpha)
        for update in ("level", "edge"):
            plan = cbm.plan(update=update)
            rep = analyze_plan(plan, threads=4, branch_timeout=10.0)
            assert rep.ok, rep.render()

    @pytest.mark.parametrize("threads", [1, 2, 4, 16])
    def test_every_plan_update_schedule_race_free(self, threads):
        a = random_adjacency_csr(64, density=0.25, seed=9)
        cbm, _ = build_cbm(a, alpha=3)
        plan = cbm.plan()
        for p in (1, 16, 500):
            res = plan_update_schedule(plan, p, threads)
            costs = branch_costs_from_branches(
                plan.branches, p, dad=plan.row_scaled
            )
            assert analyze_schedule(res, costs).ok
        # The branch decomposition the schedule was built from is itself
        # hazard-free — proving, not assuming, Section V-B independence.
        assert analyze_branches(plan.branches, plan._parent).ok


# ----------------------------------------------------------------------
# Contract linter, rule by rule


class TestLintRules:
    def test_sc101_bare_except(self):
        src = "try:\n    x = 1\nexcept:\n    pass\n"
        codes = [f.code for f in lint_source(src)]
        assert codes == ["SC101"]

    def test_sc102_broad_swallow(self):
        src = "try:\n    x = 1\nexcept Exception:\n    x = 2\n"
        assert [f.code for f in lint_source(src)] == ["SC102"]

    def test_sc102_allows_reraise(self):
        src = "try:\n    x = 1\nexcept Exception:\n    raise\n"
        assert lint_source(src) == []

    def test_sc102_allows_bound_use(self):
        src = (
            "try:\n    x = 1\nexcept BaseException as exc:\n"
            "    errors.append(exc)\n"
        )
        assert lint_source(src) == []

    def test_sc201_guardstats_counter(self):
        src = "def f(self):\n    return self.stats.fallbacks\n"
        assert [f.code for f in lint_source(src)] == ["SC201"]

    def test_sc201_ignores_other_counters_and_methods(self):
        src = (
            "def f(self):\n"
            "    self.stats.executions += 1\n"
            "    return self.stats.snapshot()\n"
        )
        assert lint_source(src) == []

    def test_sc201_allowed_inside_guardstats(self):
        src = (
            "class GuardStats:\n"
            "    def snap(self):\n"
            "        return self.stats.calls\n"
        )
        assert lint_source(src) == []

    def test_sc301_undeclared_mutation(self):
        src = "def f(c):\n    c[0] += 1\n"
        assert [f.code for f in lint_source(src)] == ["SC301"]

    @pytest.mark.parametrize(
        "body", ["c[:] = 0", "c += 1", "c.fill(0)", "out[...] = c"]
    )
    def test_sc301_each_mutation_kind(self, body):
        src = f"def f(c, out):\n    {body}\n"
        assert [f.code for f in lint_source(src)] == ["SC301"]

    def test_sc301_declared_in_place_is_clean(self):
        src = 'def f(c):\n    """Zeroes ``c`` in place."""\n    c[:] = 0\n'
        assert lint_source(src) == []

    def test_sc301_ignores_locals(self):
        src = "def f(n):\n    c = [0] * n\n    c[0] += 1\n    return c\n"
        assert lint_source(src) == []

    def test_sc401_sleep_under_lock(self):
        src = (
            "import time\n"
            "def f(self):\n"
            "    with self._lock:\n"
            "        time.sleep(1)\n"
        )
        assert [f.code for f in lint_source(src)] == ["SC401"]

    def test_sc401_sleep_outside_lock(self):
        src = (
            "import time\n"
            "def f(self):\n"
            "    with self._lock:\n"
            "        x = 1\n"
            "    time.sleep(1)\n"
        )
        assert lint_source(src) == []

    def test_sc401_non_lock_context_ok(self):
        src = "import time\ndef f(fh):\n    with fh:\n        time.sleep(1)\n"
        assert lint_source(src) == []

    def test_sc401_queue_get_under_lock(self):
        src = (
            "def f(self):\n"
            "    with self._lock:\n"
            "        item = self._queue.get()\n"
        )
        assert [f.code for f in lint_source(src)] == ["SC401"]

    def test_sc401_queue_get_with_timeout_ok(self):
        src = (
            "def f(self):\n"
            "    with self._lock:\n"
            "        item = self._queue.get(timeout=1.0)\n"
        )
        assert lint_source(src) == []

    def test_sc401_queue_get_outside_lock_ok(self):
        src = "def f(self):\n    return self._queue.get()\n"
        assert lint_source(src) == []

    def test_sc401_dict_get_with_key_ok(self):
        # dict.get(key) takes arguments; only the zero-arg blocking form
        # of queue.get() is flagged.
        src = (
            "def f(self, key):\n"
            "    with self._lock:\n"
            "        return self._cache.get(key)\n"
        )
        assert lint_source(src) == []

    def test_sc401_event_wait_under_lock(self):
        src = (
            "def f(self):\n"
            "    with self._lock:\n"
            "        self._ready.wait()\n"
        )
        assert [f.code for f in lint_source(src)] == ["SC401"]

    def test_sc401_event_wait_with_timeout_ok(self):
        src = (
            "def f(self):\n"
            "    with self._lock:\n"
            "        self._ready.wait(2.0)\n"
        )
        assert lint_source(src) == []

    def test_sc401_condition_wait_exempt(self):
        # cond.wait() releases the condition's own lock while blocked —
        # the idiom, not a convoy.
        src = (
            "def f(self):\n"
            "    with self._cond:\n"
            "        while not self._done:\n"
            "            self._cond.wait()\n"
        )
        assert lint_source(src) == []

    def test_sc501_bare_savez(self):
        src = "import numpy as np\ndef f(path, arrays):\n    np.savez(path, **arrays)\n"
        assert [f.code for f in lint_source(src)] == ["SC501"]

    def test_sc501_bare_savez_compressed_anywhere(self):
        # savez is flagged even outside save_*/write_* functions: the
        # destination is torn regardless of who calls it.
        src = (
            "import numpy as np\n"
            "def refresh(path, arrays):\n"
            "    np.savez_compressed(path, **arrays)\n"
        )
        assert [f.code for f in lint_source(src)] == ["SC501"]

    def test_sc501_savez_through_atomic_handle_ok(self):
        src = (
            "import numpy as np\n"
            "from repro.recovery import atomic_write\n"
            "def save_thing(path, arrays):\n"
            "    with atomic_write(path) as fh:\n"
            "        np.savez_compressed(fh, **arrays)\n"
        )
        assert lint_source(src) == []

    def test_sc501_open_write_in_persist_function(self):
        src = (
            "def save_report(path, body):\n"
            "    with open(path, 'w') as fh:\n"
            "        fh.write(body)\n"
        )
        assert [f.code for f in lint_source(src)] == ["SC501"]

    def test_sc501_open_write_mode_keyword(self):
        src = "def dump_state(path):\n    fh = open(path, mode='wb')\n"
        assert [f.code for f in lint_source(src)] == ["SC501"]

    def test_sc501_open_read_in_persist_function_ok(self):
        src = "def save_copy(path):\n    data = open(path, 'rb').read()\n"
        assert lint_source(src) == []

    def test_sc501_open_write_outside_persist_function_ok(self):
        # open-for-write is only a persistence smell inside save_*/
        # write_*/dump_*/persist_* functions (scratch files elsewhere
        # are legitimate); savez has no such carve-out.
        src = "def make_scratch(path):\n    fh = open(path, 'w')\n"
        assert lint_source(src) == []

    def test_sc501_write_text_in_persist_function(self):
        src = "def write_config(path, body):\n    path.write_text(body)\n"
        assert [f.code for f in lint_source(src)] == ["SC501"]

    def test_sc501_recovery_module_exempt(self):
        src = "import numpy as np\ndef f(path, arrays):\n    np.savez(path, **arrays)\n"
        assert lint_source(src, path="src/repro/recovery/atomic.py") == []

    def test_sc501_pragma_suppresses(self):
        src = (
            "import numpy as np\n"
            "def corrupt(path, arrays):\n"
            "    np.savez_compressed(path, **arrays)  # staticcheck: ignore[SC501]\n"
        )
        assert lint_source(src) == []

    def test_pragma_suppresses_one_code(self):
        src = "def f(c):\n    c[0] += 1  # staticcheck: ignore[SC301]\n"
        assert lint_source(src) == []

    def test_pragma_wrong_code_does_not_suppress(self):
        src = "def f(c):\n    c[0] += 1  # staticcheck: ignore[SC401]\n"
        assert [f.code for f in lint_source(src)] == ["SC301"]

    def test_bare_pragma_suppresses_everything(self):
        src = "try:\n    x = 1\nexcept:  # staticcheck: ignore\n    pass\n"
        assert lint_source(src) == []

    def test_syntax_error_reported_not_raised(self):
        assert [f.code for f in lint_source("def f(:\n")] == ["SC001"]


class TestLintPathsAndBaseline:
    def test_lint_paths_and_baseline_filtering(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(c):\n    c[0] += 1\n")
        findings = lint_paths([tmp_path], root=tmp_path)
        assert len(findings) == 1
        assert findings[0].subject == "bad.py"
        baseline_file = tmp_path / ".baseline"
        baseline_file.write_text(
            "# accepted debt\n" + findings[0].render() + "\n"
        )
        baseline = load_baseline(baseline_file)
        assert lint_paths([tmp_path], root=tmp_path, baseline=baseline) == []

    def test_load_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope") == set()

    def test_stale_baseline_entries_reported(self, tmp_path):
        from repro.staticcheck import lint_paths_with_baseline

        bad = tmp_path / "bad.py"
        bad.write_text("def f(c):\n    c[0] += 1\n")
        (findings,) = [lint_paths([tmp_path], root=tmp_path)]
        live = findings[0].render()
        baseline = {live, "gone.py:3: SC301 ancient suppressed finding"}
        filtered, stale = lint_paths_with_baseline(
            [tmp_path], baseline=baseline, root=tmp_path
        )
        assert filtered == []
        assert stale == {"gone.py:3: SC301 ancient suppressed finding"}

    def test_fully_used_baseline_has_no_stale(self, tmp_path):
        from repro.staticcheck import lint_paths_with_baseline

        bad = tmp_path / "bad.py"
        bad.write_text("def f(c):\n    c[0] += 1\n")
        findings = lint_paths([tmp_path], root=tmp_path)
        filtered, stale = lint_paths_with_baseline(
            [tmp_path], baseline={findings[0].render()}, root=tmp_path
        )
        assert filtered == [] and stale == set()

    def test_clean_tree_with_empty_baseline_no_stale(self, tmp_path):
        from repro.staticcheck import lint_paths_with_baseline

        good = tmp_path / "good.py"
        good.write_text("def f():\n    return 1\n")
        filtered, stale = lint_paths_with_baseline([tmp_path], baseline=set(),
                                                   root=tmp_path)
        assert filtered == [] and stale == set()

    def test_repo_source_tree_is_clean(self):
        """Satellite acceptance: zero contract findings on the final tree."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        findings = lint_paths([root / "src" / "repro"], root=root)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_shipped_baseline_is_empty(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        assert load_baseline(root / ".staticcheck.baseline") == set()


# ----------------------------------------------------------------------
# CLI surface


class TestCheckCli:
    def test_check_code_clean_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["check", "code"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_check_code_finds_violation(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("def f(c):\n    c.fill(0)\n")
        assert main(["check", "code", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "SC301" in out and "FAIL" in out

    def test_check_plan_clean_on_dataset(self, capsys):
        from repro.cli import main

        assert main(["check", "plan", "Cora", "-a", "2", "-t", "4"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_check_artifact_graph_spec(self, capsys):
        from repro.cli import main

        assert main(["check", "artifact", "Cora", "-a", "2"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_check_code_stale_baseline_warns_by_default(self, tmp_path, capsys):
        from repro.cli import main

        good = tmp_path / "good.py"
        good.write_text("def f():\n    return 1\n")
        stale = tmp_path / ".baseline"
        stale.write_text("gone.py:1: SC301 long-fixed finding\n")
        assert main(["check", "code", str(good), "--baseline", str(stale)]) == 0
        out = capsys.readouterr().out
        assert "stale baseline entry" in out

    def test_check_code_strict_baseline_fails_on_stale(self, tmp_path, capsys):
        from repro.cli import main

        good = tmp_path / "good.py"
        good.write_text("def f():\n    return 1\n")
        stale = tmp_path / ".baseline"
        stale.write_text("gone.py:1: SC301 long-fixed finding\n")
        assert main(
            ["check", "code", str(good), "--baseline", str(stale),
             "--strict-baseline"]
        ) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_check_code_json_report(self, tmp_path, capsys):
        import json

        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("def f(c):\n    c[0] += 1\n")
        out = tmp_path / "lint.json"
        assert main(
            ["check", "code", str(bad), "--baseline", "", "--json", str(out)]
        ) == 1
        payload = json.loads(out.read_text())
        assert payload["ok"] is False
        assert payload["findings"][0]["code"] == "SC301"
        assert payload["stale_baseline"] == []

    def test_check_concurrency_clean_on_dataset(self, tmp_path, capsys):
        import json

        from repro.cli import main

        out = tmp_path / "conc.json"
        assert main(
            ["check", "concurrency", "Cora", "-a", "2", "--shards", "2",
             "--json", str(out)]
        ) == 0
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        subjects = [r["subject"] for r in payload["reports"]]
        assert "stream-swap" in subjects and "lock-order" in subjects
        assert any("batch-layout" in s for s in subjects)
        assert any("shards=2" in s for s in subjects)

    def test_check_concurrency_fails_on_seeded_deadlock(self, tmp_path, capsys):
        from repro.cli import main

        seeded = tmp_path / "ab_ba.py"
        seeded.write_text(
            "import threading\n"
            "a_lock = threading.Lock()\n"
            "b_lock = threading.Lock()\n"
            "def fwd():\n"
            "    with a_lock:\n"
            "        with b_lock:\n"
            "            pass\n"
            "def bwd():\n"
            "    with b_lock:\n"
            "        with a_lock:\n"
            "            pass\n"
        )
        assert main(
            ["check", "concurrency", "Cora", "--paths", str(tmp_path)]
        ) == 1
        assert "SC701" in capsys.readouterr().out
