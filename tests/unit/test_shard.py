"""Unit tests for the sharded multi-process executor (PR 8).

Covers the whole fault-tolerance stack bottom-up: the shared-memory
registry and arena, degree-aware row partitioning (including the
degenerate shapes the ISSUE calls out: fewer rows than shards,
isolated vertices, empty graphs), the sharded plan's three execution
paths (threaded, raw process, supervised process) against the CSR
reference, the supervisor's failure ladder (retry -> quarantine ->
thread fallback -> breaker degradation) under deterministic chaos, and
the new static audits (HZ-S101..103, SC601).

Process-spawning tests keep graphs tiny (n <= 250) and timeouts short —
the whole module must stay cheap enough for tier-1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShardError
from repro.parallel import shm
from repro.parallel.shard import CRC, EPOCH, ShardedPlan, slice_crc
from repro.parallel.soak import run_shard_soak
from repro.parallel.supervisor import ShardSupervisor, unsupervised_execute
from repro.reliability.chaos import ShardChaos
from repro.serving import CircuitBreaker, ServeTier
from repro.sparse.blocked import ROW_BASE_COST, partition_rows
from repro.sparse.ops import spmm
from repro.staticcheck import analyze_shard_plan, lint_source

from tests.conftest import random_adjacency_csr


@pytest.fixture(autouse=True)
def _no_shm_leaks():
    # min_age_s=0: in the controlled test environment any dead-pid segment
    # is debris from a crashed earlier run, however young.
    shm.sweep_stale(min_age_s=0.0)
    yield
    leaked = shm.list_segments()
    assert not leaked, f"test leaked shared-memory segments: {leaked}"


def _dad_diag(a):
    return 1.0 / np.sqrt(a.row_nnz().astype(np.float64) + 1.0)


def _reference(a, b, variant="A", diag=None):
    if variant == "A":
        return spmm(a, b)
    scaled = spmm(a, b * diag[:, None].astype(b.dtype))
    if variant == "AD":
        return scaled
    return scaled * diag[:, None].astype(scaled.dtype)


# ---------------------------------------------------------------------------
# Shared-memory registry / arena
# ---------------------------------------------------------------------------
class TestShm:
    def test_create_release_roundtrip(self):
        seg = shm.create_segment(256)
        assert seg.name in shm.registered_segments()
        shm.release_segment(seg.name)
        assert seg.name not in shm.registered_segments()
        assert shm.list_segments() == []

    def test_shared_ndarray_visible_through_attach(self):
        spec, view, _seg = shm.shared_ndarray((5, 3), np.float32)
        try:
            view[...] = 7.0
            attached = shm.attach_ndarray(spec)
            np.testing.assert_array_equal(attached, view)
        finally:
            shm.release_segment(spec.segment)

    def test_arena_packs_disjoint_aligned_specs(self):
        arrays = [
            np.arange(10, dtype=np.int64),
            np.arange(7, dtype=np.float32),
            np.arange(3, dtype=np.float64),
        ]
        arena = shm.SegmentArena(shm.SegmentArena.plan_bytes(arrays))
        specs = [arena.pack(arr) for arr in arrays]
        try:
            for spec, arr in zip(specs, arrays):
                assert spec.offset % 16 == 0
                np.testing.assert_array_equal(arena.view(spec), arr)
            spans = sorted((s.offset, s.offset + s.nbytes) for s in specs)
            for (_, hi), (lo, _) in zip(spans, spans[1:]):
                assert hi <= lo
        finally:
            arena.release()

    def test_drain_all_unlinks_everything(self):
        shm.create_segment(64)
        shm.create_segment(64)
        shm.drain_all()
        assert shm.registered_segments() == []
        assert shm.list_segments() == []

    def test_attach_cache_eviction_never_invalidates_live_views(self):
        # Closing a cached SharedMemory unmaps it under any numpy views
        # still alive (silently — the next read segfaults), so overflowing
        # the attach cache must only ever evict mappings of segments whose
        # owner has already unlinked them.
        # Start from a clean cache: earlier tests' entries are all
        # unlinked (the leak fixture proves it), hence safely closable.
        for name in list(shm._ATTACH_CACHE):
            if shm._segment_unlinked(name):
                shm._ATTACH_CACHE.pop(name).close()
        assert not shm._ATTACH_CACHE
        specs, views = [], []
        try:
            for i in range(shm._ATTACH_CACHE_MAX + 8):
                spec, parent_view, _seg = shm.shared_ndarray((4,), np.float64)
                parent_view[...] = float(i)
                specs.append(spec)
                views.append(shm.attach_ndarray(spec))
            # Every segment is still linked, so nothing was evictable and
            # the cache legitimately exceeds its bound (= live working set).
            assert len(shm._ATTACH_CACHE) == len(specs)
            for i, v in enumerate(views):
                np.testing.assert_array_equal(v, float(i))
            # Retire the first half (views die first, as a finished task's
            # do), then trigger one more attach: only unlinked segments may
            # be evicted, and surviving views must stay intact.
            half = len(specs) // 2
            del views[:half]
            for spec in specs[:half]:
                shm.release_segment(spec.segment)
            extra, extra_view, _seg = shm.shared_ndarray((4,), np.float64)
            specs.append(extra)
            extra_view[...] = -1.0
            np.testing.assert_array_equal(shm.attach_ndarray(extra), -1.0)
            assert len(shm._ATTACH_CACHE) <= shm._ATTACH_CACHE_MAX
            for i, v in enumerate(views):
                np.testing.assert_array_equal(v, float(half + i))
        finally:
            del views
            for spec in specs:
                shm.release_segment(spec.segment)

    def test_sweep_stale_reaps_dead_pid_segments(self, tmp_path):
        # A segment named for a pid that no longer exists is debris from
        # a kill-9'd run; once old enough, sweep_stale must unlink it.
        import os
        import pathlib
        import time

        dead = pathlib.Path("/dev/shm/repro-shm-999999999-deadbeef")
        dead.write_bytes(b"\0" * 16)
        try:
            old = time.time() - 2 * shm.STALE_MIN_AGE_S
            os.utime(dead, (old, old))
            assert dead.name in shm.list_stale_segments()
            swept = shm.sweep_stale()
            assert dead.name in swept
            assert not dead.exists()
        finally:
            dead.unlink(missing_ok=True)

    def test_sweep_stale_spares_young_segments(self):
        # A fresh entry whose pid test fails could belong to a live run in
        # another pid namespace (shared /dev/shm): the age gate must keep
        # the sweep away from it until it is demonstrably old.
        import pathlib

        young = pathlib.Path("/dev/shm/repro-shm-999999999-cafef00d")
        young.write_bytes(b"\0" * 16)
        try:
            assert young.name not in shm.list_stale_segments()
            assert young.name not in shm.sweep_stale()
            assert young.exists()
        finally:
            young.unlink(missing_ok=True)


# ---------------------------------------------------------------------------
# Degree-aware row partitioning
# ---------------------------------------------------------------------------
class TestPartitionRows:
    def test_every_row_in_exactly_one_shard(self):
        cost = np.array([5, 1, 1, 1, 8, 1, 1, 2, 1, 1], dtype=np.float64)
        bounds = partition_rows(cost, 3)
        assert bounds[0][0] == 0 and bounds[-1][1] == cost.size
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo

    def test_balance_bound(self):
        rng = np.random.default_rng(3)
        cost = rng.integers(0, 50, size=500).astype(np.float64)
        for k in (2, 3, 7, 16):
            bounds = partition_rows(cost, k)
            loaded = cost + ROW_BASE_COST
            shard_costs = [loaded[lo:hi].sum() for lo, hi in bounds]
            assert max(shard_costs) <= loaded.sum() / k + loaded.max() + 1e-9

    def test_fewer_rows_than_shards(self):
        bounds = partition_rows(np.ones(3), 8)
        assert len(bounds) == 8
        assert bounds[0][0] == 0 and bounds[-1][1] == 3
        covered = sum(hi - lo for lo, hi in bounds)
        assert covered == 3  # some shards are legitimately empty

    def test_empty_matrix(self):
        bounds = partition_rows(np.empty(0), 4)
        assert bounds == [(0, 0)] * 4

    def test_isolated_vertices_still_distribute(self):
        # All-zero degree: without the per-row base cost every cut would
        # collapse to one shard holding the whole range.
        bounds = partition_rows(np.zeros(100), 4)
        sizes = [hi - lo for lo, hi in bounds]
        assert sizes == [25, 25, 25, 25]


# ---------------------------------------------------------------------------
# Sharded plan: construction + threaded execution
# ---------------------------------------------------------------------------
class TestShardedPlan:
    def test_threaded_matches_reference_all_variants(self):
        a = random_adjacency_csr(120, density=0.1, seed=5)
        b = np.random.default_rng(0).standard_normal((120, 6)).astype(np.float32)
        diag = _dad_diag(a)
        for variant in ("A", "AD", "DAD"):
            d = None if variant == "A" else diag
            with ShardedPlan(a, num_shards=3, variant=variant, diag=d) as plan:
                got = plan.execute_threaded(b)
                np.testing.assert_allclose(
                    got, _reference(a, b, variant, d), rtol=1e-4, atol=1e-4
                )

    def test_shards_cover_rows_and_audit_clean(self):
        a = random_adjacency_csr(90, density=0.15, seed=6)
        with ShardedPlan(a, num_shards=4) as plan:
            assert plan.bounds[0][0] == 0 and plan.bounds[-1][1] == 90
            report = analyze_shard_plan(plan)
            assert report.ok, report.render()

    def test_empty_graph_executes_to_zeros(self):
        from repro.sparse.convert import from_dense

        a = from_dense(np.zeros((12, 12), dtype=np.float32))
        b = np.ones((12, 2), dtype=np.float32)
        with ShardedPlan(a, num_shards=5) as plan:
            assert all(s.spec.is_zero for s in plan.shards)
            np.testing.assert_array_equal(plan.execute_threaded(b), 0.0)

    def test_verify_shard_epoch_and_checksum(self):
        a = random_adjacency_csr(60, density=0.2, seed=7)
        b = np.ones((60, 2), dtype=np.float32)
        with ShardedPlan(a, num_shards=2) as plan:
            _, _, out_view = plan.stage(b)
            lo, hi = plan.bounds[0]
            block = np.arange((hi - lo) * 2, dtype=out_view.dtype)
            out_view[lo:hi] = block.reshape(hi - lo, 2)
            plan.status[0, CRC] = float(slice_crc(out_view[lo:hi]))
            plan.status[0, EPOCH] = 3.0
            assert plan.verify_shard(0, 3, out_view, checksum=True)
            assert not plan.verify_shard(0, 2, out_view, checksum=False)
            out_view[lo] += 1.0  # torn: commit no longer matches bytes
            assert plan.verify_shard(0, 3, out_view, checksum=False)
            assert not plan.verify_shard(0, 3, out_view, checksum=True)

    def test_release_is_idempotent_and_unlinks(self):
        a = random_adjacency_csr(50, density=0.2, seed=8)
        plan = ShardedPlan(a, num_shards=2)
        plan.stage(np.ones((50, 2), dtype=np.float32))
        assert shm.list_segments()
        plan.release()
        plan.release()
        assert shm.list_segments() == []


# ---------------------------------------------------------------------------
# Supervisor: happy path + failure ladder (process-spawning, kept tiny)
# ---------------------------------------------------------------------------
class TestSupervisor:
    def test_no_fault_matches_reference(self):
        a = random_adjacency_csr(150, density=0.08, seed=9)
        diag = _dad_diag(a)
        b = np.random.default_rng(1).standard_normal((150, 4)).astype(np.float32)
        with ShardedPlan(a, num_shards=3, variant="DAD", diag=diag) as plan:
            with ShardSupervisor(plan, workers=2) as sup:
                got = sup.execute(b)
                np.testing.assert_allclose(
                    got, _reference(a, b, "DAD", diag), rtol=1e-4, atol=1e-4
                )
                assert sup.stats["executions"] == 1
                assert sup.stats["thread_fallbacks"] == 0

    def test_epochs_advance_past_unsupervised_commits(self):
        # The status board is shared by every executor of the plan; a
        # supervisor whose private counter lags the board would reuse an
        # epoch number and mistake that stale commit for fresh work.
        a = random_adjacency_csr(60, density=0.1, seed=18)
        b = np.ones((60, 2), dtype=np.float32)
        with ShardedPlan(a, num_shards=2) as plan:
            with ShardSupervisor(plan, workers=2) as sup:
                sup.execute(b)
                e1 = int(plan.status[:, EPOCH].max())
                assert e1 >= 1
                unsupervised_execute(plan, b, workers=2)
                e2 = int(plan.status[:, EPOCH].max())
                assert e2 > e1
                sup.execute(b)
                assert int(plan.status[:, EPOCH].max()) > e2

    def test_out_parameter_is_filled_in_place(self):
        a = random_adjacency_csr(80, density=0.1, seed=10)
        b = np.ones((80, 2), dtype=np.float32)
        out = np.empty((80, 2), dtype=np.float32)
        with ShardedPlan(a, num_shards=2) as plan:
            with ShardSupervisor(plan, workers=2) as sup:
                got = sup.execute(b, out=out)
                assert got is out
                np.testing.assert_allclose(out, spmm(a, b), rtol=1e-4, atol=1e-4)


@pytest.mark.chaos
class TestSupervisorUnderChaos:
    def test_guaranteed_kills_degrade_to_thread_fallback(self):
        # kill_rate=1.0: every process attempt dies, so correctness can
        # only come from quarantine + the in-process fallback.
        a = random_adjacency_csr(100, density=0.1, seed=11)
        b = np.random.default_rng(2).standard_normal((100, 3)).astype(np.float32)
        chaos = ShardChaos(kill_rate=1.0, seed=1)
        with ShardedPlan(a, num_shards=2) as plan:
            with ShardSupervisor(
                plan, workers=2, chaos=chaos, quarantine_after=1,
                heartbeat_timeout_s=2.0,
            ) as sup:
                got = sup.execute(b)
                np.testing.assert_allclose(got, spmm(a, b), rtol=1e-4, atol=1e-4)
                assert sup.stats["quarantines"] > 0
                assert sup.stats["thread_fallbacks"] > 0

    def test_torn_writes_rejected_by_checksum(self):
        # torn_rate=1.0: every commit lies (full-result CRC + epoch over
        # a half-written slice).  Varying b per execution is what makes
        # the tear visible — the stale half would otherwise still hold
        # the previous identical answer.
        a = random_adjacency_csr(100, density=0.1, seed=12)
        rng = np.random.default_rng(3)
        chaos = ShardChaos(torn_rate=1.0, seed=2)
        with ShardedPlan(a, num_shards=2) as plan:
            with ShardSupervisor(
                plan, workers=2, chaos=chaos, quarantine_after=1
            ) as sup:
                for _ in range(2):
                    b = rng.standard_normal((100, 3)).astype(np.float32)
                    got = sup.execute(b)
                    np.testing.assert_allclose(
                        got, spmm(a, b), rtol=1e-4, atol=1e-4
                    )
                assert sup.stats["checksum_rejects"] > 0

    def test_stall_triggers_heartbeat_kill(self):
        a = random_adjacency_csr(80, density=0.1, seed=13)
        b = np.ones((80, 2), dtype=np.float32)
        chaos = ShardChaos(stall_rate=1.0, stall_seconds=30.0, seed=3)
        with ShardedPlan(a, num_shards=2) as plan:
            with ShardSupervisor(
                plan, workers=2, chaos=chaos, quarantine_after=1,
                heartbeat_timeout_s=0.4, poll_interval_s=0.02,
            ) as sup:
                got = sup.execute(b)
                np.testing.assert_allclose(got, spmm(a, b), rtol=1e-4, atol=1e-4)
                assert sup.stats["heartbeat_kills"] > 0

    def test_fresh_supervisor_on_used_plan_rejects_stale_commits(self):
        # Epoch-collision regression: supervisor #1 commits epoch 1 on the
        # shared board; a *new* supervisor on the same plan starting its
        # counter from scratch would reuse epoch 1, and a shard whose
        # worker stalls before recommitting would then verify against the
        # previous operand's bytes — CRC and all, since the staged output
        # still holds them — and serve a stale answer.
        a = random_adjacency_csr(80, density=0.1, seed=17)
        rng = np.random.default_rng(8)
        b1 = rng.standard_normal((80, 2)).astype(np.float32)
        b2 = rng.standard_normal((80, 2)).astype(np.float32)
        with ShardedPlan(a, num_shards=2) as plan:
            with ShardSupervisor(plan, workers=2) as sup1:
                np.testing.assert_allclose(
                    sup1.execute(b1), spmm(a, b1), rtol=1e-4, atol=1e-4
                )
            assert int(plan.status[:, EPOCH].max()) >= 1
            chaos = ShardChaos(stall_rate=1.0, stall_seconds=30.0, seed=9)
            with ShardSupervisor(
                plan, workers=2, chaos=chaos, quarantine_after=1,
                heartbeat_timeout_s=0.4, poll_interval_s=0.02,
            ) as sup2:
                got = sup2.execute(b2)
                np.testing.assert_allclose(got, spmm(a, b2), rtol=1e-4, atol=1e-4)
                assert sup2.stats["thread_fallbacks"] > 0

    def test_breaker_degrades_whole_plan_after_repeated_failures(self):
        # Fast-tripping window + a cooldown longer than the test: each
        # execution's internal failures ratchet the tier up and no
        # half-open probe can climb back down, so back-to-back
        # executions walk FAST -> GUARDED -> DEGRADED deterministically
        # and stay there (acquire() inside the cooldown returns the
        # tripped tier itself).
        a = random_adjacency_csr(80, density=0.1, seed=14)
        b = np.ones((80, 2), dtype=np.float32)
        chaos = ShardChaos(kill_rate=1.0, seed=4)
        breaker = CircuitBreaker(
            window=4, failure_threshold=2, failure_rate=0.5,
            cooldown_s=60.0, max_cooldown_s=120.0,
        )
        with ShardedPlan(a, num_shards=2) as plan:
            with ShardSupervisor(
                plan, workers=2, chaos=chaos, quarantine_after=1,
                breaker=breaker,
            ) as sup:
                for _ in range(8):
                    np.testing.assert_allclose(
                        sup.execute(b), spmm(a, b), rtol=1e-4, atol=1e-4
                    )
                    if sup.stats["degraded_executions"] > 0:
                        break
                assert sup.breaker.tier is ServeTier.DEGRADED
                assert sup.stats["degraded_executions"] > 0

    def test_unsupervised_is_the_negative_control(self):
        a = random_adjacency_csr(80, density=0.1, seed=15)
        rng = np.random.default_rng(5)
        chaos = ShardChaos(torn_rate=1.0, seed=6)
        with ShardedPlan(a, num_shards=2) as plan:
            harmed = 0
            for _ in range(3):
                b = rng.standard_normal((80, 2)).astype(np.float32)
                try:
                    got = unsupervised_execute(
                        plan, b, workers=2, chaos=chaos, timeout_s=10.0
                    )
                except Exception:
                    harmed += 1
                    continue
                if not np.allclose(got, spmm(a, b), rtol=1e-4, atol=1e-4):
                    harmed += 1
            assert harmed > 0, "chaos had no teeth against the unsupervised path"


@pytest.mark.chaos
class TestShardSoak:
    def test_supervised_soak_passes(self):
        report = run_shard_soak(
            n=150, num_shards=3, workers=2, executions=6, columns=3,
            kill_rate=0.3, stall_rate=0.0, torn_rate=0.3,
            heartbeat_timeout_s=1.0, quarantine_after=2, seed=0,
        )
        assert report["ok"], report["violations"]
        assert report["faults_decided"] > 0

    def test_unsupervised_soak_fails(self):
        report = run_shard_soak(
            n=150, num_shards=3, workers=2, executions=6, columns=3,
            kill_rate=0.0, stall_rate=0.0, torn_rate=0.8,
            supervised=False, seed=0,
        )
        assert not report["ok"]
        assert report["wrong"] + report["errors"] > 0


class TestShardError:
    def test_unrecoverable_shard_invalidates_output(self, monkeypatch):
        a = random_adjacency_csr(60, density=0.1, seed=16)
        b = np.ones((60, 2), dtype=np.float32)
        chaos = ShardChaos(kill_rate=1.0, seed=7)
        with ShardedPlan(a, num_shards=2) as plan:
            with ShardSupervisor(
                plan, workers=2, chaos=chaos, quarantine_after=1
            ) as sup:
                def broken(index, b_, out_):
                    raise RuntimeError("fallback broken too")

                monkeypatch.setattr(plan, "execute_shard_threaded", broken)
                with pytest.raises(ShardError):
                    sup.execute(b)
                # Restore-or-invalidate: the staged output must never be
                # servable as a real result after the failure.
                assert np.isnan(np.asarray(plan._out_view)).any()


# ---------------------------------------------------------------------------
# Static audits: HZ-S101..103 + SC601
# ---------------------------------------------------------------------------
class TestShardPlanHazards:
    def test_coverage_gap_flagged(self):
        report = analyze_shard_plan(bounds=[(0, 4), (6, 10)], n_rows=10)
        assert not report.ok
        assert any(f.code == "HZ-S101" for f in report.findings)

    def test_overlap_flagged(self):
        report = analyze_shard_plan(bounds=[(0, 6), (4, 10)], n_rows=10)
        assert not report.ok
        assert any(f.code == "HZ-S102" for f in report.findings)

    def test_invalid_bounds_flagged(self):
        report = analyze_shard_plan(bounds=[(0, 12)], n_rows=10)
        assert not report.ok
        assert any(f.code == "HZ-S102" for f in report.findings)

    def test_segment_aliasing_flagged(self):
        layout = [
            {"shard": 0, "array": "x", "segment": "seg-a", "offset": 0, "nbytes": 64},
            {"shard": 1, "array": "y", "segment": "seg-a", "offset": 32, "nbytes": 64},
        ]
        report = analyze_shard_plan(bounds=[(0, 5), (5, 10)], n_rows=10, layout=layout)
        assert not report.ok
        assert any(f.code == "HZ-S103" for f in report.findings)

    def test_clean_synthetic_plan_passes(self):
        layout = [
            {"shard": 0, "array": "x", "segment": "seg-a", "offset": 0, "nbytes": 32},
            {"shard": 1, "array": "y", "segment": "seg-a", "offset": 32, "nbytes": 32},
        ]
        report = analyze_shard_plan(bounds=[(0, 5), (5, 10)], n_rows=10, layout=layout)
        assert report.ok, report.render()


class TestSC601:
    OFFENDER = (
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def leak():\n"
        "    return SharedMemory(create=True, size=64)\n"
    )

    def test_raw_shared_memory_flagged(self):
        findings = lint_source(self.OFFENDER, path="src/repro/serving/x.py")
        assert any(f.code == "SC601" for f in findings)

    def test_shm_module_exempt(self):
        findings = lint_source(self.OFFENDER, path="src/repro/parallel/shm.py")
        assert not any(f.code == "SC601" for f in findings)

    def test_pragma_suppresses(self):
        src = self.OFFENDER.replace(
            "SharedMemory(create=True, size=64)",
            "SharedMemory(create=True, size=64)  # staticcheck: ignore[SC601]",
        )
        findings = lint_source(src, path="src/repro/serving/x.py")
        assert not any(f.code == "SC601" for f in findings)
