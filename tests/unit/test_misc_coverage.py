"""Cross-cutting coverage: error hierarchy, matvec variants, experiment
constants, and protocol conformance."""

import numpy as np
import pytest

from repro import errors
from repro.bench.experiments import (
    PAPER_AX_SPEEDUPS,
    PAPER_BEST_ALPHA,
    PAPER_GCN_SPEEDUPS,
    run_training_table,
)
from repro.core.builder import build_cbm
from repro.gnn.adjacency import AdjacencyOp, CBMAdjacency, CSRAdjacency
from repro.graphs.datasets import REGISTRY

from tests.conftest import random_adjacency_csr


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "ShapeError",
            "DTypeError",
            "NotBinaryError",
            "FormatError",
            "CompressionError",
            "TreeError",
            "DatasetError",
            "ConvergenceError",
            "ParallelError",
            "GNNError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_dual_inheritance(self):
        """Library errors also subclass the matching builtin, so callers
        catching ValueError/TypeError/KeyError keep working."""
        assert issubclass(errors.ShapeError, ValueError)
        assert issubclass(errors.DTypeError, TypeError)
        assert issubclass(errors.DatasetError, KeyError)
        assert issubclass(errors.CompressionError, RuntimeError)

    def test_shape_mismatch_helper(self):
        e = errors.ShapeError.mismatch("op", (2, 3), (4, 5))
        assert "op" in str(e) and "(2, 3)" in str(e)


class TestMatvecVariants:
    """The dedicated 1-D kernel across variants, modes, and scalings."""

    @pytest.mark.parametrize("update", ["level", "edge"])
    @pytest.mark.parametrize("scaling", ["deferred", "fused"])
    def test_dad_matvec(self, update, scaling):
        rng = np.random.default_rng(0)
        a = random_adjacency_csr(30, seed=1)
        d = rng.random(30) + 0.5
        cbm, _ = build_cbm(a, alpha=2, variant="DAD", diag=d)
        v = rng.random(30).astype(np.float32)
        ref = (d[:, None] * a.toarray() * d) @ v
        got = cbm.matvec(v, update=update, scaling=scaling)
        assert got.shape == (30,)
        assert np.allclose(got, ref, rtol=1e-4)

    def test_d1ad2_matvec(self):
        rng = np.random.default_rng(1)
        a = random_adjacency_csr(25, seed=2)
        d1, d2 = rng.random(25) + 0.5, rng.random(25) + 0.5
        cbm, _ = build_cbm(a, alpha=0, variant="D1AD2", diag=d2, diag_left=d1)
        v = rng.random(25).astype(np.float32)
        ref = (d1[:, None] * a.toarray() * d2) @ v
        assert np.allclose(cbm.matvec(v), ref, rtol=1e-4)

    def test_matvec_matches_matmul_column(self):
        a = random_adjacency_csr(20, seed=3)
        cbm, _ = build_cbm(a, alpha=0)
        v = np.random.default_rng(2).random(20).astype(np.float32)
        assert np.allclose(cbm.matvec(v), cbm.matmul(v[:, None])[:, 0], rtol=1e-6)

    def test_matvec_bad_mode(self):
        a = random_adjacency_csr(10, seed=4)
        cbm, _ = build_cbm(a)
        with pytest.raises(ValueError):
            cbm.matvec(np.ones(10, dtype=np.float32), update="nope")


class TestExperimentConstants:
    def test_alpha_tables_cover_all_datasets(self):
        for table in (PAPER_BEST_ALPHA, PAPER_AX_SPEEDUPS, PAPER_GCN_SPEEDUPS):
            assert set(table) == set(REGISTRY)

    def test_best_alphas_are_valid(self):
        for seq, par in PAPER_BEST_ALPHA.values():
            assert seq >= 0 and par >= 0

    def test_training_table_runner(self):
        rows, text = run_training_table(datasets=("Cora",), feature_dim=16, hidden=16)
        assert len(rows) == 1
        assert float(rows[0]["Speedup"]) > 0
        assert "Training extension" in text


class TestAdjacencyProtocol:
    def test_runtime_checkable(self):
        a = random_adjacency_csr(15, seed=5)
        assert isinstance(CSRAdjacency.from_graph(a), AdjacencyOp)
        assert isinstance(CBMAdjacency.from_graph(a), AdjacencyOp)

    def test_csr_from_prebuilt_a_hat(self):
        from repro.graphs.laplacian import normalized_adjacency

        a = random_adjacency_csr(15, seed=6)
        op = CSRAdjacency(normalized_adjacency(a))
        x = np.random.default_rng(3).random((15, 4)).astype(np.float32)
        ref = normalized_adjacency(a).toarray() @ x
        assert np.allclose(op.matmul(x), ref, rtol=1e-5)
