"""Unit tests for the blocked kernels and the roofline report."""

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.errors import ShapeError
from repro.parallel.report import cost_breakdown, render_breakdown
from repro.sparse.blocked import (
    cbm_matmul_blocked,
    panel_bounds,
    spmm_blocked,
    sweep_panel_sizes,
)
from repro.sparse.ops import spmm

from tests.conftest import random_adjacency_csr


class TestPanelBounds:
    def test_exact_division(self):
        assert panel_bounds(8, 4) == [(0, 4), (4, 8)]

    def test_remainder(self):
        assert panel_bounds(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_panel_larger_than_total(self):
        assert panel_bounds(3, 100) == [(0, 3)]

    def test_invalid_panel(self):
        with pytest.raises(ValueError):
            panel_bounds(10, 0)


class TestBlockedKernels:
    @pytest.mark.parametrize("panel", [1, 3, 16, 64, 1000])
    def test_spmm_blocked_matches_unblocked(self, panel):
        a = random_adjacency_csr(30, seed=0)
        x = np.random.default_rng(0).random((30, 17)).astype(np.float32)
        assert np.allclose(spmm_blocked(a, x, panel=panel), spmm(a, x), rtol=1e-6)

    @pytest.mark.parametrize("panel", [1, 7, 32])
    def test_cbm_blocked_matches_unblocked(self, panel):
        a = random_adjacency_csr(30, seed=1)
        cbm, _ = build_cbm(a, alpha=0)
        x = np.random.default_rng(1).random((30, 19)).astype(np.float32)
        assert np.allclose(
            cbm_matmul_blocked(cbm, x, panel=panel), cbm.matmul(x), rtol=1e-5
        )

    def test_cbm_blocked_dad_variant(self):
        rng = np.random.default_rng(2)
        a = random_adjacency_csr(25, seed=2)
        d = rng.random(25) + 0.5
        cbm, _ = build_cbm(a, alpha=2, variant="DAD", diag=d)
        x = rng.random((25, 11)).astype(np.float32)
        assert np.allclose(cbm_matmul_blocked(cbm, x, panel=4), cbm.matmul(x), rtol=1e-5)

    def test_shape_mismatch(self):
        a = random_adjacency_csr(10, seed=3)
        with pytest.raises(ShapeError):
            spmm_blocked(a, np.ones((3, 4), dtype=np.float32))
        cbm, _ = build_cbm(a)
        with pytest.raises(ShapeError):
            cbm_matmul_blocked(cbm, np.ones((3, 4), dtype=np.float32))

    def test_sweep_returns_all_panels(self):
        a = random_adjacency_csr(20, seed=4)
        x = np.random.default_rng(3).random((20, 8)).astype(np.float32)
        results = sweep_panel_sizes(
            lambda panel: spmm_blocked(a, x, panel=panel), 8, panels=(4, 8, 64)
        )
        assert [p for p, _ in results] == [4, 8, 64]
        assert all(t > 0 for _, t in results)


class TestCostBreakdown:
    def test_rows_and_fields(self):
        a = random_adjacency_csr(40, density=0.3, seed=5)
        cbm, _ = build_cbm(a, alpha=0)
        rows = cost_breakdown(a, cbm, 100, core_counts=(1, 16))
        assert len(rows) == 4
        kernels = {(r.kernel, r.cores) for r in rows}
        assert kernels == {("CSR", 1), ("CBM", 1), ("CSR", 16), ("CBM", 16)}
        for r in rows:
            assert r.total_s > 0
            assert r.tier in ("private", "shared", "dram")
            assert r.bound in ("compute", "memory")

    def test_csr_has_no_update_term(self):
        a = random_adjacency_csr(30, seed=6)
        cbm, _ = build_cbm(a, alpha=0)
        for r in cost_breakdown(a, cbm, 64):
            if r.kernel == "CSR":
                assert r.update_s == 0.0

    def test_render(self):
        a = random_adjacency_csr(30, seed=7)
        cbm, _ = build_cbm(a, alpha=0)
        text = render_breakdown(cost_breakdown(a, cbm, 64), "T")
        assert "CacheTier" in text and "CSR" in text and "CBM" in text
