"""Unit tests for the streaming tier: patches, drift, rebuilds, pins."""

from pathlib import Path

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.errors import CompressionError, RecoveryError, ShapeError, StalenessError
from repro.recovery import GenerationStore
from repro.serving import AdjacencySlot, InferenceService
from repro.sparse.ops import spmm
from repro.staticcheck import audit_archive, audit_cbm
from repro.streaming import (
    BackgroundRebuilder,
    DriftPolicy,
    DriftTracker,
    EdgeBatch,
    MutableAdjacency,
    patch_cbm,
    publish_snapshot,
)

from tests.conftest import random_adjacency_csr


def toggle_reference(a, batch):
    """Dense reference of the graph after applying ``batch``."""
    d = a.toarray().copy()
    for u, v in batch.inserts:
        d[u, v] = 1.0
    for u, v in batch.deletes:
        d[u, v] = 0.0
    return d


class TestEdgeBatch:
    def test_random_inserts_are_new_edges(self):
        a = random_adjacency_csr(30, density=0.2, seed=1)
        b = EdgeBatch.random(a, inserts=5, deletes=5, seed=3)
        d = a.toarray()
        for u, v in b.inserts:
            assert d[u, v] == 0.0 and u != v
        for u, v in b.deletes:
            assert d[u, v] == 1.0

    def test_symmetric_batches_mirror(self):
        a = random_adjacency_csr(30, density=0.2, seed=2)
        b = EdgeBatch.random(a, inserts=4, deletes=4, seed=5, symmetric=True)
        ins = {(int(u), int(v)) for u, v in b.inserts}
        for u, v in ins:
            assert (v, u) in ins

    def test_num_edges(self):
        a = random_adjacency_csr(20, density=0.3, seed=3)
        b = EdgeBatch.random(a, inserts=2, deletes=3, seed=1, symmetric=False)
        assert b.num_edges == len(b.inserts) + len(b.deletes)


class TestPatchCBM:
    def test_patched_matches_toggled_reference(self):
        a = random_adjacency_csr(50, density=0.15, seed=4)
        cbm, _ = build_cbm(a, alpha=0)
        b = EdgeBatch.random(a, inserts=6, deletes=6, seed=9)
        cbm2, src2, _ = patch_cbm(cbm, a, b)
        ref = toggle_reference(a, b)
        assert np.array_equal(src2.toarray(), ref)
        assert np.array_equal(cbm2.tocsr().toarray(), ref)

    def test_product_matches_csr(self):
        a = random_adjacency_csr(40, density=0.2, seed=5)
        cbm, _ = build_cbm(a, alpha=2)
        b = EdgeBatch.random(a, inserts=4, deletes=4, seed=2)
        cbm2, src2, _ = patch_cbm(cbm, a, b)
        x = np.random.default_rng(0).random((40, 3)).astype(np.float32)
        assert np.allclose(cbm2.matmul(x), spmm(src2, x), rtol=1e-4)

    def test_original_pair_untouched(self):
        a = random_adjacency_csr(30, density=0.2, seed=6)
        cbm, _ = build_cbm(a, alpha=0)
        before = a.toarray().copy()
        deltas = cbm.num_deltas
        b = EdgeBatch.random(a, inserts=3, deletes=3, seed=4)
        patch_cbm(cbm, a, b)
        assert np.array_equal(a.toarray(), before)
        assert cbm.num_deltas == deltas

    def test_noop_edges_counted(self):
        a = random_adjacency_csr(20, density=0.3, seed=7)
        cbm, _ = build_cbm(a, alpha=0)
        d = a.toarray()
        u, v = map(int, np.argwhere(d > 0)[0])
        missing = map(int, np.argwhere((d == 0) & ~np.eye(20, dtype=bool))[0])
        mu, mv = missing
        batch = EdgeBatch(
            inserts=np.array([[u, v]]),  # already present -> no-op
            deletes=np.array([[mu, mv]]),  # already absent -> no-op
        )
        cbm2, src2, stats = patch_cbm(cbm, a, batch)
        assert stats["noops"] == 2
        assert np.array_equal(src2.toarray(), d)

    def test_patched_audit_passes_with_budget(self):
        a = random_adjacency_csr(40, density=0.2, seed=8)
        cbm, _ = build_cbm(a, alpha=0)
        src = a
        for j in range(4):
            b = EdgeBatch.random(src, inserts=4, deletes=4, seed=20 + j)
            cbm, src, _ = patch_cbm(cbm, src, b)
        budget = max(1, 2 * int(cbm.num_deltas))
        rep = audit_cbm(cbm, subject="patched", staleness_budget=budget)
        assert rep.ok, [f"{f.code}: {f.message}" for f in rep.findings]

    def test_rejects_non_variant_a(self):
        a = random_adjacency_csr(20, density=0.3, seed=9)
        d = np.random.default_rng(1).random(20) + 0.5
        cbm, _ = build_cbm(a, alpha=0, variant="DAD", diag=d)
        b = EdgeBatch.random(a, inserts=2, deletes=2, seed=1)
        with pytest.raises(CompressionError):
            patch_cbm(cbm, a, b)

    def test_rejects_out_of_range_edges(self):
        a = random_adjacency_csr(20, density=0.3, seed=10)
        cbm, _ = build_cbm(a, alpha=0)
        with pytest.raises(ShapeError):
            patch_cbm(cbm, a, EdgeBatch(inserts=np.array([[0, 99]])))

    def test_rejects_insert_delete_conflict(self):
        a = random_adjacency_csr(20, density=0.3, seed=11)
        cbm, _ = build_cbm(a, alpha=0)
        edge = np.array([[1, 2]])
        with pytest.raises(CompressionError):
            patch_cbm(cbm, a, EdgeBatch(inserts=edge, deletes=edge))


class TestMutableAdjacency:
    def test_versions_and_exactness(self):
        a = random_adjacency_csr(40, density=0.2, seed=12)
        m = MutableAdjacency.from_graph(a)
        assert m.version == 0
        for j in range(3):
            _, _, src = m.snapshot()
            m.apply(EdgeBatch.random(src, inserts=3, deletes=3, seed=j))
        v, cbm, src = m.snapshot()
        assert v == 3
        assert np.array_equal(cbm.tocsr().toarray(), src.toarray())

    def test_snapshots_are_immutable(self):
        a = random_adjacency_csr(30, density=0.2, seed=13)
        m = MutableAdjacency.from_graph(a)
        v0, cbm0, src0 = m.snapshot()
        before = src0.toarray().copy()
        _, _, src = m.snapshot()
        m.apply(EdgeBatch.random(src, inserts=3, deletes=3, seed=1))
        assert np.array_equal(src0.toarray(), before)
        assert np.array_equal(cbm0.tocsr().toarray(), before)

    def test_journal_overflow_raises_staleness(self):
        a = random_adjacency_csr(30, density=0.2, seed=14)
        m = MutableAdjacency.from_graph(a, journal_limit=2)
        for j in range(2):
            _, _, src = m.snapshot()
            m.apply(EdgeBatch.random(src, inserts=2, deletes=2, seed=j))
        _, _, src = m.snapshot()
        with pytest.raises(StalenessError):
            m.apply(EdgeBatch.random(src, inserts=2, deletes=2, seed=9))

    def test_rebase_replays_concurrent_batches(self):
        a = random_adjacency_csr(40, density=0.2, seed=15)
        m = MutableAdjacency.from_graph(a)
        _, _, src = m.snapshot()
        m.apply(EdgeBatch.random(src, inserts=3, deletes=3, seed=1))
        # A rebuild starts from version 1...
        built_version, _, built_src = m.snapshot()
        fresh, _ = build_cbm(built_src, alpha=0)
        # ...while two more batches land mid-build.
        for j in (2, 3):
            _, _, src = m.snapshot()
            m.apply(EdgeBatch.random(src, inserts=3, deletes=3, seed=j))
        version, cbm, src, replayed = m.rebase(
            fresh, built_version=built_version, source=built_src
        )
        assert replayed == 2
        assert version == m.version == 3
        assert np.array_equal(cbm.tocsr().toarray(), src.toarray())

    def test_rebase_rejects_future_version(self):
        a = random_adjacency_csr(20, density=0.3, seed=16)
        m = MutableAdjacency.from_graph(a)
        fresh, _ = build_cbm(a, alpha=0)
        with pytest.raises(CompressionError):
            m.rebase(fresh, built_version=5)


class TestDriftTracker:
    def _mutated(self, n_batches, policy=None):
        a = random_adjacency_csr(40, density=0.2, seed=17)
        tracker = DriftTracker(policy)
        m = MutableAdjacency.from_graph(a, tracker=tracker)
        for j in range(n_batches):
            _, _, src = m.snapshot()
            m.apply(EdgeBatch.random(src, inserts=4, deletes=4, seed=j))
        return m, tracker

    def test_fresh_build_has_zero_drift(self):
        _, tracker = self._mutated(0)
        assert tracker.drift() == 0.0
        assert tracker.staleness() == 0
        assert not tracker.should_rebuild()

    def test_staleness_counts_batches(self):
        _, tracker = self._mutated(3)
        assert tracker.staleness() == 3
        assert tracker.drift() >= 0.0

    def test_budget_triggers_rebuild(self):
        _, tracker = self._mutated(4, DriftPolicy(staleness_budget=4, max_drift=10.0))
        assert tracker.should_rebuild()

    def test_enforce_raises_staleness_error(self):
        policy = DriftPolicy(staleness_budget=2, enforce=True)
        with pytest.raises(StalenessError) as exc_info:
            self._mutated(3, policy)
        assert exc_info.value.staleness == 2
        assert exc_info.value.budget == 2

    def test_rebase_resets_counters(self):
        m, tracker = self._mutated(3)
        _, _, src = m.snapshot()
        fresh, _ = build_cbm(src, alpha=0)
        m.rebase(fresh, built_version=m.version, source=src)
        assert tracker.staleness() == 0
        assert tracker.drift() == 0.0
        assert tracker.snapshot()["rebuilds"] == 1

    def test_snapshot_keys(self):
        _, tracker = self._mutated(1)
        snap = tracker.snapshot()
        for key in (
            "drift", "staleness", "staleness_budget", "version",
            "rebuilt_version", "rebuilds", "baseline_ops", "live_ops",
        ):
            assert key in snap

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DriftPolicy(max_drift=-0.1)
        with pytest.raises(ValueError):
            DriftPolicy(staleness_budget=0)


class TestGenerationPins:
    def _store_with_gens(self, tmp_path, count, retain=None):
        store = GenerationStore(tmp_path / "store", retain=retain)
        for i in range(count):
            with store.begin(meta={"kind": "blob"}) as txn:
                Path(txn.path(f"payload-{i}.bin")).write_bytes(b"x" * 16)
        return store

    def test_pin_is_refcounted(self, tmp_path):
        store = self._store_with_gens(tmp_path, 1)
        assert store.pin(1) == 1
        assert store.pin(1) == 2
        assert store.release(1) == 1
        assert store.pinned() == {1}
        assert store.release(1) == 0
        assert store.pinned() == set()

    def test_release_without_pin_raises(self, tmp_path):
        store = self._store_with_gens(tmp_path, 1)
        with pytest.raises(RecoveryError):
            store.release(1)

    def test_prune_skips_pinned(self, tmp_path):
        store = self._store_with_gens(tmp_path, 5)
        store.pin(1)
        removed = store.prune(keep=2)
        assert 1 not in removed
        assert (store.root / "gen-000001").is_dir()
        assert not (store.root / "gen-000002").exists()
        # Once released, the next prune may reclaim it.
        store.release(1)
        assert 1 in store.prune(keep=2)

    def test_retention_commit_never_reclaims_pinned(self, tmp_path):
        store = self._store_with_gens(tmp_path, 1, retain=2)
        store.pin(1)
        for i in range(4):
            with store.begin(meta={"kind": "blob"}) as txn:
                Path(txn.path(f"p{i}.bin")).write_bytes(b"y" * 8)
        assert (store.root / "gen-000001").is_dir()
        assert [g.index for g in store.generations()][-2:] == [4, 5]


def _make_service_store(tmp_path, n=40, seed=18, retain=None):
    a = random_adjacency_csr(n, density=0.2, seed=seed)
    cbm, _ = build_cbm(a, alpha=0)
    store = GenerationStore(tmp_path / "store", retain=retain)
    from repro.core.io import save_cbm

    with store.begin(meta={"kind": "cbm-archive", "graph_version": 7}) as txn:
        save_cbm(txn.path("adjacency.npz", kind="cbm"), cbm)
    service = InferenceService(AdjacencySlot(cbm, a), workers=1)
    return a, cbm, store, service


class TestServiceIntegration:
    def test_swap_generation_pins_and_retire_releases(self, tmp_path):
        a, cbm, store, service = _make_service_store(tmp_path)
        with service:
            summary = service.swap_generation(store)
            assert summary["store_generation"] == 1
            assert store.pinned() == {1}
            assert service._slot.graph_version == 7
            # Swapping again retires the pinned slot and releases it.
            service.swap_slot(AdjacencySlot(cbm, a))
            assert store.pinned() == set()

    def test_health_exposes_streaming_counters(self, tmp_path):
        a = random_adjacency_csr(30, density=0.2, seed=19)
        tracker = DriftTracker()
        m = MutableAdjacency.from_graph(a, tracker=tracker)
        v, cbm, src = m.snapshot()
        slot = AdjacencySlot(cbm, src, tracker=tracker)
        slot.graph_version = v
        with InferenceService(slot, workers=1) as service:
            _, _, src = m.snapshot()
            m.apply(EdgeBatch.random(src, inserts=3, deletes=3, seed=1))
            health = service.health()
            streaming = health["streaming"]
            assert streaming["staleness"] == 1
            assert streaming["graph_version"] == 0
            assert streaming["pinned_store_generation"] is None

    def test_publish_snapshot_bumps_generation(self):
        a = random_adjacency_csr(30, density=0.2, seed=20)
        m = MutableAdjacency.from_graph(a)
        v, cbm, src = m.snapshot()
        with InferenceService(AdjacencySlot(cbm, src), workers=1) as service:
            _, _, src = m.snapshot()
            m.apply(EdgeBatch.random(src, inserts=3, deletes=3, seed=2))
            version, gen, slot = publish_snapshot(m, service)
            assert version == 1 and gen == 1
            x = np.random.default_rng(2).random((30, 2)).astype(np.float32)
            y = service.submit(x).result(10.0)
            assert np.array_equal(y, slot.cbm.matmul(x))


class TestBackgroundRebuilder:
    def test_rebuild_once_commits_and_publishes(self, tmp_path):
        a = random_adjacency_csr(40, density=0.2, seed=21)
        tracker = DriftTracker(DriftPolicy(staleness_budget=2))
        m = MutableAdjacency.from_graph(a, tracker=tracker)
        v, cbm, src = m.snapshot()
        store = GenerationStore(tmp_path / "store")
        with InferenceService(AdjacencySlot(cbm, src), workers=1) as service:
            for j in range(3):
                _, _, src = m.snapshot()
                m.apply(EdgeBatch.random(src, inserts=3, deletes=3, seed=j))
            rebuilder = BackgroundRebuilder(m, store, service)
            report = rebuilder.rebuild_once()
            assert report.built_version == 3
            assert report.published
            assert tracker.staleness() == 0
            # The committed artifact is fresh: strict audit, no budget.
            gen = store.latest()
            assert gen.index == report.store_generation
            assert gen.manifest["meta"]["graph_version"] == 3
            audit = audit_archive(gen.file("adjacency.npz"))
            assert audit.ok, [f.code for f in audit.findings]
            # The served slot is the rebased current version.
            assert service._slot.graph_version == 3
            x = np.random.default_rng(3).random((40, 2)).astype(np.float32)
            _, live_cbm, _ = m.snapshot()
            assert np.array_equal(
                service.submit(x).result(10.0), live_cbm.matmul(x)
            )

    def test_threaded_loop_fires_on_drift_trigger(self, tmp_path):
        import time

        a = random_adjacency_csr(40, density=0.2, seed=22)
        tracker = DriftTracker(DriftPolicy(staleness_budget=2, max_drift=10.0))
        m = MutableAdjacency.from_graph(a, tracker=tracker)
        store = GenerationStore(tmp_path / "store")
        rebuilder = BackgroundRebuilder(m, store, None, poll_interval_s=0.005)
        rebuilder.start()
        try:
            for j in range(4):
                _, _, src = m.snapshot()
                m.apply(EdgeBatch.random(src, inserts=3, deletes=3, seed=j))
            deadline = time.monotonic() + 10.0
            while not rebuilder.reports and time.monotonic() < deadline:
                rebuilder.trigger()
                time.sleep(0.01)
        finally:
            rebuilder.stop()
        assert rebuilder.reports, rebuilder.errors
        assert not rebuilder.errors
        assert store.latest() is not None

    def test_start_twice_raises(self, tmp_path):
        a = random_adjacency_csr(20, density=0.3, seed=23)
        m = MutableAdjacency.from_graph(a)
        rebuilder = BackgroundRebuilder(m, GenerationStore(tmp_path / "s"))
        rebuilder.start()
        try:
            with pytest.raises(RecoveryError):
                rebuilder.start()
        finally:
            rebuilder.stop()


@pytest.mark.chaos
class TestMutationSoak:
    def test_mini_storm_is_clean(self):
        from repro.streaming import run_mutation_soak

        report = run_mutation_soak(
            clients=2,
            requests_per_client=8,
            mutator_batches=5,
            crash_trials=1,
            crash_requests=4,
            min_requests=20,
        )
        assert report["ok"], (report["checks"], report["violations"])
        assert report["wrong"] == 0
        assert report["rebuilds"] >= 1
        assert all(t["killed"] for t in report["crash"])

    def test_crashsim_streaming_workload_recovers(self):
        from repro.recovery.crashsim import run_trial

        trial = run_trial("streaming", crash_at=9, seed=3, iterations=2)
        assert trial.killed
        assert trial.ok, trial.violations
