"""Unit tests for the unified concurrency IR and its engine.

Covers the IR node types and span helpers, each lowering (kernel plan,
batch layout, shard plan, streaming swap, fused stages), the
happens-before race analysis (HZ-R401/R402), and the commit-coverage
protocol check (HZ-R403) — both on clean plans (every verdict must be
clean) and on hand-mutated ones (every seeded defect must be found).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.staticcheck import (
    Access,
    Buffer,
    FusedStage,
    PlanIR,
    Stage,
    analyze_ir,
    lower_batch_layout,
    lower_kernel_plan,
    lower_shard_plan,
    lower_stream_swap,
)
from repro.staticcheck.hb import HBGraph
from repro.staticcheck.ir import rows_to_spans, spans_of

from tests.conftest import random_adjacency_csr


# ----------------------------------------------------------------------
# Span helpers and IR plumbing


class TestSpanHelpers:
    def test_rows_to_spans_coalesces_runs(self):
        spans = rows_to_spans([7, 0, 1, 2, 5, 6, 2])
        assert spans.tolist() == [[0, 3], [5, 8]]

    def test_rows_to_spans_empty(self):
        assert rows_to_spans([]).shape == (0, 2)

    def test_spans_of_shapes(self):
        assert spans_of().shape == (0, 2)
        assert spans_of((0, 4), (4, 8)).tolist() == [[0, 4], [4, 8]]


class TestPlanIR:
    def test_duplicate_buffer_rejected(self):
        ir = PlanIR(subject="s")
        ir.add_buffer(Buffer("x", size=4))
        with pytest.raises(ValueError):
            ir.add_buffer(Buffer("x", size=4))

    def test_duplicate_stage_rejected(self):
        ir = PlanIR(subject="s")
        ir.add_buffer(Buffer("x", size=4))
        ir.add_stage(Stage(sid="a", lane="main"))
        with pytest.raises(ValueError):
            ir.add_stage(Stage(sid="a", lane="main"))

    def test_replace_stage_rebuilds_in_place(self):
        ir = PlanIR(subject="s")
        ir.add_stage(Stage(sid="a", lane="main"))
        ir.replace_stage("a", lane="other")
        assert ir.stage("a").lane == "other"
        with pytest.raises(KeyError):
            ir.replace_stage("nope", lane="x")

    def test_unknown_buffer_access_raises(self):
        ir = PlanIR(subject="s")
        ir.add_stage(
            Stage(sid="a", lane="main", writes=(Access("ghost", spans_of((0, 1))),))
        )
        with pytest.raises(KeyError):
            analyze_ir(ir)


# ----------------------------------------------------------------------
# Happens-before analysis on hand-built IRs


def _two_lane_ir(*, mode2="w", after=(), atomic=False):
    ir = PlanIR(subject="hand")
    ir.add_buffer(Buffer("buf", size=10, unit="row", atomic=atomic))
    ir.add_stage(
        Stage(sid="a", lane="lane0", writes=(Access("buf", spans_of((0, 6))),))
    )
    acc = Access("buf", spans_of((4, 10)), mode=mode2)
    ir.add_stage(
        Stage(
            sid="b",
            lane="lane1",
            after=after,
            reads=(acc,) if mode2 == "r" else (),
            writes=(acc,) if mode2 == "w" else (),
        )
    )
    return ir


class TestHappensBefore:
    def test_unordered_overlapping_writes_flagged(self):
        rep = analyze_ir(_two_lane_ir())
        assert rep.has("HZ-R401")
        assert rep.checks["hb.races"] is False

    def test_after_edge_orders_the_writes(self):
        rep = analyze_ir(_two_lane_ir(after=("a",)))
        assert rep.ok and rep.checks["hb.races"] is True

    def test_unordered_read_write_flagged(self):
        rep = analyze_ir(_two_lane_ir(mode2="r"))
        assert rep.has("HZ-R402")

    def test_same_lane_program_order_is_hb(self):
        ir = PlanIR(subject="hand")
        ir.add_buffer(Buffer("buf", size=10, unit="row"))
        ir.add_stage(
            Stage(sid="a", lane="main", writes=(Access("buf", spans_of((0, 6))),))
        )
        ir.add_stage(
            Stage(sid="b", lane="main", writes=(Access("buf", spans_of((4, 10))),))
        )
        assert analyze_ir(ir).ok

    def test_atomic_buffer_exempt_from_races(self):
        rep = analyze_ir(_two_lane_ir(atomic=True))
        assert rep.ok

    def test_disjoint_spans_never_conflict(self):
        ir = PlanIR(subject="hand")
        ir.add_buffer(Buffer("buf", size=10, unit="row"))
        ir.add_stage(
            Stage(sid="a", lane="lane0", writes=(Access("buf", spans_of((0, 5))),))
        )
        ir.add_stage(
            Stage(sid="b", lane="lane1", writes=(Access("buf", spans_of((5, 10))),))
        )
        assert analyze_ir(ir).ok

    def test_hb_graph_reachability(self):
        ir = _two_lane_ir(after=("a",))
        g = HBGraph(ir.stages)
        assert g.reaches("a", "b") and not g.reaches("b", "a")
        assert g.ordered("a", "b") and g.ordered("b", "a")

    def test_commit_must_cover_its_write(self):
        ir = PlanIR(subject="hand")
        ir.add_buffer(Buffer("payload", size=4, unit="row"))
        ir.add_buffer(Buffer("marker", size=1, unit="marker"))
        ir.add_stage(
            Stage(
                sid="commit",
                lane="w",
                writes=(Access("marker", spans_of((0, 1))),),
                role="commit",
                covers=("write",),
            )
        )
        ir.add_stage(
            Stage(sid="write", lane="w", writes=(Access("payload", spans_of((0, 4))),))
        )
        rep = analyze_ir(ir)
        assert rep.has("HZ-R403")
        assert rep.checks["hb.commits"] is False


# ----------------------------------------------------------------------
# Kernel-plan lowering (threaded branches, level schedules, fusion)


@pytest.fixture(scope="module")
def cbm_plan():
    a = random_adjacency_csr(120, density=0.12, seed=5)
    cbm, _ = build_cbm(a, alpha=2)
    return cbm.plan(update="level")


class TestKernelPlanLowering:
    def test_threaded_plan_is_race_free(self, cbm_plan):
        rep = analyze_ir(lower_kernel_plan(cbm_plan, threaded=True))
        assert rep.ok, rep.render()

    def test_sequential_levels_are_race_free(self, cbm_plan):
        rep = analyze_ir(lower_kernel_plan(cbm_plan, threaded=False))
        assert rep.ok, rep.render()

    def test_fused_stage_on_own_branch_is_safe(self, cbm_plan):
        if not len(cbm_plan.branches):
            pytest.skip("plan has no branches")
        fused = (FusedStage("row-scale", branch=0),)
        rep = analyze_ir(lower_kernel_plan(cbm_plan, fused=fused))
        assert rep.ok, rep.render()

    def test_fused_stage_after_join_is_safe(self, cbm_plan):
        fused = (FusedStage("activation", branch=None),)
        rep = analyze_ir(lower_kernel_plan(cbm_plan, fused=fused))
        assert rep.ok, rep.render()

    def test_fused_stage_stealing_foreign_rows_is_rejected(self, cbm_plan):
        if len(cbm_plan.branches) < 2:
            pytest.skip("plan has fewer than two branches")
        n = int(cbm_plan.shape[0])
        fused = (FusedStage("row-scale", branch=0, rows=np.arange(n)),)
        rep = analyze_ir(lower_kernel_plan(cbm_plan, fused=fused))
        assert rep.has("HZ-R4")
        assert rep.checks["hb.races"] is False

    def test_branch_stage_swapped_onto_shared_lane_stays_ordered(self, cbm_plan):
        # Sanity of the model: two branches forced onto ONE lane are
        # ordered by program order, so the IR stays clean — lanes, not
        # stage identity, carry the concurrency.
        ir = lower_kernel_plan(cbm_plan)
        branch_sids = [s.sid for s in ir.stages if s.sid.startswith("branch")]
        for sid in branch_sids:
            ir.replace_stage(sid, lane="worker0")
        assert analyze_ir(ir).ok

    def test_dropped_join_barrier_is_detected(self, cbm_plan):
        if len(cbm_plan.branches) < 1:
            pytest.skip("plan has no branches")
        ir = lower_kernel_plan(cbm_plan)
        # finalize reads every row; severing its barrier races the lanes
        ir.replace_stage("finalize", after=())
        rep = analyze_ir(ir)
        assert rep.has("HZ-R402")


# ----------------------------------------------------------------------
# Batch-layout lowering


class TestBatchLayoutLowering:
    def _layout(self, widths, columns=64):
        from repro.serving.batching import BatchConfig, BatchLayout

        cfg = BatchConfig(max_columns=columns)
        return BatchLayout.pack(widths, quantum=cfg.quantum, n_rows=16)

    def test_packed_layout_is_clean(self):
        rep = analyze_ir(lower_batch_layout(self._layout([1, 2, 4, 8])))
        assert rep.ok, rep.render()

    def test_member_overlap_is_ownership_not_generic_race(self):
        ir = lower_batch_layout(self._layout([4, 4]))
        first = ir.stages[0]
        (acc,) = first.writes
        lo, hi = int(acc.spans[0, 0]), int(acc.spans[0, 1])
        ir.replace_stage(
            first.sid, writes=(Access("stacked", spans_of((lo, hi + 1))),)
        )
        rep = analyze_ir(ir)
        assert rep.has("HZ-X001")
        # policy-governed buffer: overlap reported once, not doubled as R401
        assert not rep.has("HZ-R401")

    def test_out_of_bounds_member(self):
        ir = lower_batch_layout(self._layout([4, 4]))
        total = ir.buffers["stacked"].size
        ir.replace_stage(
            "member1", writes=(Access("stacked", spans_of((total - 2, total + 2))),)
        )
        rep = analyze_ir(ir)
        assert rep.has("HZ-X002")

    def test_gap_between_members(self):
        ir = lower_batch_layout(self._layout([4, 4]))
        second = ir.stage("member1")
        (acc,) = second.writes
        lo, hi = int(acc.spans[0, 0]), int(acc.spans[0, 1])
        ir.replace_stage(
            "member1", writes=(Access("stacked", spans_of((lo + 1, hi + 1))),)
        )
        rep = analyze_ir(ir)
        assert rep.has("HZ-X003")

    def test_zero_width_member(self):
        ir = lower_batch_layout(self._layout([4, 4]))
        ir.replace_stage("member0", writes=(Access("stacked", spans_of((0, 0))),))
        rep = analyze_ir(ir)
        assert rep.has("HZ-X004")


# ----------------------------------------------------------------------
# Shard-plan lowering (raw pieces; the real ShardedPlan path is covered
# by the CLI test and the equivalence property test)


def _segment(shard, array, offset, nbytes, segment="seg0"):
    return {
        "segment": segment,
        "shard": shard,
        "array": array,
        "offset": offset,
        "nbytes": nbytes,
    }


class TestShardPlanLowering:
    def test_clean_bounds_and_segments(self):
        ir = lower_shard_plan(
            bounds=[(0, 5), (5, 10)],
            n_rows=10,
            layout=[_segment(0, "indptr", 0, 40), _segment(0, "indices", 40, 24)],
        )
        rep = analyze_ir(ir)
        assert rep.ok, rep.render()

    def test_overlapping_shards(self):
        rep = analyze_ir(lower_shard_plan(bounds=[(0, 6), (4, 10)], n_rows=10))
        assert rep.has("HZ-S102")

    def test_coverage_gap_including_trailing(self):
        rep = analyze_ir(lower_shard_plan(bounds=[(0, 4), (6, 9)], n_rows=10))
        assert rep.has("HZ-S101")

    def test_invalid_bounds_fold_into_disjoint_code(self):
        rep = analyze_ir(lower_shard_plan(bounds=[(-2, 5), (5, 10)], n_rows=10))
        assert rep.has("HZ-S102")
        assert rep.checks["shards.disjoint"] is False

    def test_segment_aliasing(self):
        ir = lower_shard_plan(
            bounds=[(0, 10)],
            n_rows=10,
            layout=[_segment(0, "indptr", 0, 40), _segment(0, "indices", 32, 24)],
        )
        rep = analyze_ir(ir)
        assert rep.has("HZ-S103")

    def test_commit_before_write_is_torn(self):
        ir = lower_shard_plan(bounds=[(0, 10)], n_rows=10)
        stages = {s.sid: s for s in ir.stages}
        ir.stages = [stages["shard0.commit"], stages["shard0.write"]]
        rep = analyze_ir(ir)
        assert rep.has("HZ-R403")


# ----------------------------------------------------------------------
# Streaming swap lowering


class TestStreamSwapLowering:
    def test_protocol_is_clean(self):
        assert analyze_ir(lower_stream_swap()).ok

    def test_serving_before_publish_is_a_torn_read(self):
        ir = lower_stream_swap()
        ir.replace_stage("serve", after=())
        rep = analyze_ir(ir)
        assert rep.has("HZ-R402")

    def test_commit_covering_future_work_is_torn(self):
        ir = lower_stream_swap()
        stages = {s.sid: s for s in ir.stages}
        order = ["snapshot", "commit", "build", "publish", "serve"]
        ir.stages = [stages[sid] for sid in order]
        rep = analyze_ir(ir)
        assert rep.has("HZ-R403")
