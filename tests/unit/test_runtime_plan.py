"""Plan-cache correctness: the repro.runtime plan/execute split.

The planned path must be bit-compatible with the per-call reference path
(``matmul_unplanned`` / ``matvec_unplanned``) across every variant,
update mode, scaling mode, and engine; plans must invalidate when the
owning matrix changes; and one plan must be shareable across threads.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.errors import ShapeError
from repro.parallel.cache import plan_working_set
from repro.parallel.executor import ThreadedUpdateExecutor, parallel_matmul
from repro.parallel.schedule import plan_update_schedule
from repro.runtime import KernelPlan, WorkspacePool
from repro.sparse.ops import Engine

from tests.conftest import random_adjacency_csr

N = 40


def _diag(n, seed=3):
    return (np.random.default_rng(seed).random(n) + 0.5).astype(np.float64)


def _make_cbm(variant: str, *, n: int = N, alpha: int = 2, seed: int = 1):
    a = random_adjacency_csr(n, density=0.25, seed=seed)
    diag = None if variant == "A" else _diag(n)
    diag_left = _diag(n, seed=5) if variant == "D1AD2" else None
    cbm, _ = build_cbm(a, alpha=alpha, variant=variant, diag=diag, diag_left=diag_left)
    return cbm


def _operand(n, p=7, seed=2):
    return np.random.default_rng(seed).random((n, p)).astype(np.float32)


VARIANTS = ("A", "AD", "DAD", "D1AD2")


class TestPlannedMatchesUnplanned:
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("update", ["level", "edge"])
    @pytest.mark.parametrize("scaling", ["deferred", "fused"])
    def test_matmul_equality(self, variant, update, scaling):
        cbm = _make_cbm(variant)
        x = _operand(N)
        planned = cbm.matmul(x, update=update, scaling=scaling)
        reference = cbm.matmul_unplanned(x, update=update, scaling=scaling)
        np.testing.assert_allclose(planned, reference, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_matvec_equality(self, variant):
        cbm = _make_cbm(variant)
        v = _operand(N, p=1).ravel()
        np.testing.assert_allclose(
            cbm.matvec(v), cbm.matvec_unplanned(v), rtol=1e-5, atol=1e-6
        )

    @pytest.mark.parametrize("engine", list(Engine))
    def test_engines_agree(self, engine):
        cbm = _make_cbm("DAD")
        x = _operand(N)
        np.testing.assert_allclose(
            cbm.matmul(x, engine=engine),
            cbm.matmul_unplanned(x, engine=engine),
            rtol=1e-5,
            atol=1e-6,
        )

    def test_repeated_executions_stay_correct(self):
        """The plan's schedule is reused, never consumed."""
        cbm = _make_cbm("DAD")
        x = _operand(N)
        expected = cbm.matmul_unplanned(x)
        for _ in range(4):
            np.testing.assert_allclose(cbm.matmul(x), expected, rtol=1e-5, atol=1e-6)
        assert cbm.plan().stats.executions >= 4


class TestPlanCache:
    def test_plan_is_cached_per_config(self):
        cbm = _make_cbm("A")
        assert cbm.plan() is cbm.plan()
        assert cbm.plan(update="edge") is not cbm.plan(update="level")

    def test_matmul_populates_the_cache(self):
        cbm = _make_cbm("A")
        cbm.matmul(_operand(N))
        assert cbm.plan().stats.executions == 1

    def test_invalidate_rebuilds(self):
        cbm = _make_cbm("AD")
        before = cbm.plan()
        cbm.invalidate()
        after = cbm.plan()
        assert after is not before
        assert not before.matches(cbm)

    def test_invalidate_after_diag_mutation_restores_correctness(self):
        """In-place diag edits are invisible to the fingerprint; after
        ``invalidate()`` the planned result must track the new diagonal."""
        cbm = _make_cbm("DAD")
        x = _operand(N)
        cbm.matmul(x)  # build + cache a plan for the old diagonal
        cbm.diag *= 2.0
        cbm.invalidate()
        np.testing.assert_allclose(
            cbm.matmul(x), cbm.matmul_unplanned(x), rtol=1e-5, atol=1e-6
        )

    def test_object_swap_detected_without_invalidate(self):
        """Replacing the tree/delta objects flips the identity fingerprint."""
        cbm = _make_cbm("A")
        stale = cbm.plan()
        other = _make_cbm("A", seed=9)
        cbm.tree = other.tree
        cbm.delta = other.delta
        assert not stale.matches(cbm)
        x = _operand(N)
        np.testing.assert_allclose(
            cbm.matmul(x), cbm.matmul_unplanned(x), rtol=1e-5, atol=1e-6
        )

    def test_invalid_modes_rejected(self):
        cbm = _make_cbm("A")
        with pytest.raises(ValueError):
            KernelPlan(cbm, update="magic")
        with pytest.raises(ValueError):
            KernelPlan(cbm, scaling="sideways")


class TestOutBuffer:
    def test_result_lands_in_out(self):
        cbm = _make_cbm("DAD")
        x = _operand(N)
        out = np.empty((N, x.shape[1]), dtype=np.float32)
        got = cbm.matmul(x, out=out)
        assert got is out
        np.testing.assert_allclose(out, cbm.matmul_unplanned(x), rtol=1e-5, atol=1e-6)

    def test_aliasing_rejected(self):
        cbm = _make_cbm("A")
        x = _operand(N)
        with pytest.raises(ValueError, match="alias"):
            cbm.plan().multiply(x, out=x)

    def test_wrong_shape_rejected(self):
        cbm = _make_cbm("A")
        with pytest.raises(ShapeError):
            cbm.plan().multiply(_operand(N), out=np.empty((N, 99), dtype=np.float32))

    def test_pooled_buffer_roundtrip(self):
        plan = _make_cbm("A").plan()
        buf = plan.out_buffer(7)
        assert buf.shape == (N, 7) and buf.dtype == np.float32
        plan.release(buf)
        assert plan.out_buffer(7) is buf  # free list hit


class TestWorkspacePool:
    def test_acquire_release_reuses(self):
        pool = WorkspacePool()
        a = pool.acquire((8, 4))
        pool.release(a)
        assert pool.acquire((8, 4)) is a
        assert pool.stats.hits == 1 and pool.stats.acquires == 2

    def test_distinct_keys_do_not_mix(self):
        pool = WorkspacePool()
        a = pool.acquire((8, 4), np.float32)
        pool.release(a)
        b = pool.acquire((8, 4), np.float64)
        assert b is not a and b.dtype == np.float64

    def test_capacity_cap(self):
        pool = WorkspacePool(max_per_key=1)
        a, b = pool.acquire((4, 4)), pool.acquire((4, 4))
        pool.release(a)
        pool.release(b)  # over capacity: dropped
        assert pool.idle_bytes() == a.nbytes
        pool.clear()
        assert pool.idle_bytes() == 0

    def test_thread_safety(self):
        pool = WorkspacePool(max_per_key=8)
        errors: list[BaseException] = []

        def hammer():
            try:
                for _ in range(200):
                    arr = pool.acquire((16, 3))
                    arr.fill(1.0)
                    pool.release(arr)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = [threading.Thread(target=hammer) for _ in range(4)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert not errors
        assert pool.stats.acquires == 800 and pool.stats.releases == 800


class TestSharedPlanThreadSafety:
    @pytest.mark.parametrize("variant", ["A", "DAD"])
    def test_concurrent_execute(self, variant):
        """One plan, many threads, distinct operands — all results exact."""
        cbm = _make_cbm(variant)
        plan = cbm.plan()
        inputs = [_operand(N, seed=s) for s in range(8)]
        expected = [cbm.matmul_unplanned(x) for x in inputs]
        results: list = [None] * len(inputs)
        errors: list[BaseException] = []

        def run(i):
            try:
                results[i] = plan.execute(inputs[i])
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = [threading.Thread(target=run, args=(i,)) for i in range(len(inputs))]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert not errors
        for got, want in zip(results, expected, strict=True):
            np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)

    def test_branch_parallel_executor_shares_plan(self):
        cbm = _make_cbm("DAD")
        plan = cbm.plan()
        x = _operand(N)
        got = parallel_matmul(cbm, x, threads=4, plan=plan)
        np.testing.assert_allclose(got, cbm.matmul_unplanned(x), rtol=1e-5, atol=1e-6)

    def test_executor_accepts_plan_branches(self):
        cbm = _make_cbm("A")
        plan = cbm.plan()
        x = _operand(N)
        c = plan.multiply(x)
        ThreadedUpdateExecutor(3).run_update(cbm.tree, c, branches=plan.branches)
        np.testing.assert_allclose(c, cbm.matmul_unplanned(x), rtol=1e-5, atol=1e-6)


class TestPlanIntrospection:
    def test_describe_and_schedule(self):
        plan = _make_cbm("DAD").plan()
        desc = plan.describe()
        assert desc["variant"] == "DAD" and desc["levels"] == plan.levels
        sched = plan_update_schedule(plan, p=16, threads=4)
        assert sched.speedup >= 1.0
        ws = plan_working_set(plan, p=16)
        assert ws.sparse_bytes > 0 and ws.dense_bytes > 0
