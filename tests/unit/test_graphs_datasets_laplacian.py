"""Unit tests for the dataset registry and GCN normalisation."""

import numpy as np
import pytest

from repro.errors import DatasetError, ShapeError
from repro.graphs.adjacency import is_undirected_simple
from repro.graphs.datasets import REGISTRY, list_datasets, load_dataset, paper_stats
from repro.graphs.laplacian import degree_vector, gcn_normalization, normalized_adjacency
from repro.sparse.convert import from_dense

from tests.conftest import random_adjacency_csr


class TestRegistry:
    def test_eight_datasets_registered(self):
        assert len(REGISTRY) == 8

    def test_list_all(self):
        assert set(list_datasets()) == set(REGISTRY)

    def test_list_by_family(self):
        assert set(list_datasets("citation")) == {"Cora", "PubMed"}
        assert "COLLAB" in list_datasets("coauthor")

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("Reddit")
        with pytest.raises(DatasetError):
            paper_stats("Reddit")

    def test_paper_stats_fields(self):
        ps = paper_stats("Cora")
        assert ps.nodes == 2708
        assert ps.edges == 10556
        assert ps.compression_ratio_a0 == 1.04

    def test_load_is_memoised(self):
        a = load_dataset("Cora")
        b = load_dataset("Cora")
        assert a is b

    def test_cora_standin_is_simple_graph(self):
        assert is_undirected_simple(load_dataset("Cora"))

    def test_standin_degree_within_2x_of_paper(self):
        """Calibration guard: every stand-in's average degree is within a
        factor 3 of the paper's (proteins is intentionally scaled down)."""
        for name in REGISTRY:
            a = load_dataset(name)
            measured = a.nnz / a.shape[0]
            target = paper_stats(name).average_degree
            assert target / 3 <= measured <= target * 3, name


class TestNormalization:
    def test_degree_vector(self):
        a = random_adjacency_csr(12, seed=0)
        assert np.array_equal(degree_vector(a), a.row_nnz())

    def test_factors_reconstruct_normalized(self):
        a = random_adjacency_csr(12, seed=1)
        binary, d = gcn_normalization(a)
        assert binary.is_binary()
        full = normalized_adjacency(a).toarray()
        ref = d[:, None] * binary.toarray() * d
        assert np.allclose(full, ref, rtol=1e-6)

    def test_row_sums_of_walk_normalisation(self):
        """D^{-1/2}(A+I)D^{-1/2} is symmetric with spectral radius <= 1."""
        a = random_adjacency_csr(15, seed=2)
        full = normalized_adjacency(a).toarray()
        assert np.allclose(full, full.T, atol=1e-7)
        eigs = np.linalg.eigvalsh(full.astype(np.float64))
        assert eigs.max() <= 1.0 + 1e-6

    def test_isolated_node_handled(self):
        d = np.zeros((4, 4), dtype=np.float32)
        d[0, 1] = d[1, 0] = 1
        binary, dv = gcn_normalization(from_dense(d))
        assert np.all(np.isfinite(dv))
        # isolated node's normalised self-loop is exactly 1
        full = normalized_adjacency(from_dense(d)).toarray()
        assert full[3, 3] == pytest.approx(1.0)

    def test_rejects_rectangular(self):
        with pytest.raises(ShapeError):
            gcn_normalization(from_dense(np.ones((2, 3), dtype=np.float32)))
