"""Unit tests for the CSC container."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.sparse.convert import from_dense
from repro.sparse.csc import CSCMatrix


def dense(seed=0):
    rng = np.random.default_rng(seed)
    return ((rng.random((6, 9)) < 0.4) * rng.random((6, 9))).astype(np.float32)


class TestValidation:
    def test_roundtrip_valid(self):
        from_dense(dense()).tocsc().check_format()

    def test_wrong_indptr_length(self):
        with pytest.raises(FormatError):
            CSCMatrix([0, 1], [0], [1.0], (2, 3))

    def test_row_index_out_of_range(self):
        with pytest.raises(FormatError):
            CSCMatrix([0, 1, 1, 1], [7], [1.0], (2, 3))

    def test_indptr_end_mismatch(self):
        with pytest.raises(FormatError):
            CSCMatrix([0, 0, 0, 2], [0], [1.0], (2, 3))


class TestConversion:
    def test_toarray(self):
        d = dense(1)
        assert np.allclose(from_dense(d).tocsc().toarray(), d)

    def test_tocsr_roundtrip(self):
        d = dense(2)
        csc = from_dense(d).tocsc()
        assert np.allclose(csc.tocsr().toarray(), d)

    def test_col_view(self):
        d = dense(3)
        csc = from_dense(d).tocsc()
        for j in range(d.shape[1]):
            assert np.array_equal(csc.col(j), np.flatnonzero(d[:, j]))

    def test_col_nnz(self):
        d = dense(4)
        csc = from_dense(d).tocsc()
        assert np.array_equal(csc.col_nnz(), (d != 0).sum(axis=0))

    def test_transpose(self):
        d = dense(5)
        t = from_dense(d).tocsc().transpose()
        assert t.shape == (d.shape[1], d.shape[0])
        assert np.allclose(t.toarray(), d.T)

    def test_memory_bytes_positive(self):
        assert from_dense(dense(6)).tocsc().memory_bytes() > 0
