"""Unit tests for the CBMMatrix container and its kernels."""

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.core.cbm import CBMMatrix, Variant
from repro.core.deltas import build_delta_matrix
from repro.core.distance import candidate_edges
from repro.core.mst import kruskal_mst
from repro.errors import ShapeError
from repro.sparse.ops import Engine

from tests.conftest import random_adjacency_csr


def build(seed=0, n=30, density=0.3, alpha=0, variant="A", diag=None):
    a = random_adjacency_csr(n, density=density, seed=seed)
    cbm, _ = build_cbm(a, alpha=alpha, variant=variant, diag=diag)
    return a, cbm


class TestConstruction:
    def test_variant_requires_diag(self):
        a = random_adjacency_csr(10, seed=1)
        tree = kruskal_mst(candidate_edges(a, None))
        delta = build_delta_matrix(a, tree)
        with pytest.raises(ShapeError):
            CBMMatrix(tree=tree, delta=delta, variant="AD")

    def test_diag_wrong_length(self):
        a = random_adjacency_csr(10, seed=2)
        tree = kruskal_mst(candidate_edges(a, None))
        delta = build_delta_matrix(a, tree)
        with pytest.raises(ShapeError):
            CBMMatrix(tree=tree, delta=delta, variant="AD", diag=np.ones(3))

    def test_zero_diag_rejected(self):
        a = random_adjacency_csr(10, seed=3)
        tree = kruskal_mst(candidate_edges(a, None))
        delta = build_delta_matrix(a, tree)
        with pytest.raises(ValueError):
            CBMMatrix(tree=tree, delta=delta, variant="DAD", diag=np.zeros(10))

    def test_variant_accepts_string(self):
        _, cbm = build(variant="AD", diag=np.ones(30))
        assert cbm.variant is Variant.AD


class TestMatmulA:
    @pytest.mark.parametrize("alpha", [0, 1, 4, 16])
    def test_matches_dense(self, alpha):
        a, cbm = build(seed=4, alpha=alpha)
        x = np.random.default_rng(0).random((30, 9)).astype(np.float32)
        assert np.allclose(cbm.matmul(x), a.toarray() @ x, rtol=1e-4)

    @pytest.mark.parametrize("update", ["level", "edge"])
    def test_update_modes_agree(self, update):
        a, cbm = build(seed=5)
        x = np.random.default_rng(1).random((30, 5)).astype(np.float32)
        assert np.allclose(cbm.matmul(x, update=update), a.toarray() @ x, rtol=1e-4)

    def test_reference_engine(self):
        a, cbm = build(seed=6)
        x = np.random.default_rng(2).random((30, 4)).astype(np.float32)
        assert np.allclose(cbm.matmul(x, engine=Engine.REFERENCE), a.toarray() @ x, rtol=1e-4)

    def test_matvec(self):
        a, cbm = build(seed=7)
        v = np.random.default_rng(3).random(30).astype(np.float32)
        assert np.allclose(cbm.matvec(v), a.toarray() @ v, rtol=1e-4)

    def test_matmul_operator_dispatch(self):
        a, cbm = build(seed=8)
        x = np.random.default_rng(4).random((30, 3)).astype(np.float32)
        assert np.allclose(cbm @ x, a.toarray() @ x, rtol=1e-4)
        assert np.allclose(cbm @ x[:, 0], a.toarray() @ x[:, 0], rtol=1e-4)

    def test_shape_mismatch(self):
        _, cbm = build(seed=9)
        with pytest.raises(ShapeError):
            cbm.matmul(np.ones((7, 2), dtype=np.float32))
        with pytest.raises(ShapeError):
            cbm.matvec(np.ones(7, dtype=np.float32))

    def test_unknown_update_mode(self):
        _, cbm = build(seed=10)
        with pytest.raises(ValueError):
            cbm.matmul(np.ones((30, 2), dtype=np.float32), update="magic")


class TestScaledVariants:
    def test_ad_matches_dense(self):
        rng = np.random.default_rng(5)
        d = rng.random(30) + 0.5
        a, cbm = build(seed=11, variant="AD", diag=d)
        x = rng.random((30, 6)).astype(np.float32)
        ref = (a.toarray() * d) @ x
        assert np.allclose(cbm.matmul(x), ref, rtol=1e-4)

    @pytest.mark.parametrize("scaling", ["deferred", "fused"])
    @pytest.mark.parametrize("update", ["level", "edge"])
    def test_dad_matches_dense(self, scaling, update):
        rng = np.random.default_rng(6)
        d = rng.random(30) + 0.5
        a, cbm = build(seed=12, variant="DAD", diag=d)
        x = rng.random((30, 6)).astype(np.float32)
        ref = (d[:, None] * a.toarray() * d) @ x
        assert np.allclose(cbm.matmul(x, scaling=scaling, update=update), ref, rtol=1e-4)

    def test_negative_diag_supported(self):
        rng = np.random.default_rng(7)
        d = rng.random(30) - 0.5
        d[d == 0] = 0.1
        a, cbm = build(seed=13, variant="DAD", diag=d)
        x = rng.random((30, 4)).astype(np.float32)
        ref = (d[:, None] * a.toarray() * d) @ x
        assert np.allclose(cbm.matmul(x), ref, rtol=1e-3, atol=1e-5)

    def test_tocsr_scaled(self):
        rng = np.random.default_rng(8)
        d = rng.random(20) + 0.5
        a = random_adjacency_csr(20, seed=14)
        cbm, _ = build_cbm(a, alpha=0, variant="DAD", diag=d)
        ref = d[:, None] * a.toarray() * d
        assert np.allclose(cbm.tocsr().toarray(), ref, rtol=1e-5)


class TestAccounting:
    def test_property1_deltas_bounded(self):
        for seed in range(4):
            a, cbm = build(seed=seed, density=0.25)
            assert cbm.num_deltas <= a.nnz

    def test_property2_ops_bounded(self):
        """CBM scalar ops never exceed the CSR baseline's."""
        for seed in range(4):
            a, cbm = build(seed=20 + seed, density=0.3)
            from repro.core.opcount import csr_spmm_ops

            p = 64
            assert cbm.scalar_ops(p).total <= csr_spmm_ops(a, p).total + cbm.tree.num_tree_edges * p

    def test_memory_bytes_composition(self):
        a, cbm = build(seed=30)
        expected = cbm.delta.memory_bytes() + 8 * cbm.tree.num_tree_edges
        assert cbm.memory_bytes() == expected

    def test_compression_ratio_clustered_graph(self, clustered_adjacency):
        cbm, rep = build_cbm(clustered_adjacency, alpha=0)
        assert rep.compression_ratio > 2.0

    def test_stats_keys(self):
        _, cbm = build(seed=31)
        st = cbm.stats()
        for key in ("variant", "alpha", "deltas", "memory_bytes", "compression_ratio"):
            assert key in st

    def test_todense(self):
        a, cbm = build(seed=32)
        assert np.allclose(cbm.todense(), a.toarray())
