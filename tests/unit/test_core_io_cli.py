"""Unit tests for CBM persistence and the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.builder import build_cbm
from repro.core.io import load_cbm, save_cbm
from repro.errors import FormatError
from repro.sparse.io import save_matrix_market

from tests.conftest import random_adjacency_csr


class TestCbmArchive:
    def test_roundtrip_plain(self, tmp_path):
        a = random_adjacency_csr(25, seed=0)
        cbm, _ = build_cbm(a, alpha=2)
        path = tmp_path / "g.npz"
        save_cbm(path, cbm)
        back = load_cbm(path)
        x = np.random.default_rng(1).random((25, 4)).astype(np.float32)
        assert np.allclose(back.matmul(x), cbm.matmul(x), rtol=1e-6)
        assert back.alpha == 2
        assert back.source_nnz == a.nnz

    def test_roundtrip_dad(self, tmp_path):
        rng = np.random.default_rng(2)
        a = random_adjacency_csr(20, seed=3)
        d = rng.random(20) + 0.5
        cbm, _ = build_cbm(a, alpha=0, variant="DAD", diag=d)
        path = tmp_path / "dad.npz"
        save_cbm(path, cbm)
        back = load_cbm(path)
        assert back.variant.value == "DAD"
        x = rng.random((20, 3)).astype(np.float32)
        assert np.allclose(back.matmul(x), cbm.matmul(x), rtol=1e-6)

    def test_roundtrip_d1ad2(self, tmp_path):
        rng = np.random.default_rng(4)
        a = random_adjacency_csr(20, seed=5)
        d1, d2 = rng.random(20) + 0.5, rng.random(20) + 0.5
        cbm, _ = build_cbm(a, alpha=1, variant="D1AD2", diag=d2, diag_left=d1)
        path = tmp_path / "g2.npz"
        save_cbm(path, cbm)
        back = load_cbm(path)
        x = rng.random((20, 3)).astype(np.float32)
        assert np.allclose(back.matmul(x), cbm.matmul(x), rtol=1e-6)

    def test_rejects_random_npz(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.ones(3))
        with pytest.raises(FormatError):
            load_cbm(path)

    def test_rejects_wrong_version(self, tmp_path):
        import json

        a = random_adjacency_csr(10, seed=6)
        cbm, _ = build_cbm(a)
        path = tmp_path / "v.npz"
        save_cbm(path, cbm)
        data = dict(np.load(path))
        meta = json.loads(bytes(data["meta"]).decode())
        meta["version"] = 99
        data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(FormatError):
            load_cbm(path)


class TestCli:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Cora" in out and "coPapersDBLP" in out

    def test_stats_dataset(self, capsys):
        assert main(["stats", "Cora", "--no-clustering"]) == 0
        assert "average degree" in capsys.readouterr().out

    def test_stats_mtx_file(self, tmp_path, capsys):
        a = random_adjacency_csr(15, seed=7)
        path = tmp_path / "g.mtx"
        save_matrix_market(path, a)
        assert main(["stats", str(path)]) == 0
        assert "15 nodes" in capsys.readouterr().out

    def test_unknown_graph_exits(self):
        with pytest.raises(SystemExit):
            main(["stats", "NotAGraph"])

    def test_compress_and_inspect(self, tmp_path, capsys):
        out_file = tmp_path / "c.npz"
        assert main(["compress", "Cora", "-a", "1", "-o", str(out_file)]) == 0
        assert out_file.exists()
        assert main(["inspect", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "compression ratio" in out
        assert "source_nnz" in out

    def test_bench_runs(self, capsys):
        assert main(["bench", "Cora", "-a", "2", "-p", "16", "--repeats", "3"]) == 0
        out = capsys.readouterr().out
        assert "measured speedup" in out
        assert "model speedup" in out
