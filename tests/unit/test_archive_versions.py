"""Archive-version compatibility and physical-damage error mapping.

PR 5's contract: a version-1 archive (no checksum table) still loads; a
*physically* truncated/torn version-2 archive raises the typed
:class:`~repro.errors.IntegrityError` — never a bare
``zipfile.BadZipFile`` — and a stale CRC (bytes flipped after the
checksum table was written) is detected as corruption.
"""

import json
import zipfile

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.core.io import load_cbm, save_cbm
from repro.errors import FormatError, IntegrityError

from tests.conftest import random_adjacency_csr


@pytest.fixture
def archive(tmp_path):
    a = random_adjacency_csr(25, seed=0)
    cbm, _ = build_cbm(a, alpha=2)
    path = tmp_path / "g.npz"
    save_cbm(path, cbm)
    return path, cbm


def _rewrite_meta(path, mutate):
    """Load the archive, mutate its meta dict, and write it back."""
    data = dict(np.load(path))
    meta = json.loads(bytes(data["meta"]).decode())
    mutate(meta, data)
    data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez(path, **data)


class TestVersionCompatibility:
    def test_v1_archive_without_checksums_loads(self, archive):
        path, cbm = archive

        def downgrade(meta, data):
            meta["version"] = 1
            meta.pop("checksums")

        _rewrite_meta(path, downgrade)
        back = load_cbm(path)
        x = np.random.default_rng(1).random((25, 4)).astype(np.float32)
        assert np.allclose(back.matmul(x), cbm.matmul(x), rtol=1e-6)

    def test_v2_missing_checksum_table_rejected(self, archive):
        path, _ = archive
        _rewrite_meta(path, lambda meta, data: meta.pop("checksums"))
        with pytest.raises(IntegrityError, match="checksum table"):
            load_cbm(path)

    def test_future_version_rejected_as_format_error(self, archive):
        path, _ = archive

        def bump(meta, data):
            meta["version"] = 99

        _rewrite_meta(path, bump)
        with pytest.raises(FormatError, match="version"):
            load_cbm(path)


class TestPhysicalDamage:
    def test_truncated_archive_is_integrity_error(self, archive):
        path, _ = archive
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(IntegrityError, match="truncated or torn"):
            load_cbm(path)
        # The typed error is the contract: the raw zip error must not escape.
        try:
            load_cbm(path)
        except IntegrityError:
            pass
        else:  # pragma: no cover - the raises above already guards this
            pytest.fail("torn archive loaded")

    @pytest.mark.parametrize("keep_bytes", [0, 10, 100])
    def test_every_truncation_depth_is_typed(self, archive, keep_bytes):
        path, _ = archive
        blob = path.read_bytes()
        path.write_bytes(blob[:keep_bytes])
        with pytest.raises((IntegrityError, FormatError)) as err:
            load_cbm(path)
        assert not isinstance(err.value, zipfile.BadZipFile)

    def test_stale_crc_detected(self, archive):
        path, _ = archive

        def corrupt(meta, data):
            data["delta_data"] = data["delta_data"].copy()
            data["delta_data"][0] += 1.0  # bytes change, checksum table doesn't

        _rewrite_meta(path, corrupt)
        with pytest.raises(IntegrityError, match="checksum mismatch"):
            load_cbm(path)

    def test_missing_payload_member_detected(self, archive):
        path, _ = archive

        def drop(meta, data):
            del data["tree_weight"]

        _rewrite_meta(path, drop)
        with pytest.raises(IntegrityError, match="missing payload"):
            load_cbm(path)

    def test_missing_file_still_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_cbm(tmp_path / "nope.npz")
