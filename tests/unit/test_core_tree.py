"""Unit tests for the CompressionTree container."""

import numpy as np
import pytest

from repro.core.tree import VIRTUAL, CompressionTree
from repro.errors import TreeError


def chain_tree(n):
    """0 <- 1 <- 2 <- ... (0 hangs off the virtual node)."""
    parent = np.arange(-1, n - 1)
    return CompressionTree(parent=parent, weight=np.ones(n, dtype=np.int64))


def star_tree(n):
    """All rows hang off the virtual node."""
    return CompressionTree(parent=np.full(n, VIRTUAL), weight=np.ones(n, dtype=np.int64))


class TestValidation:
    def test_self_parent_rejected(self):
        with pytest.raises(TreeError):
            CompressionTree(parent=np.array([0]))

    def test_out_of_range_parent_rejected(self):
        with pytest.raises(TreeError):
            CompressionTree(parent=np.array([5, VIRTUAL]))

    def test_cycle_rejected(self):
        with pytest.raises(TreeError):
            CompressionTree(parent=np.array([1, 0]))

    def test_long_cycle_rejected(self):
        with pytest.raises(TreeError):
            CompressionTree(parent=np.array([2, 0, 1, VIRTUAL]))

    def test_weight_length_mismatch(self):
        with pytest.raises(TreeError):
            CompressionTree(parent=np.array([VIRTUAL]), weight=np.array([1, 2]))

    def test_empty_tree(self):
        t = CompressionTree(parent=np.array([], dtype=np.int64))
        assert t.n == 0
        assert t.topological_order().size == 0


class TestStructure:
    def test_depth_chain(self):
        t = chain_tree(5)
        assert np.array_equal(t.depth(), np.arange(5))

    def test_depth_star(self):
        t = star_tree(4)
        assert np.array_equal(t.depth(), np.zeros(4))

    def test_roots(self):
        t = CompressionTree(parent=np.array([VIRTUAL, 0, VIRTUAL, 2]))
        assert np.array_equal(t.roots, [0, 2])

    def test_tree_edges_count(self):
        t = CompressionTree(parent=np.array([VIRTUAL, 0, VIRTUAL, 2]))
        assert t.num_tree_edges == 2

    def test_topological_order_parents_first(self):
        parent = np.array([VIRTUAL, 0, 1, 0, VIRTUAL, 4])
        t = CompressionTree(parent=parent)
        pos = np.empty(t.n, dtype=int)
        pos[t.topological_order()] = np.arange(t.n)
        for x in range(t.n):
            if parent[x] != VIRTUAL:
                assert pos[parent[x]] < pos[x]

    def test_levels_partition_non_roots(self):
        t = chain_tree(6)
        levels = t.levels()
        assert len(levels) == 5
        all_rows = np.concatenate(levels)
        assert sorted(all_rows.tolist()) == list(range(1, 6))

    def test_levels_parents_at_previous_level(self):
        parent = np.array([VIRTUAL, 0, 0, 1, 2, VIRTUAL, 5])
        t = CompressionTree(parent=parent)
        depth = t.depth()
        for k, lv in enumerate(t.levels(), start=1):
            assert np.all(depth[lv] == k)
            assert np.all(depth[parent[lv]] == k - 1)

    def test_branches_are_root_subtrees(self):
        parent = np.array([VIRTUAL, 0, 0, VIRTUAL, 3, 4])
        t = CompressionTree(parent=parent)
        branches = {tuple(sorted(b.tolist())) for b in t.branches()}
        assert branches == {(0, 1, 2), (3, 4, 5)}

    def test_branches_topological_within(self):
        parent = np.array([VIRTUAL, 0, 1, 2, 3])
        t = CompressionTree(parent=parent)
        (b,) = t.branches()
        assert b.tolist() == [0, 1, 2, 3, 4]

    def test_children_counts(self):
        parent = np.array([VIRTUAL, 0, 0, 1])
        t = CompressionTree(parent=parent)
        assert np.array_equal(t.children_counts(), [2, 1, 0, 0])

    def test_total_weight(self):
        t = CompressionTree(parent=np.array([VIRTUAL, 0]), weight=np.array([3, 2]))
        assert t.total_weight() == 5

    def test_stats_keys(self):
        st = chain_tree(4).stats()
        for key in ("rows", "roots", "tree_edges", "max_depth", "branches", "largest_branch"):
            assert key in st
        assert st["roots"] == 1
        assert st["branches"] == 1
        assert st["largest_branch"] == 4
