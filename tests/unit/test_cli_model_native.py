"""CLI coverage: the model command on non-registry graphs, and inspect
of every variant archive."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.builder import build_cbm
from repro.core.io import save_cbm
from repro.sparse.io import save_matrix_market

from tests.conftest import random_adjacency_csr


class TestModelNativeScale:
    def test_model_on_mtx_file(self, tmp_path, capsys):
        a = random_adjacency_csr(25, density=0.3, seed=0)
        path = tmp_path / "g.mtx"
        save_matrix_market(path, a, field="pattern")
        assert main(["model", str(path), "-p", "32"]) == 0
        out = capsys.readouterr().out
        assert "native scale" in out
        assert "CSR" in out and "CBM" in out

    def test_model_on_registry_uses_paper_scale(self, capsys):
        assert main(["model", "Cora", "-p", "32"]) == 0
        assert "paper scale" in capsys.readouterr().out


class TestInspectVariants:
    @pytest.mark.parametrize("variant", ["AD", "DAD"])
    def test_inspect_scaled_archive(self, tmp_path, capsys, variant):
        rng = np.random.default_rng(1)
        a = random_adjacency_csr(15, seed=2)
        d = rng.random(15) + 0.5
        cbm, _ = build_cbm(a, alpha=1, variant=variant, diag=d)
        path = tmp_path / f"{variant}.npz"
        save_cbm(path, cbm)
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert variant in out

    def test_inspect_d1ad2_archive(self, tmp_path, capsys):
        rng = np.random.default_rng(3)
        a = random_adjacency_csr(15, seed=4)
        d1, d2 = rng.random(15) + 0.5, rng.random(15) + 0.5
        cbm, _ = build_cbm(a, alpha=0, variant="D1AD2", diag=d2, diag_left=d1)
        path = tmp_path / "g.npz"
        save_cbm(path, cbm)
        assert main(["inspect", str(path)]) == 0
        assert "D1AD2" in capsys.readouterr().out
