"""Unit tests for scalar-operation and memory accounting."""

import pytest

from repro.core.builder import build_cbm
from repro.core.opcount import (
    OpCount,
    cbm_memory_bytes,
    cbm_spmm_ops,
    compression_ratio,
    csr_memory_bytes,
    csr_spmm_ops,
)

from tests.conftest import random_adjacency_csr


class TestOpCount:
    def test_total(self):
        oc = OpCount(multiply_stage=10, update_stage=5)
        assert oc.total == 15

    def test_add(self):
        a = OpCount(1, 2) + OpCount(3, 4)
        assert a.multiply_stage == 4 and a.update_stage == 6


class TestCsrOps:
    def test_formula(self):
        a = random_adjacency_csr(20, seed=0)
        assert csr_spmm_ops(a, 10).total == 2 * a.nnz * 10

    def test_zero_columns(self):
        a = random_adjacency_csr(20, seed=1)
        assert csr_spmm_ops(a, 0).total == 0

    def test_negative_p_rejected(self):
        with pytest.raises(ValueError):
            csr_spmm_ops(random_adjacency_csr(5, seed=2), -1)


class TestCbmOps:
    def test_variants_a_ad_equal(self):
        a = random_adjacency_csr(20, seed=3)
        cbm, _ = build_cbm(a, alpha=0)
        assert (
            cbm_spmm_ops(cbm.delta, cbm.tree, 8, variant="A").total
            == cbm_spmm_ops(cbm.delta, cbm.tree, 8, variant="AD").total
        )

    def test_dad_costs_more(self):
        a = random_adjacency_csr(20, seed=4)
        cbm, _ = build_cbm(a, alpha=0)
        plain = cbm_spmm_ops(cbm.delta, cbm.tree, 8, variant="A").total
        dad = cbm_spmm_ops(cbm.delta, cbm.tree, 8, variant="DAD").total
        if cbm.tree.num_tree_edges > 0:
            assert dad > plain

    def test_unknown_variant(self):
        a = random_adjacency_csr(10, seed=5)
        cbm, _ = build_cbm(a, alpha=0)
        with pytest.raises(ValueError):
            cbm_spmm_ops(cbm.delta, cbm.tree, 4, variant="XYZ")

    def test_property2(self):
        """multiply-stage ops of CBM never exceed the CSR ops (Property 2)."""
        for seed in range(4):
            a = random_adjacency_csr(30, density=0.3, seed=seed)
            cbm, _ = build_cbm(a, alpha=0)
            p = 16
            assert cbm_spmm_ops(cbm.delta, cbm.tree, p).multiply_stage <= csr_spmm_ops(a, p).total


class TestMemory:
    def test_csr_matches_paper_formula(self):
        a = random_adjacency_csr(20, seed=6)
        assert csr_memory_bytes(a) == 8 * a.nnz + 4 * (a.shape[0] + 1)

    def test_cbm_includes_tree(self):
        a = random_adjacency_csr(20, seed=7)
        cbm, _ = build_cbm(a, alpha=0)
        base = cbm.delta.memory_bytes()
        assert cbm_memory_bytes(cbm.delta, cbm.tree) == base + 8 * cbm.tree.num_tree_edges

    def test_compression_ratio_identity_for_star_tree(self):
        """alpha huge -> all rows virtual -> A' == A -> ratio exactly 1."""
        a = random_adjacency_csr(20, seed=8)
        cbm, rep = build_cbm(a, alpha=10_000)
        assert cbm.tree.num_tree_edges == 0
        assert rep.compression_ratio == pytest.approx(1.0)
        assert compression_ratio(a, cbm.delta, cbm.tree) == pytest.approx(1.0)
