"""Failure-injection tests: corrupted structures fail loudly, not wrongly.

A compression format that silently produces wrong products is worse than
one that crashes.  These tests corrupt each structure the kernels trust
and assert the library either raises a library error or reports the
corruption — never returns a quietly wrong answer that validation
wouldn't catch.
"""

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.core.cbm import CBMMatrix
from repro.core.tree import CompressionTree, VIRTUAL
from repro.core.verify import verify_cbm
from repro.errors import (
    CompressionError,
    FormatError,
    ParallelError,
    ReproError,
    TreeError,
)
from repro.sparse.csr import CSRMatrix

from tests.conftest import random_adjacency_csr


class TestCorruptCSR:
    def test_truncated_indices(self):
        a = random_adjacency_csr(10, seed=0)
        with pytest.raises(FormatError):
            CSRMatrix(a.indptr, a.indices[:-1], a.data, a.shape)

    def test_indptr_overflow(self):
        a = random_adjacency_csr(10, seed=1)
        bad = a.indptr.copy()
        bad[-1] += 5
        with pytest.raises(FormatError):
            CSRMatrix(bad, a.indices, a.data, a.shape)

    def test_shuffled_columns_detected(self):
        a = random_adjacency_csr(10, seed=2)
        if a.row_nnz().max() < 2:
            pytest.skip("need a row with 2+ entries")
        bad = a.indices.copy()
        # Reverse the first multi-entry row's columns.
        x = int(np.argmax(a.row_nnz() >= 2))
        lo, hi = a.indptr[x], a.indptr[x + 1]
        bad[lo:hi] = bad[lo:hi][::-1]
        with pytest.raises(FormatError):
            CSRMatrix(a.indptr, bad, a.data, a.shape)


class TestCorruptTree:
    def test_two_cycle(self):
        with pytest.raises(TreeError):
            CompressionTree(parent=np.array([1, 0]))

    def test_mixed_forest_with_cycle(self):
        with pytest.raises(TreeError):
            CompressionTree(parent=np.array([VIRTUAL, 2, 1, 0]))

    def test_tree_delta_size_mismatch(self):
        a = random_adjacency_csr(10, seed=3)
        cbm, _ = build_cbm(a, alpha=0)
        small_tree = CompressionTree(parent=np.full(5, VIRTUAL))
        with pytest.raises(ReproError):
            CBMMatrix(tree=small_tree, delta=cbm.delta)


class TestCorruptDeltas:
    def test_wrong_sign_caught_by_verify(self):
        a = random_adjacency_csr(20, seed=4)
        cbm, _ = build_cbm(a, alpha=0)
        cbm.delta.data[:] = np.abs(cbm.delta.data)  # erase all negatives
        report = verify_cbm(cbm, a, runs=2, columns=8)
        # Either numerically wrong or structurally unreconstructable.
        if cbm.tree.num_tree_edges > 0 and (cbm.delta.data < 0).sum() == 0:
            assert not report.passed or cbm.num_deltas == a.nnz

    def test_reconstruction_rejects_orphan_negative(self):
        from repro.core.deltas import reconstruct_rows
        from repro.sparse.convert import from_dense

        delta = from_dense(np.array([[-1.0, 0.0], [0.0, 1.0]], dtype=np.float32))
        tree = CompressionTree(parent=np.array([VIRTUAL, VIRTUAL]), weight=np.array([1, 1]))
        with pytest.raises(CompressionError):
            reconstruct_rows(delta, tree)


class TestExecutorFailures:
    def test_worker_exception_propagates(self):
        """A failure inside a worker thread surfaces as ParallelError."""
        from repro.parallel.executor import ThreadedUpdateExecutor

        a = random_adjacency_csr(20, seed=5)
        cbm, _ = build_cbm(a, alpha=0)
        if cbm.tree.num_tree_edges == 0:
            pytest.skip("no update work on this graph")
        c = np.zeros((5, 3), dtype=np.float32)  # too few rows -> IndexError
        with pytest.raises(ParallelError):
            ThreadedUpdateExecutor(2).run_update(cbm.tree, c)


class TestScheduleGuards:
    def test_nan_cost_rejected(self):
        from repro.parallel.schedule import simulate_dynamic_schedule

        with pytest.raises(ParallelError):
            simulate_dynamic_schedule(np.array([1.0, -2.0]), 2)
