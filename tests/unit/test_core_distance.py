"""Unit tests for distance-graph construction."""

import numpy as np
import pytest

from repro.core.distance import brute_force_distance_graph, candidate_edges
from repro.errors import NotBinaryError
from repro.sparse.convert import from_dense

from tests.conftest import random_adjacency_csr, random_binary_csr


def edge_set(g):
    return {(int(s), int(d), int(w)) for s, d, w in zip(g.src, g.dst, g.weight, strict=True)}


class TestCandidateEdges:
    def test_rejects_non_binary(self):
        a = from_dense(np.array([[0.0, 2.0], [1.0, 0.0]], dtype=np.float32))
        with pytest.raises(NotBinaryError):
            candidate_edges(a, 0)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            candidate_edges(random_binary_csr(10, seed=1), -1)

    def test_weights_are_hamming_distances(self):
        a = random_binary_csr(15, density=0.4, seed=2)
        dense = a.toarray()
        g = candidate_edges(a, None)
        for s, d, w in zip(g.src, g.dst, g.weight, strict=True):
            assert w == np.sum(dense[s] != dense[d])

    def test_matches_brute_force_undirected(self):
        a = random_binary_csr(20, density=0.35, seed=3)
        fast = candidate_edges(a, None)
        slow = brute_force_distance_graph(a, None)
        assert edge_set(fast) == edge_set(slow)

    @pytest.mark.parametrize("alpha", [0, 1, 2, 4, 8])
    def test_matches_brute_force_directed(self, alpha):
        a = random_binary_csr(18, density=0.4, seed=4)
        fast = candidate_edges(a, alpha)
        slow = brute_force_distance_graph(a, alpha)
        assert edge_set(fast) == edge_set(slow)

    def test_larger_alpha_prunes_more(self):
        a = random_adjacency_csr(30, density=0.4, seed=5)
        sizes = [candidate_edges(a, alpha).num_edges for alpha in (0, 2, 8, 32)]
        assert sizes == sorted(sizes, reverse=True)

    def test_pruned_edges_save_more_than_alpha(self):
        a = random_adjacency_csr(25, density=0.4, seed=6)
        alpha = 3
        g = candidate_edges(a, alpha)
        for d, w in zip(g.dst, g.weight, strict=True):
            assert g.row_nnz[d] - w > alpha

    def test_undirected_no_duplicate_pairs(self):
        g = candidate_edges(random_adjacency_csr(25, density=0.4, seed=7), None)
        pairs = set(zip(g.src.tolist(), g.dst.tolist(), strict=True))
        assert len(pairs) == g.num_edges
        assert all(s > d for s, d in pairs)

    def test_zero_overlap_pairs_excluded(self):
        # Block-diagonal matrix: rows of different blocks never overlap.
        d = np.zeros((6, 6), dtype=np.float32)
        d[:3, :3] = 1 - np.eye(3)
        d[3:, 3:] = 1 - np.eye(3)
        g = candidate_edges(from_dense(d), None)
        for s, dd in zip(g.src, g.dst, strict=True):
            assert (s < 3) == (dd < 3)

    def test_validate_passes(self):
        g = candidate_edges(random_adjacency_csr(20, seed=8), 2)
        g.validate()

    def test_empty_matrix(self):
        a = from_dense(np.zeros((4, 4), dtype=np.float32))
        g = candidate_edges(a, 0)
        assert g.num_edges == 0
