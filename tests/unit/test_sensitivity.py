"""Unit tests for the sensitivity-sweep generators and sweeps."""

import numpy as np
import pytest

from repro.bench.sensitivity import (
    blowup_graph,
    noisy_clique_graph,
    sweep_closure,
    sweep_degree,
    sweep_duplication,
    sweep_noise,
)
from repro.core.builder import build_cbm
from repro.graphs.adjacency import is_undirected_simple


class TestBlowupGraph:
    def test_replicas_have_identical_rows(self):
        a = blowup_graph(20, 3, 6.0, seed=0)
        dense = a.toarray()
        for i in range(20):
            rows = dense[3 * i : 3 * i + 3]
            assert np.array_equal(rows[0], rows[1])
            assert np.array_equal(rows[0], rows[2])

    def test_r1_is_base_graph(self):
        a = blowup_graph(50, 1, 8.0, seed=1)
        assert a.shape == (50, 50)
        assert is_undirected_simple(a)

    def test_degree_scales_with_r(self):
        base = blowup_graph(40, 1, 8.0, seed=2)
        blown = blowup_graph(40, 4, 8.0, seed=2)
        assert blown.nnz == pytest.approx(16 * base.nnz, rel=0.01)

    def test_invalid_replication(self):
        with pytest.raises(ValueError):
            blowup_graph(10, 0, 4.0)

    def test_compression_approaches_r(self):
        a = blowup_graph(60, 6, 8.0, seed=3)
        _, rep = build_cbm(a, alpha=0)
        assert rep.compression_ratio > 4.0


class TestNoisyCliques:
    def test_zero_noise_is_disjoint_cliques(self):
        a = noisy_clique_graph(60, 20, 0, seed=0)
        deg = a.row_nnz()
        assert np.all(deg == 19)

    def test_simple_graph(self):
        assert is_undirected_simple(noisy_clique_graph(90, 30, 4, seed=1))

    def test_noise_adds_edges(self):
        clean = noisy_clique_graph(90, 30, 0, seed=2)
        noisy = noisy_clique_graph(90, 30, 8, seed=2)
        assert noisy.nnz > clean.nnz


class TestSweeps:
    def test_closure_monotone_clustering(self):
        rows = sweep_closure(n=400, closures=(0.0, 0.5), seed=1)
        assert rows[1]["clustering"] > rows[0]["clustering"]

    def test_degree_sweep_er_never_compresses(self):
        """Shared-by-chance neighbourhoods: ratio pinned at ~1 regardless
        of degree (the control arm)."""
        for r in sweep_degree(n=400, degrees=(4.0, 32.0), seed=2):
            assert 0.95 < r["ratio"] < 1.2

    def test_duplication_sweep_monotone(self):
        rows = sweep_duplication(n=480, replications=(1, 4), seed=3)
        assert rows[1]["ratio"] > 2 * rows[0]["ratio"]

    def test_noise_sweep_degrades_ratio(self):
        rows = sweep_noise(n=300, clique_size=30, flips=(0, 16), seed=4)
        assert rows[0]["ratio"] > rows[1]["ratio"]
