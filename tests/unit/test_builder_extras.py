"""Unit tests for builder extras: stage timings and parallel clustered build."""

import numpy as np
import pytest

from repro.core.builder import build_cbm, build_clustered

from tests.conftest import random_adjacency_csr


class TestStageTimings:
    def test_stages_present_and_sum(self):
        a = random_adjacency_csr(40, seed=0)
        _, rep = build_cbm(a, alpha=0)
        assert rep.stage_seconds is not None
        assert set(rep.stage_seconds) == {"candidates", "spanning", "deltas"}
        assert all(v >= 0 for v in rep.stage_seconds.values())
        assert sum(rep.stage_seconds.values()) == pytest.approx(rep.seconds, rel=0.05)

    def test_stages_for_mca_path(self):
        a = random_adjacency_csr(40, seed=1)
        _, rep = build_cbm(a, alpha=4)
        assert rep.stage_seconds["spanning"] >= 0


class TestParallelClusteredBuild:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_workers_equal_results(self, workers):
        a = random_adjacency_csr(60, density=0.3, seed=2)
        cbm, rep = build_clustered(a, cluster_size=16, workers=workers)
        base, base_rep = build_clustered(a, cluster_size=16, workers=1)
        assert rep.total_deltas == base_rep.total_deltas
        assert np.array_equal(cbm.tree.parent, base.tree.parent)

    def test_workers_correct_product(self):
        a = random_adjacency_csr(60, density=0.3, seed=3)
        cbm, _ = build_clustered(a, cluster_size=16, workers=3)
        x = np.random.default_rng(0).random((60, 5)).astype(np.float32)
        assert np.allclose(cbm.matmul(x), a.toarray() @ x, rtol=1e-4)

    def test_single_cluster_short_circuits(self):
        a = random_adjacency_csr(20, seed=4)
        cbm, _ = build_clustered(a, cluster_size=1000, workers=8)
        x = np.random.default_rng(1).random((20, 3)).astype(np.float32)
        assert np.allclose(cbm.matmul(x), a.toarray() @ x, rtol=1e-4)
