"""Unit tests for ASCII charts, schedule traces, and APPNP."""

import math

import numpy as np
import pytest

from repro.bench.plots import ascii_chart, figure2_panel
from repro.errors import GNNError, ParallelError
from repro.gnn.adjacency import make_operator
from repro.gnn.appnp import APPNP
from repro.graphs.laplacian import normalized_adjacency
from repro.parallel.schedule import simulate_dynamic_schedule
from repro.parallel.trace import render_gantt, traced_schedule

from tests.conftest import random_adjacency_csr


class TestAsciiChart:
    def test_contains_series_glyphs_and_legend(self):
        text = ascii_chart([0, 1, 2], {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]})
        assert "*" in text and "o" in text
        assert "legend: * a   o b" in text

    def test_x_labels_rendered(self):
        text = ascii_chart([0, 8, 32], {"s": [1.0, 2.0, 1.5]})
        assert "32" in text

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([1], {})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [1.0]})

    def test_small_height_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([1], {"a": [1.0]}, height=2)

    def test_nan_values_skipped(self):
        text = ascii_chart([0, 1], {"a": [1.0, math.nan]})
        grid = "\n".join(text.splitlines()[:-1])  # drop the legend line
        assert grid.count("*") == 1

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([0], {"a": [math.nan]})

    def test_constant_series(self):
        text = ascii_chart([0, 1], {"a": [2.0, 2.0]})
        grid = "\n".join(text.splitlines()[:-1])  # drop the legend line
        assert grid.count("*") == 2

    def test_figure2_panel(self):
        text = figure2_panel(
            [0, 2, 8],
            [1.0, 1.5, 1.4],
            [1.1, 1.6, 1.8],
            [2.0, 1.9, 1.5],
            graph="ca-HepPh",
        )
        assert "ca-HepPh" in text
        assert "compression ratio" in text


class TestTrace:
    def test_matches_untraced_makespan(self):
        rng = np.random.default_rng(0)
        costs = rng.random(40) * 5
        for threads in (1, 4, 16):
            traced = traced_schedule(costs, threads)
            plain = simulate_dynamic_schedule(costs, threads)
            assert traced.makespan == pytest.approx(plain.makespan)

    def test_events_cover_all_tasks(self):
        trace = traced_schedule([1.0, 2.0, 3.0], 2)
        assert sorted(e.task for e in trace.events) == [0, 1, 2]

    def test_no_thread_overlap(self):
        rng = np.random.default_rng(1)
        trace = traced_schedule(rng.random(30), 4)
        by_thread = {}
        for e in trace.events:
            by_thread.setdefault(e.thread, []).append(e)
        for events in by_thread.values():
            events.sort(key=lambda e: e.start)
            for a, b in zip(events, events[1:], strict=False):
                assert a.end <= b.start + 1e-12

    def test_busy_and_utilisation(self):
        trace = traced_schedule([2.0, 2.0], 2)
        assert trace.utilisation == pytest.approx(1.0)
        assert trace.thread_busy().tolist() == [2.0, 2.0]

    def test_negative_cost_rejected(self):
        with pytest.raises(ParallelError):
            traced_schedule([-1.0], 2)

    def test_gantt_renders(self):
        trace = traced_schedule([3.0, 1.0, 2.0], 2)
        text = render_gantt(trace, width=40)
        assert "T00" in text and "T01" in text
        assert "makespan" in text

    def test_gantt_empty(self):
        assert "empty" in render_gantt(traced_schedule([], 2))


class TestAPPNP:
    def test_forward_shape(self):
        a = random_adjacency_csr(30, seed=0)
        op = make_operator(a, "csr")
        x = np.random.default_rng(0).random((30, 8)).astype(np.float32)
        model = APPNP(8, 16, 3, k=4, seed=1)
        assert model(op, x).shape == (30, 3)

    def test_formats_agree(self):
        a = random_adjacency_csr(25, seed=1)
        x = np.random.default_rng(1).random((25, 6)).astype(np.float32)
        model = APPNP(6, 8, 2, k=5, seed=2)
        y1 = model(make_operator(a, "csr"), x)
        y2 = model(make_operator(a, "cbm", alpha=2), x)
        assert np.allclose(y1, y2, rtol=1e-3, atol=1e-4)

    def test_propagation_matches_manual_recursion(self):
        a = random_adjacency_csr(20, seed=2)
        op = make_operator(a, "csr")
        h = np.random.default_rng(2).random((20, 3)).astype(np.float32)
        model = APPNP(3, 4, 3, k=2, teleport=0.2, seed=3)
        a_hat = normalized_adjacency(a).toarray().astype(np.float64)
        z = h.astype(np.float64)
        for _ in range(2):
            z = 0.8 * (a_hat @ z) + 0.2 * h
        assert np.allclose(model.propagate(op, h), z, rtol=1e-3, atol=1e-5)

    def test_teleport_one_is_identity(self):
        a = random_adjacency_csr(15, seed=3)
        op = make_operator(a, "csr")
        h = np.random.default_rng(3).random((15, 2)).astype(np.float32)
        model = APPNP(2, 4, 2, k=7, teleport=1.0)
        assert np.allclose(model.propagate(op, h), h, rtol=1e-5)

    def test_invalid_params(self):
        with pytest.raises(GNNError):
            APPNP(4, 4, 2, k=0)
        with pytest.raises(GNNError):
            APPNP(4, 4, 2, teleport=0.0)
        with pytest.raises(GNNError):
            APPNP(4, 4, 2, teleport=1.5)

    def test_wrong_node_count(self):
        a = random_adjacency_csr(10, seed=4)
        model = APPNP(4, 4, 2)
        with pytest.raises(GNNError):
            model.propagate(make_operator(a, "csr"), np.ones((3, 2), dtype=np.float32))
