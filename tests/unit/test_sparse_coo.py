"""Unit tests for the COO container."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.sparse.coo import COOMatrix


class TestConstruction:
    def test_basic(self):
        m = COOMatrix([0, 1], [1, 0], [1.0, 2.0], (2, 2))
        assert m.nnz == 2
        assert m.shape == (2, 2)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(FormatError):
            COOMatrix([0, 1], [1], [1.0, 2.0], (2, 2))

    def test_out_of_range_row_rejected(self):
        with pytest.raises(FormatError):
            COOMatrix([5], [0], [1.0], (2, 2))

    def test_out_of_range_col_rejected(self):
        with pytest.raises(FormatError):
            COOMatrix([0], [9], [1.0], (2, 2))

    def test_negative_index_rejected(self):
        with pytest.raises(FormatError):
            COOMatrix([-1], [0], [1.0], (2, 2))

    def test_bad_shape_rejected(self):
        with pytest.raises(ShapeError):
            COOMatrix([], [], [], (2,))

    def test_empty_matrix(self):
        m = COOMatrix([], [], [], (3, 3))
        assert m.nnz == 0
        assert np.array_equal(m.toarray(), np.zeros((3, 3)))


class TestFromEdges:
    def test_symmetric_expansion(self):
        m = COOMatrix.from_edges([[0, 1]], (3, 3), symmetric=True)
        arr = m.toarray()
        assert arr[0, 1] == 1 and arr[1, 0] == 1

    def test_self_loop_stored_once_when_symmetric(self):
        m = COOMatrix.from_edges([[1, 1]], (3, 3), symmetric=True)
        assert m.nnz == 1

    def test_bad_edge_shape(self):
        with pytest.raises(ShapeError):
            COOMatrix.from_edges([[0, 1, 2]], (3, 3))


class TestSumDuplicates:
    def test_duplicates_summed(self):
        m = COOMatrix([0, 0, 1], [1, 1, 0], [1.0, 2.0, 3.0], (2, 2))
        s = m.sum_duplicates()
        assert s.nnz == 2
        assert s.toarray()[0, 1] == 3.0

    def test_sorted_output(self):
        m = COOMatrix([1, 0, 1], [0, 1, 2], [1, 1, 1], (2, 3))
        s = m.sum_duplicates()
        order = np.lexsort((s.cols, s.rows))
        assert np.array_equal(order, np.arange(s.nnz))

    def test_empty(self):
        m = COOMatrix([], [], [], (2, 2))
        assert m.sum_duplicates().nnz == 0


class TestConversions:
    def test_tocsr_roundtrip(self):
        rng = np.random.default_rng(0)
        dense = (rng.random((7, 9)) < 0.4) * rng.random((7, 9))
        rows, cols = np.nonzero(dense)
        m = COOMatrix(rows, cols, dense[rows, cols], dense.shape)
        assert np.allclose(m.tocsr().toarray(), dense)

    def test_tocsr_sums_duplicates(self):
        m = COOMatrix([0, 0], [0, 0], [1.0, 1.0], (1, 1))
        csr = m.tocsr()
        assert csr.nnz == 1
        assert csr.toarray()[0, 0] == 2.0

    def test_transpose(self):
        m = COOMatrix([0, 1], [2, 0], [5.0, 7.0], (2, 3))
        t = m.transpose()
        assert t.shape == (3, 2)
        assert np.array_equal(t.toarray(), m.toarray().T)

    def test_toarray_accumulates_duplicates(self):
        m = COOMatrix([0, 0], [1, 1], [2.0, 3.0], (1, 2))
        assert m.toarray()[0, 1] == 5.0
