"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graphs.adjacency import is_undirected_simple
from repro.graphs.generators import (
    citation_graph,
    coauthor_graph,
    copapers_graph,
    erdos_renyi_graph,
    ppi_graph,
    sbm_graph,
)
from repro.graphs.stats import average_clustering_coefficient, average_degree


ALL_GENERATORS = [
    lambda seed: erdos_renyi_graph(200, 8.0, seed=seed),
    lambda seed: sbm_graph([60, 70, 70], 0.2, 0.01, seed=seed),
    lambda seed: citation_graph(200, 5.0, closure=0.3, seed=seed),
    lambda seed: coauthor_graph(200, seed=seed),
    lambda seed: copapers_graph(200, seed=seed),
    lambda seed: ppi_graph(200, 20.0, communities=4, seed=seed),
]


class TestCommonInvariants:
    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_undirected_simple(self, gen):
        assert is_undirected_simple(gen(0))

    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_deterministic_per_seed(self, gen):
        a, b = gen(5), gen(5)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.indptr, b.indptr)

    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_different_seeds_differ(self, gen):
        a, b = gen(1), gen(2)
        assert a.nnz != b.nnz or not np.array_equal(a.indices, b.indices)


class TestErdosRenyi:
    def test_degree_close_to_target(self):
        a = erdos_renyi_graph(2000, 10.0, seed=0)
        assert 8.0 < average_degree(a) < 10.5

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(0, 5.0)
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, -1.0)


class TestSbm:
    def test_block_structure(self):
        a = sbm_graph([50, 50], 0.4, 0.0, seed=1)
        arr = a.toarray()
        assert arr[:50, 50:].sum() == 0
        assert arr[:50, :50].sum() > 0

    def test_cross_block_edges_with_positive_pout(self):
        a = sbm_graph([50, 50], 0.1, 0.1, seed=2)
        assert a.toarray()[:50, 50:].sum() > 0


class TestCitation:
    def test_low_closure_low_clustering(self):
        lo = citation_graph(800, 6.0, closure=0.02, seed=3)
        hi = citation_graph(800, 6.0, closure=0.6, seed=3)
        assert average_clustering_coefficient(lo) < average_clustering_coefficient(hi)

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            citation_graph(2, 8.0)


class TestCliqueFamilies:
    def test_coauthor_high_clustering(self):
        a = coauthor_graph(600, papers_per_author=4.0, authors_per_paper=5.0, seed=4)
        assert average_clustering_coefficient(a) > 0.3

    def test_copapers_high_clustering(self):
        a = copapers_graph(600, seed=5)
        assert average_clustering_coefficient(a) > 0.3

    def test_mega_papers_boost_degree(self):
        base = coauthor_graph(500, mega_papers=0, seed=6)
        mega = coauthor_graph(500, mega_papers=4, mega_team_size=80, seed=6)
        assert average_degree(mega) > average_degree(base)


class TestPpi:
    def test_high_degree_moderate_clustering(self):
        a = ppi_graph(800, 60.0, communities=6, seed=7)
        assert average_degree(a) > 30
        assert average_clustering_coefficient(a) < 0.6
