"""Property-based tests for the graph generators (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.adjacency import is_undirected_simple
from repro.graphs.generators import (
    citation_graph,
    coauthor_graph,
    copapers_graph,
    erdos_renyi_graph,
    ppi_graph,
    rmat_graph,
    sbm_graph,
)


class TestGeneratorInvariants:
    @given(st.integers(10, 150), st.floats(1.0, 12.0), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_erdos_renyi_simple(self, n, deg, seed):
        a = erdos_renyi_graph(n, deg, seed=seed)
        assert a.shape == (n, n)
        assert is_undirected_simple(a)

    @given(st.integers(10, 120), st.floats(2.0, 8.0), st.floats(0.0, 0.9), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_citation_simple(self, n, deg, closure, seed):
        a = citation_graph(n, deg, closure=closure, seed=seed)
        assert is_undirected_simple(a)
        # preferential attachment guarantees connectivity to the core:
        # every non-seed node has at least one edge.
        m = max(1, int(round(deg / 2)))
        assert np.all(a.row_nnz()[m:] >= 1)

    @given(st.integers(20, 120), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_coauthor_simple(self, n, seed):
        a = coauthor_graph(n, seed=seed)
        assert is_undirected_simple(a)

    @given(st.integers(20, 120), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_copapers_simple(self, n, seed):
        assert is_undirected_simple(copapers_graph(n, seed=seed))

    @given(st.integers(30, 120), st.floats(4.0, 20.0), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_ppi_simple(self, n, deg, seed):
        assert is_undirected_simple(ppi_graph(n, deg, communities=3, seed=seed))

    @given(st.integers(4, 8), st.floats(2.0, 10.0), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_rmat_simple(self, scale, deg, seed):
        a = rmat_graph(scale, deg, seed=seed)
        assert a.shape == (1 << scale, 1 << scale)
        assert is_undirected_simple(a)

    @given(
        st.lists(st.integers(5, 40), min_size=1, max_size=4),
        st.floats(0.0, 0.5),
        st.floats(0.0, 0.1),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_sbm_simple(self, sizes, p_in, p_out, seed):
        a = sbm_graph(sizes, p_in, p_out, seed=seed)
        assert a.shape[0] == sum(sizes)
        assert is_undirected_simple(a)

    @given(st.integers(10, 80), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_same_seed_same_graph(self, n, seed):
        a = erdos_renyi_graph(n, 6.0, seed=seed)
        b = erdos_renyi_graph(n, 6.0, seed=seed)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
