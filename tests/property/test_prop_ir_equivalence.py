"""Migration property: the unified IR reproduces the legacy verdicts.

``analyze_shard_plan`` and ``analyze_batch_layout`` now lower through
the unified plan IR (:mod:`repro.staticcheck.ir`); the pre-IR
implementations are kept as oracles (``_legacy_*``).  This suite drives
random — including deliberately malformed — shard bounds, shared-memory
layouts, and batch layouts through both paths and requires identical
verdicts on the shared domain: same finding codes, same named-check
outcomes, same overall ok.  The IR is allowed to *add* checks (the
happens-before family) but never to flip or drop a legacy one.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.shard import ShardedPlan
from repro.serving.batching import BatchLayout
from repro.staticcheck import (
    analyze_batch_layout,
    analyze_ir,
    analyze_shard_plan,
    lower_batch_layout,
    lower_shard_plan,
)
from repro.staticcheck.hazards import (
    _legacy_analyze_batch_layout,
    _legacy_analyze_shard_plan,
)

from tests.conftest import random_adjacency_csr


def _assert_equivalent(ir_report, legacy_report):
    # Compare code SETS: the IR reports one finding per buffer where the
    # legacy pass aggregated (e.g. aliasing in two shm segments was one
    # HZ-S103); which rules fired, the named checks, and the overall ok
    # must match exactly.
    ir_codes = sorted({f.code for f in ir_report.findings})
    legacy_codes = sorted({f.code for f in legacy_report.findings})
    assert ir_codes == legacy_codes, (
        f"finding codes diverged: IR {ir_codes} vs legacy {legacy_codes}\n"
        f"--- IR ---\n{ir_report.render()}\n"
        f"--- legacy ---\n{legacy_report.render()}"
    )
    for name, verdict in legacy_report.checks.items():
        assert name in ir_report.checks, f"IR dropped legacy check {name!r}"
        assert ir_report.checks[name] == verdict, (
            f"check {name!r} flipped: IR {ir_report.checks[name]} "
            f"vs legacy {verdict}"
        )
    assert ir_report.ok == legacy_report.ok


# ----------------------------------------------------------------------
# Shard plans: random (often malformed) bounds and segment layouts


_bounds = st.lists(
    st.tuples(
        st.integers(min_value=-5, max_value=30),
        st.integers(min_value=-5, max_value=30),
    ),
    min_size=0,
    max_size=6,
)

_segments = st.one_of(
    st.none(),
    st.lists(
        st.fixed_dictionaries(
            {
                "segment": st.sampled_from(["seg0", "seg1"]),
                "shard": st.integers(min_value=0, max_value=3),
                "array": st.sampled_from(["indptr", "indices", "values", "board"]),
                "offset": st.integers(min_value=0, max_value=100),
                "nbytes": st.integers(min_value=0, max_value=50),
            }
        ),
        min_size=0,
        max_size=8,
    ),
)


@given(
    bounds=_bounds,
    n_rows=st.one_of(st.none(), st.integers(min_value=0, max_value=30)),
    layout=_segments,
)
@settings(max_examples=200, deadline=None)
def test_shard_verdicts_identical(bounds, n_rows, layout):
    ir_report = analyze_ir(
        lower_shard_plan(bounds=bounds, n_rows=n_rows, layout=layout)
    )
    legacy = _legacy_analyze_shard_plan(bounds=bounds, n_rows=n_rows, layout=layout)
    _assert_equivalent(ir_report, legacy)


# ----------------------------------------------------------------------
# Batch layouts: random members, including overlapping / out-of-bounds /
# zero-width / gapped ones a buggy collector could produce


_members = st.lists(
    st.tuples(
        st.integers(min_value=-4, max_value=40),   # offset
        st.integers(min_value=-3, max_value=10),   # width
    ),
    min_size=0,
    max_size=6,
)


@given(members=_members, total=st.integers(min_value=0, max_value=60))
@settings(max_examples=200, deadline=None)
def test_batch_verdicts_identical(members, total):
    layout = BatchLayout(members=tuple(members), total_columns=total, n_rows=8)
    ir_report = analyze_ir(lower_batch_layout(layout))
    legacy = _legacy_analyze_batch_layout(layout)
    _assert_equivalent(ir_report, legacy)


@given(
    widths=st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=6),
    quantum=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=100, deadline=None)
def test_packed_layouts_clean_under_both(widths, quantum):
    """The collector's only real shape must stay clean through both paths."""
    layout = BatchLayout.pack(widths, quantum=quantum, n_rows=8)
    assert _legacy_analyze_batch_layout(layout).ok
    assert analyze_batch_layout(layout).ok


# ----------------------------------------------------------------------
# Real sharded plans: the public (IR-backed) entry point agrees with the
# oracle on genuine ShardedPlan objects, not just raw pieces


def test_real_sharded_plans_agree():
    for seed, shards in ((0, 2), (7, 3), (11, 4)):
        a = random_adjacency_csr(80, density=0.15, seed=seed)
        with ShardedPlan(a, num_shards=shards, alpha=2) as plan:
            public = analyze_shard_plan(plan)
            legacy = _legacy_analyze_shard_plan(plan)
            _assert_equivalent(public, legacy)
            assert public.ok, public.render()
