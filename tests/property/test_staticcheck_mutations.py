"""Mutation-based validation of the static artifact auditor.

The auditor is only trustworthy if every corruption in the catalog is
*killed* (flagged with a finding naming the violated property) while
clean artifacts from the graph generators pass untouched.  The catalog
covers the ISSUE's required corruptions — cycle in the tree, orphan
branch row, duplicated row across branches, truncated delta set, stale
CRC — plus the rest of the invariant surface (delta values, virtual-row
deltas, weight agreement, nnz accounting, Properties 1–2, scaling
vectors).
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_cbm
from repro.core.io import save_cbm
from repro.graphs.generators import (
    citation_graph,
    coauthor_graph,
    erdos_renyi_graph,
    sbm_graph,
)
from repro.reliability.chaos import corrupt_archive
from repro.staticcheck import analyze_branches, audit_archive, audit_arrays, audit_cbm


def _graph(name: str):
    if name == "citation":
        return citation_graph(120, seed=3)
    if name == "coauthor":
        return coauthor_graph(150, seed=5)
    if name == "sbm":
        return sbm_graph([40, 40, 40], 0.3, 0.02, seed=7)
    return erdos_renyi_graph(100, 8.0, seed=11)


GRAPHS = ("citation", "coauthor", "sbm", "er")


def _arrays(cbm) -> dict:
    """Raw-array view of a CBM matrix, copied so mutations are isolated."""
    return {
        "parent": cbm.tree.parent.copy(),
        "weight": cbm.tree.weight.copy(),
        "indptr": cbm.delta.indptr.copy(),
        "indices": cbm.delta.indices.copy(),
        "data": cbm.delta.data.copy(),
        "shape": cbm.shape,
        "source_nnz": cbm.source_nnz,
    }


def _audit(arrs: dict):
    return audit_arrays(
        arrs["parent"],
        arrs["weight"],
        arrs["indptr"],
        arrs["indices"],
        arrs["data"],
        arrs["shape"],
        source_nnz=arrs["source_nnz"],
        subject="mutated",
    )


# --- the corruption catalog -------------------------------------------
# Each entry mutates the raw arrays and returns the finding code prefix
# the auditor MUST emit for the corruption (the kill condition).


def _mutate_cycle(arrs, rng):
    n = arrs["shape"][0]
    a, b = rng.choice(n, size=2, replace=False)
    arrs["parent"][a] = b
    arrs["parent"][b] = a
    return "CBM-T003"


def _mutate_self_parent(arrs, rng):
    x = int(rng.integers(arrs["shape"][0]))
    arrs["parent"][x] = x
    return "CBM-T002"


def _mutate_orphan_parent(arrs, rng):
    x = int(rng.integers(arrs["shape"][0]))
    arrs["parent"][x] = arrs["shape"][0] + 7
    return "CBM-T001"


def _mutate_truncated_delta(arrs, rng):
    k = int(rng.integers(1, 4))
    arrs["indices"] = arrs["indices"][:-k]
    arrs["data"] = arrs["data"][:-k]
    return "CBM-D001"


def _mutate_delta_value(arrs, rng):
    j = int(rng.integers(len(arrs["data"])))
    arrs["data"][j] = 2.0
    return "CBM-D002"


def _mutate_negative_virtual(arrs, rng):
    # Flip one +1 delta of a virtual-parent row to -1.
    from repro.core.tree import VIRTUAL

    roots = np.flatnonzero(arrs["parent"] == VIRTUAL)
    rng.shuffle(roots)
    for x in roots:
        lo, hi = arrs["indptr"][x], arrs["indptr"][x + 1]
        if hi > lo:
            arrs["data"][lo] = -1.0
            return "CBM-D004"
    pytest.skip("no virtual-parent row with deltas in this artifact")


def _mutate_weight(arrs, rng):
    counts = np.diff(arrs["indptr"])
    rows = np.flatnonzero(counts > 0)
    x = int(rng.choice(rows))
    arrs["weight"][x] = int(arrs["weight"][x]) + 1
    return "CBM-D005"


def _mutate_source_nnz(arrs, rng):
    arrs["source_nnz"] = int(arrs["source_nnz"]) + 3
    return "CBM-N001"


ARRAY_MUTATIONS = {
    "cycle": _mutate_cycle,
    "self_parent": _mutate_self_parent,
    "orphan_parent": _mutate_orphan_parent,
    "truncated_delta": _mutate_truncated_delta,
    "delta_value": _mutate_delta_value,
    "negative_virtual": _mutate_negative_virtual,
    "weight_mismatch": _mutate_weight,
    "source_nnz": _mutate_source_nnz,
}


# --- clean artifacts must pass ----------------------------------------


class TestCleanArtifactsPass:
    @pytest.mark.parametrize("name", GRAPHS)
    @pytest.mark.parametrize("alpha", [0, 2])
    def test_generator_graphs_clean(self, name, alpha):
        cbm, _ = build_cbm(_graph(name), alpha=alpha)
        report = audit_cbm(cbm)
        assert report.ok, report.render()
        assert report.checks["tree.arborescence"]
        assert report.checks["property1.per_row"]
        assert report.checks["property2.total_ops"]

    def test_dad_variant_clean(self):
        a = _graph("sbm")
        d = (np.asarray([a.indptr[i + 1] - a.indptr[i] for i in range(a.shape[0])]) + 1.0) ** -0.5
        cbm, _ = build_cbm(a, alpha=1, variant="DAD", diag=d)
        report = audit_cbm(cbm)
        assert report.ok, report.render()
        assert report.checks["scaling.vectors"]

    def test_clean_archive_passes(self, tmp_path):
        cbm, _ = build_cbm(_graph("citation"), alpha=2)
        path = tmp_path / "clean.npz"
        save_cbm(path, cbm)
        report = audit_archive(path)
        assert report.ok, report.render()
        assert report.checks["archive.checksums"]


# --- the kill-rate requirement ----------------------------------------


class TestMutationCatalogKillRate:
    @pytest.mark.parametrize("name", GRAPHS)
    @pytest.mark.parametrize("mutation", sorted(ARRAY_MUTATIONS))
    def test_every_mutation_killed(self, name, mutation):
        cbm, _ = build_cbm(_graph(name), alpha=2)
        arrs = _arrays(cbm)
        rng = np.random.default_rng(hash((name, mutation)) % 2**32)
        expected = ARRAY_MUTATIONS[mutation](arrs, rng)
        report = _audit(arrs)
        assert not report.ok, f"{mutation} on {name} survived the audit"
        assert report.has(expected), (
            f"{mutation} expected {expected}, got "
            f"{[f.code for f in report.findings]}"
        )

    def test_kill_rate_is_100_percent(self):
        """Aggregate: the whole catalog, one base artifact, zero survivors."""
        cbm, _ = build_cbm(_graph("citation"), alpha=2)
        survivors = []
        for mname, mutate in sorted(ARRAY_MUTATIONS.items()):
            arrs = _arrays(cbm)
            rng = np.random.default_rng(99)
            try:
                mutate(arrs, rng)
            except pytest.skip.Exception:
                continue
            if _audit(arrs).ok:
                survivors.append(mname)
        assert not survivors, f"mutations not detected: {survivors}"

    @given(
        seed=st.integers(0, 2**31 - 1),
        mutation=st.sampled_from(sorted(ARRAY_MUTATIONS)),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_artifact_random_mutation_killed(self, seed, mutation):
        a = erdos_renyi_graph(60, 6.0, seed=seed % 1000)
        cbm, _ = build_cbm(a, alpha=seed % 5)
        arrs = _arrays(cbm)
        if mutation in ("truncated_delta", "delta_value") and len(arrs["data"]) < 4:
            return  # degenerate artifact: nothing to truncate/flip
        rng = np.random.default_rng(seed)
        expected = ARRAY_MUTATIONS[mutation](arrs, rng)
        report = _audit(arrs)
        assert not report.ok
        assert report.has(expected)


# --- findings must name the violated property -------------------------


class TestPropertyBounds:
    def _p1_violating_arrays(self):
        """Hand-built artifact: row 1 spends 4 deltas on a 1-nnz row."""
        # row0 = {0,1,2} (virtual parent); row1 = {5} encoded against row0.
        parent = np.array([-1, 0], dtype=np.int64)
        weight = np.array([3, 4], dtype=np.int64)
        indptr = np.array([0, 3, 7], dtype=np.int64)
        indices = np.array([0, 1, 2, 0, 1, 2, 5], dtype=np.int64)
        data = np.array([1, 1, 1, -1, -1, -1, 1], dtype=np.float32)
        return parent, weight, indptr, indices, data

    def test_property1_and_2_named(self):
        parent, weight, indptr, indices, data = self._p1_violating_arrays()
        report = audit_arrays(
            parent, weight, indptr, indices, data, (2, 8), source_nnz=4
        )
        assert report.has("CBM-P101") and report.has("CBM-P102")
        assert report.has("CBM-P201")
        msgs = " | ".join(f.message for f in report.findings)
        assert "Property 1" in msgs
        assert "Property 2" in msgs
        assert not report.checks["property1.per_row"]
        assert not report.checks["property2.total_ops"]

    def test_tree_findings_name_the_invariant(self):
        cbm, _ = build_cbm(_graph("er"), alpha=1)
        arrs = _arrays(cbm)
        _mutate_cycle(arrs, np.random.default_rng(0))
        report = _audit(arrs)
        msgs = " | ".join(f.message for f in report.findings)
        assert "cycle" in msgs and "acyclicity" in msgs


# --- branch-level corruptions (Section V-B) ---------------------------


class TestBranchMutations:
    def _branches(self, name="citation"):
        cbm, _ = build_cbm(_graph(name), alpha=2)
        branches = cbm.tree.branches()
        if len(branches) < 2:
            pytest.skip("graph compressed into a single branch")
        return [b.copy() for b in branches], cbm.tree.parent

    def test_duplicated_row_across_branches_killed(self):
        branches, parent = self._branches()
        stolen = branches[0][-1]
        branches[1] = np.concatenate([branches[1], [stolen]])
        report = analyze_branches(branches, parent)
        assert report.has("HZ-W001")
        assert not report.checks["branches.disjoint"]

    def test_orphan_branch_row_killed(self):
        branches, parent = self._branches()
        victim = None
        for i, b in enumerate(branches):
            if len(b) >= 2:
                victim = i
                break
        if victim is None:
            pytest.skip("no branch with a non-root row")
        branches[victim] = branches[victim][:-1]
        report = analyze_branches(branches, parent)
        assert report.has("HZ-B001")
        assert not report.checks["branches.coverage"]

    def test_clean_branches_pass(self):
        branches, parent = self._branches()
        report = analyze_branches(branches, parent)
        assert report.ok, report.render()


# --- hybrid block-map corruptions (autotune dialect) -------------------


def _hybrid_gap(blocks, n):
    lo, hi, fmt = blocks[-1]
    blocks[-1] = (lo + 3, hi, fmt)
    return "HZ-H201"


def _hybrid_overlap(blocks, n):
    lo, hi, fmt = blocks[-1]
    blocks[-1] = (lo - 3, hi, fmt)
    return "HZ-H202"


def _hybrid_missing_tail(blocks, n):
    blocks.pop()
    return "HZ-H201"


def _hybrid_missing_head(blocks, n):
    lo, hi, fmt = blocks[0]
    blocks[0] = (lo + 2, hi, fmt)
    return "HZ-H201"


def _hybrid_inverted_span(blocks, n):
    lo, hi, fmt = blocks[0]
    blocks[0] = (hi, lo, fmt)
    return "HZ-H202"


HYBRID_MAP_MUTATIONS = {
    "gap": _hybrid_gap,
    "overlap": _hybrid_overlap,
    "missing_tail": _hybrid_missing_tail,
    "missing_head": _hybrid_missing_head,
    "inverted_span": _hybrid_inverted_span,
}


class TestHybridPlanMutations:
    """The autotune dialect: every corruption of a hybrid executor's
    block map — gap, overlap, stale committed map, mis-routed block —
    must be killed by the span-discipline audit (HZ-H201/H202/H203),
    while live executors built from real tune decisions pass clean."""

    def _hybrid(self, name="citation", cut_at=0.5):
        from repro.autotune import BlockDecision, HybridPlan, TuneDecision
        from repro.core.builder import build_cbm as _build

        a = _graph(name)
        cbm, _ = _build(a, alpha=2)
        n = a.shape[0]
        cut = int(n * cut_at)
        decision = TuneDecision(
            blocks=[BlockDecision(0, cut, "cbm"), BlockDecision(cut, n, "csr")],
            columns=4,
        )
        return HybridPlan(cbm, a, decision), decision, n

    @pytest.mark.parametrize("name", GRAPHS)
    def test_clean_executor_passes(self, name):
        from repro.staticcheck import analyze_hybrid_plan

        hybrid, decision, _ = self._hybrid(name)
        try:
            report = analyze_hybrid_plan(hybrid, decision, subject=name)
            assert report.ok, report.render()
            assert report.checks["hybrid.coverage"]
            assert report.checks["hybrid.disjoint"]
            assert report.checks["hybrid.map_current"]
            assert report.checks["hybrid.routing"]
        finally:
            hybrid.drain()

    @pytest.mark.parametrize("mutation", sorted(HYBRID_MAP_MUTATIONS))
    def test_every_map_mutation_killed(self, mutation):
        from repro.staticcheck import analyze_ir, lower_hybrid_plan

        hybrid, _, n = self._hybrid()
        blocks = [tuple(b) for b in hybrid.block_map()]
        hybrid.drain()
        expected = HYBRID_MAP_MUTATIONS[mutation](blocks, n)
        report = analyze_ir(
            lower_hybrid_plan(blocks=blocks, n_rows=n, subject=mutation)
        )
        assert not report.ok, f"{mutation} survived the hybrid audit"
        assert report.has(expected), (
            f"{mutation} expected {expected}, got "
            f"{[f.code for f in report.findings]}"
        )

    def test_hybrid_kill_rate_is_100_percent(self):
        from repro.staticcheck import analyze_ir, lower_hybrid_plan

        hybrid, _, n = self._hybrid()
        base = [tuple(b) for b in hybrid.block_map()]
        hybrid.drain()
        survivors = []
        for mname, mutate in sorted(HYBRID_MAP_MUTATIONS.items()):
            blocks = list(base)
            mutate(blocks, n)
            if analyze_ir(lower_hybrid_plan(blocks=blocks, n_rows=n)).ok:
                survivors.append(mname)
        assert not survivors, f"hybrid mutations not detected: {survivors}"

    def test_stale_committed_map_killed(self):
        from repro.autotune import BlockDecision, TuneDecision
        from repro.staticcheck import analyze_hybrid_plan

        hybrid, _, n = self._hybrid(cut_at=0.5)
        stale = TuneDecision(
            blocks=[
                BlockDecision(0, n // 3, "cbm"),
                BlockDecision(n // 3, n, "csr"),
            ],
            columns=4,
        )
        try:
            report = analyze_hybrid_plan(hybrid, stale)
            assert report.has("HZ-H201")
            assert not report.checks["hybrid.map_current"]
            msgs = " | ".join(f.message for f in report.findings)
            assert "stale map" in msgs
        finally:
            hybrid.drain()

    def test_misrouted_block_killed(self):
        from repro.autotune import BlockDecision, TuneDecision
        from repro.staticcheck import analyze_hybrid_plan

        hybrid, decision, n = self._hybrid()
        # Same spans, flipped formats: the executor no longer implements
        # the committed routing.
        flipped = TuneDecision(
            blocks=[
                BlockDecision(b.lo, b.hi, "csr" if b.fmt == "cbm" else "cbm")
                for b in decision.blocks
            ],
            columns=4,
        )
        try:
            report = analyze_hybrid_plan(hybrid, flipped)
            assert report.has("HZ-H203")
            assert not report.checks["hybrid.routing"]
            msgs = " | ".join(f.message for f in report.findings)
            assert "mis-routed" in msgs
        finally:
            hybrid.drain()

    def test_zero_nnz_fallback_is_not_misroute(self):
        from repro.autotune import BlockDecision, HybridPlan, TuneDecision
        from repro.sparse.convert import from_dense
        from repro.staticcheck import analyze_hybrid_plan

        d = np.zeros((12, 12), dtype=np.float32)
        d[:6, :6] = 1.0 - np.eye(6, dtype=np.float32)
        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=0)
        decision = TuneDecision(
            blocks=[BlockDecision(0, 6, "cbm"), BlockDecision(6, 12, "cbm")],
            columns=2,
        )
        hybrid = HybridPlan(cbm, a, decision)
        assert hybrid.blocks[1].fmt == "csr"  # the documented fallback
        try:
            report = analyze_hybrid_plan(hybrid, decision)
            assert report.ok, report.render()
            assert report.checks["hybrid.routing"]
        finally:
            hybrid.drain()

    @given(
        seed=st.integers(0, 2**31 - 1),
        mutation=st.sampled_from(sorted(HYBRID_MAP_MUTATIONS)),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_map_random_mutation_killed(self, seed, mutation):
        from repro.staticcheck import analyze_ir, lower_hybrid_plan

        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 200))
        cuts = sorted(rng.choice(np.arange(1, n), size=min(3, n - 1), replace=False))
        bounds = [0, *map(int, cuts), n]
        blocks = [
            (lo, hi, ["cbm", "csr"][int(rng.integers(2))])
            for lo, hi in zip(bounds, bounds[1:])
        ]
        if mutation in ("gap", "overlap") and blocks[-1][1] - blocks[-1][0] <= 3:
            return  # span too narrow to shift by the mutation's offset
        if mutation == "missing_head" and blocks[0][1] - blocks[0][0] <= 2:
            return  # shrinking would invert the span instead of opening a gap
        expected = HYBRID_MAP_MUTATIONS[mutation](blocks, n)
        report = analyze_ir(lower_hybrid_plan(blocks=blocks, n_rows=n))
        assert not report.ok
        assert report.has(expected)


# --- archive corruptions, end to end through the CLI ------------------


class TestArchiveMutations:
    def _saved(self, tmp_path) -> pathlib.Path:
        cbm, _ = build_cbm(_graph("citation"), alpha=2)
        path = tmp_path / "m.npz"
        save_cbm(path, cbm)
        return path

    @pytest.mark.parametrize("array", ["tree_parent", "delta_data", "delta_indices"])
    def test_stale_crc_killed(self, tmp_path, array):
        path = self._saved(tmp_path)
        corrupt_archive(path, array=array, mode="perturb", seed=1)
        report = audit_archive(path)
        assert report.has("CBM-A004"), report.render()
        assert not report.checks["archive.checksums"]
        msgs = " | ".join(f.message for f in report.findings)
        assert "stale CRC" in msgs

    def test_dropped_payload_killed(self, tmp_path):
        path = self._saved(tmp_path)
        corrupt_archive(path, array="delta_data", mode="drop", seed=1)
        report = audit_archive(path)
        assert report.has("CBM-A005")

    def test_cli_nonzero_exit_on_corruption(self, tmp_path, capsys):
        from repro.cli import main

        path = self._saved(tmp_path)
        assert main(["check", "artifact", str(path)]) == 0
        corrupt_archive(path, array="tree_parent", mode="perturb", seed=2)
        assert main(["check", "artifact", str(path)]) == 1
        out = capsys.readouterr().out
        assert "CBM-A004" in out

    def test_cli_json_report(self, tmp_path):
        import json

        from repro.cli import main

        path = self._saved(tmp_path)
        report_path = tmp_path / "audit.json"
        assert main(["check", "artifact", str(path), "--json", str(report_path)]) == 0
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert payload["reports"][0]["checks"]["archive.checksums"] is True
