"""Property-based tests for the CBM format: Properties 1–3 and kernel
correctness on arbitrary binary matrices (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.arborescence import minimum_arborescence
from repro.core.builder import build_cbm, build_clustered
from repro.core.distance import candidate_edges
from repro.core.mst import kruskal_mst, prim_mst
from repro.core.opcount import csr_spmm_ops
from repro.sparse.convert import from_dense


@st.composite
def binary_matrices(draw, max_n=14):
    n = draw(st.integers(1, max_n))
    return draw(arrays(np.float32, (n, n), elements=st.sampled_from([0.0, 1.0])))


@st.composite
def binary_with_alpha(draw, max_n=14):
    return draw(binary_matrices(max_n)), draw(st.integers(0, 6))


class TestCompressionInvariants:
    @given(binary_with_alpha())
    @settings(max_examples=60, deadline=None)
    def test_property1_deltas_bounded(self, case):
        """Property 1: deltas never exceed nnz(A), for any alpha."""
        d, alpha = case
        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=alpha)
        assert cbm.num_deltas <= a.nnz

    @given(binary_with_alpha())
    @settings(max_examples=60, deadline=None)
    def test_property2_multiply_ops_bounded(self, case):
        """Property 2: multiply-stage ops never exceed the CSR SpMM ops."""
        d, alpha = case
        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=alpha)
        p = 4
        assert cbm.scalar_ops(p).multiply_stage <= csr_spmm_ops(a, p).total

    @given(binary_with_alpha())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_reconstruction(self, case):
        d, alpha = case
        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=alpha)
        assert np.allclose(cbm.tocsr().toarray(), d)

    @given(binary_matrices())
    @settings(max_examples=40, deadline=None)
    def test_mst_oracles_agree(self, d):
        a = from_dense(d)
        g = candidate_edges(a, None)
        assert kruskal_mst(g).total_weight() == prim_mst(g).total_weight()

    @given(binary_matrices())
    @settings(max_examples=40, deadline=None)
    def test_mca_alpha0_equals_mst(self, d):
        a = from_dense(d)
        mst = kruskal_mst(candidate_edges(a, None))
        mca = minimum_arborescence(candidate_edges(a, 0))
        assert mca.total_weight() == mst.total_weight()


class TestKernelCorrectness:
    @given(binary_with_alpha(), st.integers(1, 5), st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_matmul_matches_dense(self, case, p, seed):
        d, alpha = case
        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=alpha)
        x = np.random.default_rng(seed).random((d.shape[0], p)).astype(np.float32)
        ref = d.astype(np.float64) @ x
        assert np.allclose(cbm.matmul(x), ref, rtol=1e-3, atol=1e-4)
        assert np.allclose(cbm.matmul(x, update="edge"), ref, rtol=1e-3, atol=1e-4)

    @given(binary_matrices(max_n=10), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_dad_variants_match_dense(self, d, seed):
        rng = np.random.default_rng(seed)
        n = d.shape[0]
        diag = rng.random(n) + 0.5
        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=1, variant="DAD", diag=diag)
        x = rng.random((n, 3)).astype(np.float32)
        ref = (diag[:, None] * d.astype(np.float64) * diag) @ x
        for scaling in ("deferred", "fused"):
            assert np.allclose(cbm.matmul(x, scaling=scaling), ref, rtol=1e-3, atol=1e-4)

    @given(binary_matrices(max_n=12), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_clustered_build_correct(self, d, cluster_size):
        a = from_dense(d)
        cbm, _ = build_clustered(a, cluster_size=cluster_size)
        x = np.random.default_rng(0).random((d.shape[0], 3)).astype(np.float32)
        assert np.allclose(cbm.matmul(x), d.astype(np.float64) @ x, rtol=1e-3, atol=1e-4)

    @given(binary_matrices(max_n=12))
    @settings(max_examples=30, deadline=None)
    def test_parallel_executor_matches_sequential(self, d):
        from repro.parallel.executor import parallel_matmul

        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=0)
        x = np.random.default_rng(1).random((d.shape[0], 3)).astype(np.float32)
        assert np.allclose(
            parallel_matmul(cbm, x, threads=3), cbm.matmul(x), rtol=1e-5, atol=1e-6
        )
