"""Seeded-defect mutation catalog for the concurrency verifier.

Acceptance harness for the whole-stack verifier: a catalog of known
concurrency defects — span-discipline violations, happens-before
races, torn commit protocols, deadlock cycles, blocking calls under
locks, predicate-free condition waits — each seeded into an otherwise
clean plan or module.  The verifier must detect EVERY entry (100%
detection, asserted both per-entry and in aggregate) while reporting
ZERO findings on the clean control versions of the same shapes.  This
is the negative control CI runs in the ``concurrency-check`` job: a
verifier that cannot find a planted bug proves nothing about HEAD
being clean.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import build_cbm
from repro.staticcheck import (
    Access,
    FusedStage,
    analyze_ir,
    lint_source,
    lower_batch_layout,
    lower_kernel_plan,
    lower_shard_plan,
    lower_stream_swap,
)
from repro.staticcheck.ir import spans_of
from repro.staticcheck.locks import scan_lock_source

from tests.conftest import random_adjacency_csr


# ----------------------------------------------------------------------
# Shared clean fixtures the mutants start from


def _kernel_plan():
    a = random_adjacency_csr(100, density=0.15, seed=3)
    cbm, _ = build_cbm(a, alpha=2)
    return cbm.plan(update="level")


def _batch_ir():
    from repro.serving.batching import BatchLayout

    return lower_batch_layout(
        BatchLayout.pack([1, 2, 4, 8], quantum=8, n_rows=16)
    )


_LOCK_PRELUDE = (
    "import threading\n"
    "a_lock = threading.Lock()\n"
    "b_lock = threading.Lock()\n"
)


def _codes_of(report) -> set[str]:
    return {f.code for f in report.findings}


# ----------------------------------------------------------------------
# The catalog: (name, expected code prefix, detector)
#
# Each detector seeds exactly one defect and returns the codes the
# verifier reported.  Expected prefixes, not exact codes, so a defect
# caught under a sibling rule (e.g. R401 vs R402 for an unsafe fusion)
# still counts as detected — but a silent pass never does.


def _mut_shard_overlap():
    return _codes_of(
        analyze_ir(lower_shard_plan(bounds=[(0, 6), (4, 10)], n_rows=10))
    )


def _mut_shard_gap():
    return _codes_of(
        analyze_ir(lower_shard_plan(bounds=[(0, 4), (6, 10)], n_rows=10))
    )


def _mut_shard_trailing_gap():
    return _codes_of(
        analyze_ir(lower_shard_plan(bounds=[(0, 4), (4, 8)], n_rows=10))
    )


def _mut_shard_invalid_bounds():
    return _codes_of(
        analyze_ir(lower_shard_plan(bounds=[(-3, 5), (5, 10)], n_rows=10))
    )


def _mut_segment_alias():
    layout = [
        {"segment": "seg0", "shard": 0, "array": "indptr", "offset": 0, "nbytes": 64},
        {"segment": "seg0", "shard": 0, "array": "indices", "offset": 48, "nbytes": 32},
    ]
    return _codes_of(
        analyze_ir(lower_shard_plan(bounds=[(0, 10)], n_rows=10, layout=layout))
    )


def _mut_shard_commit_first():
    ir = lower_shard_plan(bounds=[(0, 10)], n_rows=10)
    stages = {s.sid: s for s in ir.stages}
    ir.stages = [stages["shard0.commit"], stages["shard0.write"]]
    return _codes_of(analyze_ir(ir))


def _mut_batch_overlap():
    ir = _batch_ir()
    (acc,) = ir.stage("member0").writes
    lo, hi = int(acc.spans[0, 0]), int(acc.spans[0, 1])
    ir.replace_stage("member0", writes=(Access("stacked", spans_of((lo, hi + 1))),))
    return _codes_of(analyze_ir(ir))


def _mut_batch_oob():
    ir = _batch_ir()
    total = ir.buffers["stacked"].size
    ir.replace_stage(
        "member3", writes=(Access("stacked", spans_of((total - 1, total + 3))),)
    )
    return _codes_of(analyze_ir(ir))


def _mut_batch_gap():
    ir = _batch_ir()
    (acc,) = ir.stage("member1").writes
    lo, hi = int(acc.spans[0, 0]), int(acc.spans[0, 1])
    ir.replace_stage(
        "member1", writes=(Access("stacked", spans_of((lo + 1, hi + 1))),)
    )
    return _codes_of(analyze_ir(ir))


def _mut_batch_zero_width():
    ir = _batch_ir()
    ir.replace_stage("member0", writes=(Access("stacked", spans_of((0, 0))),))
    return _codes_of(analyze_ir(ir))


def _mut_kernel_dropped_join():
    ir = lower_kernel_plan(_kernel_plan())
    ir.replace_stage("finalize", after=())
    return _codes_of(analyze_ir(ir))


def _mut_kernel_unsafe_fusion():
    plan = _kernel_plan()
    if len(plan.branches) < 2:
        pytest.skip("plan has fewer than two branches")
    n = int(plan.shape[0])
    fused = (FusedStage("row-scale", branch=0, rows=np.arange(n)),)
    return _codes_of(analyze_ir(lower_kernel_plan(plan, fused=fused)))


def _mut_kernel_lost_barrier():
    ir = lower_kernel_plan(_kernel_plan())
    sids = [s.sid for s in ir.stages if s.sid.startswith("branch")]
    if len(sids) < 1:
        pytest.skip("plan has no branches")
    # a branch dispatched before the multiply finished reads garbage
    ir.replace_stage(sids[0], after=())
    return _codes_of(analyze_ir(ir))


def _mut_stream_serve_early():
    ir = lower_stream_swap()
    ir.replace_stage("serve", after=())
    return _codes_of(analyze_ir(ir))


def _mut_stream_commit_first():
    ir = lower_stream_swap()
    stages = {s.sid: s for s in ir.stages}
    ir.stages = [stages[s] for s in ("snapshot", "commit", "build", "publish", "serve")]
    return _codes_of(analyze_ir(ir))


def _mut_deadlock_ab_ba():
    src = _LOCK_PRELUDE + (
        "def fwd():\n"
        "    with a_lock:\n"
        "        with b_lock:\n"
        "            pass\n"
        "def bwd():\n"
        "    with b_lock:\n"
        "        with a_lock:\n"
        "            pass\n"
    )
    return {f.code for f in scan_lock_source(src).findings}


def _mut_deadlock_interprocedural():
    src = _LOCK_PRELUDE + (
        "def takes_b():\n"
        "    with b_lock:\n"
        "        pass\n"
        "def takes_a():\n"
        "    with a_lock:\n"
        "        pass\n"
        "def fwd():\n"
        "    with a_lock:\n"
        "        takes_b()\n"
        "def bwd():\n"
        "    with b_lock:\n"
        "        takes_a()\n"
    )
    return {f.code for f in scan_lock_source(src).findings}


def _mut_result_under_lock():
    src = _LOCK_PRELUDE + (
        "def f(fut):\n"
        "    with a_lock:\n"
        "        return fut.result()\n"
    )
    return {f.code for f in scan_lock_source(src).findings}


def _mut_dispatch_under_lock():
    src = _LOCK_PRELUDE + (
        "def f(pool, job):\n"
        "    with a_lock:\n"
        "        return pool.submit(job)\n"
    )
    return {f.code for f in scan_lock_source(src).findings}


def _mut_wait_without_predicate():
    src = (
        "import threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._cond = threading.Condition()\n"
        "    def f(self):\n"
        "        with self._cond:\n"
        "            self._cond.wait()\n"
    )
    return {f.code for f in scan_lock_source(src).findings}


def _mut_queue_get_under_lock():
    src = (
        "def f(self):\n"
        "    with self._lock:\n"
        "        return self._queue.get()\n"
    )
    return {f.code for f in lint_source(src)}


def _mut_event_wait_under_lock():
    src = (
        "def f(self):\n"
        "    with self._lock:\n"
        "        self._ready.wait()\n"
    )
    return {f.code for f in lint_source(src)}


CATALOG = [
    ("shard-overlapping-bounds", "HZ-S102", _mut_shard_overlap),
    ("shard-coverage-gap", "HZ-S101", _mut_shard_gap),
    ("shard-trailing-gap", "HZ-S101", _mut_shard_trailing_gap),
    ("shard-invalid-bounds", "HZ-S102", _mut_shard_invalid_bounds),
    ("shm-segment-aliasing", "HZ-S103", _mut_segment_alias),
    ("shard-commit-before-write", "HZ-R403", _mut_shard_commit_first),
    ("batch-member-overlap", "HZ-X001", _mut_batch_overlap),
    ("batch-out-of-bounds", "HZ-X002", _mut_batch_oob),
    ("batch-unowned-gap", "HZ-X003", _mut_batch_gap),
    ("batch-zero-width", "HZ-X004", _mut_batch_zero_width),
    ("kernel-dropped-join", "HZ-R4", _mut_kernel_dropped_join),
    ("kernel-unsafe-fusion", "HZ-R4", _mut_kernel_unsafe_fusion),
    ("kernel-lost-dispatch-barrier", "HZ-R4", _mut_kernel_lost_barrier),
    ("stream-serve-before-publish", "HZ-R402", _mut_stream_serve_early),
    ("stream-commit-before-build", "HZ-R403", _mut_stream_commit_first),
    ("deadlock-ab-ba", "SC701", _mut_deadlock_ab_ba),
    ("deadlock-interprocedural", "SC701", _mut_deadlock_interprocedural),
    ("future-result-under-lock", "SC702", _mut_result_under_lock),
    ("pool-dispatch-under-lock", "SC702", _mut_dispatch_under_lock),
    ("cond-wait-no-predicate-loop", "SC703", _mut_wait_without_predicate),
    ("queue-get-under-lock", "SC401", _mut_queue_get_under_lock),
    ("event-wait-under-lock", "SC401", _mut_event_wait_under_lock),
]


class TestMutationCatalog:
    def test_catalog_meets_size_floor(self):
        assert len(CATALOG) >= 12

    @pytest.mark.parametrize(
        "name,expected,detect", CATALOG, ids=[c[0] for c in CATALOG]
    )
    def test_defect_is_detected(self, name, expected, detect):
        codes = detect()
        assert any(c.startswith(expected) for c in codes), (
            f"seeded defect {name!r} escaped: expected a {expected}* "
            f"finding, got {sorted(codes) or 'nothing'}"
        )

    def test_aggregate_detection_rate_is_total(self):
        """100% of the catalog, computed in one place for the CI log."""
        missed = []
        for name, expected, detect in CATALOG:
            try:
                codes = detect()
            except Exception as exc:  # pytest.skip propagates as Skipped
                if type(exc).__name__ == "Skipped":
                    continue
                raise
            if not any(c.startswith(expected) for c in codes):
                missed.append(name)
        assert missed == [], f"detection rate below 100%: missed {missed}"


class TestCleanControls:
    """The same shapes, unmutated, must produce ZERO findings."""

    def test_kernel_plan_clean(self):
        rep = analyze_ir(lower_kernel_plan(_kernel_plan()))
        assert rep.findings == [], rep.render()

    def test_kernel_plan_safe_fusion_clean(self):
        plan = _kernel_plan()
        fused = (
            (FusedStage("row-scale", branch=0),) if len(plan.branches) else ()
        )
        rep = analyze_ir(lower_kernel_plan(plan, fused=fused))
        assert rep.findings == [], rep.render()

    def test_batch_layout_clean(self):
        rep = analyze_ir(_batch_ir())
        assert rep.findings == [], rep.render()

    def test_shard_plan_clean(self):
        layout = [
            {"segment": "seg0", "shard": 0, "array": "indptr",
             "offset": 0, "nbytes": 64},
            {"segment": "seg0", "shard": 0, "array": "indices",
             "offset": 64, "nbytes": 32},
        ]
        rep = analyze_ir(
            lower_shard_plan(bounds=[(0, 5), (5, 10)], n_rows=10, layout=layout)
        )
        assert rep.findings == [], rep.render()

    def test_stream_swap_clean(self):
        rep = analyze_ir(lower_stream_swap())
        assert rep.findings == [], rep.render()

    def test_ordered_locks_clean(self):
        src = _LOCK_PRELUDE + (
            "def one():\n"
            "    with a_lock:\n"
            "        with b_lock:\n"
            "            pass\n"
            "def two():\n"
            "    with a_lock:\n"
            "        with b_lock:\n"
            "            pass\n"
        )
        assert scan_lock_source(src).findings == []

    def test_clean_head_has_zero_concurrency_findings(self):
        """Acceptance: the shipped tree itself reports nothing."""
        import pathlib

        from repro.staticcheck import analyze_locks

        root = pathlib.Path(__file__).resolve().parents[2]
        report, _ = analyze_locks([root / "src" / "repro"], root=root)
        assert report.findings == [], report.render()
