"""Property-based round-trip tests for persistence layers (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.builder import build_cbm
from repro.core.io import load_cbm, save_cbm
from repro.graphs.io import load_edge_list, save_edge_list
from repro.sparse.convert import from_dense
from repro.sparse.io import load_matrix_market, save_matrix_market


@st.composite
def symmetric_adjacency(draw, max_n=12):
    n = draw(st.integers(1, max_n))
    d = draw(arrays(np.float32, (n, n), elements=st.sampled_from([0.0, 1.0])))
    d = np.maximum(d, d.T)
    np.fill_diagonal(d, 0)
    return d


@st.composite
def sparse_dense(draw, max_n=10):
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(1, max_n))
    vals = draw(
        arrays(np.float32, (n, m), elements=st.floats(-8, 8, width=32, allow_nan=False))
    )
    mask = draw(arrays(np.bool_, (n, m)))
    return np.where(mask, vals, 0.0).astype(np.float32)


class TestCbmArchiveRoundTrip:
    @given(symmetric_adjacency(), st.integers(0, 4))
    @settings(max_examples=30, deadline=None)
    def test_products_preserved(self, d, alpha):
        import tempfile
        import pathlib

        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=alpha)
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "m.npz"
            save_cbm(path, cbm)
            back = load_cbm(path)
        x = np.random.default_rng(0).random((d.shape[0], 3)).astype(np.float32)
        assert np.allclose(back.matmul(x), cbm.matmul(x), rtol=1e-6)
        assert back.alpha == cbm.alpha
        assert back.num_deltas == cbm.num_deltas

    @given(symmetric_adjacency(max_n=10))
    @settings(max_examples=20, deadline=None)
    def test_double_roundtrip_stable(self, d):
        import tempfile
        import pathlib

        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=0)
        with tempfile.TemporaryDirectory() as tmp:
            p1 = pathlib.Path(tmp) / "1.npz"
            p2 = pathlib.Path(tmp) / "2.npz"
            save_cbm(p1, cbm)
            once = load_cbm(p1)
            save_cbm(p2, once)
            twice = load_cbm(p2)
        assert np.array_equal(once.tree.parent, twice.tree.parent)
        assert np.array_equal(once.delta.indices, twice.delta.indices)


class TestFileFormats:
    @given(sparse_dense())
    @settings(max_examples=25, deadline=None)
    def test_matrix_market_roundtrip(self, d):
        import tempfile
        import pathlib

        a = from_dense(d)
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "m.mtx"
            save_matrix_market(path, a, field="real")
            b = load_matrix_market(path)
        assert np.allclose(b.toarray(), d, rtol=1e-5, atol=1e-6)

    @given(symmetric_adjacency())
    @settings(max_examples=25, deadline=None)
    def test_edge_list_roundtrip_on_support(self, d):
        import tempfile
        import pathlib

        a = from_dense(d)
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "g.txt"
            save_edge_list(path, a)
            b, ids = load_edge_list(path)
        # Nodes with edges survive; the induced dense blocks must match.
        if len(ids):
            assert np.allclose(b.toarray(), d[np.ix_(ids, ids)])
        else:
            assert a.nnz == 0
