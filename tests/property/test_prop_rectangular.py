"""Property-based tests for rectangular (bipartite incidence) CBM."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.builder import build_cbm, build_clustered
from repro.core.opcount import csr_spmm_ops
from repro.sparse.convert import from_dense


@st.composite
def rectangular_binary(draw, max_n=12, max_m=14):
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(1, max_m))
    return draw(arrays(np.float32, (n, m), elements=st.sampled_from([0.0, 1.0])))


class TestRectangularCBM:
    @given(rectangular_binary(), st.integers(0, 4), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_matmul_correct(self, d, alpha, p):
        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=alpha)
        x = np.random.default_rng(0).random((d.shape[1], p)).astype(np.float32)
        assert np.allclose(cbm.matmul(x), d.astype(np.float64) @ x, rtol=1e-3, atol=1e-4)

    @given(rectangular_binary(), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_property1_holds(self, d, alpha):
        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=alpha)
        assert cbm.num_deltas <= a.nnz

    @given(rectangular_binary())
    @settings(max_examples=40, deadline=None)
    def test_property2_holds(self, d):
        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=0)
        assert cbm.scalar_ops(4).multiply_stage <= csr_spmm_ops(a, 4).total

    @given(rectangular_binary())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, d):
        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=0)
        assert np.allclose(cbm.tocsr().toarray(), d)

    @given(rectangular_binary(max_n=10), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_clustered_build_rectangular(self, d, cluster_size):
        a = from_dense(d)
        cbm, _ = build_clustered(a, cluster_size=cluster_size)
        x = np.random.default_rng(1).random((d.shape[1], 2)).astype(np.float32)
        assert np.allclose(cbm.matmul(x), d.astype(np.float64) @ x, rtol=1e-3, atol=1e-4)

    @given(rectangular_binary(max_n=10))
    @settings(max_examples=25, deadline=None)
    def test_ad_variant_rectangular(self, d):
        rng = np.random.default_rng(2)
        a = from_dense(d)
        diag = rng.random(d.shape[1]) + 0.5
        cbm, _ = build_cbm(a, alpha=1, variant="AD", diag=diag)
        x = rng.random((d.shape[1], 2)).astype(np.float32)
        ref = (d.astype(np.float64) * diag) @ x
        assert np.allclose(cbm.matmul(x), ref, rtol=1e-3, atol=1e-4)
