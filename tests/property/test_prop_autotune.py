"""Property-based tests for the hybrid CBM/CSR autotune executor.

The never-slower guarantee is only worth having if routing can never
change results.  These properties pin that down bitwise: with
integer-valued float32 operands every product and partial sum is exactly
representable, so a hybrid plan (any block map, any per-block format
assignment) must produce the *identical* array a pure-CSR SpMM does —
not merely an allclose one.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autotune import (
    BlockDecision,
    HybridAdjacency,
    HybridPlan,
    RouterPolicy,
    TuneDecision,
    build_hybrid,
    tune,
)
from repro.core.builder import build_cbm
from repro.gnn.adjacency import CSRAdjacency
from repro.gnn.gcn import GCN
from repro.sparse.convert import from_dense
from repro.sparse.ops import spmm


@st.composite
def hybrid_case(draw, max_n=20, max_cuts=4):
    """A square binary adjacency plus a random block map over its rows."""
    n = draw(st.integers(2, max_n))
    d = draw(arrays(np.float32, (n, n), elements=st.sampled_from([0.0, 1.0])))
    n_cuts = draw(st.integers(0, min(max_cuts, n - 1)))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(1, n - 1),
                min_size=n_cuts,
                max_size=n_cuts,
                unique=True,
            )
        )
    )
    bounds = [0, *cuts, n]
    fmts = [
        draw(st.sampled_from(["cbm", "csr"])) for _ in range(len(bounds) - 1)
    ]
    return d, bounds, fmts


def _decision(bounds, fmts, columns):
    blocks = [
        BlockDecision(lo, hi, fmt)
        for lo, hi, fmt in zip(bounds, bounds[1:], fmts)
    ]
    return TuneDecision(blocks=blocks, columns=columns)


def _int_operand(rng, shape):
    """Integer-valued float32: every product/sum is exactly representable."""
    return rng.integers(-3, 4, size=shape).astype(np.float32)


class TestHybridBitwise:
    @given(hybrid_case(), st.integers(0, 3), st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_spmm_bitwise_equals_pure_csr(self, case, alpha, p):
        d, bounds, fmts = case
        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=alpha)
        hybrid = HybridPlan(cbm, a, _decision(bounds, fmts, p))
        x = _int_operand(np.random.default_rng(0), (d.shape[1], p))
        try:
            got = hybrid.matmul(x)
            assert got.dtype == np.float32
            assert np.array_equal(got, spmm(a, x))
        finally:
            hybrid.drain()

    @given(hybrid_case(), st.integers(0, 2))
    @settings(max_examples=40, deadline=None)
    def test_matvec_bitwise_equals_pure_csr(self, case, alpha):
        d, bounds, fmts = case
        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=alpha)
        hybrid = HybridPlan(cbm, a, _decision(bounds, fmts, 1))
        v = _int_operand(np.random.default_rng(1), d.shape[1])
        try:
            ref = spmm(a, v.reshape(-1, 1)).ravel()
            assert np.array_equal(hybrid.matvec(v), ref)
        finally:
            hybrid.drain()

    @given(hybrid_case(max_n=16), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_gcn_forward_bitwise_equals_pure_csr(self, case, hidden):
        """A GCN forward pass through the routed operator must be the
        identical array the CSRAdjacency baseline produces (weights
        pinned to small integers so the dense stages stay exact too)."""
        d, bounds, fmts = case
        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=0)
        hybrid = HybridPlan(cbm, a, _decision(bounds, fmts, hidden))
        rng = np.random.default_rng(2)
        features = 3
        model = GCN([features, hidden, 2], seed=0)
        for layer in model.layers:
            layer.linear.weight = _int_operand(rng, layer.linear.weight.shape)
        x = _int_operand(rng, (d.shape[0], features))
        try:
            ref = model.forward(CSRAdjacency(a), x)
            got = model.forward(HybridAdjacency(hybrid), x)
            assert np.array_equal(got, ref)
        finally:
            hybrid.drain()


class TestTunedRoute:
    @given(hybrid_case(max_n=18), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_tuned_decision_tiles_and_serves_bitwise(self, case, p):
        """Whatever route ``tune()`` picks, the served executor is exact."""
        d, _, _ = case
        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=0)
        report = tune(a, cbm, p, policy=RouterPolicy(measure=False))
        blocks = report.decision.blocks
        assert blocks[0].lo == 0 and blocks[-1].hi == a.shape[0]
        assert all(x.hi == y.lo for x, y in zip(blocks, blocks[1:]))

        x = _int_operand(np.random.default_rng(3), (d.shape[1], p))
        ref = spmm(a, x)
        hybrid = build_hybrid(cbm, a, report.decision, model=report.model)
        if hybrid is None:  # pure-CBM route serves the full-matrix kernel
            assert report.decision.route == "cbm"
            plan = cbm.plan(update="level", scaling="deferred")
            out = plan.out_buffer(p)
            try:
                assert np.array_equal(plan.execute(x, out=out), ref)
            finally:
                plan.release(out)
        else:
            try:
                assert np.array_equal(hybrid.matmul(x), ref)
            finally:
                hybrid.drain()
