"""Property-based tests for compression-tree structure (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tree import VIRTUAL, CompressionTree


@st.composite
def random_forests(draw, max_n=30):
    """Parent arrays that are guaranteed acyclic: parent[x] < x or VIRTUAL."""
    n = draw(st.integers(1, max_n))
    parent = []
    for x in range(n):
        if x == 0 or draw(st.booleans()):
            parent.append(VIRTUAL)
        else:
            parent.append(draw(st.integers(0, x - 1)))
    return CompressionTree(parent=np.asarray(parent, dtype=np.int64))


class TestTreeProperties:
    @given(random_forests())
    @settings(max_examples=80, deadline=None)
    def test_topological_order_is_permutation(self, tree):
        order = tree.topological_order()
        assert sorted(order.tolist()) == list(range(tree.n))

    @given(random_forests())
    @settings(max_examples=80, deadline=None)
    def test_parents_precede_children(self, tree):
        pos = np.empty(tree.n, dtype=int)
        pos[tree.topological_order()] = np.arange(tree.n)
        for x in range(tree.n):
            p = tree.parent[x]
            if p != VIRTUAL:
                assert pos[p] < pos[x]

    @given(random_forests())
    @settings(max_examples=80, deadline=None)
    def test_levels_partition_non_roots(self, tree):
        levels = tree.levels()
        rows = [int(x) for lv in levels for x in lv]
        non_roots = [x for x in range(tree.n) if tree.parent[x] != VIRTUAL]
        assert sorted(rows) == sorted(non_roots)

    @given(random_forests())
    @settings(max_examples=80, deadline=None)
    def test_level_k_parents_at_level_k_minus_1(self, tree):
        depth = tree.depth()
        for k, lv in enumerate(tree.levels(), start=1):
            assert np.all(depth[lv] == k)
            parents = tree.parent[lv]
            assert np.all(depth[parents] == k - 1)

    @given(random_forests())
    @settings(max_examples=80, deadline=None)
    def test_branches_partition_all_rows(self, tree):
        rows = [int(x) for b in tree.branches() for x in b]
        assert sorted(rows) == list(range(tree.n))

    @given(random_forests())
    @settings(max_examples=80, deadline=None)
    def test_branch_count_equals_roots(self, tree):
        assert len(tree.branches()) == len(tree.roots)

    @given(random_forests())
    @settings(max_examples=60, deadline=None)
    def test_branch_members_share_root_ancestor(self, tree):
        def root_of(x):
            while tree.parent[x] != VIRTUAL:
                x = int(tree.parent[x])
            return x

        for b in tree.branches():
            roots = {root_of(int(x)) for x in b}
            assert len(roots) == 1

    @given(random_forests())
    @settings(max_examples=60, deadline=None)
    def test_children_counts_sum_to_edges(self, tree):
        assert tree.children_counts().sum() == tree.num_tree_edges

    @given(random_forests())
    @settings(max_examples=60, deadline=None)
    def test_depth_bounded_by_n(self, tree):
        assert tree.depth().max(initial=0) < tree.n
