"""Property-based tests for the micro-batching serving stage.

Two invariants, driven over random request mixes:

* **Bitwise parity** — whatever mix of widths (including 1-D vector
  riders) the collector coalesces, every member's output is bitwise
  identical to the output the same request gets from an unbatched
  service over the same CBM.  This is the correctness contract the
  throughput win rests on: column-wise independent kernels plus
  contiguous per-member GEMM blocks.
* **Guard fallback mid-batch** — when the CBM payload is corrupted and
  the breaker has degraded the service to the guarded tier, the stacked
  forward falls back to the CSR reference and every member still
  receives exactly the reference product; the fallback is invisible to
  requesters except in the guard stats.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_cbm
from repro.reliability import FallbackWarning
from repro.reliability.chaos import corrupt_deltas
from repro.serving import (
    AdjacencySlot,
    BatchConfig,
    CircuitBreaker,
    InferenceService,
    ServeTier,
)
from repro.sparse.ops import spmm

from tests.conftest import random_adjacency_csr

N = 30
_A = random_adjacency_csr(N, 0.2, 13)
_CBM, _ = build_cbm(_A, alpha=2)


def _fresh_slot():
    # Reuse the module-level CBM (plans and pools stay warm across
    # examples) but give each service its own slot + guard stats.
    return AdjacencySlot(_CBM, _A)


@st.composite
def request_mixes(draw):
    """A batch-worth of operands: widths 1..5, some as 1-D vectors."""
    widths = draw(st.lists(st.integers(1, 5), min_size=1, max_size=8))
    vector_flags = draw(
        st.lists(st.booleans(), min_size=len(widths), max_size=len(widths))
    )
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    operands = []
    for w, as_vector in zip(widths, vector_flags):
        if as_vector and w == 1:
            operands.append(rng.standard_normal(N).astype(np.float32))
        else:
            operands.append(rng.standard_normal((N, w)).astype(np.float32))
    return operands


@given(request_mixes())
@settings(max_examples=10, deadline=None)
def test_batched_bitwise_equals_unbatched(operands):
    results = {}
    for mode in ("unbatched", "batched"):
        with InferenceService(
            _fresh_slot(),
            batch=(BatchConfig(latency_budget_s=0.05) if mode == "batched" else None),
            seed=1,
        ) as svc:
            futures = [svc.submit(x) for x in operands]
            results[mode] = [f.result(30.0) for f in futures]
    for x, yb, yu in zip(operands, results["batched"], results["unbatched"]):
        assert yb.shape == yu.shape
        assert yb.dtype == yu.dtype
        assert np.array_equal(yb, yu)


@given(request_mixes())
@settings(max_examples=10, deadline=None)
def test_gcn_batched_bitwise_equals_unbatched(operands):
    # GCN serving fixes the feature width at W0's input dimension, so
    # reuse only the example count and seeds: every operand becomes a
    # (N, p) block (the uniform-width fast path is the one that runs in
    # production).
    p, hidden, classes = 2, 3, 2
    rng = np.random.default_rng(len(operands))
    weights = (
        rng.standard_normal((p, hidden)).astype(np.float32),
        rng.standard_normal((hidden, classes)).astype(np.float32),
    )
    xs = [
        (x[:, None] if x.ndim == 1 else x[:, :1]) @ np.ones((1, p), dtype=np.float32)
        + rng.standard_normal((N, p)).astype(np.float32)
        for x in operands
    ]
    results = {}
    for mode in ("unbatched", "batched"):
        with InferenceService(
            _fresh_slot(),
            weights=weights,
            batch=(BatchConfig(latency_budget_s=0.05) if mode == "batched" else None),
            seed=1,
        ) as svc:
            futures = [svc.submit(x) for x in xs]
            results[mode] = [f.result(30.0) for f in futures]
    for yb, yu in zip(results["batched"], results["unbatched"]):
        assert np.array_equal(yb, yu)


@pytest.mark.filterwarnings("ignore::repro.reliability.FallbackWarning")
@given(request_mixes())
@settings(max_examples=8, deadline=None)
def test_guard_fallback_mid_batch_serves_reference(operands):
    # Corrupt a private copy of the CBM payload; a pre-tripped breaker
    # pins the service at the guarded tier, where the stacked forward
    # detects the poison and falls back to the CSR reference.
    operands = [x for x in operands if x.ndim == 2]
    if not operands:
        operands = [np.ones((N, 2), dtype=np.float32)]
    cbm, _ = build_cbm(_A, alpha=2)
    corrupt_deltas(cbm, mode="nan", seed=0)
    breaker = CircuitBreaker(failure_threshold=1, window=2)
    tier, probe = breaker.acquire()
    breaker.record(tier, False, probe=probe)  # trip FAST -> GUARDED
    assert breaker.tier is ServeTier.GUARDED
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", FallbackWarning)
        with InferenceService(
            AdjacencySlot(cbm, _A),
            batch=BatchConfig(latency_budget_s=0.05),
            breaker=breaker,
            seed=1,
        ) as svc:
            futures = [svc.submit(x) for x in operands]
            outs = [f.result(30.0) for f in futures]
    for x, y in zip(operands, outs):
        # The CSR kernels are column-wise independent, so the member's
        # slice of the stacked fallback product is exactly spmm(a, x).
        assert np.array_equal(y, spmm(_A, x))
