"""Property-based tests for the sparse containers (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse.convert import from_dense
from repro.sparse.coo import COOMatrix


@st.composite
def dense_matrices(draw, max_dim=12, binary=False):
    n = draw(st.integers(1, max_dim))
    m = draw(st.integers(1, max_dim))
    if binary:
        return draw(
            arrays(np.float32, (n, m), elements=st.sampled_from([0.0, 1.0]))
        )
    vals = draw(
        arrays(
            np.float32,
            (n, m),
            elements=st.floats(-10, 10, width=32, allow_nan=False),
        )
    )
    mask = draw(arrays(np.bool_, (n, m)))
    return np.where(mask, vals, 0.0).astype(np.float32)


@st.composite
def coo_triplets(draw, max_dim=10, max_nnz=30):
    n = draw(st.integers(1, max_dim))
    m = draw(st.integers(1, max_dim))
    k = draw(st.integers(0, max_nnz))
    rows = draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k))
    cols = draw(st.lists(st.integers(0, m - 1), min_size=k, max_size=k))
    vals = draw(
        st.lists(
            st.floats(-5, 5, width=32, allow_nan=False), min_size=k, max_size=k
        )
    )
    return rows, cols, np.asarray(vals, dtype=np.float32), (n, m)


class TestRoundTrips:
    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_dense_csr_roundtrip(self, d):
        assert np.allclose(from_dense(d).toarray(), d)

    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_csr_coo_csr(self, d):
        a = from_dense(d)
        assert np.allclose(a.tocoo().tocsr().toarray(), d)

    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_csr_csc_roundtrip(self, d):
        a = from_dense(d)
        assert np.allclose(a.tocsc().tocsr().toarray(), d)

    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_double_transpose(self, d):
        a = from_dense(d)
        assert np.allclose(a.transpose().transpose().toarray(), d)


class TestCOOInvariants:
    @given(coo_triplets())
    @settings(max_examples=60, deadline=None)
    def test_sum_duplicates_preserves_dense(self, triplet):
        rows, cols, vals, shape = triplet
        m = COOMatrix(rows, cols, vals, shape)
        assert np.allclose(m.sum_duplicates().toarray(), m.toarray(), atol=1e-4)

    @given(coo_triplets())
    @settings(max_examples=60, deadline=None)
    def test_tocsr_preserves_dense(self, triplet):
        rows, cols, vals, shape = triplet
        m = COOMatrix(rows, cols, vals, shape)
        assert np.allclose(m.tocsr().toarray(), m.toarray(), atol=1e-4)

    @given(coo_triplets())
    @settings(max_examples=40, deadline=None)
    def test_csr_format_valid_after_conversion(self, triplet):
        rows, cols, vals, shape = triplet
        COOMatrix(rows, cols, vals, shape).tocsr().check_format()


class TestKernels:
    @given(dense_matrices(max_dim=10), st.integers(1, 6), st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_spmm_matches_dense(self, d, p, seed):
        from repro.sparse.ops import Engine, spmm

        a = from_dense(d)
        b = np.random.default_rng(seed).random((d.shape[1], p)).astype(np.float32)
        ref = d.astype(np.float64) @ b.astype(np.float64)
        assert np.allclose(spmm(a, b, engine=Engine.REFERENCE), ref, rtol=1e-3, atol=1e-4)
        assert np.allclose(spmm(a, b, engine=Engine.SCIPY), ref, rtol=1e-3, atol=1e-4)

    @given(dense_matrices(max_dim=8), dense_matrices(max_dim=8))
    @settings(max_examples=40, deadline=None)
    def test_scale_rows_cols_commute_with_dense(self, d, _other):
        a = from_dense(d)
        r = np.arange(1, d.shape[0] + 1, dtype=np.float64)
        c = np.arange(1, d.shape[1] + 1, dtype=np.float64)
        assert np.allclose(
            a.scale_rows(r).scale_columns(c).toarray(),
            d * r[:, None] * c,
            rtol=1e-5,
        )
