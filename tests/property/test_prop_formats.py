"""Property-based tests across formats: STAF, BL, blocked kernels,
orderings, and rebalancing all agree with the dense ground truth."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.bl2001 import build_bl2001
from repro.core.builder import build_cbm
from repro.core.rebalance import cut_depth, split_branches
from repro.graphs.ordering import (
    bfs_order,
    degree_order,
    permute_symmetric,
    rcm_order,
    signature_order,
)
from repro.sparse.blocked import cbm_matmul_blocked, spmm_blocked
from repro.sparse.convert import from_dense
from repro.staf import build_staf


@st.composite
def binary_square(draw, max_n=12):
    n = draw(st.integers(1, max_n))
    return draw(arrays(np.float32, (n, n), elements=st.sampled_from([0.0, 1.0])))


@st.composite
def symmetric_adjacency(draw, max_n=14):
    d = draw(binary_square(max_n))
    d = np.maximum(d, d.T)
    np.fill_diagonal(d, 0)
    return d


class TestStafProperties:
    @given(binary_square(), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_matmul_correct(self, d, p):
        a = from_dense(d)
        staf = build_staf(a)
        x = np.random.default_rng(0).random((d.shape[0], p)).astype(np.float32)
        assert np.allclose(staf.matmul(x), d.astype(np.float64) @ x, rtol=1e-3, atol=1e-4)

    @given(binary_square())
    @settings(max_examples=50, deadline=None)
    def test_node_count_bounded(self, d):
        a = from_dense(d)
        assert build_staf(a).num_nodes <= a.nnz


class TestBLProperties:
    @given(symmetric_adjacency())
    @settings(max_examples=40, deadline=None)
    def test_matmul_correct(self, d):
        a = from_dense(d)
        bl, _ = build_bl2001(a)
        x = np.random.default_rng(1).random((d.shape[0], 3)).astype(np.float32)
        assert np.allclose(bl.matmul(x), d.astype(np.float64) @ x, rtol=1e-3, atol=1e-4)

    @given(symmetric_adjacency())
    @settings(max_examples=40, deadline=None)
    def test_cbm_never_more_deltas(self, d):
        a = from_dense(d)
        _, rep_cbm = build_cbm(a, alpha=0)
        _, rep_bl = build_bl2001(a)
        assert rep_cbm.total_deltas <= rep_bl.total_deltas


class TestBlockedProperties:
    @given(binary_square(), st.integers(1, 6), st.integers(1, 9))
    @settings(max_examples=40, deadline=None)
    def test_spmm_blocked_equivalence(self, d, p, panel):
        a = from_dense(d)
        x = np.random.default_rng(2).random((d.shape[0], p)).astype(np.float32)
        from repro.sparse.ops import spmm

        assert np.allclose(spmm_blocked(a, x, panel=panel), spmm(a, x), rtol=1e-5)

    @given(symmetric_adjacency(), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_cbm_blocked_equivalence(self, d, panel):
        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=0)
        x = np.random.default_rng(3).random((d.shape[0], 4)).astype(np.float32)
        assert np.allclose(
            cbm_matmul_blocked(cbm, x, panel=panel), cbm.matmul(x), rtol=1e-5
        )


class TestOrderingProperties:
    @given(symmetric_adjacency())
    @settings(max_examples=40, deadline=None)
    def test_all_orders_are_permutations(self, d):
        a = from_dense(d)
        n = d.shape[0]
        for fn in (bfs_order, rcm_order, degree_order, signature_order):
            assert sorted(fn(a).tolist()) == list(range(n))

    @given(symmetric_adjacency(), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_permutation_preserves_spectrum_of_degrees(self, d, seed):
        a = from_dense(d)
        order = np.random.default_rng(seed).permutation(d.shape[0])
        b = permute_symmetric(a, order)
        assert sorted(a.row_nnz().tolist()) == sorted(b.row_nnz().tolist())

    @given(symmetric_adjacency(), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_cbm_total_deltas_order_invariant(self, d, seed):
        a = from_dense(d)
        order = np.random.default_rng(seed).permutation(d.shape[0])
        b = permute_symmetric(a, order)
        _, rep_a = build_cbm(a, alpha=0)
        _, rep_b = build_cbm(b, alpha=0)
        assert rep_a.total_deltas == rep_b.total_deltas


class TestRebalanceProperties:
    @given(symmetric_adjacency(), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_cut_depth_correct_and_bounded(self, d, max_depth):
        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=0)
        cut = cut_depth(cbm, max_depth)
        assert cut.tree.depth().max(initial=0) <= max_depth
        x = np.random.default_rng(4).random((d.shape[0], 3)).astype(np.float32)
        assert np.allclose(cut.matmul(x), d.astype(np.float64) @ x, rtol=1e-3, atol=1e-4)
        assert cut.num_deltas <= a.nnz  # Property 1 survives cutting

    @given(symmetric_adjacency(), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_split_branches_correct_and_bounded(self, d, max_branch):
        a = from_dense(d)
        cbm, _ = build_cbm(a, alpha=0)
        split = split_branches(cbm, max_branch)
        assert max((len(b) for b in split.tree.branches()), default=0) <= max_branch
        x = np.random.default_rng(5).random((d.shape[0], 3)).astype(np.float32)
        assert np.allclose(split.matmul(x), d.astype(np.float64) @ x, rtol=1e-3, atol=1e-4)
