"""Property-based tests for degree-aware row partitioning and sharded plans.

Two families of invariants:

* **Partition** — for any degree sequence and shard count,
  :func:`~repro.sparse.blocked.partition_rows` must place every row in
  exactly one shard (contiguous, ordered, gap-free) and respect the
  prefix-cut balance bound ``max_shard_cost <= total/k + max_row_cost``
  (costs include the per-row base term that spreads isolated vertices).
  The bound is what makes shard makespan predictable; the coverage
  property is what makes row-block SpMM *exact* rather than approximate.
* **Partition/schedule interplay** — a :class:`ShardedPlan` built from
  any random adjacency must (a) pass the HZ-S101..103 shard audits and
  (b) reproduce the reference SpMM through the per-shard compression
  trees and level schedules, i.e. the row cuts never split the update
  schedule in a way that changes the product.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.shard import ShardedPlan
from repro.sparse.blocked import ROW_BASE_COST, partition_rows
from repro.sparse.ops import spmm
from repro.staticcheck import analyze_shard_plan

from tests.conftest import random_adjacency_csr


@given(
    degrees=st.lists(st.integers(min_value=0, max_value=40), min_size=0, max_size=300),
    num_shards=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=120, deadline=None)
def test_partition_covers_every_row_exactly_once(degrees, num_shards):
    cost = np.asarray(degrees, dtype=np.float64)
    bounds = partition_rows(cost, num_shards)
    assert len(bounds) == num_shards
    cursor = 0
    for lo, hi in bounds:
        assert lo == cursor, "gap or overlap between consecutive shards"
        assert hi >= lo
        cursor = hi
    assert cursor == cost.size


@given(
    degrees=st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=300),
    num_shards=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=120, deadline=None)
def test_partition_balance_bound(degrees, num_shards):
    cost = np.asarray(degrees, dtype=np.float64)
    bounds = partition_rows(cost, num_shards)
    loaded = cost + ROW_BASE_COST
    heaviest = max(loaded[lo:hi].sum() for lo, hi in bounds)
    assert heaviest <= loaded.sum() / num_shards + loaded.max() + 1e-9


@given(
    n=st.integers(min_value=2, max_value=40),
    density=st.floats(min_value=0.0, max_value=0.4),
    num_shards=st.integers(min_value=1, max_value=6),
    p=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25, deadline=None)
def test_sharded_plan_matches_reference_and_audits_clean(
    n, density, num_shards, p, seed
):
    a = random_adjacency_csr(n, density=density, seed=seed)
    b = np.random.default_rng(seed).standard_normal((n, p)).astype(np.float32)
    with ShardedPlan(a, num_shards=num_shards) as plan:
        report = analyze_shard_plan(plan)
        assert report.ok, report.render()
        got = plan.execute_threaded(b)
    np.testing.assert_allclose(got, spmm(a, b), rtol=1e-4, atol=1e-4)
