"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.convert import from_dense
from repro.sparse.csr import CSRMatrix


def random_binary_dense(
    n: int, m: int | None = None, density: float = 0.2, seed: int = 0
) -> np.ndarray:
    """Random dense binary matrix (float32 values in {0, 1})."""
    rng = np.random.default_rng(seed)
    return (rng.random((n, m or n)) < density).astype(np.float32)


def random_adjacency_dense(n: int, density: float = 0.2, seed: int = 0) -> np.ndarray:
    """Random symmetric binary matrix with a zero diagonal."""
    d = random_binary_dense(n, n, density, seed)
    d = np.maximum(d, d.T)
    np.fill_diagonal(d, 0.0)
    return d


def random_binary_csr(n: int, density: float = 0.2, seed: int = 0) -> CSRMatrix:
    return from_dense(random_binary_dense(n, n, density, seed))


def random_adjacency_csr(n: int, density: float = 0.2, seed: int = 0) -> CSRMatrix:
    return from_dense(random_adjacency_dense(n, density, seed))


@pytest.fixture
def small_adjacency() -> CSRMatrix:
    """A 40-node random undirected graph, moderately dense."""
    return random_adjacency_csr(40, density=0.25, seed=42)


@pytest.fixture
def clustered_adjacency() -> CSRMatrix:
    """A graph with near-identical rows (high CBM compressibility)."""
    rng = np.random.default_rng(7)
    n = 60
    d = np.zeros((n, n), dtype=np.float32)
    # Three cliques of 20 with small perturbations.
    for b in range(3):
        lo, hi = 20 * b, 20 * (b + 1)
        d[lo:hi, lo:hi] = 1.0
    flip = rng.integers(0, n, size=(15, 2))
    for i, j in flip:
        if i != j:
            d[i, j] = d[j, i] = 1.0 - d[i, j]
    np.fill_diagonal(d, 0.0)
    return from_dense(d)


@pytest.fixture
def paper_figure_matrix() -> CSRMatrix:
    """The 4x4 example matrix of the paper's Figure 1.

    A = [[1,1,0,1],
         [1,1,1,1],
         [0,1,0,1],
         [1,1,0,1]]  (rows chosen to exercise +/- deltas and ties).
    """
    a = np.array(
        [
            [1, 1, 0, 1],
            [1, 1, 1, 1],
            [0, 1, 0, 1],
            [1, 1, 0, 1],
        ],
        dtype=np.float32,
    )
    return from_dense(a)
