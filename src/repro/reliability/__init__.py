"""Guarded execution layer: validation, fallback, and fault injection.

The production-facing half is :class:`GuardedKernel` /
:class:`GuardedAdjacency` (validated CBM products that degrade to the
CSR reference path instead of failing open) plus the executor watchdog
in :mod:`repro.parallel.executor`.  The test-facing half is
:mod:`repro.reliability.chaos`, a deterministic fault-injection harness
that corrupts archives, trees, deltas, and feature matrices and
kills/stalls update-stage workers to prove every degradation path.
See ``docs/ARCHITECTURE.md`` § "Reliability & failure semantics".
"""

from repro.reliability.guard import (
    FallbackWarning,
    GuardedAdjacency,
    GuardedKernel,
    GuardStats,
    all_finite,
)

__all__ = [
    "FallbackWarning",
    "GuardedAdjacency",
    "GuardedKernel",
    "GuardStats",
    "all_finite",
]
