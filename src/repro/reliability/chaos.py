"""Deterministic fault injection ("chaos") for the reliability layer.

Every helper here is seeded and reproducible: the test-suite uses them
to *prove* the degradation paths — corrupted archive → ``IntegrityError``,
mid-update worker death → ``ParallelError`` + invalidated buffer, worker
stall → ``WatchdogTimeout``, NaN features → ``NumericalError``, corrupted
tree/deltas → validation error or CSR fallback.  Nothing in this module
is imported by the production kernels; it only *wraps or produces*
corrupted inputs for them.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.cbm import CBMMatrix
from repro.parallel.executor import ThreadedUpdateExecutor


class ChaosFault(RuntimeError):
    """The injected failure itself (deliberately *not* a ReproError: the
    executor must wrap arbitrary worker exceptions, not just library ones)."""


# ---------------------------------------------------------------------------
# Archive corruption
# ---------------------------------------------------------------------------

def corrupt_archive(
    path, *, array: str = "delta_data", mode: str = "perturb", seed: int = 0
) -> str:
    """Tamper with one payload array of a saved CBM ``.npz`` archive.

    The archive is rewritten with the *original* meta header (stale
    checksums included), simulating bit-rot of the payload after the
    header was written.  Modes:

    ``perturb``
        Deterministically alter a handful of values in ``array``.
    ``zero``
        Zero the whole payload array.
    ``drop``
        Remove the payload array from the archive entirely.

    Returns the name of the corrupted array.
    """
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    if array not in arrays:
        raise KeyError(f"archive has no payload {array!r}: {sorted(arrays)}")
    if mode == "perturb":
        target = arrays[array].copy()
        rng = np.random.default_rng(seed)
        flat = target.reshape(-1)
        if flat.size == 0:
            raise ValueError(f"cannot perturb empty payload {array!r}")
        idx = rng.integers(0, flat.size, size=min(4, flat.size))
        if np.issubdtype(target.dtype, np.integer):
            flat[idx] = flat[idx] + 1 + rng.integers(0, 7, size=idx.size)
        else:
            flat[idx] = flat[idx] + 1.5
        arrays[array] = target
    elif mode == "zero":
        arrays[array] = np.zeros_like(arrays[array])
    elif mode == "drop":
        del arrays[array]
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    # Deliberately torn/corrupt output — this *is* the fault injector.
    np.savez_compressed(path, **arrays)  # staticcheck: ignore[SC501]
    return array


def read_archive_meta(path) -> dict:
    """The JSON meta header of a CBM archive (for tests/inspection)."""
    with np.load(path) as archive:
        return json.loads(bytes(archive["meta"]).decode("utf-8"))


# ---------------------------------------------------------------------------
# In-memory structure corruption
# ---------------------------------------------------------------------------

def inject_nan(x: np.ndarray, *, fraction: float = 0.01, seed: int = 0) -> np.ndarray:
    """A copy of ``x`` with a deterministic sprinkle of NaNs."""
    x = np.array(x, dtype=np.result_type(x.dtype, np.float32), copy=True)
    rng = np.random.default_rng(seed)
    flat = x.reshape(-1)
    count = max(1, int(flat.size * fraction))
    flat[rng.integers(0, flat.size, size=count)] = np.nan
    return x


def random_edge_batch(
    a,
    *,
    inserts: int = 4,
    deletes: int = 4,
    symmetric: bool = True,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """A deterministic random edge-mutation batch for ``a`` (binary CSR).

    Returns ``(ins, del)``: two ``(k, 2)`` int arrays of edges to insert
    (currently absent, no self-loops) and delete (currently present).
    With ``symmetric=True`` every edge appears with its mirror so an
    undirected adjacency stays undirected.  This is the mutation-storm
    injector: the streaming soak feeds these straight into
    :meth:`repro.streaming.MutableAdjacency.apply`.
    """
    rng = np.random.default_rng(seed)
    n, m = a.shape
    pairs_del: set[tuple[int, int]] = set()
    nnz = a.nnz
    if nnz and deletes:
        for pos in rng.integers(0, nnz, size=4 * deletes):
            u = int(np.searchsorted(a.indptr, pos, side="right") - 1)
            v = int(a.indices[pos])
            if symmetric and u > v:
                u, v = v, u
            pairs_del.add((u, v))
            if len(pairs_del) >= deletes:
                break
    pairs_ins: set[tuple[int, int]] = set()
    if inserts:
        for u, v in rng.integers(0, (n, m), size=(8 * inserts, 2)):
            u, v = int(u), int(v)
            if symmetric and u > v:
                u, v = v, u
            if u == v or v in a.row(u) or (u, v) in pairs_del:
                continue
            pairs_ins.add((u, v))
            if len(pairs_ins) >= inserts:
                break

    def _expand(pairs: set[tuple[int, int]]) -> np.ndarray:
        out = []
        for u, v in sorted(pairs):
            out.append((u, v))
            if symmetric and u != v:
                out.append((v, u))
        return np.asarray(out, dtype=np.int64).reshape(-1, 2)

    return _expand(pairs_ins), _expand(pairs_del)


def corrupt_deltas(cbm: CBMMatrix, *, mode: str = "nan", seed: int = 0) -> None:
    """Corrupt the delta values of ``cbm`` **in place** (plans invalidated).

    ``nan`` poisons a few stored deltas with NaN (detectable by the
    guard's output scan); ``sign`` flips delta signs (numerically wrong
    but structurally valid — exactly the class of corruption only a
    reference product can catch, which is why the guard validates
    against finite-ness and the chaos tests compare to CSR).
    """
    data = cbm.delta.data
    if data.size == 0:
        raise ValueError("matrix has no deltas to corrupt")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, data.size, size=max(1, data.size // 8))
    if mode == "nan":
        data[idx] = np.nan
    elif mode == "sign":
        data[idx] = -data[idx]
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    cbm.invalidate()


def corrupt_tree_parents(parent: np.ndarray, *, mode: str = "cycle", seed: int = 0) -> np.ndarray:
    """A corrupted copy of a compression-tree parent array.

    ``cycle`` wires two rows into a 2-cycle; ``out_of_range`` points a
    row at a non-existent parent.  Constructing a
    :class:`~repro.core.tree.CompressionTree` from the result must raise
    :class:`~repro.errors.TreeError`.
    """
    bad = np.array(parent, copy=True)
    if bad.size < 2:
        raise ValueError("need at least two rows to corrupt a tree")
    rng = np.random.default_rng(seed)
    x = int(rng.integers(0, bad.size - 1))
    if mode == "cycle":
        bad[x], bad[x + 1] = x + 1, x
    elif mode == "out_of_range":
        bad[x] = bad.size + 17
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return bad


# ---------------------------------------------------------------------------
# Executor fault injection
# ---------------------------------------------------------------------------

class ChaosExecutor(ThreadedUpdateExecutor):
    """Update-stage executor that kills or stalls a chosen branch replay.

    ``fail_on_branch=k`` raises :class:`ChaosFault` on the k-th branch a
    worker picks up (0-based, in pickup order — deterministic because
    the counter is shared and locked).  ``stall_on_branch=k`` makes that
    replay hang for ``stall_seconds`` instead, cooperatively polling the
    run's cancel event so test threads exit once the watchdog trips.
    """

    def __init__(
        self,
        threads: int,
        *,
        fail_on_branch: int | None = None,
        stall_on_branch: int | None = None,
        stall_seconds: float = 30.0,
        **kwargs,
    ):
        super().__init__(threads, **kwargs)
        self.fail_on_branch = fail_on_branch
        self.stall_on_branch = stall_on_branch
        self.stall_seconds = stall_seconds
        self._picked = 0
        self._pick_lock = threading.Lock()

    def _replay_branch(
        self,
        branch: np.ndarray,
        parent: np.ndarray,
        c: np.ndarray,
        cancel: threading.Event | None = None,
    ) -> None:
        with self._pick_lock:
            k = self._picked
            self._picked += 1
        if k == self.fail_on_branch:
            raise ChaosFault(f"chaos: injected worker death on branch #{k}")
        if k == self.stall_on_branch:
            deadline = time.monotonic() + self.stall_seconds
            while time.monotonic() < deadline:
                if cancel is not None and cancel.is_set():
                    return  # branch abandoned mid-replay, like a hung worker
                time.sleep(0.005)
            return
        super()._replay_branch(branch, parent, c, cancel)


class ChaosExecutorFactory:
    """Seeded executor factory that makes a fraction of runs fail or stall.

    Drop-in for the ``executor_factory`` hooks of
    :func:`~repro.parallel.executor.parallel_matmul` and
    :class:`~repro.reliability.guard.GuardedKernel`: each time the fast
    path builds an update-stage executor, a shared seeded RNG decides
    whether this run gets a healthy :class:`ThreadedUpdateExecutor`, one
    that kills a worker (:class:`ChaosExecutor` ``fail_on_branch=0``), or
    one that stalls a branch until the watchdog trips.  ``enabled`` can
    be flipped off mid-soak (the recovery phase), and the counters let
    the harness report exactly how many faults it injected.
    """

    def __init__(
        self,
        *,
        fail_rate: float = 0.0,
        stall_rate: float = 0.0,
        stall_seconds: float = 30.0,
        seed: int = 0,
    ):
        if not 0.0 <= fail_rate + stall_rate <= 1.0:
            raise ValueError(
                f"fail_rate + stall_rate must lie in [0, 1], got "
                f"{fail_rate} + {stall_rate}"
            )
        self.fail_rate = fail_rate
        self.stall_rate = stall_rate
        self.stall_seconds = stall_seconds
        self.enabled = True
        self.built = 0
        self.injected_failures = 0
        self.injected_stalls = 0
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()

    def __call__(self, threads: int, **kwargs) -> ThreadedUpdateExecutor:
        with self._lock:
            self.built += 1
            draw = float(self._rng.random())
            if self.enabled and draw < self.fail_rate:
                self.injected_failures += 1
                return ChaosExecutor(threads, fail_on_branch=0, **kwargs)
            if self.enabled and draw < self.fail_rate + self.stall_rate:
                self.injected_stalls += 1
                return ChaosExecutor(
                    threads,
                    stall_on_branch=0,
                    stall_seconds=self.stall_seconds,
                    **kwargs,
                )
        return ThreadedUpdateExecutor(threads, **kwargs)

    def describe(self) -> dict:
        return {
            "built": self.built,
            "injected_failures": self.injected_failures,
            "injected_stalls": self.injected_stalls,
            "fail_rate": self.fail_rate,
            "stall_rate": self.stall_rate,
        }


# ---------------------------------------------------------------------------
# Process-level fault injection (sharded multi-process execution)
# ---------------------------------------------------------------------------

#: Sync points at which a kill/stall may fire, mirroring
#: :data:`repro.parallel.shard.SYNC_POINTS`; ``"write"`` is the torn-write
#: site (between the output-slice write and the commit).
SHARD_FAULT_POINTS = ("start", "multiplied", "updated", "commit")


@dataclass(frozen=True)
class ShardFault:
    """One decided fault for one (shard, epoch, attempt) worker run.

    ``action``: ``"kill"`` (SIGKILL self — the un-catchable worker death),
    ``"stall"`` (sleep without heartbeating, so only the supervisor's
    heartbeat deadline can notice), or ``"torn"`` (write only half the
    output slice but commit the epoch *and* the checksum of the intended
    result — a lying commit that epoch-level verification cannot catch,
    existing precisely to prove the checksum tier has teeth).
    """

    action: str
    point: str
    stall_seconds: float = 30.0

    def fire(self) -> None:
        """Execute a kill/stall at its sync point (torn fires at the
        write site inside :func:`repro.parallel.shard.run_shard`)."""
        if self.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.action == "stall":
            time.sleep(self.stall_seconds)


class ShardChaos:
    """Picklable, fully deterministic process-fault injector.

    Decisions are a pure function of ``(seed, shard, epoch, attempt)`` —
    no shared counters, because the decider runs inside worker processes.
    Including the attempt number is what makes injected faults
    *transient*: the supervisor's retry of a killed shard draws a fresh
    decision instead of deterministically dying the same death forever
    (persistent faults are what quarantine is for, and the soak exercises
    those too by raising the rates).  The parent can replay
    :meth:`decide` with the same arguments to know exactly what each
    worker run was dealt.
    """

    def __init__(
        self,
        *,
        kill_rate: float = 0.0,
        stall_rate: float = 0.0,
        torn_rate: float = 0.0,
        stall_seconds: float = 30.0,
        seed: int = 0,
    ):
        total = kill_rate + stall_rate + torn_rate
        if not 0.0 <= total <= 1.0:
            raise ValueError(
                f"kill+stall+torn rates must lie in [0, 1], got {total}"
            )
        if min(kill_rate, stall_rate, torn_rate) < 0:
            raise ValueError("fault rates must be non-negative")
        self.kill_rate = kill_rate
        self.stall_rate = stall_rate
        self.torn_rate = torn_rate
        self.stall_seconds = stall_seconds
        self.seed = seed

    def decide(self, shard: int, epoch: int, attempt: int = 0) -> ShardFault | None:
        rng = np.random.default_rng((self.seed, shard, epoch, attempt))
        draw = float(rng.random())
        point = SHARD_FAULT_POINTS[int(rng.integers(0, len(SHARD_FAULT_POINTS)))]
        if draw < self.kill_rate:
            return ShardFault("kill", point)
        if draw < self.kill_rate + self.stall_rate:
            return ShardFault("stall", point, stall_seconds=self.stall_seconds)
        if draw < self.kill_rate + self.stall_rate + self.torn_rate:
            return ShardFault("torn", "write")
        return None

    def describe(self) -> dict:
        return {
            "kill_rate": self.kill_rate,
            "stall_rate": self.stall_rate,
            "torn_rate": self.torn_rate,
            "stall_seconds": self.stall_seconds,
            "seed": self.seed,
        }
