"""Guarded execution of CBM products: validate, detect, fall back.

The CBM fast path (plan/execute runtime + branch-parallel update stage)
mutates buffers in place and trusts the compression tree; a corrupted
structure, a failed worker, or a numerical blow-up would otherwise
surface as a *silently wrong* product.  :class:`GuardedKernel` wraps
``KernelPlan.execute`` / ``parallel_matmul`` with three layers:

1. **input validation** — dense shape checks up front, plus a *lazy*
   non-finite scan of the operand: NaN/Inf in the features propagates
   into the product, so the happy path pays only the output scan, and
   the operand is inspected when a failure needs attributing (a
   corrupted input can never be repaired by a format fallback, so it
   raises :class:`~repro.errors.NumericalError` instead of degrading);
2. **output validation** — shape-drift and non-finite detection on the
   CBM result;
3. **graceful degradation** — any :class:`~repro.errors.ReproError`
   from the fast path (worker death, watchdog trip, corrupted
   tree/deltas, NaN blow-up) triggers a fallback chain: the per-call
   reference path ``matmul_unplanned``, then the CSR reference product
   ``a @ x`` against the ``source`` matrix if one was provided.  Each
   fallback is validated the same way, emits a structured
   :class:`FallbackWarning`, and bumps the :class:`GuardStats` counter,
   so callers always receive a *correct* result or a typed error —
   never a quietly wrong buffer.

``strict=True`` flips the policy: the first failure re-raises instead
of degrading (serving deployments that prefer fail-fast over fail-soft).
"""

from __future__ import annotations

import threading
import warnings
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.cbm import CBMMatrix
from repro.errors import NumericalError, ReproError, ShapeError
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import Engine, spmm, spmv
from repro.utils.validation import all_finite, check_dense


class FallbackWarning(UserWarning):
    """Emitted when a guarded product degrades to a reference path."""


@dataclass
class GuardStats:
    """Counters exposed by :class:`GuardedKernel` (CLI/bench read these).

    Thread-safe: every mutation happens under an internal lock, because
    the serving layer shares one ``GuardStats`` across request-scoped
    guards and reads it concurrently (circuit-breaker failure rates,
    health endpoints).  The single-threaded API is unchanged — the plain
    counter attributes remain readable directly; :meth:`snapshot` gives a
    consistent point-in-time copy when several counters must agree.
    """

    calls: int = 0
    fallbacks: int = 0
    input_rejections: int = 0
    warnings_suppressed: int = 0
    reasons: Counter = field(default_factory=Counter)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_call(self) -> None:
        with self._lock:
            self.calls += 1

    def record_input_rejection(self) -> None:
        with self._lock:
            self.input_rejections += 1

    def record_fallback(self, exc: BaseException) -> tuple[int, int]:
        """Count a fallback; return ``(occurrence, total)`` — this reason's
        occurrence count and the overall fallback count, read atomically
        under the lock so reporting code never touches the raw counters
        (the warning deduplication in :meth:`GuardedKernel._degrade` needs
        both numbers in one consistent view)."""
        reason = type(exc).__name__
        with self._lock:
            self.fallbacks += 1
            self.reasons[reason] += 1
            return self.reasons[reason], self.fallbacks

    def record_suppressed_warning(self) -> None:
        with self._lock:
            self.warnings_suppressed += 1

    def snapshot(self) -> dict:
        """Consistent point-in-time copy of every counter."""
        with self._lock:
            return {
                "calls": self.calls,
                "fallbacks": self.fallbacks,
                "input_rejections": self.input_rejections,
                "warnings_suppressed": self.warnings_suppressed,
                "reasons": dict(self.reasons),
            }

    def reset(self) -> None:
        """Zero every counter (the serving layer resets between phases)."""
        with self._lock:
            self.calls = 0
            self.fallbacks = 0
            self.input_rejections = 0
            self.warnings_suppressed = 0
            self.reasons.clear()

    def as_dict(self) -> dict:
        return self.snapshot()


class GuardedKernel:
    """Validated, fallback-protected products for one CBM matrix.

    Parameters
    ----------
    cbm:
        The matrix whose planned fast path is being guarded.
    source:
        Optional CSR reference of the *same product* (e.g. the
        normalised adjacency the CBM was compressed from).  It is the
        last rung of the fallback chain and the only one that survives
        corruption of the CBM structures themselves.
    strict:
        Re-raise the first failure instead of falling back.
    threads:
        When set, products run through
        :func:`~repro.parallel.executor.parallel_matmul` (branch-parallel
        update stage) instead of ``KernelPlan.execute``.
    branch_timeout:
        Watchdog limit per branch for the threaded path (seconds).
    deadline:
        Optional absolute :func:`time.monotonic` deadline forwarded to
        the threaded executor's watchdog: the whole update stage is
        cancelled (buffer restored/invalidated) once it passes, so a
        per-request budget bounds the fast path instead of one slow
        branch blocking the queue.  The serving layer sets this on its
        request-scoped guards.
    executor_factory:
        Callable with the :class:`~repro.parallel.executor.ThreadedUpdateExecutor`
        constructor signature used to build the threaded-path executor.
        Defaults to the real executor; the chaos soak harness swaps in
        fault-injecting ones without monkeypatching.
    stats:
        Share an existing (thread-safe) :class:`GuardStats` instead of
        creating a private one — the serving layer aggregates every
        request-scoped guard of an adjacency into one counter set.
    on_degrade:
        Optional callable invoked with the triggering exception each time
        the guard falls back (never in strict mode).  The serving layer's
        circuit breaker listens here: an internally repaired failure is
        still a fast-path failure signal.
    validate_inputs / validate_outputs:
        Toggle the non-finite scans (shape checks always run).  The
        input scan is lazy — it runs only while attributing a failure,
        so the happy path costs one output scan per product.
    """

    def __init__(
        self,
        cbm: CBMMatrix,
        *,
        source: CSRMatrix | None = None,
        strict: bool = False,
        threads: int | None = None,
        branch_timeout: float | None = None,
        deadline: float | None = None,
        executor_factory=None,
        update: str = "level",
        scaling: str = "deferred",
        validate_inputs: bool = True,
        validate_outputs: bool = True,
        stats: GuardStats | None = None,
        on_degrade=None,
    ):
        self.cbm = cbm
        self.source = source
        self.strict = strict
        self.threads = threads
        self.branch_timeout = branch_timeout
        self.deadline = deadline
        self.executor_factory = executor_factory
        self.update = update
        self.scaling = scaling
        self.validate_inputs = validate_inputs
        self.validate_outputs = validate_outputs
        self.stats = stats if stats is not None else GuardStats()
        self.on_degrade = on_degrade
        # Memoised plan for the serial path: the (update, scaling) pair
        # is fixed per guard, and the lock + dict handling in
        # ``CBMMatrix.plan`` is measurable against the <5% overhead
        # budget.  The fingerprint check keeps ``CBMMatrix.invalidate``
        # honoured — a stale plan would serve its pre-mutation scaled
        # operand and mask corruption from the guard entirely.
        self._plan = None

    def _get_plan(self):
        plan = self._plan
        if plan is None or not plan.matches(self.cbm):
            plan = self._plan = self.cbm.plan(update=self.update, scaling=self.scaling)
        return plan

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.cbm.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        return self.cbm.shape

    # ------------------------------------------------------------------
    def _reject_bad_input(self, x: np.ndarray, name: str, cause: ReproError) -> None:
        """Attribute a failure to a corrupted operand, if it is one.

        Input validation is *lazy*: the happy path pays only the output
        scan (NaN/Inf in the operand propagates into the product), and
        the operand is scanned only once a failure needs attributing —
        a corrupted input can never be repaired by a format fallback,
        so it raises :class:`~repro.errors.NumericalError` directly.
        """
        if self.validate_inputs and not all_finite(x):
            self.stats.record_input_rejection()
            err = NumericalError(
                f"{name} contains NaN/Inf values; no format fallback can "
                "repair a corrupted operand — sanitise the features upstream"
            )
            # Marker for callers that must tell a client error from a
            # path failure: the serving layer neither retries this nor
            # counts it against the circuit breaker.
            err.input_rejection = True
            raise err from cause

    def _check_output(self, c: np.ndarray, cols: tuple) -> None:
        expected = (self.cbm.shape[0], *cols)
        if c.shape != expected:
            raise ShapeError.mismatch("guarded product output", expected, c.shape)
        if not self.validate_outputs:
            return
        # Inlined fast path of ``all_finite``: the kernel output is a
        # fresh contiguous float array, so one BLAS self-dot settles the
        # common case; ``all_finite`` re-checks exactly (the probe also
        # trips on benign overflow of large finite values).
        flat = c.reshape(-1)
        if np.isfinite(np.dot(flat, flat)):
            return
        if not all_finite(c):
            raise NumericalError(
                "CBM product produced NaN/Inf from finite inputs "
                "(corrupted deltas/tree or numerical blow-up)"
            )

    # ------------------------------------------------------------------
    def matmul(
        self, b: np.ndarray, *, out: np.ndarray | None = None, engine: Engine | None = None
    ) -> np.ndarray:
        """Guarded ``M @ b`` for a dense 2-D operand ``b``."""
        b = check_dense(b, name="b", ndim=2)
        if b.shape[0] != self.shape[1]:
            raise ShapeError.mismatch("guarded matmul", self.shape, b.shape)
        self.stats.record_call()
        try:
            if self.threads is not None:
                from repro.parallel.executor import parallel_matmul

                c = parallel_matmul(
                    self.cbm,
                    b,
                    threads=self.threads,
                    engine=engine,
                    branch_timeout=self.branch_timeout,
                    deadline=self.deadline,
                    executor_factory=self.executor_factory,
                )
            else:
                c = self._get_plan().execute(b, out=out, engine=engine)
            self._check_output(c, (b.shape[1],))
            return c
        except ReproError as exc:
            return self._fallback_matmul(b, exc, out=out, engine=engine)

    def matvec(self, v: np.ndarray, *, engine: Engine | None = None) -> np.ndarray:
        """Guarded ``M @ v`` for a dense 1-D vector ``v``."""
        v = check_dense(v, name="v", ndim=1)
        if v.shape[0] != self.shape[1]:
            raise ShapeError.mismatch("guarded matvec", self.shape, v.shape)
        self.stats.record_call()
        try:
            u = self._get_plan().execute_vec(v, engine=engine)
            self._check_output(u, ())
            return u
        except ReproError as exc:
            return self._fallback_matvec(v, exc, engine=engine)

    __matmul__ = matmul

    # ------------------------------------------------------------------
    def _degrade(self, exc: ReproError) -> None:
        """Record the failure; in strict mode re-raise it instead.

        Repeated failures with the same reason are deduplicated per
        (adjacency, reason): the first occurrence warns verbatim, later
        ones only bump ``stats.warnings_suppressed`` except at powers of
        ten (10th, 100th, ...), where a one-line counter warning keeps
        long soaks informed without emitting thousands of identical
        messages.  The dedup state lives in the (shared) ``GuardStats``,
        so the serving layer's request-scoped guards dedup together.
        """
        if self.strict:
            raise exc
        self._plan = None
        occurrence, total_fallbacks = self.stats.record_fallback(exc)
        if self.on_degrade is not None:
            self.on_degrade(exc)
        reason = type(exc).__name__
        if occurrence == 1:
            warnings.warn(
                FallbackWarning(
                    f"CBM fast path failed ({reason}: {exc}); "
                    "degrading to the CSR reference product "
                    f"(fallback #{total_fallbacks} on this kernel)"
                ),
                stacklevel=4,
            )
        elif occurrence in (10, 100, 1000, 10000, 100000, 1000000):
            warnings.warn(
                FallbackWarning(
                    f"CBM fast path has now degraded {occurrence} times for "
                    f"{reason} on this kernel (identical warnings suppressed; "
                    "see GuardStats.reasons)"
                ),
                stacklevel=4,
            )
        else:
            self.stats.record_suppressed_warning()

    def _fallback_matmul(
        self,
        b: np.ndarray,
        exc: ReproError,
        *,
        out: np.ndarray | None,
        engine: Engine | None,
    ) -> np.ndarray:
        """Degraded product after a fast-path failure.

        Tries the unplanned CBM path, then the CSR reference; when the
        caller supplied ``out``, the recovered product is copied into it
        in place (the fast path may have left it invalidated).
        """
        self._reject_bad_input(b, "operand b", exc)
        self._degrade(exc)
        c: np.ndarray | None = None
        try:
            c = self.cbm.matmul_unplanned(b, update=self.update, scaling=self.scaling)
            if self.validate_outputs and not all_finite(c):
                c = None
        except ReproError:
            c = None
        if c is None and self.source is not None:
            c = spmm(self.source, b, engine=engine)
            if self.validate_outputs and not all_finite(c):
                raise NumericalError(
                    "CSR reference product is also non-finite; the stored "
                    "matrix or the operand is corrupted beyond recovery"
                ) from exc
        if c is None:
            raise exc
        if out is not None:
            out[...] = c
            return out
        return c

    def _fallback_matvec(
        self, v: np.ndarray, exc: ReproError, *, engine: Engine | None
    ) -> np.ndarray:
        self._reject_bad_input(v, "operand v", exc)
        self._degrade(exc)
        u: np.ndarray | None = None
        try:
            u = self.cbm.matvec_unplanned(v, update=self.update, scaling=self.scaling)
            if self.validate_outputs and not all_finite(u):
                u = None
        except ReproError:
            u = None
        if u is None and self.source is not None:
            u = spmv(self.source, v, engine=engine)
            if self.validate_outputs and not all_finite(u):
                raise NumericalError(
                    "CSR reference product is also non-finite; the stored "
                    "matrix or the operand is corrupted beyond recovery"
                ) from exc
        if u is None:
            raise exc
        return u

    def describe(self) -> dict:
        """Guard configuration + counters (CLI ``--guarded`` prints this)."""
        return {
            "strict": self.strict,
            "threads": self.threads,
            "branch_timeout": self.branch_timeout,
            "has_source": self.source is not None,
            **self.stats.as_dict(),
        }


class GuardedAdjacency:
    """:class:`~repro.gnn.adjacency.AdjacencyOp` facade over a guard.

    Lets every GNN model in :mod:`repro.gnn` run its ``Â @ X`` products
    through the guarded kernel unchanged — the serving-path integration
    of the reliability layer.
    """

    supports_out = False

    def __init__(self, guard: GuardedKernel):
        self.guard = guard

    @classmethod
    def from_graph(
        cls, a: CSRMatrix, *, alpha: int = 0, strict: bool = False, **guard_kwargs
    ) -> "GuardedAdjacency":
        """Compress ``Â`` to CBM(DAD) and keep the CSR ``Â`` as fallback."""
        from repro.core.builder import build_cbm
        from repro.core.cbm import Variant
        from repro.graphs.laplacian import gcn_normalization, normalized_adjacency

        binary, diag = gcn_normalization(a)
        cbm, _ = build_cbm(binary, alpha=alpha, variant=Variant.DAD, diag=diag)
        source = normalized_adjacency(a)
        return cls(GuardedKernel(cbm, source=source, strict=strict, **guard_kwargs))

    @property
    def n(self) -> int:
        return self.guard.n

    def prepare(self, *, width: int | None = None, dtype=np.float32) -> None:
        plan = self.guard.cbm.plan(update=self.guard.update, scaling=self.guard.scaling)
        if width is not None:
            plan.pool.warm((self.n, int(width)), dtype, count=1)

    def matmul(self, x: np.ndarray) -> np.ndarray:
        return self.guard.matmul(x.astype(np.float32, copy=False))

    def memory_bytes(self) -> int:
        return self.guard.cbm.memory_bytes()
