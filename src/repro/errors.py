"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  Subclasses are grouped by the subsystem
that raises them; the messages are written to be actionable (they name the
offending argument and the constraint that was violated).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An operand has an incompatible or malformed shape."""

    @classmethod
    def mismatch(cls, op: str, left: tuple, right: tuple) -> "ShapeError":
        return cls(f"{op}: incompatible shapes {left} and {right}")


class DTypeError(ReproError, TypeError):
    """An operand has an unsupported dtype."""


class NotBinaryError(ReproError, ValueError):
    """A matrix expected to be binary contains values outside {0, 1}."""


class FormatError(ReproError, ValueError):
    """A sparse container's internal arrays violate a format invariant.

    Raised by the ``check_format`` validators of the COO/CSR/CSC containers,
    e.g. out-of-range indices, non-monotone index pointers, or mismatched
    array lengths.
    """


class CompressionError(ReproError, RuntimeError):
    """The CBM compression pipeline could not produce a valid tree."""


class TreeError(ReproError, ValueError):
    """A compression tree is structurally invalid (cycle, bad root, ...)."""


class DatasetError(ReproError, KeyError):
    """An unknown dataset name was requested from the registry.

    ``KeyError.__str__`` wraps the message in ``repr`` quotes (it normally
    carries a missing *key*, not a sentence), which made CLI output read as
    ``'unknown dataset ...'``; override it so the message renders verbatim.
    """

    def __str__(self) -> str:
        return Exception.__str__(self)


class ConvergenceError(ReproError, RuntimeError):
    """An iterative procedure (e.g. generator calibration or GNN training)
    failed to converge or diverged.

    When raised by :func:`repro.gnn.train.train_gcn` divergence detection,
    the ``last_good`` attribute holds the most recent healthy
    :class:`~repro.gnn.train.TrainCheckpoint` (or None if the very first
    epoch diverged).
    """

    last_good = None


class ParallelError(ReproError, RuntimeError):
    """The parallel executor or schedule simulator hit an inconsistent state."""


class WatchdogTimeout(ParallelError):
    """An update-stage worker exceeded the per-branch watchdog timeout."""


class ShardError(ParallelError):
    """A sharded multi-process execution failed beyond what the shard
    supervisor could retry or degrade around; the output buffer has been
    invalidated (NaN-poisoned), never served half-written."""


class NumericalError(ReproError, ArithmeticError):
    """A kernel input or output contains non-finite values (NaN/Inf)."""


class IntegrityError(FormatError):
    """A stored artifact failed its checksum — the payload was corrupted."""


class CheckpointError(ReproError, RuntimeError):
    """A training checkpoint could not be saved, loaded, or resumed from."""


class RecoveryError(ReproError, RuntimeError):
    """The durable generation store (:mod:`repro.recovery`) was misused or
    has no usable state (e.g. no committed generation to load or roll back
    to).  Corrupted *content* raises :class:`IntegrityError` instead."""


class GNNError(ReproError, ValueError):
    """Invalid GNN model configuration or input."""


class ServingError(ReproError, RuntimeError):
    """Base class for the in-process inference service (:mod:`repro.serving`)."""


class OverloadError(ServingError):
    """The service shed this request: the bounded queue is full.

    ``retry_after`` is the service's estimate (seconds) of when capacity
    should be available again, derived from the queue depth and the
    recent per-request service time — clients back off at least that long.
    """

    def __init__(self, message: str, *, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class DeadlineExceeded(ServingError):
    """A request's deadline budget expired before a result was produced.

    Raised by the service worker (never left hanging): the request either
    timed out while queued, or its remaining budget was exhausted by the
    kernel attempts and backoff sleeps.
    """


class ServiceUnavailable(ServingError):
    """The service is not accepting requests (not started, draining, or
    stopped)."""


class StalenessError(ServingError):
    """Mutation pressure exceeded the streaming staleness budget.

    Raised by :class:`repro.streaming.DriftTracker` (when enforcement is
    enabled) as backpressure against further in-place patches: the live
    CBM has absorbed more patch batches since its last fresh rebuild than
    the configured budget allows, so the writer must wait for (or
    trigger) a rebuild before mutating further.  ``staleness`` is the
    observed patch count since the last rebuild, ``budget`` the
    configured limit it exceeded.
    """

    def __init__(self, message: str, *, staleness: int = 0, budget: int = 0):
        super().__init__(message)
        self.staleness = int(staleness)
        self.budget = int(budget)
