"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  Subclasses are grouped by the subsystem
that raises them; the messages are written to be actionable (they name the
offending argument and the constraint that was violated).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An operand has an incompatible or malformed shape."""

    @classmethod
    def mismatch(cls, op: str, left: tuple, right: tuple) -> "ShapeError":
        return cls(f"{op}: incompatible shapes {left} and {right}")


class DTypeError(ReproError, TypeError):
    """An operand has an unsupported dtype."""


class NotBinaryError(ReproError, ValueError):
    """A matrix expected to be binary contains values outside {0, 1}."""


class FormatError(ReproError, ValueError):
    """A sparse container's internal arrays violate a format invariant.

    Raised by the ``check_format`` validators of the COO/CSR/CSC containers,
    e.g. out-of-range indices, non-monotone index pointers, or mismatched
    array lengths.
    """


class CompressionError(ReproError, RuntimeError):
    """The CBM compression pipeline could not produce a valid tree."""


class TreeError(ReproError, ValueError):
    """A compression tree is structurally invalid (cycle, bad root, ...)."""


class DatasetError(ReproError, KeyError):
    """An unknown dataset name was requested from the registry."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative procedure (e.g. generator calibration) failed to converge."""


class ParallelError(ReproError, RuntimeError):
    """The parallel executor or schedule simulator hit an inconsistent state."""


class GNNError(ReproError, ValueError):
    """Invalid GNN model configuration or input."""
