"""Graph Convolutional Network (Kipf & Welling) — the paper's Eq. 1.

The two-layer inference pipeline is exactly the expression the paper
benchmarks::

    Z = Â · ReLU(Â X W⁰) · W¹

with Â supplied by any :class:`~repro.gnn.adjacency.AdjacencyOp` — the CSR
baseline or the CBM-compressed form.  The model also supports manual
backpropagation for the training-stage extension: since Â is symmetric,
the backward pass reuses the same operator (``Âᵀ = Â``), which is how the
paper's future-work plan for accelerating training applies CBM.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GNNError
from repro.gnn.adjacency import AdjacencyOp, prepare_operator
from repro.gnn.layers import Dropout, Linear, relu, relu_grad


class GCNLayer:
    """One graph convolution: ``H' = act(Â H W)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        activation: bool = True,
        seed=None,
        requires_grad: bool = False,
    ):
        self.linear = Linear(
            in_features, out_features, bias=False, seed=seed, requires_grad=requires_grad
        )
        self.activation = activation
        self.requires_grad = requires_grad
        self._pre_activation: np.ndarray | None = None

    def forward(self, adj: AdjacencyOp, h: np.ndarray) -> np.ndarray:
        # Aggregate first, transform second: (Â H) W costs n·p·d + n·d·d'
        # and matches the paper's operation order (Â is multiplied by the
        # current embedding, then by the dense weight).
        agg = adj.matmul(h)
        z = self.linear(agg)
        if self.requires_grad:
            self._pre_activation = z
        return relu(z) if self.activation else z

    def backward(self, adj: AdjacencyOp, grad_out: np.ndarray) -> np.ndarray:
        """Backprop through act → W → Â (Â symmetric, so Âᵀ@g = Â@g)."""
        if self.activation:
            if self._pre_activation is None:
                raise GNNError("backward before forward")
            grad_out = grad_out * relu_grad(self._pre_activation)
        grad_agg = self.linear.backward(grad_out)
        return adj.matmul(grad_agg)


class GCN:
    """Multi-layer GCN; the paper's configuration is two layers.

    ``dims`` is ``[in, hidden..., out]``; the last layer has no ReLU
    (logits).  ``dropout`` applies between layers during training only.
    """

    def __init__(
        self,
        dims: list[int],
        *,
        dropout: float = 0.0,
        seed: int = 0,
        requires_grad: bool = False,
    ):
        if len(dims) < 2:
            raise GNNError(f"GCN needs at least [in, out] dims, got {dims}")
        self.layers = [
            GCNLayer(
                dims[i],
                dims[i + 1],
                activation=(i < len(dims) - 2),
                seed=seed + i,
                requires_grad=requires_grad,
            )
            for i in range(len(dims) - 1)
        ]
        self.dropouts = [
            Dropout(dropout, seed=seed + 100 + i) for i in range(len(dims) - 2)
        ]
        self.requires_grad = requires_grad

    def forward(
        self, adj: AdjacencyOp, x: np.ndarray, *, training: bool = False
    ) -> np.ndarray:
        h = np.asarray(x, dtype=np.float32)
        if h.shape[0] != adj.n:
            raise GNNError(
                f"feature matrix has {h.shape[0]} rows but the graph has {adj.n} nodes"
            )
        # Build the kernel plan once, before the layer loop: every layer's
        # Â product then runs as a pure plan execution.
        prepare_operator(adj, width=h.shape[1], dtype=h.dtype)
        for i, layer in enumerate(self.layers):
            h = layer.forward(adj, h)
            if i < len(self.dropouts):
                h = self.dropouts[i](h, training=training)
        return h

    __call__ = forward

    def backward(self, adj: AdjacencyOp, grad_out: np.ndarray) -> np.ndarray:
        """Full backward pass; parameter grads land in each layer's Linear."""
        g = grad_out
        for i in reversed(range(len(self.layers))):
            if i < len(self.dropouts):
                g = self.dropouts[i].backward(g)
            g = self.layers[i].backward(adj, g)
        return g

    def parameters(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.linear.parameters()]

    def gradients(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.linear.gradients()]


def two_layer_gcn_inference(
    adj: AdjacencyOp,
    x: np.ndarray,
    w0: np.ndarray,
    w1: np.ndarray,
) -> np.ndarray:
    """The paper's exact benchmark expression: ``Â σ(Â X W⁰) W¹``.

    A standalone functional form (fixed weights, no model object) used by
    the Table IV benchmark so the measured pipeline is precisely two
    sparse products, two GEMMs, and one ReLU.
    """
    x = np.asarray(x, dtype=np.float32)
    prepare_operator(adj, width=x.shape[1], dtype=x.dtype)
    h = relu(adj.matmul(x) @ np.asarray(w0, dtype=np.float32))
    return adj.matmul(h) @ np.asarray(w1, dtype=np.float32)
