"""Synthetic node-classification tasks for the GNN examples and tests.

Generates a planted-partition graph whose communities are the class
labels, plus noisy class-indicative features — a task where a GCN
genuinely beats a features-only classifier, so the training example has
something real to learn.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.generators import sbm_graph
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive


@dataclass
class NodeClassificationTask:
    """A transductive node-classification problem."""

    adjacency: CSRMatrix
    features: np.ndarray  # (n, d) float32
    labels: np.ndarray  # (n,) int64
    train_mask: np.ndarray  # boolean masks over nodes
    val_mask: np.ndarray
    test_mask: np.ndarray

    @property
    def n(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1


def synthetic_node_classification(
    n: int = 600,
    *,
    classes: int = 4,
    feature_dim: int = 32,
    p_in: float = 0.05,
    p_out: float = 0.005,
    feature_noise: float = 2.0,
    train_fraction: float = 0.1,
    seed: int = 0,
) -> NodeClassificationTask:
    """Planted-partition graph + noisy features, split train/val/test.

    Each class has a random mean feature vector; node features are the
    class mean plus Gaussian noise of scale ``feature_noise`` (high noise
    makes the graph structure informative).  ``train_fraction`` of nodes
    are labelled for training; the rest split evenly into val/test.
    """
    check_positive(n, "n")
    check_positive(classes, "classes")
    rng = as_rng(seed)
    base = n // classes
    sizes = [base] * classes
    sizes[-1] += n - base * classes
    adj = sbm_graph(sizes, p_in, p_out, seed=rng)
    labels = np.repeat(np.arange(classes, dtype=np.int64), sizes)
    means = rng.normal(0.0, 1.0, size=(classes, feature_dim))
    feats = means[labels] + rng.normal(0.0, feature_noise, size=(n, feature_dim))
    order = rng.permutation(n)
    n_train = max(1, int(n * train_fraction))
    n_val = (n - n_train) // 2
    train_mask = np.zeros(n, dtype=bool)
    val_mask = np.zeros(n, dtype=bool)
    test_mask = np.zeros(n, dtype=bool)
    train_mask[order[:n_train]] = True
    val_mask[order[n_train : n_train + n_val]] = True
    test_mask[order[n_train + n_val :]] = True
    return NodeClassificationTask(
        adjacency=adj,
        features=feats.astype(np.float32),
        labels=labels,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
    )
