"""Pluggable adjacency operators for GNN layers.

A GNN layer only needs ``Â @ X``; which format holds Â is an
implementation detail.  :class:`CSRAdjacency` materialises the normalised
adjacency as a weighted CSR matrix and multiplies with the compiled
backend (the paper's MKL baseline).  :class:`CBMAdjacency` keeps the
factorised form ``D^{-1/2} (A+I) D^{-1/2}`` as a CBM(DAD) matrix — the
paper's contribution.  Both expose the same two methods, so every model in
:mod:`repro.gnn` is format-agnostic.

Both operators are *plan-aware* (see :mod:`repro.runtime`): the CBM
operator executes through its matrix's cached :class:`KernelPlan` and the
CSR operator keeps one prebuilt SciPy handle, so per-call work is pure
kernel execution.  Models call :func:`prepare_operator` once per forward
pass to hoist plan construction out of the layer loop, and operators that
set ``supports_out`` accept an ``out=`` buffer so iterative models
(SGC/APPNP) can double-buffer instead of allocating per hop.
"""

from __future__ import annotations

from typing import Literal, Protocol, runtime_checkable

import numpy as np

from repro.core.builder import build_cbm
from repro.core.cbm import CBMMatrix, Variant
from repro.graphs.laplacian import gcn_normalization, normalized_adjacency
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import spmm


@runtime_checkable
class AdjacencyOp(Protocol):
    """What a GNN layer requires of an adjacency representation."""

    @property
    def n(self) -> int: ...

    def matmul(self, x: np.ndarray) -> np.ndarray:
        """Compute ``Â @ x`` for a dense feature matrix ``x``."""
        ...


def prepare_operator(adj: AdjacencyOp, *, width: int | None = None, dtype=np.float32) -> None:
    """Hoist one-time plan/handle construction out of a model's layer loop.

    No-op for operators without a ``prepare`` method, so models stay
    compatible with any :class:`AdjacencyOp` implementation.
    """
    prepare = getattr(adj, "prepare", None)
    if prepare is not None:
        prepare(width=width, dtype=dtype)


class CSRAdjacency:
    """Baseline operator: Â held as one weighted CSR matrix."""

    supports_out = True

    def __init__(self, a_hat: CSRMatrix):
        self.a_hat = a_hat
        self._sp = None  # prebuilt SciPy handle (built by prepare/first matmul)

    @classmethod
    def from_graph(cls, a: CSRMatrix) -> "CSRAdjacency":
        """Build from a raw binary adjacency matrix (adds self-loops,
        applies the symmetric GCN normalisation)."""
        return cls(normalized_adjacency(a))

    @property
    def n(self) -> int:
        return self.a_hat.shape[0]

    def prepare(self, *, width: int | None = None, dtype=np.float32) -> None:
        """Build the compiled-backend handle once (width/dtype unused)."""
        if self._sp is None:
            import scipy.sparse as sp

            m = self.a_hat
            self._sp = sp.csr_matrix((m.data, m.indices, m.indptr), shape=m.shape)

    def matmul(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``Â @ x``; when ``out`` is given the product is written into
        it in place (must not alias ``x``)."""
        x = x.astype(np.float32, copy=False)
        if self._sp is None:
            if out is None:
                return spmm(self.a_hat, x)
            self.prepare()
        c = np.asarray(self._sp @ x)
        if out is not None:
            if np.shares_memory(out, x):
                raise ValueError("out buffer must not alias the operand x")
            out[...] = c
            return out
        return c

    def memory_bytes(self) -> int:
        return self.a_hat.memory_bytes()


class CBMAdjacency:
    """CBM operator: Â kept factorised as CBM(DAD) (paper Section VI-G)."""

    supports_out = True

    def __init__(self, cbm: CBMMatrix):
        if cbm.variant is not Variant.DAD:
            raise ValueError(
                f"CBMAdjacency expects a DAD-variant matrix, got {cbm.variant.value}"
            )
        self.cbm = cbm

    @classmethod
    def from_graph(cls, a: CSRMatrix, *, alpha: int = 0) -> "CBMAdjacency":
        """Compress the normalised adjacency of a binary graph into CBM."""
        binary, diag = gcn_normalization(a)
        cbm, _ = build_cbm(binary, alpha=alpha, variant=Variant.DAD, diag=diag)
        return cls(cbm)

    @property
    def n(self) -> int:
        return self.cbm.n

    def prepare(self, *, width: int | None = None, dtype=np.float32) -> None:
        """Build (or refresh) the kernel plan; optionally warm the pool
        with output buffers for the given feature width."""
        plan = self.cbm.plan()
        if width is not None:
            plan.pool.warm((self.n, int(width)), dtype, count=1)

    def matmul(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        return self.cbm.matmul(x.astype(np.float32, copy=False), out=out)

    def memory_bytes(self) -> int:
        return self.cbm.memory_bytes()


def make_operator(
    a: CSRMatrix, kind: Literal["csr", "cbm", "guarded"], *, alpha: int = 0, **guard_kwargs
) -> AdjacencyOp:
    """Factory used by benchmarks and the serving layer: same graph,
    any representation.

    ``"guarded"`` wraps the CBM form in the reliability layer's
    validate-then-fallback kernel (extra keyword arguments are forwarded
    to :class:`~repro.reliability.guard.GuardedKernel`); the GNN forwards
    are representation-agnostic, so models run unchanged on any of the
    three.
    """
    if kind == "csr":
        return CSRAdjacency.from_graph(a)
    if kind == "cbm":
        return CBMAdjacency.from_graph(a, alpha=alpha)
    if kind == "guarded":
        # Local import: repro.reliability imports this module's protocol.
        from repro.reliability import GuardedAdjacency

        return GuardedAdjacency.from_graph(a, alpha=alpha, **guard_kwargs)
    raise ValueError(
        f"unknown adjacency kind {kind!r}; expected 'csr', 'cbm', or 'guarded'"
    )
