"""Training loop for the GCN (the paper's future-work training stage).

During training the normalised adjacency is multiplied both with
activations (forward) and with gradients (backward) — the paper's
Section II points at exactly this sequence of sparse-dense products.
Because Â is symmetric the CBM operator serves both directions unchanged,
so a CBM-compressed graph accelerates the whole loop.

Loss is softmax cross-entropy over a labelled node subset (transductive
node classification, the GCN paper's setting).  Gradients are derived by
hand; :func:`numeric_grad_check` in the test suite validates them.

Reliability: :func:`train_gcn` detects divergence (a non-finite loss
raises :class:`~repro.errors.ConvergenceError` carrying the last healthy
:class:`TrainCheckpoint`, with the model's parameters rolled back to it)
and supports lightweight epoch checkpointing with resume
(``checkpoint_every=`` / ``resume_from=``), so long runs survive both
numerical blow-ups and process restarts.
"""

from __future__ import annotations

import json
import zipfile
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import (
    CheckpointError,
    ConvergenceError,
    GNNError,
    IntegrityError,
    RecoveryError,
)
from repro.gnn.adjacency import AdjacencyOp, prepare_operator
from repro.gnn.gcn import GCN
from repro.gnn.layers import softmax
from repro.recovery.atomic import atomic_write
from repro.utils.validation import all_finite

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a hard import
    from repro.recovery.store import GenerationStore

#: Payload name a training checkpoint uses inside a generation store.
CHECKPOINT_PAYLOAD = "checkpoint.npz"


def cross_entropy(
    logits: np.ndarray, labels: np.ndarray, mask: np.ndarray | None = None
) -> tuple[float, np.ndarray]:
    """Mean softmax cross-entropy and its gradient w.r.t. the logits.

    ``mask`` selects the labelled nodes (boolean, length n); gradient rows
    of unlabelled nodes are zero, as in transductive training.
    """
    logits = np.asarray(logits, dtype=np.float64)
    n = logits.shape[0]
    labels = np.asarray(labels)
    if labels.shape[0] != n:
        raise GNNError(f"labels length {labels.shape[0]} != logits rows {n}")
    if mask is None:
        mask = np.ones(n, dtype=bool)
    count = int(mask.sum())
    if count == 0:
        raise GNNError("cross_entropy: empty mask")
    probs = softmax(logits, axis=1)
    eps = 1e-12
    loss = -np.log(probs[mask, labels[mask]] + eps).mean()
    grad = np.zeros_like(probs)
    grad[mask] = probs[mask]
    grad[mask, labels[mask]] -= 1.0
    grad /= count
    return float(loss), grad.astype(np.float32)


def accuracy(logits: np.ndarray, labels: np.ndarray, mask: np.ndarray | None = None) -> float:
    """Fraction of (masked) nodes whose argmax matches the label."""
    pred = np.argmax(logits, axis=1)
    if mask is None:
        return float((pred == labels).mean())
    if not mask.any():
        raise GNNError("accuracy: empty mask")
    return float((pred[mask] == labels[mask]).mean())


class Adam:
    """Standard Adam over a flat parameter list (updates in place)."""

    def __init__(self, params: list[np.ndarray], lr: float = 0.01, betas=(0.9, 0.999), eps: float = 1e-8):
        if lr <= 0:
            raise GNNError(f"learning rate must be positive, got {lr}")
        self.params = params
        self.lr = lr
        self.b1, self.b2 = betas
        self.eps = eps
        self.m = [np.zeros_like(p, dtype=np.float64) for p in params]
        self.v = [np.zeros_like(p, dtype=np.float64) for p in params]
        self.t = 0

    def step(self, grads: list[np.ndarray]) -> None:
        if len(grads) != len(self.params):
            raise GNNError(
                f"got {len(grads)} gradients for {len(self.params)} parameters"
            )
        self.t += 1
        for p, g, m, v in zip(self.params, grads, self.m, self.v, strict=True):
            m *= self.b1
            m += (1 - self.b1) * g
            v *= self.b2
            v += (1 - self.b2) * (g.astype(np.float64) ** 2)
            mhat = m / (1 - self.b1**self.t)
            vhat = v / (1 - self.b2**self.t)
            p -= (self.lr * mhat / (np.sqrt(vhat) + self.eps)).astype(p.dtype)


@dataclass
class TrainResult:
    """Loss/accuracy trajectory of one training run."""

    losses: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


@dataclass
class TrainCheckpoint:
    """Snapshot of one training run after a completed epoch.

    Holds copies of the model parameters and the full Adam state, so
    restoring reproduces the run exactly from the next epoch onward.
    """

    epoch: int  # number of completed epochs
    params: list[np.ndarray]
    adam_m: list[np.ndarray]
    adam_v: list[np.ndarray]
    adam_t: int
    losses: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)

    @classmethod
    def capture(cls, model: GCN, opt: Adam, result: TrainResult) -> "TrainCheckpoint":
        return cls(
            epoch=len(result.losses),
            params=[p.copy() for p in model.parameters()],
            adam_m=[m.copy() for m in opt.m],
            adam_v=[v.copy() for v in opt.v],
            adam_t=opt.t,
            losses=list(result.losses),
            train_accuracy=list(result.train_accuracy),
            val_accuracy=list(result.val_accuracy),
        )

    def restore(self, model: GCN, opt: Adam | None = None) -> None:
        """Copy the snapshot back into ``model`` (and ``opt``) in place."""
        params = model.parameters()
        if len(params) != len(self.params):
            raise CheckpointError(
                f"checkpoint has {len(self.params)} parameter arrays, "
                f"model has {len(params)}"
            )
        for p, saved in zip(params, self.params, strict=True):
            if p.shape != saved.shape:
                raise CheckpointError(
                    f"checkpoint parameter shape {saved.shape} does not match "
                    f"model parameter shape {p.shape}"
                )
            p[...] = saved
        if opt is not None:
            for m, saved in zip(opt.m, self.adam_m, strict=True):
                m[...] = saved
            for v, saved in zip(opt.v, self.adam_v, strict=True):
                v[...] = saved
            opt.t = self.adam_t


def save_checkpoint(path, ck: TrainCheckpoint) -> None:
    """Persist a :class:`TrainCheckpoint` as a compressed ``.npz``.

    The file lands via :func:`repro.recovery.atomic_write`: a crash
    mid-save leaves the previous checkpoint intact rather than a torn
    archive that would poison the next resume.
    """
    meta = {
        "epoch": ck.epoch,
        "adam_t": ck.adam_t,
        "n_params": len(ck.params),
        "losses": ck.losses,
        "train_accuracy": ck.train_accuracy,
        "val_accuracy": ck.val_accuracy,
    }
    arrays = {"meta": np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)}
    for i, (p, m, v) in enumerate(zip(ck.params, ck.adam_m, ck.adam_v, strict=True)):
        arrays[f"param_{i}"] = p
        arrays[f"adam_m_{i}"] = m
        arrays[f"adam_v_{i}"] = v
    with atomic_write(path, mode="wb") as fh:
        np.savez_compressed(fh, **arrays)


def _validate_checkpoint(ck: TrainCheckpoint, model: GCN, path) -> None:
    """Check a loaded checkpoint against the model's parameter signature.

    Raises :class:`~repro.errors.IntegrityError` naming the first
    mismatching array — *before* anything is restored — instead of the
    deep numpy broadcast error a shape-swapped checkpoint used to raise
    mid-``restore``.
    """
    expected = model.parameters()
    if len(ck.params) != len(expected):
        raise IntegrityError(
            f"checkpoint {path} holds {len(ck.params)} parameter arrays, "
            f"model expects {len(expected)}"
        )
    for i, (saved, p) in enumerate(zip(ck.params, expected, strict=True)):
        if saved.shape != p.shape:
            raise IntegrityError(
                f"checkpoint {path}: param_{i} has shape {saved.shape}, "
                f"model parameter {i} expects {p.shape}"
            )
        if not np.can_cast(saved.dtype, p.dtype, casting="same_kind"):
            raise IntegrityError(
                f"checkpoint {path}: param_{i} has dtype {saved.dtype}, "
                f"model parameter {i} expects {p.dtype}"
            )
    for kind, arrays in (("adam_m", ck.adam_m), ("adam_v", ck.adam_v)):
        for i, (saved, p) in enumerate(zip(arrays, expected, strict=True)):
            if saved.shape != p.shape:
                raise IntegrityError(
                    f"checkpoint {path}: {kind}_{i} has shape {saved.shape}, "
                    f"optimiser state for parameter {i} expects {p.shape}"
                )


def load_checkpoint(path, *, model: GCN | None = None) -> TrainCheckpoint:
    """Load a checkpoint written by :func:`save_checkpoint`.

    A physically torn/truncated archive raises
    :class:`~repro.errors.IntegrityError`; other unreadable states raise
    :class:`~repro.errors.CheckpointError`.  With ``model`` given, every
    array's shape/dtype is validated against the model's parameter
    signature first (also :class:`~repro.errors.IntegrityError`), so a
    mismatched checkpoint fails with a clear message instead of a deep
    numpy broadcast error during restore.
    """
    try:
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
            n = int(meta["n_params"])
            params = [archive[f"param_{i}"] for i in range(n)]
            adam_m = [archive[f"adam_m_{i}"] for i in range(n)]
            adam_v = [archive[f"adam_v_{i}"] for i in range(n)]
    except (zipfile.BadZipFile, EOFError, zlib.error) as exc:
        raise IntegrityError(
            f"training checkpoint {path} is truncated or torn: {exc}"
        ) from exc
    except (KeyError, ValueError, OSError) as exc:
        raise CheckpointError(f"cannot load training checkpoint {path}: {exc}") from exc
    ck = TrainCheckpoint(
        epoch=int(meta["epoch"]),
        params=params,
        adam_m=adam_m,
        adam_v=adam_v,
        adam_t=int(meta["adam_t"]),
        losses=list(meta["losses"]),
        train_accuracy=list(meta["train_accuracy"]),
        val_accuracy=list(meta["val_accuracy"]),
    )
    if model is not None:
        _validate_checkpoint(ck, model, path)
    return ck


def save_checkpoint_generation(store: "GenerationStore", ck: TrainCheckpoint):
    """Commit one checkpoint as a durable generation; returns it."""
    with store.begin(meta={"kind": "train-checkpoint", "epoch": ck.epoch}) as txn:
        save_checkpoint(txn.path(CHECKPOINT_PAYLOAD, kind="checkpoint"), ck)
    return txn.generation


def load_latest_checkpoint(
    store: "GenerationStore", *, model: GCN | None = None
) -> TrainCheckpoint | None:
    """Newest committed checkpoint a killed run left behind, or None.

    Walks committed generations newest-first, skipping any whose payload
    fails integrity/signature validation — a half-corrupted store still
    resumes from the best surviving epoch.
    """
    for gen in reversed(store.generations()):
        try:
            return load_checkpoint(gen.file(CHECKPOINT_PAYLOAD), model=model)
        except (IntegrityError, CheckpointError, RecoveryError):
            continue
    return None


def train_gcn(
    model: GCN,
    adj: AdjacencyOp,
    x: np.ndarray,
    labels: np.ndarray,
    *,
    train_mask: np.ndarray,
    val_mask: np.ndarray | None = None,
    epochs: int = 100,
    lr: float = 0.01,
    divergence_check: bool = True,
    checkpoint_every: int | None = None,
    checkpoint_path=None,
    checkpoint_store: "GenerationStore | None" = None,
    resume_from: "TrainCheckpoint | str | None" = None,
) -> TrainResult:
    """Full-batch transductive training of a GCN with Adam.

    The model must have been constructed with ``requires_grad=True``.
    Every epoch runs one forward pass, one hand-derived backward pass
    (each involving products with Â), and one Adam step.

    Reliability knobs
    -----------------
    divergence_check:
        When the epoch loss goes non-finite, roll the model back to the
        last healthy epoch and raise
        :class:`~repro.errors.ConvergenceError` whose ``last_good``
        attribute is that :class:`TrainCheckpoint` (None if the first
        epoch already diverged).
    checkpoint_every / checkpoint_path:
        Write a resumable checkpoint to ``checkpoint_path`` every k
        completed epochs (and after the final one).
    checkpoint_every / checkpoint_store:
        With a :class:`~repro.recovery.GenerationStore` instead of a
        path, each periodic checkpoint is *committed* as a durable
        generation (fsynced payload + manifest commit marker) — a run
        killed at any instant, even mid-write, resumes from the last
        committed epoch.
    resume_from:
        A :class:`TrainCheckpoint` or a path to one; training restores
        parameters, Adam state, and history, then continues until
        ``epochs`` *total* epochs are done.  The string ``"latest"``
        (requires ``checkpoint_store``) resumes from the newest
        committed checkpoint generation — or starts fresh when the
        store is empty, so a supervisor can always relaunch the same
        command after a crash.
    """
    if not model.requires_grad:
        raise GNNError("train_gcn requires a model built with requires_grad=True")
    if checkpoint_every is not None:
        if checkpoint_every <= 0:
            raise CheckpointError(f"checkpoint_every must be positive, got {checkpoint_every}")
        if checkpoint_path is None and checkpoint_store is None:
            raise CheckpointError(
                "checkpoint_every requires checkpoint_path or checkpoint_store"
            )
    if isinstance(resume_from, str) and resume_from == "latest":
        if checkpoint_store is None:
            raise CheckpointError('resume_from="latest" requires checkpoint_store')
        resume_from = load_latest_checkpoint(checkpoint_store, model=model)
    opt = Adam(model.parameters(), lr=lr)
    out = TrainResult()
    start_epoch = 0
    last_good: TrainCheckpoint | None = None
    if resume_from is not None:
        ck = (
            resume_from
            if isinstance(resume_from, TrainCheckpoint)
            else load_checkpoint(resume_from, model=model)
        )
        ck.restore(model, opt)
        out.losses = list(ck.losses)
        out.train_accuracy = list(ck.train_accuracy)
        out.val_accuracy = list(ck.val_accuracy)
        start_epoch = ck.epoch
        last_good = ck  # a resumed run always has a rollback target
    # One plan serves every epoch: Â is symmetric, so forward activations
    # and backward gradients multiply through the same kernel plan.
    prepare_operator(adj, width=int(np.asarray(x).shape[1]))
    for epoch in range(start_epoch, epochs):
        logits = model.forward(adj, x, training=True)
        loss, grad = cross_entropy(logits, labels, train_mask)
        if divergence_check and not np.isfinite(loss):
            if last_good is not None:
                last_good.restore(model, opt)
            err = ConvergenceError(
                f"training diverged at epoch {epoch} (loss={loss!r}); model "
                + ("rolled back to epoch "
                   f"{last_good.epoch}" if last_good is not None else "has no healthy state")
            )
            err.last_good = last_good
            raise err
        model.backward(adj, grad)
        opt.step(model.gradients())
        out.losses.append(loss)
        out.train_accuracy.append(accuracy(logits, labels, train_mask))
        if val_mask is not None:
            out.val_accuracy.append(accuracy(logits, labels, val_mask))
        if divergence_check:
            # Parameters can blow up on the step *after* a finite loss
            # (the loss is computed from pre-step weights), so the
            # snapshot is only promoted to last-good while every
            # parameter is still finite — a rollback target is never
            # itself poisoned.
            if all(all_finite(p) for p in model.parameters()):
                last_good = TrainCheckpoint.capture(model, opt, out)
            else:
                if last_good is not None:
                    last_good.restore(model, opt)
                err = ConvergenceError(
                    f"training diverged at epoch {epoch} (non-finite parameters "
                    "after the optimiser step); model "
                    + (f"rolled back to epoch {last_good.epoch}"
                       if last_good is not None else "has no healthy state")
                )
                err.last_good = last_good
                raise err
        done = epoch + 1
        if checkpoint_every is not None and (
            done % checkpoint_every == 0 or done == epochs
        ):
            snapshot = TrainCheckpoint.capture(model, opt, out)
            if checkpoint_store is not None:
                save_checkpoint_generation(checkpoint_store, snapshot)
            if checkpoint_path is not None:
                save_checkpoint(checkpoint_path, snapshot)
    return out
