"""Training loop for the GCN (the paper's future-work training stage).

During training the normalised adjacency is multiplied both with
activations (forward) and with gradients (backward) — the paper's
Section II points at exactly this sequence of sparse-dense products.
Because Â is symmetric the CBM operator serves both directions unchanged,
so a CBM-compressed graph accelerates the whole loop.

Loss is softmax cross-entropy over a labelled node subset (transductive
node classification, the GCN paper's setting).  Gradients are derived by
hand; :func:`numeric_grad_check` in the test suite validates them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GNNError
from repro.gnn.adjacency import AdjacencyOp, prepare_operator
from repro.gnn.gcn import GCN
from repro.gnn.layers import softmax


def cross_entropy(
    logits: np.ndarray, labels: np.ndarray, mask: np.ndarray | None = None
) -> tuple[float, np.ndarray]:
    """Mean softmax cross-entropy and its gradient w.r.t. the logits.

    ``mask`` selects the labelled nodes (boolean, length n); gradient rows
    of unlabelled nodes are zero, as in transductive training.
    """
    logits = np.asarray(logits, dtype=np.float64)
    n = logits.shape[0]
    labels = np.asarray(labels)
    if labels.shape[0] != n:
        raise GNNError(f"labels length {labels.shape[0]} != logits rows {n}")
    if mask is None:
        mask = np.ones(n, dtype=bool)
    count = int(mask.sum())
    if count == 0:
        raise GNNError("cross_entropy: empty mask")
    probs = softmax(logits, axis=1)
    eps = 1e-12
    loss = -np.log(probs[mask, labels[mask]] + eps).mean()
    grad = np.zeros_like(probs)
    grad[mask] = probs[mask]
    grad[mask, labels[mask]] -= 1.0
    grad /= count
    return float(loss), grad.astype(np.float32)


def accuracy(logits: np.ndarray, labels: np.ndarray, mask: np.ndarray | None = None) -> float:
    """Fraction of (masked) nodes whose argmax matches the label."""
    pred = np.argmax(logits, axis=1)
    if mask is None:
        return float((pred == labels).mean())
    if not mask.any():
        raise GNNError("accuracy: empty mask")
    return float((pred[mask] == labels[mask]).mean())


class Adam:
    """Standard Adam over a flat parameter list (updates in place)."""

    def __init__(self, params: list[np.ndarray], lr: float = 0.01, betas=(0.9, 0.999), eps: float = 1e-8):
        if lr <= 0:
            raise GNNError(f"learning rate must be positive, got {lr}")
        self.params = params
        self.lr = lr
        self.b1, self.b2 = betas
        self.eps = eps
        self.m = [np.zeros_like(p, dtype=np.float64) for p in params]
        self.v = [np.zeros_like(p, dtype=np.float64) for p in params]
        self.t = 0

    def step(self, grads: list[np.ndarray]) -> None:
        if len(grads) != len(self.params):
            raise GNNError(
                f"got {len(grads)} gradients for {len(self.params)} parameters"
            )
        self.t += 1
        for p, g, m, v in zip(self.params, grads, self.m, self.v):
            m *= self.b1
            m += (1 - self.b1) * g
            v *= self.b2
            v += (1 - self.b2) * (g.astype(np.float64) ** 2)
            mhat = m / (1 - self.b1**self.t)
            vhat = v / (1 - self.b2**self.t)
            p -= (self.lr * mhat / (np.sqrt(vhat) + self.eps)).astype(p.dtype)


@dataclass
class TrainResult:
    """Loss/accuracy trajectory of one training run."""

    losses: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def train_gcn(
    model: GCN,
    adj: AdjacencyOp,
    x: np.ndarray,
    labels: np.ndarray,
    *,
    train_mask: np.ndarray,
    val_mask: np.ndarray | None = None,
    epochs: int = 100,
    lr: float = 0.01,
) -> TrainResult:
    """Full-batch transductive training of a GCN with Adam.

    The model must have been constructed with ``requires_grad=True``.
    Every epoch runs one forward pass, one hand-derived backward pass
    (each involving products with Â), and one Adam step.
    """
    if not model.requires_grad:
        raise GNNError("train_gcn requires a model built with requires_grad=True")
    opt = Adam(model.parameters(), lr=lr)
    # One plan serves every epoch: Â is symmetric, so forward activations
    # and backward gradients multiply through the same kernel plan.
    prepare_operator(adj, width=int(np.asarray(x).shape[1]))
    out = TrainResult()
    for _ in range(epochs):
        logits = model.forward(adj, x, training=True)
        loss, grad = cross_entropy(logits, labels, train_mask)
        model.backward(adj, grad)
        opt.step(model.gradients())
        out.losses.append(loss)
        out.train_accuracy.append(accuracy(logits, labels, train_mask))
        if val_mask is not None:
            out.val_accuracy.append(accuracy(logits, labels, val_mask))
    return out
