"""Simple Graph Convolution (SGC, Wu et al. 2019) — an SpMM-dominated GNN.

SGC removes the nonlinearities of a k-layer GCN: ``Z = Âᵏ X W``.  The
pre-computation ``Âᵏ X`` is k back-to-back sparse-dense products with the
*same* Â — the best-case workload for the CBM format, since the one-off
compression cost amortises over k products (and over every retraining of
W).  Included as the showcase extension of the paper's "other GNN
architectures" future work.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GNNError
from repro.gnn.adjacency import AdjacencyOp, prepare_operator
from repro.gnn.layers import Linear


def propagate(adj: AdjacencyOp, x: np.ndarray, k: int) -> np.ndarray:
    """``Âᵏ @ x`` by repeated application of the adjacency operator.

    The k back-to-back products reuse one kernel plan, and operators
    advertising ``supports_out`` ping-pong between two preallocated
    buffers instead of allocating one ``n × p`` result per hop.
    """
    if k < 0:
        raise GNNError(f"propagation depth k must be >= 0, got {k}")
    h = np.asarray(x, dtype=np.float32)
    if h.shape[0] != adj.n:
        raise GNNError(
            f"feature matrix has {h.shape[0]} rows but the graph has {adj.n} nodes"
        )
    if k == 0:
        return h
    prepare_operator(adj, width=h.shape[1], dtype=h.dtype)
    if getattr(adj, "supports_out", False):
        # Double buffering: the input x is never written; each hop writes
        # into the buffer the previous hop is not occupying.
        bufs = (np.empty_like(h), np.empty_like(h) if k > 1 else None)
        for i in range(k):
            h = adj.matmul(h, out=bufs[i % 2])
        return h
    for _ in range(k):
        h = adj.matmul(h)
    return h


class SGC:
    """k-hop simple graph convolution with a single linear readout.

    ``precompute`` caches ``Âᵏ X`` so repeated forward calls (e.g. during
    the linear model's training) skip the sparse products entirely —
    mirroring how SGC is deployed in practice.
    """

    def __init__(self, in_features: int, out_features: int, *, k: int = 2, seed=None):
        if k < 1:
            raise GNNError(f"SGC needs k >= 1, got {k}")
        self.k = k
        self.linear = Linear(in_features, out_features, seed=seed)
        self._cached: np.ndarray | None = None

    def precompute(self, adj: AdjacencyOp, x: np.ndarray) -> np.ndarray:
        """Run and cache the k-hop propagation; returns ``Âᵏ X``."""
        self._cached = propagate(adj, x, self.k)
        return self._cached

    def forward(
        self, adj: AdjacencyOp | None = None, x: np.ndarray | None = None
    ) -> np.ndarray:
        """Logits from the cached propagation, or from (adj, x) directly."""
        if self._cached is None:
            if adj is None or x is None:
                raise GNNError("forward needs precompute() first, or (adj, x)")
            self.precompute(adj, x)
        return self.linear(self._cached)

    __call__ = forward
