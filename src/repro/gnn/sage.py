"""GraphSAGE (Hamilton et al.) with the mean aggregator — paper Section II.

The mean aggregator is ``D⁻¹ A h`` — a row-scaled binary product, i.e. the
"DA" factorisation the CBM format supports (the paper notes its format
extends to ``D₁ A D₂``; row-only scaling is the special case D₂ = I, and
we realise it by scaling the rows of the plain ``A @ h`` product).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GNNError
from repro.gnn.adjacency import AdjacencyOp, prepare_operator
from repro.gnn.layers import Linear, relu


class SAGELayer:
    """``h' = act(W_self h + W_neigh · mean_{u∈N(v)} h_u)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        activation: bool = True,
        seed=None,
    ):
        self.w_self = Linear(in_features, out_features, seed=seed)
        self.w_neigh = Linear(
            in_features, out_features, bias=False, seed=None if seed is None else seed + 1
        )
        self.activation = activation

    def forward(
        self, adj: AdjacencyOp, h: np.ndarray, inv_degree: np.ndarray
    ) -> np.ndarray:
        h = np.asarray(h, dtype=np.float32)
        mean_agg = adj.matmul(h) * inv_degree[:, None]
        z = self.w_self(h) + self.w_neigh(mean_agg)
        return relu(z) if self.activation else z


class GraphSAGE:
    """Stack of mean-aggregator SAGE layers.

    ``inv_degree`` is precomputed once from the adjacency operator's
    degree vector (isolated nodes get 0, i.e. an empty mean).
    """

    def __init__(self, dims: list[int], *, seed: int = 0):
        if len(dims) < 2:
            raise GNNError(f"GraphSAGE needs at least [in, out] dims, got {dims}")
        self.layers = [
            SAGELayer(
                dims[i],
                dims[i + 1],
                activation=(i < len(dims) - 2),
                seed=seed + 10 * i,
            )
            for i in range(len(dims) - 1)
        ]

    def forward(
        self, adj: AdjacencyOp, x: np.ndarray, degrees: np.ndarray
    ) -> np.ndarray:
        h = np.asarray(x, dtype=np.float32)
        if h.shape[0] != adj.n:
            raise GNNError(
                f"feature matrix has {h.shape[0]} rows but the graph has {adj.n} nodes"
            )
        deg = np.asarray(degrees, dtype=np.float32)
        if deg.shape != (adj.n,):
            raise GNNError(f"degrees must have shape ({adj.n},), got {deg.shape}")
        inv_degree = np.zeros_like(deg)
        nz = deg > 0
        inv_degree[nz] = 1.0 / deg[nz]
        prepare_operator(adj, width=h.shape[1], dtype=h.dtype)
        for layer in self.layers:
            h = layer.forward(adj, h, inv_degree)
        return h

    __call__ = forward
