"""Minimal NumPy GNN stack (the paper's PyTorch substitute).

Implements exactly what the paper's evaluation needs — and the
architectures it cites:

* :mod:`repro.gnn.layers` — dense linear layers, activations, dropout.
* :mod:`repro.gnn.adjacency` — the pluggable adjacency operator: the same
  GCN runs on a CSR baseline or a CBM-compressed Â without code changes.
* :mod:`repro.gnn.gcn` — the two-layer GCN of Eq. 1 (inference and
  manual-backprop training).
* :mod:`repro.gnn.gin`, :mod:`repro.gnn.sage` — GIN and GraphSAGE
  (paper Section II / future work).
* :mod:`repro.gnn.data` — synthetic node-classification tasks.
"""

from repro.gnn.adjacency import AdjacencyOp, CBMAdjacency, CSRAdjacency, make_operator
from repro.gnn.appnp import APPNP
from repro.gnn.data import synthetic_node_classification
from repro.gnn.gcn import GCN, GCNLayer
from repro.gnn.gin import GIN, GINLayer
from repro.gnn.layers import Dropout, Linear, relu, softmax
from repro.gnn.sage import GraphSAGE, SAGELayer
from repro.gnn.sampling import induced_subgraph, k_hop_neighborhood, minibatch_inference
from repro.gnn.sgc import SGC, propagate
from repro.gnn.train import Adam, accuracy, cross_entropy, train_gcn

__all__ = [
    "AdjacencyOp",
    "CBMAdjacency",
    "CSRAdjacency",
    "make_operator",
    "Dropout",
    "Linear",
    "relu",
    "softmax",
    "GCN",
    "GCNLayer",
    "GIN",
    "GINLayer",
    "GraphSAGE",
    "SAGELayer",
    "SGC",
    "propagate",
    "APPNP",
    "induced_subgraph",
    "k_hop_neighborhood",
    "minibatch_inference",
    "Adam",
    "accuracy",
    "cross_entropy",
    "train_gcn",
    "synthetic_node_classification",
]
