"""Subgraph extraction and neighbour-sampled mini-batch inference.

Full-batch GNN inference multiplies Â with the entire feature matrix; at
deployment, predictions are often needed for a *batch* of target nodes
only.  The standard technique (GraphSAGE) materialises each batch's k-hop
receptive field as an induced subgraph and runs the model on it.  The
receptive field is itself a binary adjacency matrix, so the CBM format
applies to it unchanged — these helpers close that loop:

* :func:`k_hop_neighborhood` — BFS receptive field with optional fan-out
  sampling (caps neighbours expanded per node, the SAGE trick);
* :func:`induced_subgraph` — adjacency of a node subset, plus the mapping;
* :func:`minibatch_inference` — run any two-input model batch-by-batch
  and reassemble predictions for the target nodes.  With ``fanout=None``
  and the default one-hop *halo* this is exact (matches full-batch): the
  halo ring guarantees every node within ``hops`` of a target keeps its
  full neighbourhood inside the subgraph, so GCN-style degree
  normalisation is computed on the true degrees — without the halo,
  boundary nodes would be re-normalised by their truncated degrees.
"""

from __future__ import annotations

from typing import Callable, Literal

import numpy as np

from repro.errors import GNNError
from repro.gnn.adjacency import make_operator
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import as_rng


def k_hop_neighborhood(
    a: CSRMatrix,
    seeds: np.ndarray,
    hops: int,
    *,
    fanout: int | None = None,
    seed=None,
) -> np.ndarray:
    """Nodes reachable from ``seeds`` within ``hops`` steps (seeds included).

    ``fanout`` caps how many neighbours each frontier node expands
    (uniform sample without replacement) — the GraphSAGE estimator; None
    expands everything (exact receptive field).  Returns a sorted array.
    """
    if hops < 0:
        raise GNNError(f"hops must be >= 0, got {hops}")
    seeds = np.asarray(seeds, dtype=np.int64).ravel()
    if len(seeds) and (seeds.min() < 0 or seeds.max() >= a.shape[0]):
        raise GNNError(f"seed ids out of range for {a.shape[0]} nodes")
    rng = as_rng(seed)
    visited = set(int(s) for s in seeds)
    frontier = list(visited)
    for _ in range(hops):
        nxt = []
        for u in frontier:
            nbrs = a.row(u)
            if fanout is not None and len(nbrs) > fanout:
                nbrs = rng.choice(nbrs, size=fanout, replace=False)
            for v in nbrs:
                v = int(v)
                if v not in visited:
                    visited.add(v)
                    nxt.append(v)
        frontier = nxt
        if not frontier:
            break
    return np.asarray(sorted(visited), dtype=np.int64)


def induced_subgraph(a: CSRMatrix, nodes: np.ndarray) -> tuple[CSRMatrix, np.ndarray]:
    """Adjacency among ``nodes`` only; returns (subgraph, global ids).

    ``nodes`` is deduplicated and sorted; row/column k of the result is
    global node ``ids[k]``.
    """
    ids = np.unique(np.asarray(nodes, dtype=np.int64).ravel())
    if len(ids) and (ids.min() < 0 or ids.max() >= a.shape[0]):
        raise GNNError(f"node ids out of range for {a.shape[0]} nodes")
    lookup = {int(g): k for k, g in enumerate(ids)}
    rows = []
    cols = []
    for k, g in enumerate(ids):
        for v in a.row(int(g)):
            j = lookup.get(int(v))
            if j is not None:
                rows.append(k)
                cols.append(j)
    from repro.sparse.coo import COOMatrix

    coo = COOMatrix(
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.ones(len(rows), dtype=np.float32),
        (len(ids), len(ids)),
    )
    return coo.tocsr(), ids


def minibatch_inference(
    a: CSRMatrix,
    x: np.ndarray,
    model: Callable,
    targets: np.ndarray,
    *,
    hops: int,
    batch_size: int = 256,
    kind: Literal["csr", "cbm"] = "cbm",
    alpha: int = 0,
    fanout: int | None = None,
    halo: bool = True,
    out_dim: int | None = None,
    seed=None,
) -> np.ndarray:
    """Predict for ``targets`` batch-by-batch on induced k-hop subgraphs.

    ``model(op, features)`` must accept an adjacency operator and a dense
    feature matrix and return per-node outputs (e.g. a
    :class:`~repro.gnn.gcn.GCN` instance).  Each batch compresses its own
    receptive field into the requested format — small subgraphs compress
    fast, which is how CBM serves the deployment setting despite its
    one-off construction cost.

    ``halo=True`` (default) extends the field one extra hop so degree
    normalisation inside the subgraph matches the full graph's — exact
    predictions when ``fanout`` is None (module docstring).  Turn it off
    for the cheaper GraphSAGE-style approximation.
    """
    targets = np.asarray(targets, dtype=np.int64).ravel()
    x = np.asarray(x, dtype=np.float32)
    if x.shape[0] != a.shape[0]:
        raise GNNError(f"features have {x.shape[0]} rows for {a.shape[0]} nodes")
    rng = as_rng(seed)
    outputs: dict[int, np.ndarray] = {}
    field_hops = hops + 1 if halo else hops
    for lo in range(0, len(targets), batch_size):
        batch = targets[lo : lo + batch_size]
        field = k_hop_neighborhood(a, batch, field_hops, fanout=fanout, seed=rng)
        sub, ids = induced_subgraph(a, field)
        op = make_operator(sub, kind, alpha=alpha)
        preds = model(op, x[ids])
        pos = {int(g): k for k, g in enumerate(ids)}
        for t in batch:
            outputs[int(t)] = preds[pos[int(t)]]
    dim = out_dim if out_dim is not None else next(iter(outputs.values())).shape[-1]
    result = np.empty((len(targets), dim), dtype=np.float32)
    for i, t in enumerate(targets):
        result[i] = outputs[int(t)]
    return result
