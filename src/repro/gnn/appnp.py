"""APPNP (Klicpera et al. 2019): predict-then-propagate with PageRank.

APPNP separates prediction from propagation: an MLP produces per-node
logits ``H``, then approximate personalised PageRank mixes them over the
graph::

    Z⁰ = H;   Zᵏ⁺¹ = (1 − teleport) · Â Zᵏ + teleport · H

Each power iteration is one ``Â @ Z`` product — k more chances for the
CBM format to amortise its compression, on top of GCN/GIN/SGC.  The
iteration is a contraction (teleport > 0), so it converges to the PPR
limit; :meth:`APPNP.propagate` exposes the finite-k variant the original
paper uses.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GNNError
from repro.gnn.adjacency import AdjacencyOp, prepare_operator
from repro.gnn.layers import Linear, relu


class APPNP:
    """Two-layer MLP predictor + k-step PPR propagation."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        out_features: int,
        *,
        k: int = 10,
        teleport: float = 0.1,
        seed=None,
    ):
        if k < 1:
            raise GNNError(f"APPNP needs k >= 1 propagation steps, got {k}")
        if not 0.0 < teleport <= 1.0:
            raise GNNError(f"teleport must be in (0, 1], got {teleport}")
        self.k = k
        self.teleport = float(teleport)
        self.mlp1 = Linear(in_features, hidden, seed=seed)
        self.mlp2 = Linear(hidden, out_features, seed=None if seed is None else seed + 1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """The graph-free MLP head."""
        return self.mlp2(relu(self.mlp1(np.asarray(x, dtype=np.float32))))

    def propagate(self, adj: AdjacencyOp, h: np.ndarray) -> np.ndarray:
        """k steps of personalised-PageRank mixing of the logits ``h``.

        All k power iterations share one kernel plan; with an operator
        that supports ``out=`` the iteration double-buffers and the
        teleport term is precomputed once, so the loop allocates nothing.
        """
        h = np.asarray(h, dtype=np.float32)
        if h.shape[0] != adj.n:
            raise GNNError(
                f"logits have {h.shape[0]} rows but the graph has {adj.n} nodes"
            )
        prepare_operator(adj, width=h.shape[1], dtype=h.dtype)
        z = h
        if getattr(adj, "supports_out", False):
            teleport_h = self.teleport * h  # computed once, reused every step
            bufs = (np.empty_like(h), np.empty_like(h) if self.k > 1 else None)
            for i in range(self.k):
                az = adj.matmul(z, out=bufs[i % 2])
                az *= 1.0 - self.teleport
                az += teleport_h
                z = az
            return z
        for _ in range(self.k):
            z = (1.0 - self.teleport) * adj.matmul(z) + self.teleport * h
        return z

    def forward(self, adj: AdjacencyOp, x: np.ndarray) -> np.ndarray:
        return self.propagate(adj, self.predict(x))

    __call__ = forward
