"""Dense building blocks: linear layers, activations, dropout.

Everything runs in float32 on NumPy, whose GEMM goes through the same
class of BLAS backend PyTorch CPU uses — so the dense part of the GCN
pipeline has the same performance character as the paper's.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GNNError
from repro.utils.rng import as_rng


def relu(x: np.ndarray) -> np.ndarray:
    """Element-wise ReLU (the sigma of the paper's Eq. 1)."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of ReLU evaluated at the pre-activation ``x``."""
    return (x > 0.0).astype(x.dtype)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


class Linear:
    """Fully connected layer ``y = x @ W + b`` with He/Glorot init.

    Weights are float32.  The layer stores its last input when
    ``requires_grad`` so :meth:`backward` can produce parameter gradients
    for the manual-backprop training loop.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        init: str = "glorot",
        seed=None,
        requires_grad: bool = False,
    ):
        if in_features <= 0 or out_features <= 0:
            raise GNNError(
                f"Linear dimensions must be positive, got {in_features}x{out_features}"
            )
        rng = as_rng(seed)
        if init == "glorot":
            limit = np.sqrt(6.0 / (in_features + out_features))
            w = rng.uniform(-limit, limit, size=(in_features, out_features))
        elif init == "he":
            w = rng.normal(0.0, np.sqrt(2.0 / in_features), size=(in_features, out_features))
        else:
            raise GNNError(f"unknown init {init!r}; expected 'glorot' or 'he'")
        self.weight = w.astype(np.float32)
        self.bias = np.zeros(out_features, dtype=np.float32) if bias else None
        self.requires_grad = requires_grad
        self._last_input: np.ndarray | None = None
        self.grad_weight: np.ndarray | None = None
        self.grad_bias: np.ndarray | None = None

    @property
    def shape(self) -> tuple[int, int]:
        return self.weight.shape

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.shape[-1] != self.weight.shape[0]:
            raise GNNError(
                f"Linear expected input dim {self.weight.shape[0]}, got {x.shape[-1]}"
            )
        if self.requires_grad:
            self._last_input = x
        y = x @ self.weight
        if self.bias is not None:
            y += self.bias
        return y

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return gradient w.r.t. the input."""
        if self._last_input is None:
            raise GNNError("backward called before forward (requires_grad must be set)")
        self.grad_weight = self._last_input.T @ grad_out
        if self.bias is not None:
            self.grad_bias = grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    def parameters(self) -> list[np.ndarray]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])

    def gradients(self) -> list[np.ndarray]:
        grads = [self.grad_weight]
        if self.bias is not None:
            grads.append(self.grad_bias)
        if any(g is None for g in grads):
            raise GNNError("gradients requested before backward")
        return grads  # type: ignore[return-value]


class Dropout:
    """Inverted dropout; identity when ``training`` is False."""

    def __init__(self, p: float = 0.5, *, seed=None):
        if not 0.0 <= p < 1.0:
            raise GNNError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = as_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        if not training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * self._mask

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
