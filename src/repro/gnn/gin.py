"""Graph Isomorphism Network (Xu et al.) — paper Section II.

A GIN layer computes ``h' = MLP((1 + eps) · h + A · h)`` where ``A`` is
the *raw binary* adjacency (no normalisation) — which is precisely the
``AX`` product the CBM format accelerates.  The adjacency operator is
pluggable exactly as in :mod:`repro.gnn.gcn`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GNNError
from repro.gnn.adjacency import AdjacencyOp, prepare_operator
from repro.gnn.layers import Linear, relu


class GINLayer:
    """One GIN convolution with a two-layer MLP."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        out_features: int,
        *,
        eps: float = 0.0,
        seed=None,
    ):
        self.eps = float(eps)
        self.mlp1 = Linear(in_features, hidden, seed=seed)
        self.mlp2 = Linear(hidden, out_features, seed=None if seed is None else seed + 1)

    def forward(self, adj: AdjacencyOp, h: np.ndarray) -> np.ndarray:
        h = np.asarray(h, dtype=np.float32)
        agg = adj.matmul(h) + (1.0 + self.eps) * h
        return self.mlp2(relu(self.mlp1(agg)))


class GIN:
    """Stack of GIN layers with a final linear readout."""

    def __init__(self, dims: list[int], *, eps: float = 0.0, seed: int = 0):
        if len(dims) < 2:
            raise GNNError(f"GIN needs at least [in, out] dims, got {dims}")
        self.layers = [
            GINLayer(dims[i], dims[i + 1], dims[i + 1], eps=eps, seed=seed + 10 * i)
            for i in range(len(dims) - 1)
        ]

    def forward(self, adj: AdjacencyOp, x: np.ndarray) -> np.ndarray:
        h = np.asarray(x, dtype=np.float32)
        if h.shape[0] != adj.n:
            raise GNNError(
                f"feature matrix has {h.shape[0]} rows but the graph has {adj.n} nodes"
            )
        prepare_operator(adj, width=h.shape[1], dtype=h.dtype)
        for i, layer in enumerate(self.layers):
            h = layer.forward(adj, h)
            if i < len(self.layers) - 1:
                h = relu(h)
        return h

    __call__ = forward
