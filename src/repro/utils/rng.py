"""Seeded random number generation helpers.

All stochastic code in the library takes a ``seed`` argument that may be an
``int``, ``None`` (non-deterministic), or an existing
:class:`numpy.random.Generator`.  Centralising the coercion here guarantees
that benchmarks and tests are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | None | np.random.Generator"


def as_rng(seed: "int | None | np.random.Generator" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing an existing generator returns it unchanged, so callers can
    thread one RNG through a pipeline without re-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: "int | None | np.random.Generator", n: int) -> list[np.random.Generator]:
    """Split a seed into ``n`` independent child generators.

    Uses ``SeedSequence.spawn`` so the children are statistically
    independent regardless of how the parent seed was chosen — the right
    way to give each worker of a parallel job its own stream.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        ss = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
