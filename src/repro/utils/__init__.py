"""Shared utilities: validation, RNG handling, timing, formatting."""

from repro.utils.fmt import format_table, human_bytes, human_time
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timing import MeasuredTime, Timer, measure
from repro.utils.validation import (
    check_axis_index,
    check_dense,
    check_nonnegative,
    check_positive,
    check_square,
    ensure_array,
)

__all__ = [
    "check_axis_index",
    "check_dense",
    "check_nonnegative",
    "check_positive",
    "check_square",
    "ensure_array",
    "as_rng",
    "spawn_rngs",
    "Timer",
    "measure",
    "MeasuredTime",
    "human_bytes",
    "human_time",
    "format_table",
]
