"""Wall-clock measurement utilities.

The paper reports mean and standard deviation over 250 runs.  On a shared,
single-core container that protocol is both too slow and too noisy, so
:func:`measure` uses an adaptive protocol: warm up, then repeat until either
``max_repeats`` runs or ``min_total`` seconds of measurement have
accumulated, whichever is later bounded.  The full sample vector is kept so
benchmarks can report whatever statistic they want.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class MeasuredTime:
    """Summary of a repeated timing measurement (seconds)."""

    samples: list[float] = field(default_factory=list)

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else math.nan

    @property
    def std(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean
        var = sum((s - mu) ** 2 for s in self.samples) / (len(self.samples) - 1)
        return math.sqrt(var)

    @property
    def best(self) -> float:
        return min(self.samples) if self.samples else math.nan

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MeasuredTime(mean={self.mean:.6f}s, std={self.std:.6f}s, n={self.n})"


class Timer:
    """Context manager measuring elapsed wall-clock time.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = math.nan
        self._start: float = math.nan

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


def measure(
    fn: Callable[[], object],
    *,
    warmup: int = 1,
    min_repeats: int = 3,
    max_repeats: int = 50,
    min_total: float = 0.2,
) -> MeasuredTime:
    """Time ``fn()`` repeatedly and return the sample distribution.

    ``fn`` is invoked ``warmup`` times untimed (to populate caches and
    trigger any lazy setup), then timed until at least ``min_repeats`` runs
    *and* ``min_total`` seconds have been collected, capped at
    ``max_repeats`` runs.
    """
    if min_repeats < 1 or max_repeats < min_repeats:
        raise ValueError("need 1 <= min_repeats <= max_repeats")
    for _ in range(warmup):
        fn()
    out = MeasuredTime()
    total = 0.0
    while out.n < max_repeats and (out.n < min_repeats or total < min_total):
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        out.samples.append(dt)
        total += dt
    return out
