"""Human-readable formatting of sizes, durations, and result tables.

Benchmarks print plain-text tables shaped like the ones in the paper; this
module owns the rendering so every table looks the same.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def human_bytes(n: float) -> str:
    """Format a byte count using binary units, e.g. ``human_bytes(3_240_000)``.

    Matches the paper's MiB convention for anything at or above one KiB.
    """
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n}")
    units = ["B", "KiB", "MiB", "GiB", "TiB"]
    value = float(n)
    for unit in units:
        if value < 1024.0 or unit == units[-1]:
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def human_time(seconds: float) -> str:
    """Format a duration with a sensible unit (ns/us/ms/s)."""
    if seconds != seconds:  # NaN
        return "nan"
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds >= 1.0:
        return f"{seconds:.4f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.2f} us"
    return f"{seconds * 1e9:.1f} ns"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as an aligned plain-text table.

    Cells are stringified with ``str``; numeric alignment is right,
    everything else is left.  Returns the table as one string (no trailing
    newline) so callers can print or log it.
    """
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def is_numeric(s: str) -> bool:
        try:
            float(s.replace("x", "").replace("%", ""))
            return True
        except ValueError:
            return False

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if is_numeric(cell):
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)
