"""Argument validation helpers.

These are deliberately small and allocation-free on the happy path: hot
kernels call them once per *operation*, never per element.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import DTypeError, ShapeError


def ensure_array(x: Any, dtype=None, name: str = "array") -> np.ndarray:
    """Coerce ``x`` to an ndarray, raising a library error on failure.

    Unlike ``np.asarray`` this rejects object dtype, which silently
    destroys performance in numeric kernels.
    """
    try:
        arr = np.asarray(x, dtype=dtype)
    except (TypeError, ValueError) as exc:  # pragma: no cover - defensive
        raise DTypeError(f"{name}: cannot convert to ndarray: {exc}") from exc
    if arr.dtype == object:
        raise DTypeError(f"{name}: object dtype is not supported in numeric kernels")
    return arr


def check_dense(x: np.ndarray, name: str = "operand", ndim: int | None = None) -> np.ndarray:
    """Validate a dense numeric operand and return it as a float array."""
    arr = ensure_array(x, name=name)
    if not np.issubdtype(arr.dtype, np.number):
        raise DTypeError(f"{name}: expected a numeric array, got dtype {arr.dtype}")
    if ndim is not None and arr.ndim != ndim:
        raise ShapeError(f"{name}: expected {ndim} dimensions, got {arr.ndim}")
    return arr


def check_square(shape: tuple[int, int], name: str = "matrix") -> None:
    if len(shape) != 2 or shape[0] != shape[1]:
        raise ShapeError(f"{name}: expected a square matrix, got shape {shape}")


def check_positive(value: float, name: str) -> None:
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_nonnegative(value: float, name: str) -> None:
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_axis_index(index: int, size: int, name: str = "index") -> None:
    if not 0 <= index < size:
        raise IndexError(f"{name} {index} out of range for size {size}")


def all_finite(arr: np.ndarray) -> bool:
    """True when ``arr`` contains no NaN/Inf.

    Fast path: one BLAS self-dot — any NaN propagates into it and any
    ±Inf squares to +Inf, so a finite dot proves a finite array.  A
    non-finite dot can also mean benign overflow of large finite
    values, so only then is the exact elementwise scan run.  Integer
    arrays are finite by construction.
    """
    arr = np.asarray(arr)
    if not np.issubdtype(arr.dtype, np.inexact):
        return True
    if arr.flags.c_contiguous or arr.flags.f_contiguous:
        flat = arr.reshape(-1)
        probe = np.dot(flat, flat)
    else:
        probe = arr.sum(dtype=np.float64)
    if np.isfinite(probe):
        return True
    return bool(np.isfinite(arr).all())
