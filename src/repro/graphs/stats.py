"""Graph statistics: degrees, triangles, clustering coefficient.

Table V of the paper correlates the average clustering coefficient with
the CBM compression ratio; these routines compute the same statistics from
a binary adjacency matrix, without networkx, using the algebraic identity
``triangles(v) = (A³)_vv / 2`` evaluated row-by-row so only one dense row
of ``A²`` ever exists at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotBinaryError, ShapeError
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import sparse_sparse_matmul


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of an undirected graph (paper Table I/V columns)."""

    nodes: int
    edges: int  # undirected edge count = nnz / 2
    average_degree: float
    average_clustering: float
    csr_bytes: int

    @property
    def csr_mib(self) -> float:
        return self.csr_bytes / (1024.0 * 1024.0)


def average_degree(a: CSRMatrix) -> float:
    """Mean number of neighbours per node (= nnz / n for a simple graph)."""
    n = a.shape[0]
    if n == 0:
        return 0.0
    return a.nnz / n


def degree_histogram(a: CSRMatrix) -> np.ndarray:
    """``hist[d]`` = number of nodes with degree ``d``."""
    deg = a.row_nnz()
    return np.bincount(deg)


def triangle_counts(a: CSRMatrix) -> np.ndarray:
    """Per-node triangle counts of an undirected simple graph.

    Uses ``t(v) = Σ_u∈N(v) |N(v) ∩ N(u)| / 2`` evaluated via one sparse
    SpGEMM (``A @ A``) restricted to the adjacency support: the number of
    common neighbours of v and u is ``(A²)_{vu}``, so summing ``A² ∘ A``
    along rows gives twice the triangle count.
    """
    if a.shape[0] != a.shape[1]:
        raise ShapeError(f"triangle_counts requires a square matrix, got {a.shape}")
    if not a.is_binary():
        raise NotBinaryError("triangle_counts requires a binary adjacency matrix")
    n = a.shape[0]
    a2 = sparse_sparse_matmul(a, a)
    # Hadamard with the adjacency support: for each stored (v, u) of A,
    # pick up (A²)_{vu}.  Both matrices have sorted rows, so a merge works;
    # vectorise with searchsorted per row block.
    counts = np.zeros(n, dtype=np.int64)
    for v in range(n):
        nbrs = a.row(v)
        if len(nbrs) == 0:
            continue
        lo, hi = a2.indptr[v], a2.indptr[v + 1]
        cols2 = a2.indices[lo:hi]
        vals2 = a2.data[lo:hi]
        pos = np.searchsorted(cols2, nbrs)
        pos = np.clip(pos, 0, len(cols2) - 1)
        hit = cols2[pos] == nbrs
        counts[v] = int(vals2[pos[hit]].sum())
    return counts // 2


def local_clustering(a: CSRMatrix) -> np.ndarray:
    """Per-node local clustering coefficient c(v) = 2 t(v) / (d(v)(d(v)-1)).

    Nodes of degree < 2 have coefficient 0, matching networkx's convention.
    """
    deg = a.row_nnz().astype(np.float64)
    tri = triangle_counts(a).astype(np.float64)
    denom = deg * (deg - 1.0)
    out = np.zeros(a.shape[0], dtype=np.float64)
    mask = denom > 0
    out[mask] = 2.0 * tri[mask] / denom[mask]
    return out


def average_clustering_coefficient(a: CSRMatrix) -> float:
    """Graph-average of the local clustering coefficients (Table V metric)."""
    n = a.shape[0]
    if n == 0:
        return 0.0
    return float(local_clustering(a).mean())


def compute_stats(a: CSRMatrix, *, clustering: bool = True) -> GraphStats:
    """Compute the full Table I/V statistics row for an adjacency matrix.

    ``clustering=False`` skips the triangle count (the expensive part —
    the paper itself notes computing it costs about as much as compressing
    the graph).
    """
    acc = average_clustering_coefficient(a) if clustering else float("nan")
    return GraphStats(
        nodes=a.shape[0],
        edges=a.nnz // 2,
        average_degree=average_degree(a),
        average_clustering=acc,
        csr_bytes=a.memory_bytes(),
    )
