"""Graph substrate: synthetic datasets, statistics, and normalisation.

The paper evaluates on eight real-world graphs (Table I).  Those exact
files are not available offline, so :mod:`repro.graphs.generators` provides
synthetic family-matched generators (citation, co-authorship, co-papers
projection, PPI) and :mod:`repro.graphs.datasets` registers one calibrated
stand-in per paper dataset, keeping the paper's true statistics alongside
for side-by-side reporting.
"""

from repro.graphs.adjacency import (
    add_self_loops,
    adjacency_from_edges,
    is_symmetric,
    is_undirected_simple,
)
from repro.graphs.datasets import (
    REGISTRY,
    DatasetSpec,
    list_datasets,
    load_dataset,
    paper_stats,
)
from repro.graphs.generators import (
    citation_graph,
    coauthor_graph,
    copapers_graph,
    erdos_renyi_graph,
    mixed_structure_graph,
    ppi_graph,
    rmat_graph,
    sbm_graph,
)
from repro.graphs.laplacian import degree_vector, gcn_normalization, normalized_adjacency
from repro.graphs.ordering import (
    bandwidth,
    bfs_order,
    degree_order,
    permute_symmetric,
    rcm_order,
    signature_order,
)
from repro.graphs.stats import (
    GraphStats,
    average_clustering_coefficient,
    average_degree,
    compute_stats,
    degree_histogram,
    triangle_counts,
)

__all__ = [
    "adjacency_from_edges",
    "add_self_loops",
    "is_symmetric",
    "is_undirected_simple",
    "GraphStats",
    "average_clustering_coefficient",
    "average_degree",
    "compute_stats",
    "degree_histogram",
    "triangle_counts",
    "citation_graph",
    "coauthor_graph",
    "copapers_graph",
    "mixed_structure_graph",
    "ppi_graph",
    "rmat_graph",
    "sbm_graph",
    "erdos_renyi_graph",
    "DatasetSpec",
    "REGISTRY",
    "list_datasets",
    "load_dataset",
    "paper_stats",
    "bandwidth",
    "bfs_order",
    "degree_order",
    "permute_symmetric",
    "rcm_order",
    "signature_order",
    "degree_vector",
    "gcn_normalization",
    "normalized_adjacency",
]
