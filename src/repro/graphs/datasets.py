"""Registry of the paper's eight evaluation datasets and their stand-ins.

Each :class:`DatasetSpec` records the statistics the paper reports in
Table I (node count, edge count, average degree, CSR size, clustering
coefficient from Table V) next to a calibrated synthetic generator that
reproduces the dataset's *family structure* at a budget-friendly scale.
Benchmarks print both columns so paper-vs-measured comparisons stay honest.

Scaling note: the four largest paper graphs have 24–40M edges; building
them in a pure-Python/NumPy pipeline on one core is out of budget, so the
stand-ins keep the average degree and clustering profile while shrinking
the node count (DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

from repro.errors import DatasetError
from repro.graphs import generators
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class PaperStats:
    """Ground-truth numbers from Tables I and V of the paper."""

    nodes: int
    edges: int  # directed nnz as reported in Table I
    average_degree: float
    csr_mib: float
    average_clustering: float | None = None
    compression_ratio_a0: float | None = None  # Table II, alpha = 0
    compression_ratio_a32: float | None = None  # Table II, alpha = 32


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset: paper ground truth + synthetic stand-in generator."""

    name: str
    family: str
    paper: PaperStats
    generator: Callable[..., CSRMatrix]
    params: dict = field(default_factory=dict)
    seed: int = 0

    def build(self) -> CSRMatrix:
        """Generate the stand-in adjacency matrix (deterministic per spec)."""
        return self.generator(**self.params, seed=self.seed)


REGISTRY: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    REGISTRY[spec.name] = spec


_register(
    DatasetSpec(
        name="Cora",
        family="citation",
        paper=PaperStats(2708, 10556, 4.8, 0.09, 0.24, 1.04, 1.00),
        generator=generators.citation_graph,
        params={"n": 2708, "avg_degree": 4.8, "closure": 0.45},
        seed=11,
    )
)
_register(
    DatasetSpec(
        name="PubMed",
        family="citation",
        paper=PaperStats(19717, 88648, 5.4, 0.75, 0.06, 1.04, 1.00),
        generator=generators.citation_graph,
        params={"n": 8000, "avg_degree": 5.4, "closure": 0.05},
        seed=12,
    )
)
_register(
    DatasetSpec(
        name="ca-AstroPh",
        family="coauthor",
        paper=PaperStats(18772, 396160, 22.1, 3.09, 0.63, 1.72, 1.27),
        generator=generators.coauthor_graph,
        params={
            "n_authors": 6000,
            "papers_per_author": 5.0,
            "authors_per_paper": 5.5,
            "community_count": 110,
            "mega_papers": 4,
            "mega_team_size": 120,
        },
        seed=13,
    )
)
_register(
    DatasetSpec(
        name="ca-HepPh",
        family="coauthor",
        paper=PaperStats(12008, 237010, 20.7, 1.85, 0.61, 2.72, 2.06),
        generator=generators.coauthor_graph,
        params={
            "n_authors": 4000,
            "papers_per_author": 3.5,
            "authors_per_paper": 4.0,
            "community_count": 130,
            "mega_papers": 8,
            "mega_team_size": 160,
        },
        seed=14,
    )
)
_register(
    DatasetSpec(
        name="COLLAB",
        family="coauthor",
        paper=PaperStats(372474, 24572158, 65.9, 188.89, 0.89, 11.0, 5.81),
        generator=generators.coauthor_graph,
        params={
            "n_authors": 8000,
            "papers_per_author": 5.0,
            "authors_per_paper": 34.0,
            "community_count": 118,
        },
        seed=15,
    )
)
_register(
    DatasetSpec(
        name="coPapersDBLP",
        family="copapers",
        paper=PaperStats(540486, 30491458, 57.4, 234.69, 0.80, 5.97, 3.74),
        generator=generators.copapers_graph,
        params={
            "n_papers": 9000,
            "papers_per_author": 20.0,
            "authors_per_paper": 2.2,
            "hub_fraction": 0.06,
            "hub_papers": 80.0,
            "window_factor": 2.4,
        },
        seed=16,
    )
)
_register(
    DatasetSpec(
        name="coPapersCiteseer",
        family="copapers",
        paper=PaperStats(434102, 32073440, 74.8, 246.36, 0.83, 9.87, 5.79),
        generator=generators.copapers_graph,
        params={
            "n_papers": 8000,
            "papers_per_author": 26.0,
            "authors_per_paper": 2.2,
            "hub_fraction": 0.07,
            "hub_papers": 100.0,
            "window_factor": 1.6,
        },
        seed=17,
    )
)
_register(
    DatasetSpec(
        name="ogbn-proteins",
        family="ppi",
        paper=PaperStats(132534, 39561252, 298.5, 302.33, 0.28, 2.14, 2.12),
        generator=generators.ppi_graph,
        params={
            "n": 3000,
            "avg_degree": 110.0,
            "communities": 10,
            "mixing": 0.45,
            "hub_exponent": 0.9,
        },
        seed=18,
    )
)


def list_datasets(family: str | None = None) -> list[str]:
    """Names of registered datasets, optionally filtered by family."""
    return [
        name
        for name, spec in REGISTRY.items()
        if family is None or spec.family == family
    ]


@lru_cache(maxsize=None)
def load_dataset(name: str) -> CSRMatrix:
    """Build (and memoise) the stand-in adjacency matrix for ``name``.

    Raises :class:`~repro.errors.DatasetError` for unknown names; the
    message lists what is available.
    """
    if name not in REGISTRY:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(sorted(REGISTRY))}"
        )
    return REGISTRY[name].build()


def paper_stats(name: str) -> PaperStats:
    """Paper-reported Table I/II/V numbers for ``name``."""
    if name not in REGISTRY:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(sorted(REGISTRY))}"
        )
    return REGISTRY[name].paper
