"""Row/node orderings and permutation utilities.

The paper's related work (Webgraph, biclique extraction) leans on node
reordering to expose similarity; CBM itself is *order-invariant* (the
compression tree pairs any two rows regardless of their indices — a
property the test suite pins), but ordering still matters twice here:

* the memory-bounded clustered builder
  (:func:`repro.core.builder.build_clustered`) chunks *consecutive* rows,
  so a similarity-exposing order improves its compression;
* cache behaviour of the CSR baseline depends on bandwidth-reducing
  orders such as reverse Cuthill–McKee.

Implemented from scratch: BFS order, reverse Cuthill–McKee, degree sort,
and a neighbourhood-signature sort, plus :func:`permute_symmetric` to
apply an order to an adjacency matrix.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ShapeError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import ensure_array


def _check_square(a: CSRMatrix, name: str) -> None:
    if a.shape[0] != a.shape[1]:
        raise ShapeError(f"{name} requires a square matrix, got {a.shape}")


def bfs_order(a: CSRMatrix, start: int = 0) -> np.ndarray:
    """Breadth-first visitation order covering all components.

    Components after the first are entered at their lowest-index node.
    Returns a permutation array ``order`` where ``order[k]`` is the k-th
    visited node.
    """
    _check_square(a, "bfs_order")
    n = a.shape[0]
    if n and not 0 <= start < n:
        raise IndexError(f"start {start} out of range for {n} nodes")
    visited = np.zeros(n, dtype=bool)
    order = []
    for seed in [start] + list(range(n)):
        if n == 0 or visited[seed]:
            continue
        q = deque([seed])
        visited[seed] = True
        while q:
            u = q.popleft()
            order.append(u)
            for v in a.row(u):
                if not visited[v]:
                    visited[v] = True
                    q.append(int(v))
    return np.asarray(order, dtype=np.int64)


def rcm_order(a: CSRMatrix) -> np.ndarray:
    """Reverse Cuthill–McKee: bandwidth-reducing BFS with degree-sorted
    frontier expansion, reversed.  Components start at a minimum-degree
    node (the standard pseudo-peripheral shortcut)."""
    _check_square(a, "rcm_order")
    n = a.shape[0]
    deg = a.row_nnz()
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    # Seeds: minimum-degree node of each unvisited component.
    by_degree = np.argsort(deg, kind="stable")
    for seed in by_degree:
        if visited[seed]:
            continue
        q = deque([int(seed)])
        visited[seed] = True
        while q:
            u = q.popleft()
            order.append(u)
            nbrs = [int(v) for v in a.row(u) if not visited[v]]
            nbrs.sort(key=lambda v: deg[v])
            for v in nbrs:
                visited[v] = True
                q.append(v)
    return np.asarray(order[::-1], dtype=np.int64)


def degree_order(a: CSRMatrix, *, descending: bool = True) -> np.ndarray:
    """Nodes sorted by degree (hubs first by default)."""
    _check_square(a, "degree_order")
    deg = a.row_nnz()
    order = np.argsort(deg, kind="stable")
    return order[::-1] if descending else order


def signature_order(a: CSRMatrix) -> np.ndarray:
    """Sort rows by a neighbourhood signature (first/second neighbour,
    degree) so similar rows become consecutive — the order that feeds the
    clustered builder well."""
    _check_square(a, "signature_order")
    n = a.shape[0]
    big = np.iinfo(np.int64).max
    first = np.full(n, big, dtype=np.int64)
    second = np.full(n, big, dtype=np.int64)
    deg = a.row_nnz()
    has1 = deg >= 1
    first[has1] = a.indices[a.indptr[:-1][has1]]
    has2 = deg >= 2
    second[has2] = a.indices[a.indptr[:-1][has2] + 1]
    return np.lexsort((deg, second, first)).astype(np.int64)


def bandwidth(a: CSRMatrix) -> int:
    """Matrix bandwidth: max |i - j| over stored entries (0 when empty)."""
    _check_square(a, "bandwidth")
    if a.nnz == 0:
        return 0
    rows = np.repeat(np.arange(a.shape[0]), a.row_nnz())
    return int(np.abs(rows - a.indices).max())


def permute_symmetric(a: CSRMatrix, order: np.ndarray) -> CSRMatrix:
    """Apply node order to both axes: ``B = P A Pᵀ``.

    ``order[k]`` is the old index placed at new position k; the result
    satisfies ``B[i, j] == A[order[i], order[j]]``.
    """
    _check_square(a, "permute_symmetric")
    order = ensure_array(order, dtype=np.int64, name="order").ravel()
    n = a.shape[0]
    if len(order) != n or not np.array_equal(np.sort(order), np.arange(n)):
        raise ValueError("order must be a permutation of range(n)")
    inverse = np.empty(n, dtype=np.int64)
    inverse[order] = np.arange(n)
    coo = a.tocoo()
    return COOMatrix(
        inverse[coo.rows], inverse[coo.cols], coo.data, a.shape
    ).tocsr()
