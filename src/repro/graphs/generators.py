"""Synthetic graph generators calibrated to the paper's dataset families.

No network access is available, so each of the paper's eight datasets is
stood in for by a generator that reproduces the structural axes the paper
identifies as the drivers of CBM compression (Sections VI-D and VI-H):
average degree and neighbourhood similarity / clustering coefficient.

* :func:`citation_graph` — Holme–Kim preferential attachment with triadic
  closure: low average degree, tunable moderate clustering (Cora, PubMed).
* :func:`coauthor_graph` — bipartite paper→author projection: authors of a
  paper form a clique (ca-AstroPh, ca-HepPh, COLLAB).
* :func:`copapers_graph` — bipartite author→paper projection: papers of an
  author form a clique; prolific authors produce large cliques of
  near-identical rows, the regime where CBM shines (coPapersDBLP,
  coPapersCiteseer).
* :func:`ppi_graph` — overlapping-community model with dense hubs: very
  high degree, comparatively low clustering (ogbn-proteins).
* :func:`erdos_renyi_graph`, :func:`sbm_graph` — reference models for
  tests and ablations.

All generators return a symmetric binary :class:`~repro.sparse.csr.CSRMatrix`
with zero diagonal and accept a ``seed`` for exact reproducibility.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.adjacency import adjacency_from_edges
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive


def _edges_from_cliques(cliques: list[np.ndarray]) -> np.ndarray:
    """All pairwise edges inside each clique, concatenated (may duplicate)."""
    chunks = []
    for members in cliques:
        k = len(members)
        if k < 2:
            continue
        iu, ju = np.triu_indices(k, k=1)
        chunks.append(np.column_stack([members[iu], members[ju]]))
    if not chunks:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(chunks, axis=0)


def rmat_graph(
    scale: int,
    avg_degree: float = 16.0,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed=None,
) -> CSRMatrix:
    """R-MAT/Kronecker power-law graph (Graph500-style generator).

    Samples ``n · avg_degree / 2`` edges by recursively descending a 2×2
    probability grid ``[[a, b], [c, d]]`` with ``d = 1 - a - b - c``
    (defaults are the Graph500 constants).  All ``scale`` bit decisions
    are drawn vectorised, so generation is O(edges · scale).  Produces
    heavy-tailed degrees and low clustering — a stress test for CBM on
    graphs *without* the clique structure it exploits.
    """
    check_positive(scale, "scale")
    check_positive(avg_degree, "avg_degree")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError(f"R-MAT quadrant probabilities must sum to <= 1, got {a},{b},{c}")
    rng = as_rng(seed)
    n = 1 << scale
    m = int(n * avg_degree / 2)
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    # Quadrant thresholds: P(row bit = 0) and P(col bit = 0 | row bit).
    for _bit in range(scale):
        r = rng.random(m)
        row_bit = r >= (a + b)  # bottom half
        r2 = rng.random(m)
        p_right_top = b / max(a + b, 1e-12)
        p_right_bottom = d / max(c + d, 1e-12)
        col_bit = np.where(row_bit, r2 < p_right_bottom, r2 < p_right_top)
        rows = (rows << 1) | row_bit
        cols = (cols << 1) | col_bit
    return adjacency_from_edges(np.column_stack([rows, cols]), n)


def erdos_renyi_graph(n: int, avg_degree: float, *, seed=None) -> CSRMatrix:
    """G(n, M)-style random graph with the requested expected average degree.

    Sampled by drawing ``M = n * avg_degree / 2`` endpoint pairs uniformly
    (duplicates and self-loops removed), which for sparse graphs is
    indistinguishable from G(n, p) and runs in O(M).
    """
    check_positive(n, "n")
    check_positive(avg_degree, "avg_degree")
    rng = as_rng(seed)
    m = int(round(n * avg_degree / 2))
    edges = rng.integers(0, n, size=(m, 2), dtype=np.int64)
    return adjacency_from_edges(edges, n)


def sbm_graph(
    block_sizes: list[int],
    p_in: float,
    p_out: float,
    *,
    seed=None,
) -> CSRMatrix:
    """Stochastic block model with dense diagonal blocks.

    Sparse sampling per block pair: the number of edges in each block pair
    is drawn from a binomial, then endpoints are placed uniformly, so the
    cost is proportional to the number of edges, not to n².
    """
    rng = as_rng(seed)
    n = int(sum(block_sizes))
    starts = np.concatenate([[0], np.cumsum(block_sizes)]).astype(np.int64)
    chunks = []
    k = len(block_sizes)
    for bi in range(k):
        for bj in range(bi, k):
            ni, nj = block_sizes[bi], block_sizes[bj]
            if bi == bj:
                pairs = ni * (ni - 1) // 2
                p = p_in
            else:
                pairs = ni * nj
                p = p_out
            if pairs == 0 or p <= 0:
                continue
            m = rng.binomial(pairs, min(p, 1.0))
            if m == 0:
                continue
            u = rng.integers(starts[bi], starts[bi + 1], size=m, dtype=np.int64)
            v = rng.integers(starts[bj], starts[bj + 1], size=m, dtype=np.int64)
            chunks.append(np.column_stack([u, v]))
    edges = (
        np.concatenate(chunks, axis=0) if chunks else np.empty((0, 2), dtype=np.int64)
    )
    return adjacency_from_edges(edges, n)


def citation_graph(
    n: int,
    avg_degree: float = 5.0,
    *,
    closure: float = 0.3,
    seed=None,
) -> CSRMatrix:
    """Holme–Kim powerlaw-cluster graph: citation-network stand-in.

    Each arriving node attaches ``m ≈ avg_degree / 2`` edges; after each
    preferential attachment, with probability ``closure`` the next edge
    closes a triangle with a random neighbour of the previous target.
    ``closure`` tunes the clustering coefficient: ~0.3 reproduces Cora's
    0.24, ~0.02 reproduces PubMed's 0.06 at matching degrees.
    """
    check_positive(n, "n")
    m = max(1, int(round(avg_degree / 2)))
    if n <= m:
        raise ValueError(f"n={n} must exceed attachment count m={m}")
    rng = as_rng(seed)
    # Repeated-nodes list implements preferential attachment in O(1) per draw.
    targets_pool: list[int] = list(range(m))
    src: list[int] = []
    dst: list[int] = []
    neighbors: list[list[int]] = [[] for _ in range(n)]
    for v in range(m, n):
        added: set[int] = set()
        prev_target = -1
        e = 0
        while e < m:
            close = (
                prev_target >= 0
                and neighbors[prev_target]
                and rng.random() < closure
            )
            if close:
                u = int(neighbors[prev_target][rng.integers(len(neighbors[prev_target]))])
            else:
                u = int(targets_pool[rng.integers(len(targets_pool))])
            if u == v or u in added:
                # Collision: fall back to a uniform node to guarantee progress.
                u = int(rng.integers(v))
                if u in added:
                    e += 1
                    continue
            added.add(u)
            src.append(v)
            dst.append(u)
            neighbors[v].append(u)
            neighbors[u].append(v)
            prev_target = u
            e += 1
        targets_pool.extend(added)
        targets_pool.extend([v] * len(added))
    edges = np.column_stack([np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)])
    return adjacency_from_edges(edges, n)


def coauthor_graph(
    n_authors: int,
    *,
    papers_per_author: float = 4.0,
    authors_per_paper: float = 3.5,
    community_count: int | None = None,
    mega_papers: int = 0,
    mega_team_size: int = 120,
    seed=None,
) -> CSRMatrix:
    """Co-authorship network: project a paper→author bipartite graph.

    Papers are generated with a Poisson number of authors drawn mostly from
    one community (researchers collaborate locally), and all authors of a
    paper are pairwise connected.  Produces the high clustering (cliques)
    and overlapping neighbourhoods of ca-AstroPh / ca-HepPh / COLLAB.

    ``mega_papers`` adds large-collaboration papers of ``mega_team_size``
    authors each (drawn from a shared pool) — the collider-experiment
    pattern that gives ca-HepPh its unusually high compression ratio for
    its clustering level: members of one collaboration have nearly
    identical adjacency rows.
    """
    check_positive(n_authors, "n_authors")
    rng = as_rng(seed)
    n_papers = int(round(n_authors * papers_per_author / max(authors_per_paper, 1.0)))
    k = community_count or max(1, n_authors // 120)
    community = rng.integers(0, k, size=n_authors, dtype=np.int64)
    members: list[np.ndarray] = [np.flatnonzero(community == c) for c in range(k)]
    cliques: list[np.ndarray] = []
    for _ in range(n_papers):
        size = max(2, int(rng.poisson(authors_per_paper)))
        c = int(rng.integers(k))
        pool = members[c]
        if len(pool) < size:
            pool = np.arange(n_authors)
        team = rng.choice(pool, size=min(size, len(pool)), replace=False)
        cliques.append(team.astype(np.int64))
    if mega_papers > 0:
        # Collaborations overlap heavily: successive mega-papers reuse most
        # of the previous roster, so rows inside a collaboration coincide.
        roster = rng.choice(n_authors, size=min(mega_team_size, n_authors), replace=False)
        for _ in range(mega_papers):
            churn = max(1, mega_team_size // 25)
            replacements = rng.choice(n_authors, size=churn, replace=False)
            roster = np.unique(np.concatenate([roster[churn:], replacements]))
            cliques.append(roster.astype(np.int64))
    edges = _edges_from_cliques(cliques)
    return adjacency_from_edges(edges, n_authors)


def copapers_graph(
    n_papers: int,
    *,
    papers_per_author: float = 6.0,
    authors_per_paper: float = 2.5,
    hub_fraction: float = 0.02,
    hub_papers: float = 40.0,
    window_factor: float = 3.0,
    seed=None,
) -> CSRMatrix:
    """Co-papers network: papers sharing an author form a clique.

    Authors pick a Poisson number of papers from a contiguous window (a
    research area), so one prolific author creates a large clique of papers
    whose adjacency rows are nearly identical — the structure behind the
    6–10× CBM compression of coPapersDBLP/coPapersCiteseer.  A small
    ``hub_fraction`` of authors are prolific (``hub_papers`` papers each).
    """
    check_positive(n_papers, "n_papers")
    rng = as_rng(seed)
    n_authors = int(round(n_papers * authors_per_paper / max(papers_per_author, 1.0)))
    n_hubs = max(1, int(round(n_authors * hub_fraction)))
    cliques: list[np.ndarray] = []
    for a in range(n_authors):
        lam = hub_papers if a < n_hubs else papers_per_author
        size = int(rng.poisson(lam))
        if size < 2:
            continue
        # Contiguous topical window keeps cliques overlapping like venues
        # do; smaller window_factor = heavier overlap = more similar rows.
        window = max(int(size * window_factor), 10)
        start = int(rng.integers(max(1, n_papers - window)))
        papers = start + rng.choice(min(window, n_papers - start), size=min(size, min(window, n_papers - start)), replace=False)
        cliques.append(papers.astype(np.int64))
    edges = _edges_from_cliques(cliques)
    return adjacency_from_edges(edges, n_papers)


def mixed_structure_graph(
    n: int,
    *,
    clique_size: int = 32,
    window: int = 16,
    shift: int = 7,
    seed=None,
) -> CSRMatrix:
    """Half clique-structured, half chain-structured: no single format wins.

    Rows ``[0, n/2)`` are disjoint ``clique_size``-cliques — near-identical
    rows, the regime where CBM's delta encoding pays off ~5×.  Rows
    ``[n/2, n)`` are a sliding-window band: row ``i`` connects to the
    ``window`` ids starting at ``n/2 + ((i - n/2) * shift mod span)``.
    Consecutive rows overlap in ``window - shift`` columns — enough
    marginal savings for the greedy builder to chain them into one deep
    compression tree, whose per-level dispatch cost makes CBM *lose* to
    CSR on that half.  A format router should serve the clique half from
    CBM and the band half from CSR; either pure format leaves one half
    on the table.  Deliberately not in the dataset registry (it models a
    workload mix, not one of the paper's eight datasets).
    """
    check_positive(n, "n")
    check_positive(clique_size, "clique_size")
    check_positive(window, "window")
    check_positive(shift, "shift")
    if n < 2 * max(clique_size, window + 1):
        raise ValueError(
            f"n={n} too small for clique_size={clique_size}, window={window}"
        )
    half = n // 2
    cliques = [
        np.arange(lo, min(lo + clique_size, half), dtype=np.int64)
        for lo in range(0, half, clique_size)
    ]
    chunks = [_edges_from_cliques(cliques)]
    span = n - half
    rows = np.arange(half, n, dtype=np.int64)
    starts = half + ((rows - half) * shift) % max(span - window, 1)
    offsets = np.arange(window, dtype=np.int64)
    u = np.repeat(rows, window)
    v = (starts[:, None] + offsets[None, :]).reshape(-1)
    chunks.append(np.column_stack([u, v]))
    edges = np.concatenate(chunks, axis=0)
    return adjacency_from_edges(edges, n)


def ppi_graph(
    n: int,
    avg_degree: float = 100.0,
    *,
    communities: int = 24,
    mixing: float = 0.25,
    hub_exponent: float = 0.85,
    seed=None,
) -> CSRMatrix:
    """Protein-interaction stand-in: hub-weighted overlapping communities.

    Within each community (a functional module), edge endpoints are drawn
    with Zipf-like popularity weights ``rank^{-hub_exponent}``: every
    member interacts mostly with the same few hub proteins.  That gives
    rows of the same community large *overlap* (the CBM compression
    signal: ogbn-proteins compresses 2.1×) without the clique structure
    that would inflate clustering — matching its profile of very high
    degree but clustering far below the co-paper networks.  A ``mixing``
    fraction of edges is global noise.
    """
    check_positive(n, "n")
    check_positive(avg_degree, "avg_degree")
    rng = as_rng(seed)
    # Contiguous-id communities: local noise edges (below) stay mostly
    # intra-community, which is what makes them close triangles.
    community = (np.arange(n, dtype=np.int64) * communities) // n
    chunks = []
    hub_frac = 0.2
    # Members attach to a large random subset of their module's hubs: two
    # members of one module share ~p_hub² of the hub set, the overlap that
    # drives compression.  Hubs do not attach to each other, keeping the
    # clustering coefficient low; member-member noise edges create the
    # paper-level amount of triangles (through shared hubs).
    p_hub = min(0.95, hub_exponent)
    for c in range(communities):
        pool = np.flatnonzero(community == c)
        if len(pool) < 4:
            continue
        h = max(2, int(round(len(pool) * hub_frac)))
        hubs, rest = pool[:h], pool[h:]
        picks = rng.random((len(rest), h)) < p_hub
        ui, hj = np.nonzero(picks)
        chunks.append(np.column_stack([rest[ui], hubs[hj]]))
    m_hub = sum(len(ch) for ch in chunks)
    m_total = int(n * avg_degree / 2)
    m_noise = max(0, m_total - m_hub)
    m_local = int(m_noise * (1.0 - mixing))
    if m_local > 0:
        # Intra-community member-member noise: triangle source.
        u = rng.integers(0, n, size=m_local, dtype=np.int64)
        shift = rng.integers(1, min(50, max(n, 2)), size=m_local)
        v = (u + shift) % n  # nearby ids share a community (contiguous labels)
        chunks.append(np.column_stack([u, v]))
    if m_noise - m_local > 0:
        chunks.append(rng.integers(0, n, size=(m_noise - m_local, 2), dtype=np.int64))
    edges = (
        np.concatenate(chunks, axis=0) if chunks else np.empty((0, 2), dtype=np.int64)
    )
    return adjacency_from_edges(edges, n)
