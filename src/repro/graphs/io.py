"""Edge-list I/O for real-world graph files.

The paper's datasets ship as SNAP-style whitespace-separated edge lists
(`# comment` headers, one ``u v`` pair per line) or as MatrixMarket files
(handled by :mod:`repro.sparse.io`).  :func:`load_edge_list` reads the
former so users with the actual Cora/ca-HepPh/... downloads can run every
benchmark on the real graphs instead of the calibrated stand-ins.

Node ids are compacted: arbitrary (even non-contiguous) integer ids are
mapped to ``0..n-1`` with the mapping returned alongside the matrix.
"""

from __future__ import annotations

import gzip
import os
from typing import Union

import numpy as np

from repro.errors import FormatError
from repro.graphs.adjacency import adjacency_from_edges
from repro.recovery.atomic import atomic_write
from repro.sparse.csr import CSRMatrix

PathLike = Union[str, os.PathLike]


def _open_text(path: PathLike):
    if str(path).endswith(".gz"):
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def load_edge_list(
    path: PathLike,
    *,
    undirected: bool = True,
    comment: str = "#",
    delimiter: str | None = None,
) -> tuple[CSRMatrix, np.ndarray]:
    """Read a SNAP-style edge list into a binary adjacency matrix.

    Returns ``(adjacency, node_ids)`` where ``node_ids[k]`` is the
    original id of compact node k.  Lines starting with ``comment`` are
    skipped; ``delimiter=None`` splits on any whitespace.  Duplicate edges
    collapse to one; self-loops are dropped (matching how the paper
    prepares its graphs: unweighted, undirected, simple).
    """
    src: list[int] = []
    dst: list[int] = []
    with _open_text(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split(delimiter)
            if len(parts) < 2:
                raise FormatError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            try:
                src.append(int(parts[0]))
                dst.append(int(parts[1]))
            except ValueError as exc:
                raise FormatError(
                    f"{path}:{lineno}: non-integer node id in {line!r}"
                ) from exc
    if not src:
        return adjacency_from_edges(np.empty((0, 2), dtype=np.int64), 0), np.empty(
            0, dtype=np.int64
        )
    u = np.asarray(src, dtype=np.int64)
    v = np.asarray(dst, dtype=np.int64)
    node_ids, inverse = np.unique(np.concatenate([u, v]), return_inverse=True)
    edges = np.column_stack([inverse[: len(u)], inverse[len(u) :]])
    a = adjacency_from_edges(edges, len(node_ids), undirected=undirected)
    return a, node_ids


def save_edge_list(path: PathLike, a: CSRMatrix, *, header: str | None = None) -> None:
    """Write the upper triangle of a symmetric adjacency as ``u v`` lines.

    The file lands atomically (:func:`repro.recovery.atomic_write`) so a
    crash mid-write cannot leave a truncated edge list that would later
    load as a silently smaller graph.
    """
    with atomic_write(path, mode="w", encoding="utf-8") as fh:
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        coo = a.tocoo()
        for r, c in zip(coo.rows, coo.cols, strict=True):
            if r < c:
                fh.write(f"{r} {c}\n")
