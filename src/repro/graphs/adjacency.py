"""Building and checking binary adjacency matrices."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import sparse_sparse_matmul
from repro.utils.validation import ensure_array


def adjacency_from_edges(
    edges,
    n: int,
    *,
    undirected: bool = True,
    remove_self_loops: bool = True,
    dtype=np.float32,
) -> CSRMatrix:
    """Build a simple binary adjacency matrix from an (E, 2) edge array.

    Duplicate edges are collapsed to a single 1 (the matrix stays binary),
    self-loops are dropped unless ``remove_self_loops=False``, and with
    ``undirected=True`` both orientations are stored.
    """
    e = ensure_array(edges, dtype=np.int64, name="edges")
    if e.size == 0:
        e = e.reshape(0, 2)
    if e.ndim != 2 or e.shape[1] != 2:
        raise ShapeError(f"edges must be (E, 2), got {e.shape}")
    if remove_self_loops:
        e = e[e[:, 0] != e[:, 1]]
    coo = COOMatrix.from_edges(e, (n, n), symmetric=undirected, dtype=dtype)
    csr = coo.tocsr()
    # Collapse duplicates back to binary.
    csr.data.fill(1)
    csr.data = csr.data.astype(dtype, copy=False)
    return csr


def add_self_loops(a: CSRMatrix) -> CSRMatrix:
    """Return ``A + I`` with existing self-loops left at 1 (binary result).

    This is the ``(A + I)`` of the GCN normalisation; the paper notes that
    for an unweighted graph it is again a binary matrix.
    """
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise ShapeError(f"add_self_loops requires a square matrix, got {a.shape}")
    coo = a.tocoo()
    rows = np.concatenate([coo.rows, np.arange(n, dtype=np.int64)])
    cols = np.concatenate([coo.cols, np.arange(n, dtype=np.int64)])
    vals = np.ones(len(rows), dtype=a.data.dtype)
    out = COOMatrix(rows, cols, vals, (n, n)).tocsr()
    out.data.fill(1)
    return out


def is_symmetric(a: CSRMatrix) -> bool:
    """True when the sparsity pattern and values equal those of ``aᵀ``."""
    t = a.transpose()
    return (
        np.array_equal(a.indptr, t.indptr)
        and np.array_equal(a.indices, t.indices)
        and np.allclose(a.data, t.data)
    )


def is_undirected_simple(a: CSRMatrix) -> bool:
    """True for a square, binary, symmetric matrix with a zero diagonal."""
    if a.shape[0] != a.shape[1] or not a.is_binary():
        return False
    rows = np.repeat(np.arange(a.shape[0]), a.row_nnz())
    if np.any(rows == a.indices):
        return False
    return is_symmetric(a)


def overlap_matrix(a: CSRMatrix) -> CSRMatrix:
    """Row-overlap matrix ``A @ Aᵀ`` for a binary ``a``.

    Entry (x, y) counts the shared non-zero columns of rows x and y — the
    quantity from which row Hamming distances are derived during CBM
    construction (Section VIII notes this is the memory hot spot of the
    paper's implementation; :mod:`repro.core.builder` offers a clustered
    variant to bound it).
    """
    a.require_binary()
    return sparse_sparse_matmul(a, a.transpose())
