"""GCN normalisation: Â = D^{-1/2} (A + I) D^{-1/2}.

The paper factorises Â as a DAD product where the inner binary matrix is
``A + I`` and the diagonal is the inverse square root of the self-loop
degree.  :func:`gcn_normalization` returns exactly that factorisation so
the binary part can be handed to the CBM compressor and the diagonal kept
as a vector.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.errors import ShapeError
from repro.graphs.adjacency import add_self_loops
from repro.sparse.csr import CSRMatrix


class DADFactors(NamedTuple):
    """Factorisation Â = diag(d) · B · diag(d) with binary B."""

    binary: CSRMatrix
    diag: np.ndarray


def degree_vector(a: CSRMatrix) -> np.ndarray:
    """Row-degree vector of an adjacency matrix (float64)."""
    return a.row_nnz().astype(np.float64)


def gcn_normalization(a: CSRMatrix) -> DADFactors:
    """Factors of the normalised Laplacian adjacency of a binary graph.

    Returns ``(A + I, d)`` with ``d = (deg + 1)^{-1/2}``; the full Â is
    ``diag(d) @ (A+I) @ diag(d)``.  Every degree is at least 1 after the
    self-loop, so ``d`` is always finite.
    """
    if a.shape[0] != a.shape[1]:
        raise ShapeError(f"gcn_normalization requires a square matrix, got {a.shape}")
    a_loop = add_self_loops(a)
    deg = degree_vector(a_loop)
    d = 1.0 / np.sqrt(deg)
    return DADFactors(binary=a_loop, diag=d.astype(np.float64))


def normalized_adjacency(a: CSRMatrix) -> CSRMatrix:
    """Materialised Â = D^{-1/2} (A + I) D^{-1/2} as a weighted CSR matrix.

    This is what the CSR baseline multiplies with; the CBM path keeps the
    factorisation instead (see :class:`repro.core.cbm.CBMMatrix`).
    """
    binary, d = gcn_normalization(a)
    return binary.scale_rows(d).scale_columns(d)
