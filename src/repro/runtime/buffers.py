"""Reusable dense workspace buffers for the plan/execute kernel runtime.

A :class:`WorkspacePool` hands out dense output/workspace arrays keyed by
``(shape, dtype)`` so that repeated executions of a :class:`~repro.runtime.plan.KernelPlan`
(the GCN serving hot path: the same ``Â`` against same-shaped feature
blocks, forward after forward) do not re-allocate an ``n × p`` array per
call.  Buffers are returned uninitialised — the kernels zero-fill or
overwrite them — and ownership transfers on :meth:`acquire`: the pool
never hands the same array out twice until it is :meth:`release`-d back.

The pool is thread-safe; the branch-parallel executor and concurrently
served requests may share one plan (and therefore one pool).
"""

from __future__ import annotations

import atexit
import threading
import weakref
from dataclasses import dataclass

import numpy as np

# Every live pool, so an interrupted bench/soak can be swept in one call.
# Weak references: registration must not keep retired pools (and their
# buffers) alive — a pool that is garbage has already "drained".
_POOLS: weakref.WeakSet = weakref.WeakSet()
_POOLS_LOCK = threading.Lock()


def drain_all_pools() -> int:
    """Drain every live :class:`WorkspacePool`; returns total bytes freed.

    Registered as an ``atexit`` hook (alongside the shared-memory reaper
    in :mod:`repro.parallel.shm`) so a Ctrl-C'd benchmark or soak leaves
    no idle workspace pinned while interpreter teardown runs finalizers.
    """
    with _POOLS_LOCK:
        pools = list(_POOLS)
    return sum(pool.drain() for pool in pools)


atexit.register(drain_all_pools)


@dataclass
class PoolStats:
    """Counters for pool effectiveness (reported by benchmarks/CLI)."""

    acquires: int = 0
    hits: int = 0
    releases: int = 0
    discarded: int = 0
    stacked_acquires: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.acquires if self.acquires else 0.0


class WorkspacePool:
    """Free-list of dense arrays keyed by ``(shape, dtype)``.

    Parameters
    ----------
    max_per_key:
        How many idle buffers to retain per key; extra releases are
        dropped (double buffering needs 2, the default).
    """

    def __init__(self, max_per_key: int = 2):
        if max_per_key < 0:
            raise ValueError(f"max_per_key must be >= 0, got {max_per_key}")
        self.max_per_key = max_per_key
        self._free: dict[tuple, list[np.ndarray]] = {}
        self._lock = threading.Lock()
        self.stats = PoolStats()
        with _POOLS_LOCK:
            _POOLS.add(self)

    @staticmethod
    def _key(shape: tuple[int, ...], dtype) -> tuple:
        return (tuple(int(s) for s in shape), np.dtype(dtype).str)

    def acquire(self, shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
        """A C-contiguous array of the given shape/dtype (contents arbitrary)."""
        key = self._key(shape, dtype)
        with self._lock:
            self.stats.acquires += 1
            free = self._free.get(key)
            if free:
                self.stats.hits += 1
                return free.pop()
        return np.empty(shape, dtype=dtype)

    def release(self, arr: np.ndarray) -> None:
        """Return a buffer to the pool for reuse.

        Only C-contiguous arrays are retained; anything else (or overflow
        beyond ``max_per_key``) is silently dropped to the allocator.
        """
        if not isinstance(arr, np.ndarray) or not arr.flags.c_contiguous:
            return
        key = self._key(arr.shape, arr.dtype)
        with self._lock:
            self.stats.releases += 1
            free = self._free.setdefault(key, [])
            if len(free) < self.max_per_key and not any(b is arr for b in free):
                free.append(arr)
            else:
                self.stats.discarded += 1

    def acquire_stacked(
        self, rows: int, columns: int, dtype=np.float32, *, quantum: int = 1
    ) -> np.ndarray:
        """A pooled 2-D buffer for a *stacked* (micro-batched) operand.

        Batch widths vary request-to-request, so exact-shape pooling
        would miss on almost every acquire; instead the width is rounded
        up to a multiple of ``quantum`` (see
        :func:`repro.serving.batching.quantize_columns` for the
        rationale) and the trailing padding columns are **zero-filled**
        before the buffer is handed out — padding feeds the kernels, and
        recycled garbage there would poison the output-validation scan.
        The caller owns the first ``columns`` columns; release with
        :meth:`release` as usual.
        """
        if quantum < 1:
            raise ValueError(f"quantum must be >= 1, got {quantum}")
        if columns < 1:
            raise ValueError(f"columns must be >= 1, got {columns}")
        padded = ((columns + quantum - 1) // quantum) * quantum
        buf = self.acquire((int(rows), padded), dtype)
        with self._lock:
            self.stats.stacked_acquires += 1
        if padded > columns:
            buf[:, columns:] = 0
        return buf

    def warm(self, shape: tuple[int, ...], dtype=np.float32, count: int = 1) -> None:
        """Pre-populate the pool so the first executions skip allocation."""
        bufs = [self.acquire(shape, dtype) for _ in range(max(count, 0))]
        for b in bufs:
            self.release(b)

    def idle_bytes(self) -> int:
        """Total bytes currently held in free lists."""
        with self._lock:
            return sum(b.nbytes for free in self._free.values() for b in free)

    def clear(self) -> None:
        with self._lock:
            self._free.clear()

    def drain(self) -> int:
        """Release every idle buffer to the allocator; return bytes freed.

        Used when a plan is being retired (e.g. the serving layer
        hot-swapped its CBM archive): the old plan may still be finishing
        in-flight requests, but its idle workspace should not outlive it.
        Buffers currently checked out are unaffected; a later
        :meth:`release` would re-pool them, so callers retiring a pool
        should also stop acquiring from / releasing into it.
        """
        with self._lock:
            freed = sum(b.nbytes for free in self._free.values() for b in free)
            self._free.clear()
        return freed
