"""Plan/execute kernel runtime for CBM products.

Splits every CBM multiplication into a one-time :class:`KernelPlan`
(level schedule, branch decomposition, scaled operand, diagonal tables,
workspace pool) and a cheap per-call ``execute`` — the amortisation that
makes the format pay off on GNN serving workloads.  See
``docs/ARCHITECTURE.md`` § "The plan/execute runtime".
"""

from repro.runtime.buffers import PoolStats, WorkspacePool
from repro.runtime.plan import KernelPlan, PlanStats

__all__ = ["KernelPlan", "PlanStats", "PoolStats", "WorkspacePool"]
