"""Kernel plans: the one-time *plan* / cheap *execute* split for CBM products.

The paper's speedups come from amortising the compression tree over many
multiplications — the exact shape of GCN serving, where the same ``Â`` is
multiplied against dense features every layer of every forward pass.  A
:class:`KernelPlan` hoists everything ``CBMMatrix.matmul`` used to
recompute per call into a one-time build:

* the topological **level schedule** — per level, the (children, parents)
  index pairs used by the vectorised update stage;
* the **branch decomposition** of Section V-B for the threaded executor
  and the dynamic-schedule simulator;
* the **scaled delta CSR** for the chosen variant (A / AD / DAD / D1AD2)
  plus a prebuilt SciPy handle so the multiplication stage goes straight
  into the compiled kernel;
* the **fused / deferred diagonal tables** (per-level scale factors for
  ``scaling="fused"``, one row-scale vector for ``"deferred"``);
* a reusable output/workspace **buffer pool** keyed by operand shape and
  dtype.

Plans are immutable snapshots: :meth:`KernelPlan.matches` detects when
the owning matrix's tree/delta/diagonals were swapped out or explicitly
invalidated (``CBMMatrix.invalidate()``), and ``CBMMatrix.plan()``
rebuilds lazily.  ``execute`` itself touches no shared mutable state
beyond the (locked) buffer pool, so one plan may serve many threads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from repro.core.deltas import scale_delta_matrix
from repro.core.tree import VIRTUAL
from repro.errors import ShapeError
from repro.runtime.buffers import WorkspacePool
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import Engine, get_default_engine, spmm, spmv
from repro.utils.validation import check_dense

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.cbm import CBMMatrix

try:  # SciPy's raw CSR kernel lets us multiply into a caller buffer.
    from scipy.sparse import _sparsetools as _sptools

    _CSR_MATVECS = getattr(_sptools, "csr_matvecs", None)
    _CSR_MATVEC = getattr(_sptools, "csr_matvec", None)
except (ImportError, AttributeError):  # pragma: no cover - exotic SciPy builds
    _CSR_MATVECS = None
    _CSR_MATVEC = None


def apply_level_schedule(
    c: np.ndarray,
    level_pairs: list[tuple[np.ndarray, np.ndarray]],
    *,
    row_scale: np.ndarray | None = None,
    roots: np.ndarray | None = None,
    root_scale: np.ndarray | None = None,
    fused_tables: list[tuple[np.ndarray, np.ndarray]] | None = None,
) -> None:
    """Level-schedule update stage + scaling, in place on ``c``.

    The single definition of the vectorised tree walk: ``KernelPlan``
    calls it for in-process execution and the shard workers
    (:mod:`repro.parallel.shard`) call it against shared-memory views, so
    the multi-process path replays *exactly* the parent's update code.

    ``fused_tables`` (with ``roots``/``root_scale``) selects the fused
    per-level scaling recurrence; otherwise plain accumulation runs,
    followed by one deferred ``row_scale`` multiply when given.
    """
    expand = (slice(None), None) if c.ndim == 2 else ()
    if fused_tables is not None:
        c[roots] *= root_scale[expand]
        for (lv, ps), (a, r) in zip(level_pairs, fused_tables, strict=True):
            c[lv] = a[expand] * c[lv] + r[expand] * c[ps]
        return
    for lv, ps in level_pairs:
        c[lv] += c[ps]
    if row_scale is not None:
        c *= row_scale[expand]


@dataclass
class PlanStats:
    """Execution counters (informational; benchmarks and the CLI read them)."""

    build_seconds: float = 0.0
    executions: int = 0
    matvecs: int = 0


@dataclass(frozen=True)
class _Fingerprint:
    """Identity snapshot of the CBM parts a plan depends on."""

    tree_id: int
    delta_id: int
    diag_id: int
    diag_left_id: int
    variant: str
    version: int


def _fingerprint(cbm: "CBMMatrix") -> _Fingerprint:
    return _Fingerprint(
        tree_id=id(cbm.tree),
        delta_id=id(cbm.delta),
        diag_id=id(cbm.diag),
        diag_left_id=id(cbm.diag_left),
        variant=cbm.variant.value,
        version=cbm.plan_version,
    )


class KernelPlan:
    """Precomputed execution schedule for one CBM matrix and kernel config.

    Build via ``CBMMatrix.plan(update=..., scaling=...)`` (cached) or
    directly; the constructor snapshots everything it needs, so later
    mutations of the source matrix do not corrupt the plan — they make
    :meth:`matches` return False and the owner rebuild.
    """

    def __init__(self, cbm: "CBMMatrix", *, update: str = "level", scaling: str = "deferred"):
        if update not in ("level", "edge"):
            raise ValueError(f"unknown update mode {update!r}")
        if scaling not in ("deferred", "fused"):
            raise ValueError(f"unknown scaling mode {scaling!r}")
        t0 = time.perf_counter()
        self.update = update
        self.scaling = scaling
        self.shape = cbm.shape
        self.variant = cbm.variant
        self.fingerprint = _fingerprint(cbm)
        self.stats = PlanStats()
        self.pool = WorkspacePool()

        tree = cbm.tree
        self._parent = tree.parent
        from repro.core.cbm import Variant  # local import: cbm imports this module

        self.row_scaled = cbm.variant in (Variant.DAD, Variant.D1AD2)
        d = cbm._row_diag() if self.row_scaled else None

        # --- multiplication stage -------------------------------------
        if cbm.variant is Variant.A:
            self.operand: CSRMatrix = cbm.delta
        else:
            # Reuse (and populate) the owner's cached scaled delta.
            if cbm._scaled_delta is None:
                cbm._scaled_delta = scale_delta_matrix(cbm.delta, cbm.diag)
            self.operand = cbm._scaled_delta
        self._sp = None  # prebuilt scipy.sparse handle, built on first use
        self._sp_lock = threading.Lock()

        # --- update stage ---------------------------------------------
        # Level schedule: (children, parents) per depth, parents resolved
        # once instead of per call.
        levels = tree.levels()
        self.level_pairs: list[tuple[np.ndarray, np.ndarray]] = [
            (lv, self._parent[lv]) for lv in levels
        ]
        # Edge schedule (paper-literal ablation): rows in topological
        # order; roots (virtual parent) are skipped up front.
        if update == "edge":
            order = tree.topological_order()
            self.edge_order = order[self._parent[order] != VIRTUAL]
        else:
            self.edge_order = None
        self._tree = tree  # branches are derived lazily (see branches)

        # --- diagonal tables ------------------------------------------
        self.row_scale: np.ndarray | None = None
        self.roots: np.ndarray | None = None
        self.root_scale: np.ndarray | None = None
        self.fused_tables: list[tuple[np.ndarray, np.ndarray]] | None = None
        self.edge_scale: tuple[np.ndarray, np.ndarray] | None = None
        if self.row_scaled:
            d = np.asarray(d, dtype=np.float64)
            if scaling == "fused":
                self.roots = tree.roots
                self.root_scale = d[self.roots]
                # c[lv] = d[lv]*(c[ps]/d[ps] + c[lv]) == a*c[lv] + r*c[ps]
                self.fused_tables = [
                    (d[lv], d[lv] / d[ps]) for lv, ps in self.level_pairs
                ]
                if update == "edge":
                    eo = self.edge_order
                    self.edge_scale = (d[eo], d[eo] / d[self._parent[eo]])
            else:
                self.row_scale = d
        self._row_scale_cast: dict[str, np.ndarray] = {}
        self.stats.build_seconds = time.perf_counter() - t0

    # ------------------------------------------------------------------
    @cached_property
    def branches(self) -> list[np.ndarray]:
        """Branch decomposition (Section V-B), computed once per plan."""
        return self._tree.branches()

    @property
    def levels(self) -> int:
        return len(self.level_pairs)

    def matches(self, cbm: "CBMMatrix") -> bool:
        """True while this plan is still valid for ``cbm``."""
        return self.fingerprint == _fingerprint(cbm)

    def workspace_bytes(self) -> int:
        return self.pool.idle_bytes()

    # ------------------------------------------------------------------
    def _scipy_handle(self):
        if self._sp is None:
            with self._sp_lock:
                if self._sp is None:
                    import scipy.sparse as sp

                    op = self.operand
                    self._sp = sp.csr_matrix(
                        (op.data, op.indices, op.indptr), shape=op.shape
                    )
        return self._sp

    def _cast_row_scale(self, dtype) -> np.ndarray:
        key = np.dtype(dtype).str
        rs = self._row_scale_cast.get(key)
        if rs is None:
            rs = self.row_scale.astype(dtype)
            self._row_scale_cast[key] = rs
        return rs

    # ------------------------------------------------------------------
    def multiply(
        self, b: np.ndarray, *, out: np.ndarray | None = None, engine: Engine | None = None
    ) -> np.ndarray:
        """Multiplication stage only: ``A′ @ b`` (or ``(AD)′ @ b``).

        Used directly by the branch-parallel executor, which applies the
        update stage itself.  ``out`` must be C-contiguous, match the
        result shape/dtype, and not alias ``b``; when given, the product
        is written into it in place.
        """
        b = check_dense(b, name="b", ndim=2)
        if b.shape[0] != self.shape[1]:
            raise ShapeError.mismatch("CBM matmul", self.shape, b.shape)
        eng = engine or get_default_engine()
        op = self.operand
        if out is not None:
            if out.shape != (self.shape[0], b.shape[1]):
                raise ShapeError.mismatch(
                    "plan out buffer", (self.shape[0], b.shape[1]), out.shape
                )
            if np.shares_memory(out, b):
                raise ValueError("out buffer must not alias the operand b")
        if eng is Engine.SCIPY:
            sp_op = self._scipy_handle()
            fast = (
                _CSR_MATVECS is not None
                and out is not None
                and out.flags.c_contiguous
                and b.flags.c_contiguous
                and b.dtype == op.data.dtype
                and out.dtype == op.data.dtype
            )
            if fast:
                out[...] = 0
                _CSR_MATVECS(
                    op.shape[0],
                    op.shape[1],
                    b.shape[1],
                    sp_op.indptr,
                    sp_op.indices,
                    sp_op.data,
                    b.ravel(),
                    out.ravel(),
                )
                return out
            c = np.asarray(sp_op @ b)
        else:
            c = spmm(op, b, engine=eng)
        if out is not None:
            out[...] = c
            return out
        return c

    # ------------------------------------------------------------------
    def apply_update(self, c: np.ndarray) -> None:
        """Update stage + scaling, in place, from the precomputed schedule."""
        if self.update == "edge":
            expand = (slice(None), None) if c.ndim == 2 else ()
            self._apply_update_edges(c, expand)
        elif self.row_scaled and self.scaling == "fused":
            apply_level_schedule(
                c,
                self.level_pairs,
                roots=self.roots,
                root_scale=self.root_scale,
                fused_tables=self.fused_tables,
            )
        else:
            apply_level_schedule(
                c,
                self.level_pairs,
                row_scale=self._cast_row_scale(c.dtype) if self.row_scaled else None,
            )

    def _apply_update_edges(self, c: np.ndarray, expand) -> None:
        """Edge-schedule update + scaling, in place on ``c``."""
        parent = self._parent
        if self.row_scaled and self.scaling == "fused":
            d_x, d_ratio = self.edge_scale
            c[self.roots] *= self.root_scale[expand]
            for i, x in enumerate(self.edge_order):
                c[x] = d_x[i] * c[x] + d_ratio[i] * c[parent[x]]
            return
        for x in self.edge_order:
            c[x] += c[parent[x]]
        if self.row_scaled:
            c *= self._cast_row_scale(c.dtype)[expand]

    # ------------------------------------------------------------------
    def execute(
        self, b: np.ndarray, *, out: np.ndarray | None = None, engine: Engine | None = None
    ) -> np.ndarray:
        """Full product ``M @ b`` for a dense 2-D ``b`` (plan's variant M)."""
        c = self.multiply(b, out=out, engine=engine)
        self.apply_update(c)
        self.stats.executions += 1
        return c

    def execute_vec(
        self, v: np.ndarray, *, engine: Engine | None = None
    ) -> np.ndarray:
        """Full product ``M @ v`` for a dense 1-D vector ``v``."""
        v = check_dense(v, name="v", ndim=1)
        if v.shape[0] != self.shape[1]:
            raise ShapeError.mismatch("CBM matvec", self.shape, v.shape)
        eng = engine or get_default_engine()
        if eng is Engine.SCIPY:
            u = np.asarray(self._scipy_handle() @ v)
        else:
            u = spmv(self.operand, v, engine=eng)
        self.apply_update(u)
        self.stats.matvecs += 1
        return u

    # ------------------------------------------------------------------
    def out_buffer(self, columns: int, dtype=np.float32) -> np.ndarray:
        """Acquire a pooled output buffer shaped for this plan's products."""
        return self.pool.acquire((self.shape[0], int(columns)), dtype)

    def stacked_operand(
        self, columns: int, dtype=np.float32, *, quantum: int = 1
    ) -> np.ndarray:
        """Pooled staging buffer for a micro-batched (stacked) operand.

        Shaped ``(shape[1], quantised columns)`` — the serving layer's
        batch collector copies each member's feature block into its
        column span before one stacked :meth:`execute`.  Width
        quantisation (``quantum``) keeps the pool key space small across
        variable batch widths; padding columns come back zero-filled so
        they are inert through the multiply and update stages.
        """
        return self.pool.acquire_stacked(
            self.shape[1], int(columns), dtype, quantum=quantum
        )

    def stacked_out(
        self, columns: int, dtype=np.float32, *, quantum: int = 1
    ) -> np.ndarray:
        """Pooled output buffer matching a :meth:`stacked_operand` width."""
        return self.pool.acquire_stacked(
            self.shape[0], int(columns), dtype, quantum=quantum
        )

    def release(self, buf: np.ndarray) -> None:
        """Return a buffer obtained from :meth:`out_buffer` to the pool."""
        self.pool.release(buf)

    def scalar_ops(self, columns: int):
        """Paper-convention :class:`~repro.core.opcount.OpCount` of one
        :meth:`execute` at the given operand width.

        Priced from the *built* plan (operand nnz, scheduled tree
        edges), so the format autotuner's misprediction residuals
        compare measured time against the cost of the schedule that
        actually ran, not the router's pre-build estimate.
        """
        from repro.core.opcount import cbm_rows_spmm_ops

        edges = int(sum(len(lv) for lv, _ in self.level_pairs))
        return cbm_rows_spmm_ops(
            self.operand.nnz, edges, int(columns), variant=self.variant.value
        )

    def describe(self) -> dict:
        """Plan summary used by the CLI and benchmark reports."""
        return {
            "variant": self.variant.value,
            "update": self.update,
            "scaling": self.scaling,
            "rows": self.shape[0],
            "cols": self.shape[1],
            "operand_nnz": self.operand.nnz,
            "levels": self.levels,
            "tree_edges": int(sum(len(lv) for lv, _ in self.level_pairs)),
            "branches": len(self.branches),
            "row_scaled": self.row_scaled,
            "build_seconds": self.stats.build_seconds,
            "executions": self.stats.executions,
            "workspace_bytes": self.workspace_bytes(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KernelPlan(variant={self.variant.value}, update={self.update}, "
            f"scaling={self.scaling}, levels={self.levels}, "
            f"executions={self.stats.executions})"
        )
