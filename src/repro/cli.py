"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the registered paper datasets and their stand-in statistics.
``stats <graph>``
    Degree/clustering/memory statistics of a dataset or MatrixMarket file.
``compress <graph> [-a ALPHA] [-o OUT.npz]``
    Compress to CBM, print the Table-II-style report, optionally persist.
``inspect <file.npz>``
    Summarise a stored CBM archive.
``bench <graph> [-a ALPHA] [-p COLUMNS]``
    Time CSR vs CBM SpMM on this machine and print the model's 1/16-core
    predictions at paper scale (for registry datasets).
``check {artifact,plan,code,concurrency} ...``
    Static invariant checks (no kernel runs): audit CBM artifacts and
    archives, prove kernel plans race-free, contract-lint the source
    tree, and run the whole-stack concurrency verifier (unified plan IR
    + happens-before races + lock-order/deadlock analysis, with an
    optional dynamic lock-witness cross-check).  Every subcommand takes
    ``--json`` for a machine-readable report.  Nonzero exit on any
    finding.
``crash-soak``
    Kill-9 chaos soak of the persistence tier: writer/trainer workloads
    SIGKILLed at randomized durability sync points, then recovered and
    checked against the crash-safety invariants.  Nonzero exit on any
    violation.
``tune <graph>``
    Route a graph through the format autotuner: per-block CBM-vs-CSR
    decision table with predicted vs measured costs.
``tune-soak``
    Workload-shift soak of the autotuner: lying cost model and
    adversarial mutations; the misprediction watchdog must re-tune with
    zero dropped or wrong requests.  Nonzero exit on any violation.

``<graph>`` is a registry name (see ``datasets``), ``mixed[:N]`` (the
router-stressing mixed-structure benchmark graph), or a path to a
MatrixMarket ``.mtx`` file.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.core.builder import build_cbm
from repro.core.io import load_cbm, save_cbm
from repro.graphs.datasets import REGISTRY, load_dataset, paper_stats
from repro.graphs.stats import compute_stats
from repro.parallel.simulate import predict_cbm_spmm, predict_csr_spmm
from repro.sparse.csr import CSRMatrix
from repro.sparse.io import load_matrix_market
from repro.sparse.ops import spmm
from repro.utils.fmt import format_table, human_bytes, human_time
from repro.utils.timing import measure


def _load_graph(spec: str) -> tuple[str, CSRMatrix]:
    if spec in REGISTRY:
        return spec, load_dataset(spec)
    if spec == "mixed" or spec.startswith("mixed:"):
        # The mixed-structure benchmark graph (clique half + banded half)
        # is deliberately not in REGISTRY — it exists to stress the
        # format router, not to stand in for a paper dataset.
        from repro.graphs import mixed_structure_graph

        n = int(spec.partition(":")[2] or 768)
        return f"mixed({n})", mixed_structure_graph(n, seed=0)
    if os.path.exists(spec):
        a = load_matrix_market(spec)
        a.data.fill(1)  # treat any weights as structure
        return os.path.basename(spec), a
    raise SystemExit(
        f"unknown graph {spec!r}: not a registered dataset "
        f"({', '.join(sorted(REGISTRY))}), not 'mixed[:N]', and not a file"
    )


def cmd_datasets(_args) -> int:
    rows = []
    for name, spec in REGISTRY.items():
        a = load_dataset(name)
        ps = spec.paper
        rows.append(
            [
                name,
                spec.family,
                a.shape[0],
                a.nnz,
                f"{a.nnz / a.shape[0]:.1f}",
                ps.nodes,
                ps.edges,
            ]
        )
    print(
        format_table(
            ["Name", "Family", "Nodes", "Edges", "AvgDeg", "Nodes(paper)", "Edges(paper)"],
            rows,
            title="Registered datasets (synthetic stand-ins; paper originals on the right)",
        )
    )
    return 0


def cmd_stats(args) -> int:
    name, a = _load_graph(args.graph)
    st = compute_stats(a, clustering=not args.no_clustering)
    print(f"{name}: {st.nodes} nodes, {st.edges} undirected edges")
    print(f"  average degree        {st.average_degree:.2f}")
    if not args.no_clustering:
        print(f"  average clustering    {st.average_clustering:.3f}")
    print(f"  CSR footprint         {human_bytes(st.csr_bytes)}")
    return 0


def cmd_compress(args) -> int:
    name, a = _load_graph(args.graph)
    cbm, rep = build_cbm(a, alpha=args.alpha)
    print(f"{name}: compressed in {human_time(rep.seconds)} (alpha={args.alpha})")
    print(f"  candidate edges       {rep.candidate_edges}")
    print(f"  tree edges / roots    {rep.tree_edges} / {rep.roots}")
    print(f"  deltas vs nnz         {rep.total_deltas} / {rep.source_nnz}")
    print(f"  S_CBM                 {human_bytes(rep.memory_bytes)}")
    print(f"  compression ratio     {rep.compression_ratio:.2f}x")
    if args.output:
        save_cbm(args.output, cbm)
        print(f"  written to            {args.output}")
    return 0


def cmd_inspect(args) -> int:
    cbm = load_cbm(args.file)
    st = cbm.stats()
    rows = [[k, v if not isinstance(v, float) else f"{v:.4f}"] for k, v in st.items()]
    print(format_table(["field", "value"], rows, title=f"CBM archive {args.file}"))
    return 0


def cmd_bench(args) -> int:
    exit_code = 0
    name, a = _load_graph(args.graph)
    cbm, rep = build_cbm(a, alpha=args.alpha)
    x = np.random.default_rng(0).random((a.shape[1], args.columns), dtype=np.float64)
    x = x.astype(np.float32)
    t_csr = measure(lambda: spmm(a, x), max_repeats=args.repeats)
    cbm.plan()  # plan once, outside the timed region
    t_cbm = measure(lambda: cbm.matmul(x), max_repeats=args.repeats)
    print(f"{name} (alpha={args.alpha}, p={args.columns}, ratio={rep.compression_ratio:.2f}x)")
    print(f"  CSR SpMM   {human_time(t_csr.mean)} +- {human_time(t_csr.std)}")
    print(f"  CBM SpMM   {human_time(t_cbm.mean)} +- {human_time(t_cbm.std)} (planned)")
    print(f"  measured speedup (1 core): {t_csr.mean / t_cbm.mean:.2f}x")
    if args.guarded or args.strict:
        from repro.errors import ReproError
        from repro.reliability import GuardedKernel

        guard = GuardedKernel(cbm, source=a, strict=args.strict)
        mode = "strict" if args.strict else "guarded"
        try:
            guard.matmul(x)  # warm (validation buffers, plan reuse)
            t_guard = measure(lambda: guard.matmul(x), max_repeats=args.repeats)
            overhead = (t_guard.mean / t_cbm.mean - 1.0) * 100.0
            print(
                f"  CBM SpMM   {human_time(t_guard.mean)} +- {human_time(t_guard.std)} "
                f"({mode}, {overhead:+.1f}% vs planned)"
            )
        except ReproError as exc:
            # Strict mode fails fast: surface the error and a nonzero exit
            # code so CI treats any fast-path degradation as a failure.
            print(f"  {mode} guarded run FAILED: {type(exc).__name__}: {exc}")
            exit_code = 1
        gs = guard.stats.snapshot()
        print(
            f"  guard counters: {gs['calls']} calls, {gs['fallbacks']} fallbacks, "
            f"{gs['input_rejections']} input rejections, "
            f"{gs['warnings_suppressed']} warnings suppressed"
        )
        if gs["reasons"]:
            reasons = ", ".join(f"{k}={v}" for k, v in sorted(gs["reasons"].items()))
            print(f"  fallback reasons: {reasons}")
        if args.strict and gs["fallbacks"]:
            print("  strict mode: fallbacks occurred -> exit 1")
            exit_code = 1
    if args.unplanned:
        t_unp = measure(lambda: cbm.matmul_unplanned(x), max_repeats=args.repeats)
        print(f"  CBM SpMM   {human_time(t_unp.mean)} +- {human_time(t_unp.std)} (unplanned)")
        print(f"  plan amortisation: {t_unp.mean / t_cbm.mean:.2f}x")
    if args.graph in REGISTRY:
        ps = paper_stats(args.graph)
        s_nnz = ps.edges / a.nnz
        s_rows = ps.nodes / a.shape[0]
        for cores in (1, 16):
            c = predict_csr_spmm(a, args.columns, cores=cores, scale_nnz=s_nnz, scale_rows=s_rows)
            b = predict_cbm_spmm(cbm, args.columns, cores=cores, scale_nnz=s_nnz, scale_rows=s_rows)
            print(f"  model speedup at paper scale ({cores:2d} cores): {c.total_s / b.total_s:.2f}x")
    return exit_code


def cmd_model(args) -> int:
    from repro.parallel.report import cost_breakdown, render_breakdown

    name, a = _load_graph(args.graph)
    cbm, rep = build_cbm(a, alpha=args.alpha)
    if args.graph in REGISTRY:
        ps = paper_stats(args.graph)
        s_nnz = ps.edges / a.nnz
        s_rows = ps.nodes / a.shape[0]
        scale_note = "paper scale"
    else:
        s_nnz = s_rows = 1.0
        scale_note = "native scale"
    rows = cost_breakdown(a, cbm, args.columns, scale_nnz=s_nnz, scale_rows=s_rows)
    print(
        render_breakdown(
            rows,
            f"Machine-model cost breakdown — {name} (alpha={args.alpha}, "
            f"p={args.columns}, ratio={rep.compression_ratio:.2f}x, {scale_note})",
        )
    )
    return 0


def cmd_plan(args) -> int:
    from repro.parallel.cache import plan_working_set
    from repro.parallel.schedule import plan_update_schedule
    from repro.utils.timing import measure as _measure

    name, a = _load_graph(args.graph)
    cbm, rep = build_cbm(a, alpha=args.alpha)
    plan = cbm.plan()
    desc = plan.describe()
    rows = [[k, v if not isinstance(v, float) else f"{v:.6f}"] for k, v in desc.items()]
    print(
        format_table(
            ["field", "value"],
            rows,
            title=f"Kernel plan — {name} (alpha={args.alpha}, "
            f"ratio={rep.compression_ratio:.2f}x)",
        )
    )
    sched = plan_update_schedule(plan, args.columns, args.threads)
    ws = plan_working_set(plan, args.columns)
    print(
        f"  update-stage schedule @ {args.threads} threads: "
        f"speedup {sched.speedup:.2f}x, utilisation {sched.utilisation:.0%} "
        f"over {sched.tasks} branches"
    )
    print(f"  working set: sparse {human_bytes(ws.sparse_bytes)}, "
          f"dense {human_bytes(ws.dense_bytes)} at p={args.columns}")
    x = np.random.default_rng(0).random((a.shape[1], args.columns), dtype=np.float64)
    x = x.astype(np.float32)
    t_planned = _measure(lambda: cbm.matmul(x), max_repeats=args.repeats)
    t_unplanned = _measure(lambda: cbm.matmul_unplanned(x), max_repeats=args.repeats)
    print(f"  planned execute   {human_time(t_planned.mean)}")
    print(f"  unplanned matmul  {human_time(t_unplanned.mean)} "
          f"({t_unplanned.mean / t_planned.mean:.2f}x slower)")
    return 0


def cmd_serve_bench(args) -> int:
    """Run the chaos-under-load serving soak and print its report.

    Exit code 0 only when every invariant held: zero results diverging
    from the CSR reference, zero hung requests, and (with chaos on) the
    circuit breaker both tripped to the CSR degraded tier and recovered
    to the fast tier through half-open probing.
    """
    import json
    import warnings as _warnings

    from repro.reliability.guard import FallbackWarning
    from repro.serving import run_batched_soak, run_soak

    name, a = _load_graph(args.graph)
    if args.batched:
        report = run_batched_soak(
            a,
            alpha=args.alpha,
            clients=args.clients,
            requests_per_client=args.requests,
            max_width=args.columns,
            deadline_s=args.deadline,
            workers=args.workers,
            max_columns=args.max_columns,
            latency_budget_s=args.budget_ms / 1e3,
            seed=args.seed,
        )
        print(f"batched serving soak — {name} (alpha={args.alpha}, "
              f"{args.clients} clients, max_width={args.columns}, "
              f"batch<= {args.max_columns} cols, budget {args.budget_ms:.1f}ms)")
        rows = []
        for ph in report["phases"]:
            rows.append([
                ph["phase"], ph["requests"], ph["ok"], ph["wrong"],
                ph["cross_generation"], ph["shed"], ph["deadline_misses"],
                ph["input_rejected"], ph["errors"], ph["hung"],
                f"{ph['latency_p50_ms']:.2f}" if ph["latency_p50_ms"] is not None else "-",
                f"{ph['latency_p99_ms']:.2f}" if ph["latency_p99_ms"] is not None else "-",
            ])
        print(format_table(
            ["phase", "req", "ok", "wrong", "xgen", "shed", "dl", "rej",
             "err", "hung", "p50 ms", "p99 ms"],
            rows,
        ))
        sv = report["service"]
        bt = report["batching"]
        print(f"  service: {sv['batches']} batches, {sv['coalesced']} coalesced, "
              f"{sv['batch_victims']} batch victims, {sv['retries']} retries, "
              f"{sv['swaps']} swaps")
        print(f"  collector: {bt['collector']}")
        for key, ok in report["checks"].items():
            print(f"  [{'ok' if ok else 'FAIL'}] {key}")
        for v in report["violations"]:
            print(f"  violation: {v}")
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(report, fh, indent=1, sort_keys=True)
            print(f"  report written to {args.json}")
        return 0 if report["ok"] else 1
    with _warnings.catch_warnings():
        if not args.verbose:
            _warnings.simplefilter("ignore", FallbackWarning)
        report = run_soak(
            a,
            alpha=args.alpha,
            clients=args.clients,
            requests_per_client=args.requests,
            p=args.columns,
            deadline_s=args.deadline,
            threads=args.threads,
            workers=args.workers,
            fail_rate=args.fail_rate,
            stall_rate=args.stall_rate,
            seed=args.seed,
        )
    print(f"serving soak — {name} (alpha={args.alpha}, {args.clients} clients, "
          f"p={args.columns}, deadline {args.deadline:.1f}s)")
    rows = []
    for ph in report["phases"]:
        rows.append([
            ph["phase"], ph["requests"], ph["ok"], ph["wrong"], ph["shed"],
            ph["deadline_misses"], ph["input_rejected"], ph["errors"], ph["hung"],
            f"{ph['latency_p50_ms']:.2f}" if ph["latency_p50_ms"] is not None else "-",
            f"{ph['latency_p99_ms']:.2f}" if ph["latency_p99_ms"] is not None else "-",
        ])
    print(format_table(
        ["phase", "req", "ok", "wrong", "shed", "dl", "rej", "err", "hung",
         "p50 ms", "p99 ms"],
        rows,
    ))
    br = report["breaker"]
    ch = report["chaos"]
    sv = report["service"]
    print(f"  breaker: {br['state']} at tier {br['tier']}, "
          f"{br['transitions']} transitions")
    print(f"  chaos: {ch['injected_failures']} worker kills, "
          f"{ch['injected_stalls']} stalls over {ch['built']} executors")
    print(f"  service: {sv['retries']} retries, {sv['shed']} shed, "
          f"{sv['swaps']} swaps")
    for key, ok in report["checks"].items():
        print(f"  [{'ok' if ok else 'FAIL'}] {key}")
    for v in report["violations"]:
        print(f"  violation: {v}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
        print(f"  report written to {args.json}")
    return 0 if report["ok"] else 1


def _emit_check_reports(reports, json_path, verbose) -> int:
    """Render audit reports, optionally write JSON, return the exit code.

    Exit is nonzero when any report carries a finding — ``repro check``
    is a gate, so a violated invariant must fail the invoking job.
    """
    import json

    findings = 0
    for rep in reports:
        if verbose or not rep.ok:
            print(rep.render())
        else:
            print(f"{rep.subject}: clean ({sum(rep.checks.values())} checks)")
        findings += len(rep.findings)
    if json_path:
        payload = {
            "ok": findings == 0,
            "findings": findings,
            "reports": [rep.to_dict() for rep in reports],
        }
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
        print(f"audit report written to {json_path}")
    if findings:
        print(f"FAIL: {findings} finding(s)")
        return 1
    return 0


def cmd_check_artifact(args) -> int:
    """Statically audit CBM artifacts: archives or freshly built matrices."""
    from repro.staticcheck import audit_archive, audit_cbm

    reports = []
    for spec in args.target:
        if os.path.exists(spec) and spec.endswith(".npz"):
            reports.append(audit_archive(spec))
        else:
            name, a = _load_graph(spec)
            cbm, _ = build_cbm(a, alpha=args.alpha)
            reports.append(audit_cbm(cbm, subject=f"{name}(alpha={args.alpha})"))
    return _emit_check_reports(reports, args.json, args.verbose)


def cmd_check_plan(args) -> int:
    """Statically prove a kernel plan's update stage race-free.

    Also audits the batched-serving schedule: a representative
    stacked-operand :class:`BatchLayout` (mixed member widths up to the
    column cap, quantised) is proven free of cross-member aliasing,
    bounds violations, and unowned gap columns alongside each plan.
    With ``--shards N`` the process-parallel shard plan is audited too:
    every row owned by exactly one shard, and no two operand arrays
    aliasing byte spans within a shared-memory segment.

    The autotuner's hybrid format plan rides along: the cost-model
    router's block map for the graph is materialised into a
    :class:`HybridPlan` and lowered through the unified IR —
    disjoint/covering spans (HZ-H201/H202) and executor-vs-committed-map
    agreement (HZ-H201 stale map, HZ-H203 mis-route).
    """
    from repro.autotune import RouterPolicy, build_hybrid, tune
    from repro.serving.batching import BatchConfig, BatchLayout
    from repro.staticcheck import (
        analyze_hybrid_plan,
        analyze_ir,
        analyze_plan,
        analyze_shard_plan,
        lower_hybrid_plan,
    )

    cfg = BatchConfig(max_columns=args.batch_columns)
    widths = []
    w = 1
    while sum(widths) + w <= cfg.max_columns:
        widths.append(w)
        w = min(w * 2, cfg.max_columns - sum(widths) or 1)
    reports = []
    for spec in args.target:
        name, a = _load_graph(spec)
        cbm, _ = build_cbm(a, alpha=args.alpha)
        layout = BatchLayout.pack(widths, quantum=cfg.quantum, n_rows=cbm.shape[0])
        for update in ("level", "edge"):
            plan = cbm.plan(update=update)
            reports.append(
                analyze_plan(
                    plan,
                    threads=args.threads,
                    p=args.columns,
                    branch_timeout=args.branch_timeout,
                    batch_layout=layout,
                    subject=f"{name}(alpha={args.alpha},update={update})",
                )
            )
        if args.shards > 0:
            from repro.parallel.shard import ShardedPlan

            with ShardedPlan(a, num_shards=args.shards, alpha=args.alpha) as sharded:
                reports.append(
                    analyze_shard_plan(
                        sharded,
                        subject=f"{name}(alpha={args.alpha},shards={args.shards})",
                    )
                )
        # Hybrid format plan: route with the cost model (no measurement
        # race — this is a static gate), lower, and audit.
        tuned = tune(a, cbm, args.columns, policy=RouterPolicy(measure=False))
        subject = f"{name}(alpha={args.alpha},route={tuned.chosen})"
        hybrid = build_hybrid(cbm, a, tuned.decision)
        if hybrid is not None:
            reports.append(analyze_hybrid_plan(hybrid, subject=subject))
            hybrid.drain()
        else:  # pure-CBM route: audit the one-block map itself
            reports.append(
                analyze_ir(
                    lower_hybrid_plan(
                        blocks=tuned.decision.block_map(),
                        n_rows=cbm.shape[0],
                        subject=subject,
                    )
                )
            )
    return _emit_check_reports(reports, args.json, args.verbose)


def cmd_check_code(args) -> int:
    """Run the contract linter over the source tree (ruff-style output).

    Baseline hygiene rides along: entries in the baseline file that no
    longer match any current finding are reported as stale (the debt was
    paid but the ledger not updated).  Stale entries warn by default and
    fail the run under ``--strict-baseline``.
    """
    import json

    from repro.staticcheck import lint_paths_with_baseline, load_baseline

    baseline = load_baseline(args.baseline) if args.baseline else set()
    findings, stale = lint_paths_with_baseline(args.paths, baseline=baseline)
    for f in findings:
        print(f.render())
    for entry in sorted(stale):
        print(
            f"{args.baseline}: stale baseline entry `{entry}` no longer "
            "matches any finding — delete it"
        )
    checked = args.paths if len(args.paths) > 1 else args.paths[0]
    failed = bool(findings) or (bool(stale) and args.strict_baseline)
    if args.json:
        payload = {
            "ok": not failed,
            "findings": [f.to_dict() for f in findings],
            "stale_baseline": sorted(stale),
            "baseline_entries": len(baseline),
            "strict_baseline": bool(args.strict_baseline),
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
        print(f"lint report written to {args.json}")
    if findings:
        print(f"FAIL: {len(findings)} contract finding(s) in {checked}")
        return 1
    if stale and args.strict_baseline:
        print(f"FAIL: {len(stale)} stale baseline entry(ies) in {args.baseline}")
        return 1
    suffix = f", {len(stale)} stale" if stale else ""
    print(
        f"{checked}: clean (contract lint, baseline {len(baseline)} "
        f"entries{suffix})"
    )
    return 0


def _witness_exercise(a, *, alpha: int, seed: int = 0):
    """Run a miniature serving workload under the lock-witness recorder.

    Builds a small :class:`InferenceService` over ``a``, instruments its
    locks (service, stats, collector, breaker), then drives the paths
    whose lock interplay the static graph models: batched submits, a hot
    slot swap, stats snapshots, and shutdown.  Returns the populated
    :class:`LockWitness`.
    """
    from repro.serving import AdjacencySlot, BatchConfig, InferenceService
    from repro.staticcheck import witness_service

    rng = np.random.default_rng(seed)
    slot = AdjacencySlot.from_graph(a, alpha=alpha)
    with InferenceService(
        slot,
        workers=2,
        batch=BatchConfig(latency_budget_s=0.02),
        seed=seed,
    ) as svc:
        witness = witness_service(svc)
        n = a.shape[0]
        futures = [
            svc.submit(rng.standard_normal((n, 1 + (i % 3))))
            for i in range(6)
        ]
        for f in futures:
            f.result(30.0)
        svc.swap_slot(AdjacencySlot.from_graph(a, alpha=alpha))
        futures = [svc.submit(rng.standard_normal((n, 2))) for _ in range(3)]
        for f in futures:
            f.result(30.0)
        svc.stats.snapshot()
    return witness


def cmd_check_concurrency(args) -> int:
    """Whole-stack concurrency verification: IR audits + SC7xx lock pass.

    Lowers every plan shape the benchmarks construct — kernel plans
    (threaded branch replay and sequential level schedules, each with a
    prospective fused row-scaling stage), the stacked-operand batch
    layout, the N-shard process plan with its shared-memory segments,
    and the streaming snapshot/rebuild/publish protocol — into the
    unified IR and proves each free of span-discipline violations and
    happens-before races (HZ-R4xx).  Then runs the lock-order and
    blocking-call analysis (SC7xx) over the source tree, and with
    ``--witness`` cross-checks the static lock graph against acquisition
    orders recorded from a live miniature serving workload
    (SC704/SC705).  Nonzero exit on any finding.
    """
    from repro.serving.batching import BatchConfig, BatchLayout
    from repro.staticcheck import (
        FusedStage,
        analyze_ir,
        analyze_locks,
        cross_check,
        lower_batch_layout,
        lower_kernel_plan,
        lower_shard_plan,
        lower_stream_swap,
    )

    cfg = BatchConfig(max_columns=args.batch_columns)
    widths = []
    w = 1
    while sum(widths) + w <= cfg.max_columns:
        widths.append(w)
        w = min(w * 2, cfg.max_columns - sum(widths) or 1)
    reports = []
    for spec in args.target:
        name, a = _load_graph(spec)
        cbm, _ = build_cbm(a, alpha=args.alpha)
        for update in ("level", "edge"):
            plan = cbm.plan(update=update)
            fused = (
                (FusedStage("row-scale", branch=0),) if plan.branches else ()
            )
            for threaded in (True, False):
                mode = "threaded" if threaded else "sequential"
                reports.append(
                    analyze_ir(
                        lower_kernel_plan(
                            plan,
                            threaded=threaded,
                            fused=fused if threaded else (),
                            subject=(
                                f"{name}(alpha={args.alpha},"
                                f"update={update},{mode})"
                            ),
                        )
                    )
                )
        layout = BatchLayout.pack(widths, quantum=cfg.quantum, n_rows=cbm.shape[0])
        reports.append(
            analyze_ir(
                lower_batch_layout(layout, subject=f"{name}(batch-layout)")
            )
        )
        if args.shards > 0:
            from repro.parallel.shard import ShardedPlan

            with ShardedPlan(a, num_shards=args.shards, alpha=args.alpha) as sharded:
                reports.append(
                    analyze_ir(
                        lower_shard_plan(
                            sharded,
                            subject=f"{name}(shards={args.shards})",
                        )
                    )
                )
    reports.append(analyze_ir(lower_stream_swap()))
    graph = None
    if not args.no_locks:
        lock_report, graph = analyze_locks(args.paths)
        reports.append(lock_report)
    if args.witness:
        if graph is None:
            _, graph = analyze_locks(args.paths)
        _, a = _load_graph(args.target[0])
        witness = _witness_exercise(a, alpha=args.alpha, seed=args.seed)
        print(
            f"witness: {sum(witness.acquisitions.values())} acquisitions "
            f"over {len(witness.acquisitions)} locks, "
            f"{len(witness.edges)} distinct ordered pairs"
        )
        reports.append(cross_check(witness, graph))
    return _emit_check_reports(reports, args.json, args.verbose)


def cmd_crash_soak(args) -> int:
    """Kill-9 soak of the persistence tier (see repro.recovery.crashsim).

    Exit 0 only when every durability invariant held across all trials:
    no committed generation lost, latest() never corrupt, every torn
    temp file quarantined, recovery time within budget.  With
    ``--break-protocol`` the harness runs a deliberately buggy writer
    and the expected outcome inverts: a nonzero exit proves the
    invariant checks detect the bug.
    """
    import json

    from repro.recovery.crashsim import run_soak

    def progress(done, total, trial):
        if args.verbose:
            status = "ok" if trial.ok else "VIOLATION"
            print(
                f"  [{done:3d}/{total}] {trial.workload:8s} crash_at={trial.crash_at:3d} "
                f"{'killed' if trial.killed else 'clean '} "
                f"committed={len(trial.announced)} kept={len(trial.kept)} "
                f"quarantined={trial.quarantined} {status}"
            )

    workloads = (
        ("archive",)
        if args.break_protocol
        else ("archive", "trainer", "multi", "streaming")
    )
    report = run_soak(
        trials=args.trials,
        seed=args.seed,
        workloads=workloads,
        iterations=args.iterations,
        break_protocol=args.break_protocol,
        recovery_budget_s=args.recovery_budget,
        progress=progress,
    )
    print(f"crash soak — {report['trials']} trials, "
          f"{report['killed']} SIGKILLed, {report['clean_exits']} clean exits "
          f"({report['elapsed_s']:.1f}s)")
    print(f"  commits observed        {report['commits_observed']}")
    print(f"  generations quarantined {report['generations_quarantined']}")
    print(f"  stray tmp quarantined   {report['stray_tmp_quarantined']}")
    print(f"  max recovery time       {report['max_recovery_s'] * 1e3:.1f} ms "
          f"(budget {report['recovery_budget_s']:.1f}s)")
    for name, stats in report["workloads"].items():
        print(f"  {name:8s} trials={stats['trials']} kills={stats['kills']} "
              f"violations={stats['violations']}")
    for v in report["violations"]:
        print(f"  violation: {v}")
    print(f"  {'OK' if report['ok'] else 'FAIL'}: "
          f"{len(report['violations'])} violated invariant(s)")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
        print(f"  report written to {args.json}")
    return 0 if report["ok"] else 1


def cmd_stream_soak(args) -> int:
    """Mutation-storm soak of the streaming tier (repro.streaming.soak).

    Concurrent edge mutations + batched inference + background rebuilds
    + kill-9 rebuild crashes over one live system.  Exit 0 only when
    every served result bitwise-matched a published generation within
    the staleness budget, no request was dropped or hung, every crashed
    rebuild recovered or quarantined, the pinned generation survived
    retention pruning, and both the patched and the rebuilt artifacts
    passed their static audits.
    """
    import json

    from repro.streaming import run_mutation_soak

    a = None
    if args.graph:
        _, a = _load_graph(args.graph)

    def progress(msg):
        if args.verbose:
            print(f"  {msg}")

    report = run_mutation_soak(
        a,
        seed=args.seed,
        clients=args.clients,
        requests_per_client=args.requests,
        mutator_batches=args.mutations,
        edges_per_batch=args.edges,
        staleness_budget=args.staleness_budget,
        max_drift=args.max_drift,
        crash_trials=args.crash_trials,
        min_requests=args.min_requests,
        progress=progress,
    )
    w = report["workload"]
    print(
        f"mutation soak — {w['nodes']} nodes, {w['nnz_initial']} edges, "
        f"{w['clients']} clients ({report['elapsed_s']:.1f}s)"
    )
    print(f"  requests served        {report['requests']} "
          f"(verified {report['verified_ok']}, wrong {report['wrong']}, "
          f"hung {report['hung']}, dropped {report['dropped']}, "
          f"errors {report['errors']})")
    print(f"  patches applied        {report['patches_applied']} "
          f"(p50 {report['patch_p50_ms'] or 0:.2f} ms, "
          f"max staleness {report['max_staleness']}/{w['staleness_budget']})")
    print(f"  rebuilds completed     {report['rebuilds']} "
          f"(wall {report['rebuild_wall_s']})")
    print(f"  generations committed  {report['generations_committed']}")
    for t in report["crash"]:
        print(f"  crash trial            crash_at={t['crash_at']} "
              f"{'killed' if t['killed'] else 'clean'} kept={t['kept']} "
              f"quarantined={t['quarantined']} {'ok' if t['ok'] else 'VIOLATION'}")
    for name, ok in report["checks"].items():
        print(f"  {'PASS' if ok else 'FAIL'}  {name}")
    for v in report["violations"]:
        print(f"  violation: {v}")
    print(f"  {'OK' if report['ok'] else 'FAIL'}: "
          f"{len(report['violations'])} violation(s)")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True, default=str)
        print(f"  report written to {args.json}")
    return 0 if report["ok"] else 1


def cmd_shard_soak(args) -> int:
    """Worker-kill soak of the sharded process executor (repro.parallel.soak).

    Exit 0 only when every supervised execution under the SIGKILL/stall/
    torn-write storm returned the reference answer within its deadline
    and no ``/dev/shm`` segment survived the run.  With
    ``--no-supervisor`` the same storm runs against the unsupervised
    pool and the expected outcome inverts: a nonzero exit proves the
    harness's wrongness/hang checks have teeth (negative control).
    """
    import json

    from repro.parallel.soak import run_shard_soak

    a = None
    if args.graph:
        _, a = _load_graph(args.graph)

    def progress(done, total, elapsed, wrong, hung):
        if args.verbose:
            print(
                f"  [{done:3d}/{total}] {elapsed * 1e3:7.1f} ms "
                f"wrong={wrong} hung={hung}"
            )

    report = run_shard_soak(
        a,
        n=args.nodes,
        num_shards=args.shards,
        workers=args.workers,
        executions=args.executions,
        columns=args.columns,
        variant=args.variant,
        kill_rate=args.kill_rate,
        stall_rate=args.stall_rate,
        torn_rate=args.torn_rate,
        stall_seconds=args.stall_seconds,
        heartbeat_timeout_s=args.heartbeat_timeout,
        deadline_s=args.deadline,
        supervised=not args.no_supervisor,
        seed=args.seed,
        progress=progress,
    )
    w = report["workload"]
    print(
        f"shard soak — {w['nodes']} nodes, {w['nnz']} edges, "
        f"{w['num_shards']} shards × {w['workers']} workers, "
        f"{'supervised' if w['supervised'] else 'UNSUPERVISED'} "
        f"({report['elapsed_s']:.1f}s)"
    )
    print(f"  executions             {w['executions']} "
          f"(wrong {report['wrong']}, hung {report['hung']}, "
          f"errors {report['errors']})")
    print(f"  faults decided         {report['faults_decided']} "
          f"(kill {report['chaos']['kill_rate']}, "
          f"stall {report['chaos']['stall_rate']}, "
          f"torn {report['chaos']['torn_rate']})")
    if report["supervisor"] is not None:
        s = report["supervisor"]["stats"]
        print(f"  supervision            retries={s['shard_retries']} "
              f"heartbeat_kills={s['heartbeat_kills']} "
              f"checksum_rejects={s['checksum_rejects']} "
              f"quarantines={s['quarantines']} "
              f"degraded={s['degraded_executions']}")
        print(f"  breaker                {report['supervisor']['breaker']['tier']} "
              f"({report['supervisor']['breaker']['state']})")
    print(f"  latency p50/max        {report['latency_p50_ms'] or 0:.1f} / "
          f"{report['latency_max_ms'] or 0:.1f} ms")
    print(f"  shm swept at start     {len(report['swept_at_start'])}")
    print(f"  shm leaked at end      {len(report['leaked_segments'])}")
    for name, ok in report["checks"].items():
        print(f"  {'PASS' if ok else 'FAIL'}  {name}")
    for v in report["violations"]:
        print(f"  violation: {v}")
    print(f"  {'OK' if report['ok'] else 'FAIL'}: "
          f"{len(report['violations'])} violation(s)")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True, default=str)
        print(f"  report written to {args.json}")
    return 0 if report["ok"] else 1


def cmd_tune(args) -> int:
    """Route a graph through the format autotuner and print the decision.

    Calibrates the cost model on the actual matrix, prints the router's
    per-block decision table (predicted CSR vs CBM seconds per block),
    then races the candidate routes and reports the measured winner.
    ``--pin`` skips the race and forces a route; ``--no-measure`` trusts
    the model alone (what a budget-constrained background re-tune does).
    """
    import json

    from repro.autotune import CostModel, FormatRouter, RouterPolicy, tune

    name, a = _load_graph(args.graph)
    cbm, _ = build_cbm(a, alpha=args.alpha)
    policy = RouterPolicy(measure=not args.no_measure, pin=args.pin)
    model = CostModel.calibrate(a, cbm, columns=args.columns)
    routed = FormatRouter(model).decide(a, cbm, args.columns, policy=policy)
    report = tune(a, cbm, args.columns, policy=policy, model=model)

    rows = []
    for b in routed.blocks:
        c = b.cost
        rows.append(
            [
                f"[{b.lo}, {b.hi})",
                b.rows,
                c.nnz if c else "-",
                c.delta_nnz if c else "-",
                c.levels if c else "-",
                f"{c.csr_s * 1e6:.1f}" if c else "-",
                f"{c.cbm_s * 1e6:.1f}" if c else "-",
                b.fmt,
            ]
        )
    print(
        format_table(
            ["block", "rows", "nnz", "deltas", "levels", "csr(us)", "cbm(us)", "choice"],
            rows,
            title=f"{name}: router block map (p={args.columns}, alpha={args.alpha})",
        )
    )
    pred = routed.predicted
    print(f"  predicted             csr {pred.get('csr', 0.0) * 1e6:.1f} us   "
          f"cbm {pred.get('cbm', 0.0) * 1e6:.1f} us   "
          f"routed {pred.get('routed', 0.0) * 1e6:.1f} us")
    if report.candidates:
        meas = "   ".join(
            f"{k} {v * 1e6:.1f} us" for k, v in sorted(report.candidates.items())
        )
        print(f"  measured              {meas}")
    suffix = " (pinned)" if args.pin else ("" if report.measured else " (model only)")
    print(f"  chosen route          {report.chosen}{suffix}")
    print(f"  tune wall time        {human_time(report.seconds)}")
    if args.json:
        payload = {
            "graph": name,
            "alpha": args.alpha,
            **report.to_dict(),
            "table": [b.to_dict() for b in routed.blocks],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
        print(f"  report written to {args.json}")
    return 0


def cmd_tune_soak(args) -> int:
    """Workload-shift soak of the format autotuner (repro.autotune.soak).

    The initial tune is sabotaged by a lying cost model; the watchdog
    must catch the misprediction, re-tune in the background with zero
    dropped or wrong requests, and converge back to within tolerance of
    the best static format.  Adversarial structure mutations then shift
    the workload and the drift trigger must fire a second re-tune.  With
    ``--pin FORMAT`` the negative control runs: the route is pinned, the
    retuner disabled, and a wrong pin must FAIL the convergence gate.
    """
    import json

    from repro.autotune import run_tune_soak

    a = None
    if args.graph:
        _, a = _load_graph(args.graph)

    def progress(msg):
        if args.verbose:
            print(f"  {msg}")

    report = run_tune_soak(
        a,
        seed=args.seed,
        columns=args.columns,
        clients=args.clients,
        requests_per_client=args.requests,
        mutation_batches=args.mutations,
        scatter_edges=args.edges,
        lie_factor=args.lie_factor,
        pin_format=args.pin,
        convergence_tolerance=args.tolerance,
        min_requests=args.min_requests,
        progress=progress,
    )
    w = report["workload"]
    mode = (
        f", pinned {w['pin_format']}" if w["pin_format"]
        else f", lie x{w['lie_factor']:g}"
    )
    print(f"tune soak — {w['nodes']} nodes, {w['nnz_initial']} edges, "
          f"{w['clients']} clients{mode} ({report['elapsed_s']:.1f}s)")
    print(f"  requests served        {report['requests']} "
          f"(verified {report['verified_ok']}, wrong {report['wrong']}, "
          f"hung {report['hung']}, dropped {report['dropped']}, "
          f"errors {report['errors']})")
    print(f"  route                  {report['initial_route']} -> "
          f"{report['served_route']}")
    print(f"  re-tunes               {report['retunes']} "
          f"({', '.join(report['retune_reasons']) or 'none'})")
    race = "   ".join(
        f"{k} {v * 1e6:.1f} us"
        for k, v in sorted(report["final_candidates"].items())
    )
    print(f"  final race             {race}")
    print(f"  served vs best static  {report['served_s'] * 1e6:.1f} / "
          f"{report['best_static_s'] * 1e6:.1f} us")
    for key, ok in report["checks"].items():
        print(f"  {'PASS' if ok else 'FAIL'}  {key}")
    for v in report["violations"]:
        print(f"  violation: {v}")
    print(f"  {'OK' if report['ok'] else 'FAIL'}: "
          f"{len(report['violations'])} violation(s)")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True, default=str)
        print(f"  report written to {args.json}")
    return 0 if report["ok"] else 1


def cmd_verify(args) -> int:
    from repro.core.verify import verify_cbm

    name, a = _load_graph(args.graph)
    cbm, _ = build_cbm(a, alpha=args.alpha)
    report = verify_cbm(cbm, a, runs=args.runs, columns=args.columns)
    print(f"{name}: {report}")
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CBM format toolkit (paper reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list registered datasets").set_defaults(fn=cmd_datasets)

    p = sub.add_parser("stats", help="graph statistics")
    p.add_argument("graph")
    p.add_argument("--no-clustering", action="store_true", help="skip the triangle count")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("compress", help="compress a graph to CBM")
    p.add_argument("graph")
    p.add_argument("-a", "--alpha", type=int, default=0)
    p.add_argument("-o", "--output", help="write the CBM archive here (.npz)")
    p.set_defaults(fn=cmd_compress)

    p = sub.add_parser("inspect", help="summarise a stored CBM archive")
    p.add_argument("file")
    p.set_defaults(fn=cmd_inspect)

    p = sub.add_parser("model", help="machine-model cost breakdown (CSR vs CBM, 1/16 cores)")
    p.add_argument("graph")
    p.add_argument("-a", "--alpha", type=int, default=0)
    p.add_argument("-p", "--columns", type=int, default=500)
    p.set_defaults(fn=cmd_model)

    p = sub.add_parser(
        "plan", help="build and summarise the kernel plan (schedule, working set, amortisation)"
    )
    p.add_argument("graph")
    p.add_argument("-a", "--alpha", type=int, default=0)
    p.add_argument("-p", "--columns", type=int, default=500)
    p.add_argument("-t", "--threads", type=int, default=16)
    p.add_argument("--repeats", type=int, default=10)
    p.set_defaults(fn=cmd_plan)

    p = sub.add_parser(
        "check",
        help="static invariant checks: artifact audit, plan race detection, "
        "contract lint, whole-stack concurrency verification "
        "(nonzero exit on findings)",
    )
    check_sub = p.add_subparsers(dest="checker", required=True)

    pc = check_sub.add_parser(
        "artifact",
        help="audit CBM artifacts (.npz archives, or graphs compressed on "
        "the fly): tree rootedness, delta consistency, Properties 1-2, "
        "scaling ranges, archive header/payload agreement",
    )
    pc.add_argument("target", nargs="+", help="archive path(s) or graph spec(s)")
    pc.add_argument("-a", "--alpha", type=int, default=0)
    pc.add_argument("--json", help="write the structured audit report here")
    pc.add_argument("--verbose", action="store_true", help="print passed checks too")
    pc.set_defaults(fn=cmd_check_artifact)

    pc = check_sub.add_parser(
        "plan",
        help="prove the branch-parallel update stage race-free for a "
        "graph's kernel plans (branches, levels, workspace pool, "
        "watchdog coverage, schedule accounting)",
    )
    pc.add_argument("target", nargs="+", help="graph spec(s)")
    pc.add_argument("-a", "--alpha", type=int, default=0)
    pc.add_argument("-p", "--columns", type=int, default=16)
    pc.add_argument("-t", "--threads", type=int, default=16)
    pc.add_argument(
        "--batch-columns",
        type=int,
        default=64,
        help="column cap of the representative stacked-operand batch "
        "layout audited alongside each plan",
    )
    pc.add_argument(
        "--branch-timeout",
        type=float,
        default=30.0,
        help="executor watchdog budget assumed per branch (None disables "
        "the timeout owner and flags a coverage gap)",
    )
    pc.add_argument(
        "--shards",
        type=int,
        default=0,
        help="also build an N-shard process plan and audit it "
        "(row coverage/overlap, shared-memory segment aliasing)",
    )
    pc.add_argument("--json", help="write the structured audit report here")
    pc.add_argument("--verbose", action="store_true", help="print passed checks too")
    pc.set_defaults(fn=cmd_check_plan)

    pc = check_sub.add_parser(
        "code",
        help="contract lint over the source tree (SC1xx-SC4xx rules, "
        "ruff-style output, optional regression baseline)",
    )
    pc.add_argument(
        "paths", nargs="*", default=["src/repro"], help="files or directories to lint"
    )
    pc.add_argument(
        "--baseline",
        default=".staticcheck.baseline",
        help="baseline file of accepted findings (CI fails only on regressions)",
    )
    pc.add_argument(
        "--strict-baseline",
        action="store_true",
        help="fail (not just warn) when baseline entries no longer match "
        "any finding",
    )
    pc.add_argument("--json", help="write the structured lint report here")
    pc.set_defaults(fn=cmd_check_code)

    pc = check_sub.add_parser(
        "concurrency",
        help="whole-stack concurrency verifier: lower every plan shape "
        "(kernel plans, batch layouts, shard plans, streaming swaps, "
        "prospective fused stages) into the unified IR, prove each free "
        "of span violations and happens-before races (HZ-R4xx), and run "
        "the lock-order/deadlock analysis over the source tree (SC7xx)",
    )
    pc.add_argument(
        "target",
        nargs="*",
        default=["Cora"],
        help="graph spec(s) whose plan shapes to audit (default: Cora)",
    )
    pc.add_argument("-a", "--alpha", type=int, default=0)
    pc.add_argument(
        "--batch-columns",
        type=int,
        default=64,
        help="column cap of the representative stacked-operand batch layout",
    )
    pc.add_argument(
        "--shards",
        type=int,
        default=2,
        help="also lower an N-shard process plan with its shared-memory "
        "segments (0 disables)",
    )
    pc.add_argument(
        "--paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories the SC7xx lock analysis scans",
    )
    pc.add_argument(
        "--no-locks",
        action="store_true",
        help="skip the SC7xx lock-order/blocking-call pass",
    )
    pc.add_argument(
        "--witness",
        action="store_true",
        help="run a miniature serving workload under the lock-witness "
        "recorder and cross-check observed acquisition orders against "
        "the static lock graph (SC704/SC705)",
    )
    pc.add_argument("--seed", type=int, default=0,
                    help="seed for the --witness workload operands")
    pc.add_argument("--json", help="write the structured audit report here")
    pc.add_argument("--verbose", action="store_true", help="print passed checks too")
    pc.set_defaults(fn=cmd_check_concurrency)

    p = sub.add_parser(
        "crash-soak",
        help="kill-9 soak of the persistence tier: SIGKILL writer/trainer "
        "workloads at randomized sync points, recover, and assert the "
        "durability invariants (nonzero exit on any violation)",
    )
    p.add_argument("--trials", type=int, default=60, help="spawn/kill/recover cycles")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--iterations", type=int, default=3,
                   help="commits each worker attempts before exiting cleanly")
    p.add_argument("--recovery-budget", type=float, default=10.0,
                   help="max seconds a single recovery may take")
    p.add_argument("--break-protocol", action="store_true",
                   help="run the deliberately buggy commit-marker-first writer; "
                   "the soak must then FAIL (negative control)")
    p.add_argument("--json", help="write the full JSON report here")
    p.add_argument("--verbose", action="store_true", help="print every trial")
    p.set_defaults(fn=cmd_crash_soak)

    p = sub.add_parser(
        "stream-soak",
        help="mutation-storm soak of the streaming tier: concurrent edge "
        "mutations + batched inference + background rebuilds + kill-9 "
        "rebuild crashes, with bitwise verification of every served "
        "result (nonzero exit on any violation)",
    )
    p.add_argument("--graph", default=None,
                   help="dataset name or .npz path (default: synthetic graph)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--clients", type=int, default=4)
    p.add_argument("--requests", type=int, default=40,
                   help="storm-phase requests per client")
    p.add_argument("--mutations", type=int, default=18,
                   help="edge batches applied by the mutator")
    p.add_argument("--edges", type=int, default=3,
                   help="insertions and deletions per batch")
    p.add_argument("--staleness-budget", type=int, default=12,
                   help="max patch batches a served snapshot may lag")
    p.add_argument("--max-drift", type=float, default=0.2,
                   help="fractional op-count growth that triggers a rebuild")
    p.add_argument("--crash-trials", type=int, default=3,
                   help="kill-9 rebuild trials after the storm")
    p.add_argument("--min-requests", type=int, default=200,
                   help="fail the soak if fewer requests were served")
    p.add_argument("--json", help="write the full JSON report here")
    p.add_argument("--verbose", action="store_true", help="print phase progress")
    p.set_defaults(fn=cmd_stream_soak)

    p = sub.add_parser(
        "tune",
        help="route a graph through the format autotuner: calibrated "
        "per-block CBM-vs-CSR decision table with predicted vs measured "
        "costs, and the chosen route",
    )
    p.add_argument("graph", help="dataset name, 'mixed[:N]', or .mtx path")
    p.add_argument("-a", "--alpha", type=int, default=0)
    p.add_argument("-p", "--columns", type=int, default=8)
    p.add_argument("--pin", choices=("csr", "cbm"), default=None,
                   help="skip the race and force this route")
    p.add_argument("--no-measure", action="store_true",
                   help="trust the cost model alone (skip the measurement race)")
    p.add_argument("--json", help="write the full JSON report here")
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser(
        "tune-soak",
        help="workload-shift soak of the format autotuner: chaos-lying "
        "cost model + adversarial structure mutations; the misprediction "
        "watchdog must re-tune with zero dropped/wrong requests and "
        "converge to the best static format (nonzero exit otherwise)",
    )
    p.add_argument("--graph", default=None,
                   help="dataset name, 'mixed[:N]', or .mtx path "
                   "(default: mixed-structure graph)")
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("-p", "--columns", type=int, default=8)
    p.add_argument("--clients", type=int, default=3)
    p.add_argument("--requests", type=int, default=60,
                   help="storm-phase requests per client")
    p.add_argument("--mutations", type=int, default=3,
                   help="adversarial scatter batches in the drift phase")
    p.add_argument("--edges", type=int, default=64,
                   help="scatter edges per mutation batch")
    p.add_argument("--lie-factor", type=float, default=16.0,
                   help="how optimistically the chaos model misprices the "
                   "victim format's rates")
    p.add_argument("--tolerance", type=float, default=0.15,
                   help="served-vs-best-static convergence tolerance")
    p.add_argument("--min-requests", type=int, default=120,
                   help="fail the soak if fewer requests were served")
    p.add_argument("--pin", choices=("csr", "cbm"), default=None,
                   help="negative control: pin the route and disable the "
                   "retuner; a wrong pin must then FAIL")
    p.add_argument("--json", help="write the full JSON report here")
    p.add_argument("--verbose", action="store_true", help="print phase progress")
    p.set_defaults(fn=cmd_tune_soak)

    p = sub.add_parser(
        "shard-soak",
        help="worker-kill soak of the sharded process executor: SIGKILL/"
        "stall/torn-write chaos against supervised multi-process "
        "executions, every result verified against the CSR reference "
        "and /dev/shm checked for leaks (nonzero exit on any violation)",
    )
    p.add_argument("--graph", default=None,
                   help="dataset name or .npz path (default: synthetic graph)")
    p.add_argument("--nodes", type=int, default=400,
                   help="synthetic graph size when --graph is not given")
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--executions", type=int, default=24)
    p.add_argument("-p", "--columns", type=int, default=8)
    p.add_argument("--variant", default="DAD", choices=("A", "AD", "DAD"))
    p.add_argument("--kill-rate", type=float, default=0.12,
                   help="per-(shard,epoch) probability of SIGKILL at a random sync point")
    p.add_argument("--stall-rate", type=float, default=0.08,
                   help="probability of a heartbeat-silent stall")
    p.add_argument("--torn-rate", type=float, default=0.12,
                   help="probability of a half-written slice with a lying commit")
    p.add_argument("--stall-seconds", type=float, default=3.0)
    p.add_argument("--heartbeat-timeout", type=float, default=0.75,
                   help="supervisor heartbeat staleness deadline")
    p.add_argument("--deadline", type=float, default=20.0,
                   help="per-execution hang budget in seconds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-supervisor", action="store_true",
                   help="run the storm unsupervised; the soak must then "
                   "FAIL (negative control)")
    p.add_argument("--json", help="write the full JSON report here")
    p.add_argument("--verbose", action="store_true", help="print every execution")
    p.set_defaults(fn=cmd_shard_soak)

    p = sub.add_parser("verify", help="run the paper's Section VI-B correctness protocol")
    p.add_argument("graph")
    p.add_argument("-a", "--alpha", type=int, default=0)
    p.add_argument("--runs", type=int, default=10)
    p.add_argument("--columns", type=int, default=100)
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("bench", help="time CSR vs CBM SpMM")
    p.add_argument("graph")
    p.add_argument("-a", "--alpha", type=int, default=4)
    p.add_argument("-p", "--columns", type=int, default=500)
    p.add_argument("--repeats", type=int, default=15)
    p.add_argument(
        "--unplanned",
        action="store_true",
        help="also time the per-call reference path (plan amortisation)",
    )
    p.add_argument(
        "--guarded",
        action="store_true",
        help="also time the guarded path (validation + CSR fallback) and "
        "print its fallback counters",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="like --guarded but fail-fast: the guard re-raises instead of "
        "degrading to the CSR reference",
    )
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "serve-bench",
        help="chaos-under-load soak of the serving layer (queue, deadlines, "
        "retries, circuit breaker); nonzero exit on any violated invariant",
    )
    p.add_argument("graph")
    p.add_argument("-a", "--alpha", type=int, default=0)
    p.add_argument("-p", "--columns", type=int, default=16)
    p.add_argument("--clients", type=int, default=4, help="concurrent client threads")
    p.add_argument("--requests", type=int, default=15, help="requests per client per phase")
    p.add_argument("--deadline", type=float, default=2.0, help="per-request budget (s)")
    p.add_argument("--threads", type=int, default=2, help="update-stage worker threads")
    p.add_argument("--workers", type=int, default=2, help="service worker threads")
    p.add_argument("--fail-rate", type=float, default=0.45,
                   help="chaos-phase worker-death probability per executor")
    p.add_argument("--stall-rate", type=float, default=0.15,
                   help="chaos-phase worker-stall probability per executor")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--batched", action="store_true",
                   help="soak the micro-batching stage instead: mixed-width "
                   "coalescing, hot-swap storm (generation purity), and "
                   "poisoned-member attribution")
    p.add_argument("--max-columns", type=int, default=32,
                   help="batched mode: stacked-operand column cap per batch")
    p.add_argument("--budget-ms", type=float, default=3.0,
                   help="batched mode: batch collection latency budget (ms)")
    p.add_argument("--json", help="also write the full JSON report here")
    p.add_argument("--verbose", action="store_true",
                   help="let the guard's FallbackWarnings through to stderr")
    p.set_defaults(fn=cmd_serve_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
