"""Compression-drift metering for stream-patched CBMs.

In-place patches keep the matrix *exact* but erode compression quality:
every patched delta row may spend more deltas than the fresh-build
optimum, so the SpMM op count (the quantity Properties 1–2 bound)
creeps up.  :class:`DriftTracker` prices the live matrix with the same
:mod:`repro.core.opcount` accounting the paper's cost model uses,
compares it against the op count captured at the last fresh rebuild,
and exposes

* ``drift``   — fractional op-count growth since the rebuild baseline
  (0.0 = as good as fresh), and
* ``staleness`` — patch batches absorbed since that rebuild,

plus a rebuild trigger (:meth:`DriftTracker.should_rebuild`) that fires
when either crosses its :class:`DriftPolicy` threshold.  With
``enforce=True`` the staleness budget becomes backpressure:
:meth:`DriftTracker.check_staleness` raises
:class:`~repro.errors.StalenessError` so writers stall instead of
drifting unboundedly far from the last durable generation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core import opcount
from repro.errors import StalenessError

__all__ = ["DriftPolicy", "DriftTracker"]


@dataclass(frozen=True)
class DriftPolicy:
    """When to rebuild, and how stale a patched matrix may get.

    ``max_drift`` is the fractional op-count growth that triggers a
    rebuild (0.25 = rebuild once patched SpMM costs 25% more than
    fresh); ``staleness_budget`` caps patch batches between rebuilds;
    ``enforce`` turns the budget from a trigger into backpressure;
    ``columns`` is the operand width the op model is priced at (both
    sides scale linearly in it, so it only matters for readability of
    the reported numbers).

    ``retune_drift``, when set, arms a *format re-tune* trigger distinct
    from the rebuild trigger: drift past it means the structure shifted
    enough that the CBM-vs-CSR routing decision itself may be stale, not
    just the tree.  The :class:`~repro.autotune.watchdog.Retuner` polls
    it via :meth:`DriftTracker.should_retune`.
    """

    max_drift: float = 0.25
    staleness_budget: int = 64
    enforce: bool = False
    columns: int = 1
    retune_drift: float | None = None

    def __post_init__(self):
        if self.max_drift < 0:
            raise ValueError(f"max_drift must be >= 0, got {self.max_drift}")
        if self.retune_drift is not None and self.retune_drift < 0:
            raise ValueError(
                f"retune_drift must be >= 0 or None, got {self.retune_drift}"
            )
        if self.staleness_budget < 1:
            raise ValueError(
                f"staleness_budget must be >= 1, got {self.staleness_budget}"
            )
        if self.columns < 1:
            raise ValueError(f"columns must be >= 1, got {self.columns}")


class DriftTracker:
    """Thread-safe drift/staleness counters for one mutable adjacency."""

    def __init__(self, policy: DriftPolicy | None = None):
        self.policy = policy if policy is not None else DriftPolicy()
        self._lock = threading.Lock()
        self._baseline_ops: int | None = None
        self._baseline_deltas = 0
        self._live_ops = 0
        self._live_deltas = 0
        self._version = 0
        self._rebuilt_version = 0
        self._patches_since_rebuild = 0
        self._edges_since_rebuild = 0
        self._rebuilds = 0
        self._replayed_total = 0
        self._retune_pending = False
        self._retunes_signalled = 0

    def _ops(self, cbm) -> int:
        return int(
            opcount.cbm_spmm_ops(
                cbm.delta, cbm.tree, self.policy.columns, variant=cbm.variant.value
            ).total
        )

    # ------------------------------------------------------------------
    # Event hooks (called by MutableAdjacency)
    # ------------------------------------------------------------------
    def mark_rebuilt(self, cbm, *, version: int, replayed: int = 0) -> None:
        """Reset the drift baseline to a freshly rebuilt matrix."""
        ops = self._ops(cbm)
        deltas = int(cbm.num_deltas)
        with self._lock:
            if self._baseline_ops is not None:
                self._rebuilds += 1
            self._baseline_ops = ops
            self._baseline_deltas = deltas
            self._live_ops = ops
            self._live_deltas = deltas
            self._version = int(version)
            self._rebuilt_version = int(version)
            self._patches_since_rebuild = 0
            self._edges_since_rebuild = 0
            self._replayed_total += int(replayed)
            self._retune_pending = False  # fresh tree re-prices everything

    def note_patch(self, cbm, *, version: int, edges: int) -> None:
        """Record one applied patch batch and reprice the live matrix."""
        ops = self._ops(cbm)
        deltas = int(cbm.num_deltas)
        with self._lock:
            self._live_ops = ops
            self._live_deltas = deltas
            self._version = int(version)
            self._patches_since_rebuild += 1
            self._edges_since_rebuild += int(edges)
            p = self.policy
            if (
                p.retune_drift is not None
                and not self._retune_pending
                and self._baseline_ops
                and self._live_ops / self._baseline_ops - 1.0 > p.retune_drift
            ):
                self._retune_pending = True
                self._retunes_signalled += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def drift(self) -> float:
        """Fractional op-count growth vs the last rebuild baseline."""
        with self._lock:
            if not self._baseline_ops:
                return 0.0
            return self._live_ops / self._baseline_ops - 1.0

    def staleness(self) -> int:
        """Patch batches absorbed since the last rebuild."""
        with self._lock:
            return self._patches_since_rebuild

    def should_rebuild(self) -> bool:
        """True when drift or staleness crossed the policy thresholds."""
        p = self.policy
        with self._lock:
            if self._baseline_ops and (
                self._live_ops / self._baseline_ops - 1.0 > p.max_drift
            ):
                return True
            return self._patches_since_rebuild >= p.staleness_budget

    def should_retune(self) -> bool:
        """True when compression decay armed the format re-tune trigger."""
        with self._lock:
            return self._retune_pending

    def consume_retune(self) -> None:
        """Acknowledge the trigger (the retuner took it); re-arms on the
        next threshold crossing."""
        with self._lock:
            self._retune_pending = False

    def check_staleness(self) -> None:
        """Backpressure hook: raise when the enforced budget is spent."""
        p = self.policy
        if not p.enforce:
            return
        with self._lock:
            stale = self._patches_since_rebuild
        if stale >= p.staleness_budget:
            raise StalenessError(
                f"staleness budget spent: {stale} patch batches since the "
                f"last rebuild (budget {p.staleness_budget}) — wait for the "
                "background rebuild to land before mutating further",
                staleness=stale,
                budget=p.staleness_budget,
            )

    def snapshot(self) -> dict:
        """All counters, for health endpoints and soak reports."""
        p = self.policy
        with self._lock:
            baseline = self._baseline_ops or 0
            drift = (self._live_ops / baseline - 1.0) if baseline else 0.0
            return {
                "drift": drift,
                "max_drift": p.max_drift,
                "staleness": self._patches_since_rebuild,
                "staleness_budget": p.staleness_budget,
                "enforce": p.enforce,
                "version": self._version,
                "rebuilt_version": self._rebuilt_version,
                "edges_since_rebuild": self._edges_since_rebuild,
                "rebuilds": self._rebuilds,
                "replayed_total": self._replayed_total,
                "baseline_ops": baseline,
                "live_ops": self._live_ops,
                "baseline_deltas": self._baseline_deltas,
                "live_deltas": self._live_deltas,
                "retune_drift": p.retune_drift,
                "retune_pending": self._retune_pending,
                "retunes_signalled": self._retunes_signalled,
            }
