"""Mutation-storm chaos soak: edits + batched inference + kill-9 rebuilds.

The robustness claim of the streaming tier is *serving correctness under
concurrent mutation and rebuild crashes*:

* every served result must **bitwise**-match the reference product of
  the generation that served it (the slot's CBM product — or its CSR
  reference when the breaker degraded), for *some* generation no staler
  than the configured budget;
* every rebuild killed mid-commit (SIGKILL at a randomized
  :mod:`repro.recovery.atomic` sync point) must leave the store
  recoverable: announced-committed generations all survive, torn state
  is quarantined with a logged reason, and the service swaps to a
  loadable committed generation — never a torn artifact.

The soak runs two phases over one live system (MutableAdjacency +
GenerationStore + batched InferenceService + BackgroundRebuilder):

1. **storm** — concurrent clients stream batched requests while mutator
   threads apply random edge batches (publishing each patched snapshot)
   and the background rebuilder commits + hot-swaps fresh generations;
2. **crash** — rebuild workers run as killable subprocesses against the
   *same* store (via the crashsim streaming workload), die at random
   sync points, the parent recovers, swaps to the surviving latest
   generation, and serves a verified burst from it.

Verification is post-hoc: clients record ``(generation, operand, result,
version)`` tuples and every tuple is checked against the recorded
generation → reference mapping after the phase, so the check itself
cannot race a swap.
"""

from __future__ import annotations

import random
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.builder import build_cbm
from repro.core.io import save_cbm
from repro.errors import OverloadError, ReproError, StalenessError
from repro.recovery.crashsim import _POINTS_PER_COMMIT, run_trial
from repro.recovery.store import GenerationStore
from repro.serving.batching import BatchConfig
from repro.serving.service import AdjacencySlot, InferenceService
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import spmm
from repro.staticcheck import audit_archive, audit_cbm
from repro.streaming.drift import DriftPolicy, DriftTracker
from repro.streaming.mutable import EdgeBatch, MutableAdjacency
from repro.streaming.rebuild import BackgroundRebuilder, publish_snapshot

__all__ = ["run_mutation_soak"]


def _default_adjacency(n: int = 96, density: float = 0.06, seed: int = 7) -> CSRMatrix:
    from repro.sparse.convert import from_dense

    rng = np.random.default_rng(seed)
    d = (rng.random((n, n)) < density).astype(np.float32)
    d = np.maximum(d, d.T)
    np.fill_diagonal(d, 0.0)
    return from_dense(d)


class _Recorder:
    """Thread-safe sink for served results and client-side failures."""

    def __init__(self):
        self.lock = threading.Lock()
        self.records: list[tuple] = []  # (phase, gen, op_idx, y, version_done, dt)
        self.dropped = 0
        self.hung = 0
        self.errors = 0
        self.stalls = 0
        self.latencies: dict[str, list[float]] = {}
        self.violations: list[str] = []

    def note_latency(self, phase: str, dt: float) -> None:
        self.latencies.setdefault(phase, []).append(dt)


def _client(
    phase: str,
    service: InferenceService,
    operands: list[np.ndarray],
    rec: _Recorder,
    mutable: MutableAdjacency,
    *,
    offset: int,
    requests: int,
    deadline_s: float,
) -> None:
    for i in range(requests):
        x = operands[(offset + i) % len(operands)]
        t0 = time.monotonic()
        try:
            future = service.submit(x, deadline_s=deadline_s)
            y = future.result(timeout=deadline_s + 10.0)
        except OverloadError:
            with rec.lock:
                rec.dropped += 1
                rec.violations.append(
                    f"{phase}: request shed (queue overflow) — the soak is "
                    "sized to never drop"
                )
            continue
        except TimeoutError:
            with rec.lock:
                rec.hung += 1
                rec.violations.append(
                    f"{phase}: request hung past deadline+grace (offset "
                    f"{offset}, request {i})"
                )
            continue
        except ReproError as exc:
            with rec.lock:
                rec.errors += 1
                rec.violations.append(
                    f"{phase}: request failed: {type(exc).__name__}: {exc}"
                )
            continue
        dt = time.monotonic() - t0
        gen = future.generation if future.generation is not None else 0
        version_done = mutable.version
        with rec.lock:
            rec.records.append((phase, gen, (offset + i) % len(operands), y, version_done, dt))
            rec.note_latency(phase, dt)


def _verify(
    rec: _Recorder,
    refs: dict[int, tuple[int | None, object, CSRMatrix]],
    operands: list[np.ndarray],
    *,
    staleness_budget: int,
) -> tuple[int, int, int]:
    """Post-hoc check of every record; returns (ok, wrong, max_staleness)."""
    ok = wrong = 0
    max_stale = 0
    for phase, gen, op_idx, y, version_done, _dt in rec.records:
        got = refs.get(gen)
        if got is None:
            wrong += 1
            rec.violations.append(
                f"{phase}: result labelled generation {gen}, which was never "
                "published — torn or phantom swap"
            )
            continue
        version, cbm, source = got
        x = operands[op_idx]
        expected = cbm.matmul(x)
        if not np.array_equal(y, expected):
            # The breaker's degraded tier serves the exact CSR product.
            alt = spmm(source, x)
            if not np.array_equal(y, alt):
                wrong += 1
                rec.violations.append(
                    f"{phase}: result does not bitwise-match generation "
                    f"{gen}'s CBM or CSR reference (operand {op_idx})"
                )
                continue
        if version is not None:
            stale = version_done - version
            max_stale = max(max_stale, stale)
            if stale > staleness_budget:
                wrong += 1
                rec.violations.append(
                    f"{phase}: served graph version {version} is {stale} "
                    f"versions behind the live graph ({version_done}) — "
                    f"budget is {staleness_budget}"
                )
                continue
        ok += 1
    return ok, wrong, max_stale


def run_mutation_soak(
    a: CSRMatrix | None = None,
    *,
    seed: int = 7,
    alpha: int = 0,
    clients: int = 4,
    requests_per_client: int = 40,
    mutator_batches: int = 18,
    edges_per_batch: int = 3,
    staleness_budget: int = 12,
    max_drift: float = 0.2,
    crash_trials: int = 3,
    crash_iterations: int = 2,
    crash_requests: int = 20,
    retain: int = 3,
    deadline_s: float = 5.0,
    max_columns: int = 32,
    latency_budget_s: float = 0.002,
    min_requests: int = 200,
    root: str | None = None,
    progress=None,
) -> dict:
    """Run the full mutation-storm soak; returns a report dict with ``ok``.

    Defaults serve ``clients * requests_per_client + crash_trials *
    crash_requests`` >= ``min_requests`` requests.  ``root`` (optional)
    keeps the generation store at a caller-owned path instead of a
    temporary directory.
    """

    def _say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    if a is None:
        a = _default_adjacency(seed=seed)
    rng = random.Random(seed)
    owned_root = root is None
    root_dir = Path(root) if root is not None else Path(tempfile.mkdtemp(prefix="mutsoak-"))

    policy = DriftPolicy(
        max_drift=max_drift, staleness_budget=staleness_budget, enforce=False, columns=2
    )
    tracker = DriftTracker(policy)
    mutable = MutableAdjacency.from_graph(a, alpha=alpha, tracker=tracker)
    store = GenerationStore(root_dir / "store", retain=retain)

    n = a.shape[0]
    nprng = np.random.default_rng(seed)
    operands = [
        nprng.standard_normal((n, int(w))).astype(np.float32)
        for w in (2, 3, 4, 2, 3, 4, 2, 3, 4, 2, 3, 4)
    ]

    version0, cbm0, source0 = mutable.snapshot()
    slot0 = AdjacencySlot(cbm0, source0, tracker=tracker)
    slot0.graph_version = version0

    refs: dict[int, tuple[int | None, object, CSRMatrix]] = {0: (version0, cbm0, source0)}
    refs_lock = threading.Lock()
    rec = _Recorder()

    def _publish(svc: InferenceService, mut: MutableAdjacency) -> None:
        with refs_lock:
            version, gen, slot = publish_snapshot(mut, svc)
            refs[gen] = (version, slot.cbm, slot.source)

    service = InferenceService(
        slot0,
        workers=2,
        queue_capacity=max(128, clients * 16),
        default_deadline_s=deadline_s,
        batch=BatchConfig(max_columns=max_columns, latency_budget_s=latency_budget_s),
        seed=seed,
    )
    rebuilder = BackgroundRebuilder(
        mutable, store, service, publisher=_publish, poll_interval_s=0.01
    )

    patch_reports = []
    t_start = time.perf_counter()
    with service:
        # Warm the plan/pool and the batch-formation path off the clock.
        for fut in [service.submit(operands[i % len(operands)]) for i in range(8)]:
            fut.result(30.0)

        # ---------------- phase 1: mutation storm -------------------
        _say("storm: concurrent edits + batched inference + rebuilds")
        rebuilder.start()

        def _mutator() -> None:
            for j in range(mutator_batches):
                _, _, src = mutable.snapshot()
                batch = EdgeBatch.random(
                    src,
                    inserts=edges_per_batch,
                    deletes=edges_per_batch,
                    seed=seed * 7919 + j,
                )
                try:
                    report = mutable.apply(batch)
                except StalenessError:
                    with rec.lock:
                        rec.stalls += 1
                    time.sleep(0.01)
                    continue
                patch_reports.append(report)
                _publish(service, mutable)
                time.sleep(0.002)

        threads = [threading.Thread(target=_mutator, name="soak-mutator")]
        threads += [
            threading.Thread(
                target=_client,
                args=("storm", service, operands, rec, mutable),
                kwargs=dict(
                    offset=k * requests_per_client,
                    requests=requests_per_client,
                    deadline_s=deadline_s,
                ),
                name=f"soak-client-{k}",
            )
            for k in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        rebuilder.stop()
        if not rebuilder.reports:
            # The storm was too short for the drift trigger: run one
            # synchronous cycle so the store always holds a generation.
            rebuilder.rebuild_once()

        # ---------------- phase 2: kill-9 mid-rebuild ----------------
        _say("crash: killing rebuild workers at random sync points")
        _, crash_cbm, _ = mutable.snapshot()
        graph_path = root_dir / "crash-input.npz"
        save_cbm(graph_path, crash_cbm)
        span = _POINTS_PER_COMMIT * crash_iterations
        trials = []
        for t_idx in range(crash_trials):
            trial = run_trial(
                "streaming",
                crash_at=rng.randint(1, span),
                seed=rng.randint(0, 2**31 - 1),
                iterations=crash_iterations,
                root=str(store.root),
                graph=str(graph_path),
            )
            trials.append(trial)
            with rec.lock:
                rec.violations.extend(
                    f"crash-{t_idx}: {v}" for v in trial.violations
                )
            # Swap to the surviving latest committed generation and
            # serve a verified burst from it.  Worker-produced
            # generations carry worker-local graph versions, so the
            # per-request staleness check is skipped (version=None) and
            # only the bitwise torn-artifact check applies.
            summary = service.swap_generation(store)
            slot = service._slot
            with refs_lock:
                refs[summary["generation"]] = (None, slot.cbm, slot.source)
            _client(
                f"crash-{t_idx}",
                service,
                operands,
                rec,
                mutable,
                offset=t_idx * crash_requests,
                requests=crash_requests,
                deadline_s=deadline_s,
            )

        # Retention pressure: commit enough fresh generations to push
        # the live slot's pinned generation out of the keep window.
        # The pin (not retention order) must be what keeps it on disk.
        pin = getattr(service._slot, "_pin", None)
        pinned_survives = False
        if pin is not None:
            pin_index = pin[1]
            _, _, press_source = mutable.snapshot()
            press_cbm, _ = build_cbm(press_source, alpha=alpha)
            for _ in range(retain + 1):
                with store.begin(
                    meta={"kind": "cbm-archive", "streaming": True}
                ) as txn:
                    save_cbm(txn.path("adjacency.npz", kind="cbm"), press_cbm)
            pinned_survives = (
                pin_index in store.pinned()
                and (store.root / f"gen-{pin_index:06d}").is_dir()
            )
        health = service.health()

    ok_count, wrong, max_stale = _verify(
        rec, refs, operands, staleness_budget=staleness_budget
    )

    total = len(rec.records) + rec.dropped + rec.hung + rec.errors
    committed = [g.index for g in store.generations()]
    quarantine_log = store.quarantine_dir / "QUARANTINE.log"
    quarantined_logged = (not any(t.quarantined for t in trials)) or quarantine_log.exists()

    snap = tracker.snapshot()
    patched_budget = max(
        1,
        max(0, snap["live_deltas"] - snap["baseline_deltas"]) + snap["edges_since_rebuild"],
    )
    _, live_cbm, _ = mutable.snapshot()
    patched_audit = audit_cbm(
        live_cbm, subject="patched-cbm", staleness_budget=patched_budget
    )
    latest = store.latest()
    rebuilt_audit = (
        audit_archive(latest.file("adjacency.npz"), subject="rebuilt-cbm")
        if latest is not None
        else None
    )

    checks = {
        "min_requests": total >= min_requests,
        "zero_wrong": wrong == 0,
        "zero_hung": rec.hung == 0,
        "zero_dropped": rec.dropped == 0,
        "zero_errors": rec.errors == 0,
        "staleness_within_budget": max_stale <= staleness_budget,
        "rebuilds_completed": len(rebuilder.reports) >= 1 and len(committed) >= 1,
        "all_crash_trials_killed": all(t.killed for t in trials),
        "crash_recovery_clean": all(t.ok for t in trials),
        "quarantine_reasons_logged": quarantined_logged,
        "pinned_generation_survives_prune": pinned_survives,
        "patched_audit_ok": patched_audit.ok,
        "rebuilt_audit_ok": rebuilt_audit is not None and rebuilt_audit.ok,
    }
    if not patched_audit.ok:
        rec.violations.extend(
            f"patched-audit: {f.code}: {f.message}" for f in patched_audit.findings
        )
    if rebuilt_audit is not None and not rebuilt_audit.ok:
        rec.violations.extend(
            f"rebuilt-audit: {f.code}: {f.message}" for f in rebuilt_audit.findings
        )

    def _pct(phase: str, q: float) -> float | None:
        lat = rec.latencies.get(phase)
        return float(np.percentile(np.asarray(lat), q) * 1e3) if lat else None

    report = {
        "benchmark": "mutation_soak",
        "workload": {
            "nodes": int(n),
            "nnz_initial": int(a.nnz),
            "clients": clients,
            "requests_per_client": requests_per_client,
            "mutator_batches": mutator_batches,
            "edges_per_batch": edges_per_batch,
            "crash_trials": crash_trials,
            "crash_requests": crash_requests,
            "staleness_budget": staleness_budget,
            "max_drift": max_drift,
            "retain": retain,
            "seed": seed,
        },
        "requests": total,
        "verified_ok": ok_count,
        "wrong": wrong,
        "hung": rec.hung,
        "dropped": rec.dropped,
        "errors": rec.errors,
        "stalls": rec.stalls,
        "max_staleness": max_stale,
        "patches_applied": len(patch_reports),
        "patch_p50_ms": _pct_of([r.seconds for r in patch_reports], 50),
        "rebuilds": len(rebuilder.reports),
        "rebuild_wall_s": [round(r.total_seconds, 4) for r in rebuilder.reports],
        "generations_committed": committed,
        "generations_published": sorted(refs),
        "crash": [
            {
                "crash_at": t.crash_at,
                "killed": t.killed,
                "announced": t.announced,
                "kept": t.kept,
                "quarantined": t.quarantined,
                "ok": t.ok,
            }
            for t in trials
        ],
        "latency_p99_ms": {k: _pct(k, 99) for k in rec.latencies},
        "tracker": tracker.snapshot(),
        "health_streaming": health.get("streaming"),
        "checks": checks,
        "violations": rec.violations,
        "elapsed_s": time.perf_counter() - t_start,
        "ok": all(checks.values()) and not rec.violations,
    }
    if owned_root and report["ok"]:
        import shutil

        shutil.rmtree(root_dir, ignore_errors=True)
    else:
        report["root"] = str(root_dir)
    return report


def _pct_of(values: list[float], q: float) -> float | None:
    if not values:
        return None
    return float(np.percentile(np.asarray(values), q) * 1e3)
