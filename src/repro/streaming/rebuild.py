"""Off-path recompression and zero-downtime publication.

The hot path (serving + patching) never recompresses: a
:class:`BackgroundRebuilder` watches the :class:`~repro.streaming.DriftTracker`
and, when the drift/staleness trigger fires, runs the generation-swap
state machine off-path:

1. **snapshot** — grab the current (version, cbm, source) pair;
2. **build**    — fresh :func:`~repro.core.builder.build_cbm` (optionally
   rebalanced via :func:`~repro.core.rebalance.cut_depth` /
   :func:`~repro.core.rebalance.split_branches`) from the snapshot CSR;
3. **commit**   — durably persist the fresh artifact as a new generation
   of a :class:`~repro.recovery.GenerationStore` (atomic payloads,
   manifest-last commit marker — a crash anywhere leaves either the old
   or the new generation, never a torn one);
4. **rebase**   — replay batches that landed during the build onto the
   fresh matrix (:meth:`~repro.streaming.MutableAdjacency.rebase`), so
   the published pair is exact for the *current* graph;
5. **publish**  — hot-swap the serving slot
   (:meth:`~repro.serving.InferenceService.swap_slot`): in-flight
   requests finish on the old slot, in-flight batches drain or requeue
   across the generation boundary, and the old slot's generation pin is
   released so retention pruning may reclaim it.

Crash-safety of step 3 is exactly PR 5's protocol (the crash harness
kills rebuild workers at every sync point); step 5 is exactly PR 6's
swap contract.  This module only composes them.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.core.builder import build_cbm
from repro.core.io import save_cbm
from repro.core.rebalance import cut_depth, split_branches
from repro.errors import RecoveryError, ReproError
from repro.serving.service import AdjacencySlot, InferenceService
from repro.streaming.mutable import MutableAdjacency

__all__ = ["BackgroundRebuilder", "RebuildReport", "publish_snapshot"]


def publish_snapshot(
    mutable: MutableAdjacency,
    service: InferenceService,
    *,
    warm_width: int | None = None,
) -> tuple[int, int, AdjacencySlot]:
    """Swap the service to the mutable's current snapshot.

    Returns ``(graph_version, serving_generation, slot)``.  The slot
    carries the tracker (for :meth:`InferenceService.health`) and the
    graph version it represents, so soaks can map serving generations
    back to reference adjacencies.
    """
    version, cbm, source = mutable.snapshot()
    slot = AdjacencySlot(cbm, source, tracker=mutable.tracker)
    slot.graph_version = version
    service.swap_slot(slot, warm_width=warm_width)
    return version, slot.generation, slot


@dataclass(frozen=True)
class RebuildReport:
    """Timings and outcome of one background rebuild cycle."""

    built_version: int
    published_version: int
    replayed: int
    store_generation: int
    build_seconds: float
    commit_seconds: float
    publish_seconds: float
    total_seconds: float
    published: bool


class BackgroundRebuilder:
    """Recompress a :class:`MutableAdjacency` off the hot path.

    Synchronous use: call :meth:`rebuild_once`.  Threaded use: call
    :meth:`start`; the loop polls the tracker's
    :meth:`~repro.streaming.DriftTracker.should_rebuild` (or an explicit
    :meth:`trigger`) and rebuilds until :meth:`stop`.

    Parameters
    ----------
    mutable / store:
        The live adjacency and the durable generation store.
    service:
        Optional serving target to hot-swap after each rebuild; without
        it the rebuilder only maintains the store.
    publisher:
        Optional override for the publish step — called as
        ``publisher(service, mutable)`` after the rebase and expected to
        swap the service itself (soaks use this to record generation →
        reference mappings atomically with the swap).
    max_depth / max_branch:
        Optional rebalance passes applied to each fresh build.
    retuner:
        Optional :class:`~repro.autotune.watchdog.Retuner`.  When the
        tracker's ``retune_drift`` trigger arms, or right after a fresh
        build publishes (the format decision was priced on the *old*
        tree), the rebuilder pokes the retuner instead of re-tuning
        inline — format selection stays off the rebuild path too.
    """

    def __init__(
        self,
        mutable: MutableAdjacency,
        store,
        service: InferenceService | None = None,
        *,
        publisher=None,
        max_depth: int | None = None,
        max_branch: int | None = None,
        payload: str = "adjacency.npz",
        warm_width: int | None = None,
        poll_interval_s: float = 0.02,
        retuner=None,
    ):
        self.mutable = mutable
        self.store = store
        self.service = service
        self.publisher = publisher
        self.retuner = retuner
        self.max_depth = max_depth
        self.max_branch = max_branch
        self.payload = payload
        self.warm_width = warm_width
        self.poll_interval_s = float(poll_interval_s)
        self.reports: list[RebuildReport] = []
        self.errors: list[Exception] = []
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def rebuild_once(self) -> RebuildReport:
        """One full snapshot → build → commit → rebase → publish cycle."""
        t0 = time.perf_counter()
        version, cbm, source = self.mutable.snapshot()
        fresh, _ = build_cbm(source, alpha=cbm.alpha)
        if self.max_depth is not None:
            fresh = cut_depth(fresh, self.max_depth)
        if self.max_branch is not None:
            fresh = split_branches(fresh, self.max_branch)
        t_build = time.perf_counter()
        with self.store.begin(
            meta={
                "kind": "cbm-archive",
                "streaming": True,
                "graph_version": version,
            }
        ) as txn:
            save_cbm(txn.path(self.payload, kind="cbm"), fresh)
            gen_index = txn.index
        t_commit = time.perf_counter()
        published_version, _, _, replayed = self.mutable.rebase(
            fresh, built_version=version, source=source
        )
        published = False
        if self.publisher is not None:
            self.publisher(self.service, self.mutable)
            published = True
        elif self.service is not None:
            publish_snapshot(self.mutable, self.service, warm_width=self.warm_width)
            published = True
        t_end = time.perf_counter()
        if published and self.retuner is not None:
            # The serving format decision was priced on the old tree;
            # ask the retuner to revalidate it against the fresh one.
            self.retuner.trigger()
        report = RebuildReport(
            built_version=version,
            published_version=published_version,
            replayed=replayed,
            store_generation=gen_index,
            build_seconds=t_build - t0,
            commit_seconds=t_commit - t_build,
            publish_seconds=t_end - t_commit,
            total_seconds=t_end - t0,
            published=published,
        )
        with self._lock:
            self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    # Threaded operation
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Run the trigger-poll loop in a daemon thread."""
        if self._thread is not None:
            raise RecoveryError("rebuilder already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="cbm-rebuilder", daemon=True
        )
        self._thread.start()

    def trigger(self) -> None:
        """Request an immediate rebuild check (threaded mode)."""
        self._wake.set()

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the loop and join the thread."""
        self._stop.set()
        self._wake.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout)

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.poll_interval_s)
            self._wake.clear()
            if self._stop.is_set():
                break
            tracker = self.mutable.tracker
            if tracker is None:
                continue
            if (
                self.retuner is not None
                and getattr(tracker, "should_retune", None)
                and tracker.should_retune()
            ):
                # Wake the retuner early; it owns consuming the trigger.
                self.retuner.poke()
            if not tracker.should_rebuild():
                continue
            try:
                self.rebuild_once()
            except (ReproError, OSError) as exc:
                # Keep the loop alive: a failed rebuild leaves the old
                # generation serving; the error is surfaced for the
                # operator instead of killing the maintenance thread.
                with self._lock:
                    self.errors.append(exc)
