"""Incremental CBM maintenance under streaming edge mutations.

The paper's Section V-B branch decomposition makes delta-set edits
*locally contained*: row ``u``'s delta sets are diffs against its parent
row only, so toggling edge ``(u, v)`` can change at most the delta rows
of ``u`` itself and of ``u``'s direct children (whose diffs are taken
against ``u``'s content).  :func:`patch_cbm` exploits exactly that — an
edge batch is applied by recomputing only the affected rows' delta sets
and splicing them into fresh CSR arrays, leaving every other row's
storage byte-identical.

The patched matrix is always an *exact* representation of the mutated
adjacency (``tocsr()`` reproduces it bit-for-bit); what decays is
compression quality — delta rows drift away from the fresh-build
optimum, spending extra deltas Property 1 no longer bounds.  That decay
is the *staleness* the :class:`~repro.streaming.DriftTracker` meters and
the background rebuilder repairs.

:class:`MutableAdjacency` wraps the (CBM, CSR) pair behind a lock,
journals applied batches so a rebuild started from an older snapshot can
replay what it missed (:meth:`MutableAdjacency.rebase`), and hands out
immutable snapshots for publication — patches never mutate a published
matrix in place, so concurrent readers of an old snapshot are safe.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.builder import build_cbm
from repro.core.cbm import CBMMatrix, Variant
from repro.core.tree import VIRTUAL, CompressionTree
from repro.errors import CompressionError, ShapeError, StalenessError
from repro.sparse.csr import CSRMatrix

__all__ = ["EdgeBatch", "PatchReport", "MutableAdjacency", "patch_cbm"]


def _as_edges(pairs, what: str) -> np.ndarray:
    arr = np.asarray(pairs, dtype=np.int64)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ShapeError(f"{what} must be a (k, 2) edge array, got shape {arr.shape}")
    return arr


@dataclass(frozen=True)
class EdgeBatch:
    """One batch of edge mutations: ``(k, 2)`` arrays of (row, col) pairs."""

    inserts: np.ndarray = ()
    deletes: np.ndarray = ()

    def __post_init__(self):
        object.__setattr__(self, "inserts", _as_edges(self.inserts, "inserts"))
        object.__setattr__(self, "deletes", _as_edges(self.deletes, "deletes"))

    @classmethod
    def random(
        cls,
        a: CSRMatrix,
        *,
        inserts: int = 4,
        deletes: int = 4,
        symmetric: bool = True,
        seed: int = 0,
    ) -> "EdgeBatch":
        """A seeded random mutation batch valid against ``a`` (see
        :func:`repro.reliability.chaos.random_edge_batch`)."""
        from repro.reliability.chaos import random_edge_batch

        ins, dels = random_edge_batch(
            a, inserts=inserts, deletes=deletes, symmetric=symmetric, seed=seed
        )
        return cls(ins, dels)

    @property
    def num_edges(self) -> int:
        return int(len(self.inserts) + len(self.deletes))


@dataclass(frozen=True)
class PatchReport:
    """What one :meth:`MutableAdjacency.apply` call did."""

    version: int
    inserted: int
    deleted: int
    noops: int
    rows_touched: int
    rows_patched: int
    deltas_before: int
    deltas_after: int
    nnz: int
    seconds: float


def _splice_rows(
    csr: CSRMatrix, rows: dict[int, tuple[np.ndarray, np.ndarray]]
) -> CSRMatrix:
    """A new CSR with the given rows replaced by (indices, data) pairs.

    Only the replaced rows' storage changes; every untouched span is
    copied as one contiguous slice, so the cost is O(nnz) memory but the
    per-row Python work is proportional to the number of patched rows.
    """
    n = csr.shape[0]
    idx_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []
    counts = np.diff(csr.indptr).astype(np.int64)
    prev = 0
    for r in sorted(rows):
        lo, hi = csr.indptr[prev], csr.indptr[r]
        idx_parts.append(csr.indices[lo:hi])
        val_parts.append(csr.data[lo:hi])
        idx, val = rows[r]
        idx_parts.append(np.asarray(idx, dtype=csr.indices.dtype))
        val_parts.append(np.asarray(val, dtype=csr.data.dtype))
        counts[r] = len(idx)
        prev = r + 1
    lo = csr.indptr[prev]
    idx_parts.append(csr.indices[lo:])
    val_parts.append(csr.data[lo:])
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.concatenate(idx_parts) if idx_parts else csr.indices[:0]
    data = np.concatenate(val_parts) if val_parts else csr.data[:0]
    return CSRMatrix(indptr, indices, data, csr.shape, check=False)


def _delta_row(
    row_x: np.ndarray, row_p: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray]:
    """(indices, ±1 values) of one delta row, sorted by column."""
    if row_p is None:
        return row_x, np.ones(len(row_x), dtype=np.float32)
    plus = np.setdiff1d(row_x, row_p, assume_unique=True)
    minus = np.setdiff1d(row_p, row_x, assume_unique=True)
    idx = np.concatenate([plus, minus])
    val = np.concatenate(
        [
            np.ones(len(plus), dtype=np.float32),
            -np.ones(len(minus), dtype=np.float32),
        ]
    )
    order = np.argsort(idx, kind="stable")
    return idx[order], val[order]


def patch_cbm(
    cbm: CBMMatrix, source: CSRMatrix, batch: EdgeBatch
) -> tuple[CBMMatrix, CSRMatrix, dict]:
    """Apply an edge batch to a (CBM, CSR) pair; returns new objects.

    The compression tree's parent structure is untouched — only the
    delta rows of the mutated rows and of their direct tree children are
    recomputed (Section V-B locality), and ``tree.weight`` /
    ``source_nnz`` are updated so the structural audits
    (weight-agreement, nnz accounting) stay exact on the patched
    artifact.  Inserting an edge already present (or deleting an absent
    one) is a counted no-op, never an error — mutation feeds are
    routinely at-least-once.

    Raises :class:`~repro.errors.CompressionError` for scaled variants:
    the AD/DAD diagonals are degree-derived, and mutations change
    degrees, so scaled slots must be rebuilt, not patched.
    """
    if cbm.variant is not Variant.A:
        raise CompressionError(
            f"streaming patches support variant A only, not {cbm.variant.value}: "
            "the scaling diagonals are degree-derived and go stale under "
            "mutation — rebuild scaled slots instead"
        )
    if cbm.shape != source.shape:
        raise ShapeError.mismatch("cbm vs source", cbm.shape, source.shape)
    n, m = source.shape
    for what, edges in (("insert", batch.inserts), ("delete", batch.deletes)):
        if len(edges) and (
            edges[:, 0].min() < 0
            or edges[:, 0].max() >= n
            or edges[:, 1].min() < 0
            or edges[:, 1].max() >= m
        ):
            raise ShapeError(
                f"{what} edges out of range for a {n}x{m} adjacency"
            )

    adds: dict[int, set[int]] = {}
    rems: dict[int, set[int]] = {}
    for u, v in batch.inserts:
        adds.setdefault(int(u), set()).add(int(v))
    for u, v in batch.deletes:
        rems.setdefault(int(u), set()).add(int(v))
    for u in set(adds) & set(rems):
        both = adds[u] & rems[u]
        if both:
            raise CompressionError(
                f"edge(s) {sorted((u, v) for v in both)} appear in both the "
                "insert and delete sets of one batch — ordering is ambiguous"
            )

    # New row contents for effectively-changed rows (no-ops drop out).
    new_rows: dict[int, np.ndarray] = {}
    inserted = deleted = noops = 0
    for u in sorted(set(adds) | set(rems)):
        old = np.asarray(source.row(u))
        add = np.fromiter(adds.get(u, ()), dtype=np.int64)
        rem = np.fromiter(rems.get(u, ()), dtype=np.int64)
        real_add = np.setdiff1d(add, old)
        real_rem = np.intersect1d(rem, old)
        noops += (len(add) - len(real_add)) + (len(rem) - len(real_rem))
        if not len(real_add) and not len(real_rem):
            continue
        inserted += len(real_add)
        deleted += len(real_rem)
        new_rows[u] = np.setdiff1d(np.union1d(old, real_add), real_rem)

    stats = {
        "inserted": inserted,
        "deleted": deleted,
        "noops": noops,
        "rows_touched": len(new_rows),
    }
    if not new_rows:
        stats["rows_patched"] = 0
        return cbm, source, stats

    # Affected delta rows: the mutated rows plus their direct children
    # (a child's delta sets are diffs against the mutated content).
    touched = np.fromiter(new_rows, dtype=np.int64)
    parent = cbm.tree.parent
    affected = np.union1d(touched, np.flatnonzero(np.isin(parent, touched)))

    def row_after(i: int) -> np.ndarray:
        got = new_rows.get(i)
        return got if got is not None else np.asarray(source.row(i))

    delta_rows: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    new_weight = cbm.tree.weight.copy()
    for x in affected:
        x = int(x)
        p = int(parent[x])
        idx, val = _delta_row(row_after(x), None if p == VIRTUAL else row_after(p))
        delta_rows[x] = (idx, val)
        new_weight[x] = len(idx)

    delta2 = _splice_rows(cbm.delta, delta_rows)
    source2 = _splice_rows(
        source,
        {
            u: (r, np.ones(len(r), dtype=source.data.dtype))
            for u, r in new_rows.items()
        },
    )
    # Fresh tree/CBM objects (parent array shared, it never changes):
    # published snapshots stay immutable, and the plan-fingerprint check
    # in CBMMatrix.plan() rebuilds kernel plans automatically.
    tree2 = CompressionTree(parent=parent, weight=new_weight)
    cbm2 = CBMMatrix(
        tree=tree2,
        delta=delta2,
        variant=cbm.variant,
        diag=None,
        diag_left=None,
        source_nnz=source2.nnz,
        alpha=cbm.alpha,
    )
    stats["rows_patched"] = int(len(affected))
    return cbm2, source2, stats


class MutableAdjacency:
    """A (CBM, CSR) pair that absorbs edge batches by in-place patching.

    All access goes through one lock; :meth:`snapshot` returns the
    current immutable pair, :meth:`apply` installs a patched pair, and
    :meth:`rebase` installs a fresh rebuild, replaying any journaled
    batches the rebuild's snapshot missed so the result is exact for the
    *current* graph, not the snapshot the builder saw.
    """

    def __init__(self, cbm: CBMMatrix, source: CSRMatrix, *, tracker=None,
                 journal_limit: int = 4096):
        if cbm.variant is not Variant.A:
            raise CompressionError(
                "MutableAdjacency requires a variant-A CBM (scaled variants "
                "carry degree-derived diagonals that mutations invalidate)"
            )
        if cbm.shape != source.shape:
            raise ShapeError.mismatch("cbm vs source", cbm.shape, source.shape)
        self._lock = threading.Lock()
        self._cbm = cbm
        self._source = source
        self._version = 0
        self._journal: list[tuple[int, EdgeBatch]] = []
        self.journal_limit = int(journal_limit)
        self.tracker = tracker
        if tracker is not None:
            tracker.mark_rebuilt(cbm, version=0)

    @classmethod
    def from_graph(
        cls,
        a: CSRMatrix,
        *,
        alpha: int = 0,
        tracker=None,
        journal_limit: int = 4096,
    ) -> "MutableAdjacency":
        """Compress ``a`` and wrap the result."""
        cbm, _ = build_cbm(a, alpha=alpha)
        return cls(cbm, a, tracker=tracker, journal_limit=journal_limit)

    @property
    def version(self) -> int:
        """Monotone graph version: one tick per effective mutation batch."""
        with self._lock:
            return self._version

    def snapshot(self) -> tuple[int, CBMMatrix, CSRMatrix]:
        """(version, cbm, source) — immutable objects, safe to publish."""
        with self._lock:
            return self._version, self._cbm, self._source

    def apply(self, batch: EdgeBatch) -> PatchReport:
        """Patch the current pair with one edge batch; returns a report.

        Raises :class:`~repro.errors.StalenessError` when the tracker
        enforces its budget and too many patches have accumulated since
        the last rebuild, or when the replay journal would overflow —
        both mean the writer must wait for a rebuild to land.
        """
        if self.tracker is not None:
            self.tracker.check_staleness()
        t0 = time.perf_counter()
        with self._lock:
            if len(self._journal) >= self.journal_limit:
                raise StalenessError(
                    f"replay journal holds {len(self._journal)} batches "
                    f"(limit {self.journal_limit}) with no rebuild landing — "
                    "rebuilds are not keeping up with the mutation rate",
                    staleness=len(self._journal),
                    budget=self.journal_limit,
                )
            before = self._cbm.num_deltas
            cbm2, source2, stats = patch_cbm(self._cbm, self._source, batch)
            self._version += 1
            version = self._version
            self._journal.append((version, batch))
            self._cbm, self._source = cbm2, source2
            after = cbm2.num_deltas
            nnz = source2.nnz
        if self.tracker is not None:
            self.tracker.note_patch(cbm2, version=version, edges=batch.num_edges)
        return PatchReport(
            version=version,
            inserted=stats["inserted"],
            deleted=stats["deleted"],
            noops=stats["noops"],
            rows_touched=stats["rows_touched"],
            rows_patched=stats["rows_patched"],
            deltas_before=before,
            deltas_after=after,
            nnz=nnz,
            seconds=time.perf_counter() - t0,
        )

    def rebase(
        self, fresh_cbm: CBMMatrix, *, built_version: int,
        source: CSRMatrix | None = None,
    ) -> tuple[int, CBMMatrix, CSRMatrix, int]:
        """Install a fresh rebuild made from the ``built_version`` snapshot.

        Batches journaled after ``built_version`` are replayed onto the
        fresh matrix, so the installed pair is exact for the current
        version even though the builder worked off-path on an older
        snapshot.  ``source`` is the snapshot CSR the rebuild was made
        from (decompressed from the fresh CBM when omitted).  Returns
        ``(version, cbm, source, replayed)``.
        """
        with self._lock:
            if built_version > self._version:
                raise CompressionError(
                    f"rebase from the future: built_version {built_version} "
                    f"> current version {self._version}"
                )
            cbm = fresh_cbm
            source = source if source is not None else fresh_cbm.tocsr()
            replay = [b for v, b in self._journal if v > built_version]
            for b in replay:
                cbm, source, _ = patch_cbm(cbm, source, b)
            self._cbm, self._source = cbm, source
            self._journal.clear()
            version = self._version
        if self.tracker is not None:
            self.tracker.mark_rebuilt(cbm, version=version, replayed=len(replay))
        return version, cbm, source, len(replay)
