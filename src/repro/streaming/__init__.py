"""Streaming graph mutations: incremental CBM maintenance.

The streaming tier keeps a CBM-compressed adjacency *exact* under a
stream of edge insertions/deletions by patching only the delta rows the
paper's §V-B locality argument shows can change (mutated rows and their
direct compression-tree children), while a :class:`DriftTracker` meters
how far compression quality has drifted from the fresh-build optimum
and a :class:`BackgroundRebuilder` recompresses off the hot path,
committing each rebuild durably and hot-swapping the serving slot with
zero downtime.

Public surface:

* :class:`EdgeBatch` / :func:`patch_cbm` / :class:`MutableAdjacency` —
  incremental maintenance (``mutable``);
* :class:`DriftPolicy` / :class:`DriftTracker` — drift/staleness
  metering and backpressure (``drift``);
* :class:`BackgroundRebuilder` / :func:`publish_snapshot` — off-path
  recompression and zero-downtime publication (``rebuild``);
* :func:`run_mutation_soak` — the mutation-storm chaos soak (``soak``).
"""

from repro.streaming.drift import DriftPolicy, DriftTracker
from repro.streaming.mutable import EdgeBatch, MutableAdjacency, PatchReport, patch_cbm
from repro.streaming.rebuild import BackgroundRebuilder, RebuildReport, publish_snapshot
from repro.streaming.soak import run_mutation_soak

__all__ = [
    "BackgroundRebuilder",
    "DriftPolicy",
    "DriftTracker",
    "EdgeBatch",
    "MutableAdjacency",
    "PatchReport",
    "RebuildReport",
    "patch_cbm",
    "publish_snapshot",
    "run_mutation_soak",
]
