"""Per-request deadline budgets for the inference service.

A :class:`Deadline` is an absolute :func:`time.monotonic` instant plus
helpers to read the remaining budget.  It is created at admission time
and travels with the request: the queue wait, every kernel attempt, and
every backoff sleep all draw from the same budget, and the executor's
watchdog receives the absolute instant (``expires_at``) so a slow update
stage is cancelled mid-run instead of blocking a worker past the budget.
"""

from __future__ import annotations

import time

from repro.utils.validation import check_positive


class Deadline:
    """An absolute monotonic-clock deadline with a fixed initial budget.

    ``clock`` is injectable for tests (defaults to :func:`time.monotonic`,
    the same clock the executor watchdog uses — the two must agree for
    ``expires_at`` propagation to be meaningful).
    """

    __slots__ = ("budget_s", "started_at", "expires_at", "_clock")

    def __init__(self, budget_s: float, *, clock=time.monotonic):
        check_positive(budget_s, "budget_s")
        self.budget_s = float(budget_s)
        self._clock = clock
        self.started_at = clock()
        self.expires_at = self.started_at + self.budget_s

    def remaining(self) -> float:
        """Seconds left before expiry (clamped at 0)."""
        return max(0.0, self.expires_at - self._clock())

    @staticmethod
    def tightest(deadlines) -> float:
        """Earliest absolute expiry among ``deadlines``.

        The micro-batching stage closes an open batch against this
        instant (minus its close margin) so that coalescing never
        violates the most impatient member's budget, and forwards it to
        the executor watchdog so one stacked run is cancelled when the
        tightest member's budget passes.
        """
        return min(d.expires_at for d in deadlines)

    @property
    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def elapsed(self) -> float:
        return self._clock() - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(budget_s={self.budget_s}, remaining={self.remaining():.3f}s)"
