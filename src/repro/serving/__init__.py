"""In-process inference serving over the CBM runtime.

The resilience tier of the reproduction: a thread-safe service with
bounded-queue admission control, per-request deadline budgets propagated
into the update-stage watchdog, retry with decorrelated-jitter backoff,
a per-adjacency circuit breaker walking the CBM → guarded-CBM → CSR
degradation ladder, and hot-swap of CRC-verified CBM archives.  See
``docs/ARCHITECTURE.md`` ("Serving & resilience") for the state machine
and the deadline propagation path.
"""

from repro.serving.backoff import RetryPolicy, is_transient
from repro.serving.batching import (
    KIND_GCN,
    KIND_PRODUCT,
    Batch,
    BatchCollector,
    BatchConfig,
    BatchLayout,
    quantize_columns,
)
from repro.serving.breaker import BreakerState, CircuitBreaker, ServeTier
from repro.serving.deadline import Deadline
from repro.serving.service import (
    AdjacencySlot,
    InferenceFuture,
    InferenceService,
    ServiceState,
    ServiceStats,
)
from repro.serving.soak import run_batched_soak, run_soak

__all__ = [
    "KIND_GCN",
    "KIND_PRODUCT",
    "AdjacencySlot",
    "Batch",
    "BatchCollector",
    "BatchConfig",
    "BatchLayout",
    "BreakerState",
    "CircuitBreaker",
    "Deadline",
    "InferenceFuture",
    "InferenceService",
    "RetryPolicy",
    "ServeTier",
    "ServiceState",
    "ServiceStats",
    "is_transient",
    "quantize_columns",
    "run_batched_soak",
    "run_soak",
]
