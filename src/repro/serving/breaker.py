"""Circuit breaker over the CBM fast path: a three-tier degradation ladder.

The paper's CBM kernel is fast but has more failure modes than the CSR
baseline (in-place update stage, compression-tree trust, branch-parallel
workers).  The breaker watches per-adjacency failure signals — strict
fast-path errors and the guarded kernel's internal fallbacks, both fed
from :class:`~repro.reliability.guard.GuardStats` accounting — and moves
the adjacency down a ladder of serving tiers when the failure rate in a
rolling window crosses the threshold:

* :attr:`ServeTier.FAST` — strict guarded CBM: validated planned
  products, fail-fast (failures surface to the breaker, not the client);
* :attr:`ServeTier.GUARDED` — fallback-protected CBM: the guard repairs
  failures with the reference chain, so clients still get answers while
  the breaker keeps counting the internal degradations;
* :attr:`ServeTier.DEGRADED` — the CSR reference product only: slower,
  but structurally independent of every CBM failure mode.

State machine (per adjacency)::

                 failures >= threshold in window
      CLOSED ────────────────────────────────────► OPEN  (tier += 1)
        ▲                                            │ cooldown elapses
        │ probes all succeed: tier -= 1;             ▼
        │ re-OPEN to climb further, or          HALF_OPEN ── probe at tier-1
        │ CLOSE when back at FAST                    │
        └───────────────────────────────── probe fails: back to OPEN
                                            (cooldown grows, capped)

Recovery is stepwise: DEGRADED proves GUARDED healthy before GUARDED
probes FAST, each step gated by ``probe_budget`` successful half-open
probes.  All methods are thread-safe; ``clock`` is injectable for tests.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque


class ServeTier(enum.IntEnum):
    """Execution tier for one request; higher is safer and slower."""

    FAST = 0
    GUARDED = 1
    DEGRADED = 2


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-rate breaker with tiered degradation and half-open probing.

    Parameters
    ----------
    window:
        Number of recent outcomes kept for the failure-rate computation.
    failure_threshold:
        Minimum failures inside the window before a trip is considered.
    failure_rate:
        Minimum failure fraction inside the window to trip.
    cooldown_s:
        How long an OPEN breaker waits before probing; doubles on every
        failed probe round (capped at ``max_cooldown_s``) and resets on
        promotion.
    probe_budget:
        Consecutive successful half-open probes required to climb one tier.
    probe_width:
        Maximum stacked-operand width (dense columns) a half-open probe
        may carry.  The micro-batching stage executes whole batches at
        one tier, so an unbounded probe would expose up to
        ``max_columns`` coalesced requests to the faster (suspect) tier
        at once; with a cap, wide batches keep serving at the safe tier
        and only narrow batches probe.  ``None`` (default) disables the
        cap — the pre-batching behaviour.
    """

    def __init__(
        self,
        *,
        window: int = 16,
        failure_threshold: int = 4,
        failure_rate: float = 0.5,
        cooldown_s: float = 1.0,
        max_cooldown_s: float = 30.0,
        probe_budget: int = 3,
        probe_width: int | None = None,
        clock=time.monotonic,
    ):
        if window < 1 or failure_threshold < 1 or probe_budget < 1:
            raise ValueError("window, failure_threshold, probe_budget must be >= 1")
        if not 0.0 < failure_rate <= 1.0:
            raise ValueError(f"failure_rate must lie in (0, 1], got {failure_rate}")
        if cooldown_s <= 0 or max_cooldown_s < cooldown_s:
            raise ValueError("need 0 < cooldown_s <= max_cooldown_s")
        if probe_width is not None and probe_width < 1:
            raise ValueError(f"probe_width must be >= 1 or None, got {probe_width}")
        self.probe_width = probe_width
        self.window = window
        self.failure_threshold = failure_threshold
        self.failure_rate = failure_rate
        self.base_cooldown_s = cooldown_s
        self.max_cooldown_s = max_cooldown_s
        self.probe_budget = probe_budget
        self._clock = clock
        self._lock = threading.Lock()

        self.state = BreakerState.CLOSED
        self.tier = ServeTier.FAST
        self.transitions: list[dict] = []
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._cooldown_s = cooldown_s
        self._opened_at: float | None = None
        self._probes_issued = 0
        self._probe_successes = 0

    # ------------------------------------------------------------------
    def _record_transition(self, event: str) -> None:
        self.transitions.append(
            {
                "event": event,
                "state": self.state.value,
                "tier": self.tier.name,
                "at": self._clock(),
            }
        )

    def _trip(self) -> None:
        """Degrade one tier and open (called under the lock)."""
        if self.tier < ServeTier.DEGRADED:
            self.tier = ServeTier(self.tier + 1)
        self.state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._cooldown_s = self.base_cooldown_s  # fresh tier, fresh cooldown
        self._outcomes.clear()
        self._probes_issued = 0
        self._probe_successes = 0
        self._record_transition("trip")

    def _promote(self) -> None:
        """Climb one tier after a successful probe round (under the lock)."""
        self.tier = ServeTier(self.tier - 1)
        self._cooldown_s = self.base_cooldown_s
        self._outcomes.clear()
        self._probes_issued = 0
        self._probe_successes = 0
        if self.tier == ServeTier.FAST:
            self.state = BreakerState.CLOSED
            self._opened_at = None
            self._record_transition("promote")
        else:
            # Not home yet: re-open so the next cooldown probes the
            # next-faster tier — stepwise DEGRADED → GUARDED → FAST.
            self.state = BreakerState.OPEN
            self._opened_at = self._clock()
            self._record_transition("promote")

    # ------------------------------------------------------------------
    def acquire(self, *, width: int = 1) -> tuple[ServeTier, bool]:
        """Pick the tier for one execution; returns ``(tier, is_probe)``.

        In HALF_OPEN state up to ``probe_budget`` in-flight executions
        are routed one tier faster than the current one (the probe);
        everyone else serves at the safe tier.  ``width`` is the stacked
        operand width of the execution (1 for a plain request): when
        ``probe_width`` is configured, executions wider than it never
        probe — a coalesced batch is many requests, and the blast radius
        of a failed probe should stay one request wide.
        """
        with self._lock:
            if (
                self.state is BreakerState.OPEN
                and self.tier > ServeTier.FAST
                and self._opened_at is not None
                and self._clock() - self._opened_at >= self._cooldown_s
            ):
                self.state = BreakerState.HALF_OPEN
                self._probes_issued = 0
                self._probe_successes = 0
                self._record_transition("half_open")
            if (
                self.state is BreakerState.HALF_OPEN
                and self._probes_issued < self.probe_budget
                and (self.probe_width is None or width <= self.probe_width)
            ):
                self._probes_issued += 1
                return ServeTier(self.tier - 1), True
            return self.tier, False

    def record(self, tier: ServeTier, ok: bool, *, probe: bool = False) -> None:
        """Feed one request outcome back (``probe`` as returned by acquire)."""
        with self._lock:
            if probe:
                if self.state is not BreakerState.HALF_OPEN:
                    return  # stale probe outcome from before a state change
                if not ok:
                    # Probe failed: stay at the safe tier, back off longer.
                    self._cooldown_s = min(self._cooldown_s * 2.0, self.max_cooldown_s)
                    self.state = BreakerState.OPEN
                    self._opened_at = self._clock()
                    self._probes_issued = 0
                    self._probe_successes = 0
                    self._record_transition("probe_failed")
                    return
                self._probe_successes += 1
                if self._probe_successes >= self.probe_budget:
                    self._promote()
                return
            self._outcomes.append(ok)
            if ok or self.tier >= ServeTier.DEGRADED:
                return
            # Failures count in every state: an adjacency already OPEN at
            # GUARDED must still be able to trip down to DEGRADED while
            # its internal fallbacks keep firing.
            failures = sum(1 for o in self._outcomes if not o)
            if (
                failures >= self.failure_threshold
                and failures / len(self._outcomes) >= self.failure_rate
            ):
                self._trip()

    def note_internal_failure(self) -> None:
        """A guarded-tier kernel degraded internally (client still got a
        correct answer via the fallback chain) — counts as a failure
        signal so persistent fast-path rot trips the breaker even when
        nothing surfaces to callers."""
        self.record(self.tier, False)

    def reset_window(self, *, reason: str = "") -> None:
        """Forget the recent-outcome window without changing state or tier.

        Called when the served plan changes (a re-tune published a new
        route): failures priced against the *old* plan must not count
        toward tripping the new one.  The state machine is untouched —
        a breaker that already degraded stays degraded and must earn its
        way back through probes as usual.
        """
        with self._lock:
            self._outcomes.clear()
            self._record_transition(f"window_reset:{reason}" if reason else "window_reset")

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        with self._lock:
            outcomes = list(self._outcomes)
            return {
                "state": self.state.value,
                "tier": self.tier.name,
                "window": len(outcomes),
                "recent_failures": sum(1 for o in outcomes if not o),
                "cooldown_s": self._cooldown_s,
                "transitions": len(self.transitions),
                "probe_budget": self.probe_budget,
                "probe_width": self.probe_width,
            }

    def transition_log(self) -> list[dict]:
        with self._lock:
            return [dict(t) for t in self.transitions]
