"""Retry policy: exponential backoff with decorrelated jitter.

Transient fast-path failures (a killed worker, a watchdog trip, a NaN
blow-up from an in-flight buffer) are worth one or two more attempts —
but naive fixed-interval retries synchronise clients into retry storms.
The service uses *decorrelated jitter* (Brooker's variant of capped
exponential backoff): each delay is drawn uniformly from
``[base, prev * 3]`` and capped, which decorrelates concurrent retriers
while still growing the expected delay geometrically.

Every sleep is additionally clamped to the request's remaining deadline
budget by the caller — a retry never outlives its request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import (
    NumericalError,
    ParallelError,
    ServingError,
    WatchdogTimeout,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts a request gets and how long to wait between them.

    ``max_attempts`` counts the first attempt: ``max_attempts=3`` means at
    most two retries.  ``base_s`` seeds the first delay; ``cap_s`` bounds
    every delay.
    """

    max_attempts: int = 3
    base_s: float = 0.005
    cap_s: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_s <= 0 or self.cap_s < self.base_s:
            raise ValueError(
                f"need 0 < base_s <= cap_s, got base_s={self.base_s}, cap_s={self.cap_s}"
            )

    def delays(self, rng: np.random.Generator) -> Iterator[float]:
        """Infinite stream of decorrelated-jitter delays (caller slices it)."""
        prev = self.base_s
        while True:
            prev = min(self.cap_s, float(rng.uniform(self.base_s, prev * 3.0)))
            yield prev


def is_transient(exc: BaseException) -> bool:
    """Whether retrying the fast path could plausibly fix this failure.

    Worker deaths and watchdog trips are scheduling accidents — retry.
    A non-finite *output* from finite inputs may be an in-flight buffer
    race or injected corruption — retry (the circuit breaker catches the
    persistent case).  A non-finite *input* (the guard marks those with
    ``input_rejection``), a shape mismatch, a serving-layer signal
    (overload, deadline), or any non-library error is deterministic from
    the request's point of view — do not retry.
    """
    if getattr(exc, "input_rejection", False):
        return False
    if isinstance(exc, ServingError):
        return False
    return isinstance(exc, (ParallelError, WatchdogTimeout, NumericalError))
