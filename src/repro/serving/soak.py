"""Chaos-under-load soak: correctness and liveness of the serving layer.

The harness drives an :class:`~repro.serving.service.InferenceService`
with concurrent client threads through three phases:

1. **healthy** — no faults; establishes the baseline and proves the
   breaker stays CLOSED at :attr:`ServeTier.FAST`;
2. **chaos** — a seeded :class:`~repro.reliability.chaos.ChaosExecutorFactory`
   kills/stalls update-stage workers and a fraction of requests carry
   NaN-poisoned operands; the breaker must walk the ladder down to
   :attr:`ServeTier.DEGRADED` while every *successful* response stays
   bit-comparable to the CSR reference;
3. **recovery** — fault injection stops and light traffic drives the
   half-open probes until the breaker climbs back to FAST.

Two invariants are checked for every request in every phase:

* **no silent corruption** — each successful result is verified against
  ``spmm(source, x)`` computed independently by the client thread;
* **no hung requests** — every submitted request resolves (result or
  typed error) within its deadline budget plus a small grace window.

:func:`run_soak` returns a JSON-ready report (phase latencies, shed /
retry / breaker-transition counts, guard stats, violations list); the
CLI ``serve-bench`` subcommand and ``benchmarks/bench_serving_soak.py``
are thin wrappers over it.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.errors import (
    DeadlineExceeded,
    NumericalError,
    OverloadError,
    ReproError,
)
from repro.serving.backoff import RetryPolicy
from repro.serving.breaker import CircuitBreaker, ServeTier
from repro.serving.service import AdjacencySlot, InferenceService
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import spmm


class _PhaseTally:
    """Per-phase outcome counters + latency samples (lock-protected)."""

    def __init__(self, name: str):
        self.name = name
        self.lock = threading.Lock()
        self.ok = 0
        self.wrong = 0
        self.cross_gen = 0
        self.shed = 0
        self.deadline = 0
        self.rejected = 0
        self.error = 0
        self.hung = 0
        self.latencies: list[float] = []
        self.violations: list[str] = []

    def summary(self) -> dict:
        lat = np.asarray(self.latencies, dtype=np.float64)
        return {
            "phase": self.name,
            "ok": self.ok,
            "wrong": self.wrong,
            "cross_generation": self.cross_gen,
            "shed": self.shed,
            "deadline_misses": self.deadline,
            "input_rejected": self.rejected,
            "errors": self.error,
            "hung": self.hung,
            "requests": self.ok + self.wrong + self.shed + self.deadline
            + self.rejected + self.error + self.hung,
            "latency_p50_ms": float(np.percentile(lat, 50) * 1e3) if lat.size else None,
            "latency_p99_ms": float(np.percentile(lat, 99) * 1e3) if lat.size else None,
        }


def _client(
    service: InferenceService,
    source: CSRMatrix,
    tally: _PhaseTally,
    *,
    requests: int,
    p: int,
    deadline_s: float,
    nan_fraction: float,
    seed: int,
) -> None:
    """One client thread: submit, wait, verify against the CSR reference."""
    # Deferred: repro.reliability.chaos reaches repro.parallel, whose
    # package init imports repro.serving — a module-level import here
    # would close that cycle and break first-touch imports of chaos.
    from repro.reliability.chaos import inject_nan

    rng = np.random.default_rng(seed)
    n = source.shape[1]
    for i in range(requests):
        x = rng.standard_normal((n, p)).astype(np.float32)
        poisoned = nan_fraction > 0.0 and rng.random() < nan_fraction
        if poisoned:
            x = inject_nan(x, fraction=0.01, seed=seed * 1009 + i)
        t0 = time.monotonic()
        try:
            future = service.submit(x, deadline_s=deadline_s)
        except OverloadError as exc:
            with tally.lock:
                tally.shed += 1
            time.sleep(min(exc.retry_after, 0.05))
            continue
        try:
            # Grace beyond the budget covers queue wait + one watchdog
            # poll; anything slower is a liveness violation.
            y = future.result(timeout=deadline_s + 5.0)
        except TimeoutError:
            with tally.lock:
                tally.hung += 1
                tally.violations.append(
                    f"{tally.name}: request did not resolve within "
                    f"deadline+grace (client seed {seed}, request {i})"
                )
            continue
        except DeadlineExceeded:
            with tally.lock:
                tally.deadline += 1
            continue
        except NumericalError as exc:
            with tally.lock:
                if poisoned and getattr(exc, "input_rejection", False):
                    tally.rejected += 1
                else:
                    tally.error += 1
            continue
        except ReproError:
            with tally.lock:
                tally.error += 1
            continue
        elapsed = time.monotonic() - t0
        expected = spmm(source, x)
        with tally.lock:
            tally.latencies.append(elapsed)
            if np.allclose(y, expected, rtol=1e-3, atol=1e-5, equal_nan=True):
                tally.ok += 1
            else:
                tally.wrong += 1
                tally.violations.append(
                    f"{tally.name}: result diverged from CSR reference "
                    f"(client seed {seed}, request {i}, max abs err "
                    f"{float(np.nanmax(np.abs(y - expected))):.3e})"
                )


def _burst(
    service: InferenceService,
    source: CSRMatrix,
    *,
    count: int,
    p: int,
    deadline_s: float,
    seed: int,
) -> _PhaseTally:
    """Fire-and-collect burst: submit ``count`` requests back-to-back
    (no waiting between submissions), exceeding the bounded queue so
    admission control must shed, then resolve and verify the admitted
    ones.  Proves load shedding is load *shedding* — the requests that
    were admitted still come back correct and on time."""
    tally = _PhaseTally("burst")
    rng = np.random.default_rng(seed)
    n = source.shape[1]
    # Pre-generate the operands: the burst must be submission-bound
    # (microseconds apart), not RNG-bound, to outrun the workers.
    operands = [rng.standard_normal((n, p)).astype(np.float32) for _ in range(count)]
    inflight: list[tuple[np.ndarray, object, float]] = []
    for x in operands:
        t0 = time.monotonic()
        try:
            inflight.append((x, service.submit(x, deadline_s=deadline_s), t0))
        except OverloadError:
            tally.shed += 1
    for x, future, t0 in inflight:
        try:
            y = future.result(timeout=deadline_s + 5.0)
        except TimeoutError:
            tally.hung += 1
            tally.violations.append("burst: admitted request did not resolve")
            continue
        except DeadlineExceeded:
            tally.deadline += 1
            continue
        except ReproError:
            tally.error += 1
            continue
        tally.latencies.append(time.monotonic() - t0)
        if np.allclose(y, spmm(source, x), rtol=1e-3, atol=1e-5):
            tally.ok += 1
        else:
            tally.wrong += 1
            tally.violations.append("burst: result diverged from CSR reference")
    return tally


def _run_phase(
    service: InferenceService,
    source: CSRMatrix,
    name: str,
    *,
    clients: int,
    requests_per_client: int,
    p: int,
    deadline_s: float,
    nan_fraction: float = 0.0,
    seed: int = 0,
) -> _PhaseTally:
    tally = _PhaseTally(name)
    threads = [
        threading.Thread(
            target=_client,
            args=(service, source, tally),
            kwargs=dict(
                requests=requests_per_client,
                p=p,
                deadline_s=deadline_s,
                nan_fraction=nan_fraction,
                seed=seed * 8191 + k,
            ),
            name=f"soak-client-{name}-{k}",
        )
        for k in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return tally


def run_soak(
    a: CSRMatrix,
    *,
    alpha: int = 0,
    clients: int = 4,
    requests_per_client: int = 25,
    p: int = 16,
    deadline_s: float = 2.0,
    threads: int = 2,
    workers: int = 2,
    queue_capacity: int = 8,
    fail_rate: float = 0.45,
    stall_rate: float = 0.15,
    nan_fraction: float = 0.1,
    branch_timeout: float = 0.25,
    recovery_rounds: int = 40,
    seed: int = 0,
) -> dict:
    """Run the three-phase chaos soak; return a JSON-ready report.

    The report's ``checks`` block is the acceptance evidence: zero wrong
    results, zero hung requests, the breaker demonstrably tripped to
    DEGRADED under chaos, and it recovered to FAST once the faults
    stopped.  ``ok`` is the conjunction.
    """
    from repro.reliability.chaos import ChaosExecutorFactory

    if clients < 1 or requests_per_client < 1:
        raise ValueError("need at least one client and one request per client")
    chaos = ChaosExecutorFactory(
        fail_rate=fail_rate,
        stall_rate=stall_rate,
        stall_seconds=30.0,  # far beyond branch_timeout: always a watchdog trip
        seed=seed,
    )
    chaos.enabled = False  # healthy phase first
    breaker = CircuitBreaker(
        window=12,
        failure_threshold=3,
        failure_rate=0.5,
        cooldown_s=0.25,
        max_cooldown_s=2.0,
        probe_budget=2,
    )
    slot = AdjacencySlot.from_graph(a, alpha=alpha)
    service = InferenceService(
        slot,
        workers=workers,
        queue_capacity=queue_capacity,
        default_deadline_s=deadline_s,
        threads=threads,
        branch_timeout=branch_timeout,
        retry=RetryPolicy(max_attempts=3, base_s=0.002, cap_s=0.05),
        breaker=breaker,
        executor_factory=chaos,
        seed=seed,
    )
    report: dict = {
        "workload": {
            "nodes": a.shape[0],
            "nnz": a.nnz,
            "alpha": alpha,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "feature_width": p,
            "deadline_s": deadline_s,
            "threads": threads,
            "workers": workers,
            "queue_capacity": queue_capacity,
            "fail_rate": fail_rate,
            "stall_rate": stall_rate,
            "nan_fraction": nan_fraction,
            "branch_timeout_s": branch_timeout,
            "seed": seed,
        },
        "phases": [],
    }
    tripped_to_degraded = False
    recovered_to_fast = False
    with service:
        healthy = _run_phase(
            service, slot.source, "healthy",
            clients=clients, requests_per_client=requests_per_client,
            p=p, deadline_s=deadline_s, seed=seed + 1,
        )
        report["phases"].append(healthy.summary())

        # Overload burst: more back-to-back submissions than the bounded
        # queue can hold, so admission control must shed some of them.
        burst = _burst(
            service, slot.source,
            count=max(3 * queue_capacity, clients * 4),
            p=p, deadline_s=deadline_s, seed=seed + 50,
        )
        report["phases"].append(burst.summary())

        chaos.enabled = True
        chaotic = _run_phase(
            service, slot.source, "chaos",
            clients=clients, requests_per_client=requests_per_client,
            p=p, deadline_s=deadline_s, nan_fraction=nan_fraction,
            seed=seed + 2,
        )
        report["phases"].append(chaotic.summary())
        tripped_to_degraded = any(
            t["event"] == "trip" and t["tier"] == ServeTier.DEGRADED.name
            for t in breaker.transition_log()
        )

        chaos.enabled = False
        recovery = _PhaseTally("recovery")
        rounds = 0
        for rounds in range(1, recovery_rounds + 1):
            # Light traffic: enough to feed the half-open probes, short
            # waits so cooldowns elapse between rounds.
            tick = _run_phase(
                service, slot.source, "recovery",
                clients=1, requests_per_client=3,
                p=p, deadline_s=deadline_s, seed=seed + 100 + rounds,
            )
            with recovery.lock:
                for attr in ("ok", "wrong", "shed", "deadline", "rejected",
                             "error", "hung"):
                    setattr(recovery, attr, getattr(recovery, attr) + getattr(tick, attr))
                recovery.latencies.extend(tick.latencies)
                recovery.violations.extend(tick.violations)
            if breaker.tier == ServeTier.FAST:
                recovered_to_fast = True
                break
            time.sleep(0.1)
        summary = recovery.summary()
        summary["rounds"] = rounds
        report["phases"].append(summary)

    violations = (
        healthy.violations + burst.violations + chaotic.violations
        + recovery.violations
    )
    if burst.shed == 0:
        violations.append(
            "overload burst was never shed (admission control untested)"
        )
    if not tripped_to_degraded:
        violations.append("breaker never tripped to DEGRADED during chaos")
    if not recovered_to_fast:
        violations.append(
            f"breaker did not recover to FAST within {recovery_rounds} "
            f"recovery rounds (stuck at {breaker.tier.name})"
        )
    total_wrong = healthy.wrong + burst.wrong + chaotic.wrong + recovery.wrong
    total_hung = healthy.hung + burst.hung + chaotic.hung + recovery.hung
    report["breaker"] = breaker.describe()
    report["breaker_transitions"] = breaker.transition_log()
    report["chaos"] = chaos.describe()
    report["service"] = service.stats.snapshot()
    report["guard"] = slot.stats.snapshot()
    report["checks"] = {
        "zero_wrong_results": total_wrong == 0,
        "zero_hung_requests": total_hung == 0,
        "overload_was_shed": burst.shed > 0,
        "tripped_to_degraded": tripped_to_degraded,
        "recovered_to_fast": recovered_to_fast,
    }
    report["violations"] = violations
    report["ok"] = not violations
    return report


# ----------------------------------------------------------------------
# Batched soak: the micro-batching stage under concurrency + hot swaps
# ----------------------------------------------------------------------
def _batched_client(
    service: InferenceService,
    sources: list[CSRMatrix],
    tally: _PhaseTally,
    *,
    requests: int,
    max_width: int,
    deadline_s: float,
    nan_fraction: float,
    seed: int,
) -> None:
    """One client of the batched soak: mixed widths (vectors ride along),
    every result verified against the CSR reference *of the generation
    that served it* (``future.generation``) — a result matching a
    different generation's reference is cross-generation contamination,
    the invariant the collector's bind-at-open + close-on-swap protects.
    """
    from repro.reliability.chaos import inject_nan
    from repro.sparse.ops import spmv

    rng = np.random.default_rng(seed)
    n = sources[0].shape[1]
    for i in range(requests):
        width = int(rng.integers(1, max_width + 1))
        if width == 1 and rng.random() < 0.5:
            x = rng.standard_normal(n).astype(np.float32)
        else:
            x = rng.standard_normal((n, width)).astype(np.float32)
        poisoned = nan_fraction > 0.0 and rng.random() < nan_fraction
        if poisoned:
            x = inject_nan(x, fraction=0.01, seed=seed * 1009 + i)
        t0 = time.monotonic()
        try:
            future = service.submit(x, deadline_s=deadline_s)
        except OverloadError as exc:
            with tally.lock:
                tally.shed += 1
            time.sleep(min(exc.retry_after, 0.05))
            continue
        try:
            y = future.result(timeout=deadline_s + 5.0)
        except TimeoutError:
            with tally.lock:
                tally.hung += 1
                tally.violations.append(
                    f"{tally.name}: request did not resolve within "
                    f"deadline+grace (client seed {seed}, request {i})"
                )
            continue
        except DeadlineExceeded:
            with tally.lock:
                tally.deadline += 1
            continue
        except NumericalError as exc:
            with tally.lock:
                if poisoned and getattr(exc, "input_rejection", False):
                    tally.rejected += 1
                else:
                    tally.error += 1
            continue
        except ReproError:
            with tally.lock:
                tally.error += 1
            continue
        elapsed = time.monotonic() - t0
        gen = future.generation if future.generation is not None else 0
        src = sources[gen % len(sources)]
        expected = spmv(src, x) if x.ndim == 1 else spmm(src, x)
        matches = np.allclose(y, expected, rtol=1e-3, atol=1e-5)
        with tally.lock:
            tally.latencies.append(elapsed)
            if matches:
                tally.ok += 1
                continue
            tally.wrong += 1
            # Label the failure: does it match a *different* generation?
            other = sources[(gen + 1) % len(sources)]
            alt = spmv(other, x) if x.ndim == 1 else spmm(other, x)
            if len(sources) > 1 and np.allclose(y, alt, rtol=1e-3, atol=1e-5):
                tally.cross_gen += 1
                tally.violations.append(
                    f"{tally.name}: cross-generation contamination — result "
                    f"labelled generation {gen} matches the other slot "
                    f"(client seed {seed}, request {i})"
                )
            else:
                tally.violations.append(
                    f"{tally.name}: result diverged from every reference "
                    f"(client seed {seed}, request {i}, generation {gen})"
                )


def _run_batched_phase(
    service: InferenceService,
    sources: list[CSRMatrix],
    name: str,
    *,
    clients: int,
    requests_per_client: int,
    max_width: int,
    deadline_s: float,
    nan_fraction: float = 0.0,
    seed: int = 0,
) -> _PhaseTally:
    tally = _PhaseTally(name)
    threads = [
        threading.Thread(
            target=_batched_client,
            args=(service, sources, tally),
            kwargs=dict(
                requests=requests_per_client,
                max_width=max_width,
                deadline_s=deadline_s,
                nan_fraction=nan_fraction,
                seed=seed * 8191 + k,
            ),
            name=f"bsoak-client-{name}-{k}",
        )
        for k in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return tally


def run_batched_soak(
    a: CSRMatrix,
    *,
    alpha: int = 0,
    clients: int = 6,
    requests_per_client: int = 20,
    max_width: int = 8,
    deadline_s: float = 2.0,
    workers: int = 2,
    queue_capacity: int = 64,
    max_columns: int = 32,
    latency_budget_s: float = 0.003,
    nan_fraction: float = 0.15,
    swap_count: int = 8,
    swap_interval_s: float = 0.03,
    seed: int = 0,
) -> dict:
    """Soak the micro-batching stage; return a JSON-ready report.

    Three phases against a batched :class:`InferenceService`:

    1. **healthy** — concurrent clients with mixed request widths
       (vectors ride along as width-1 columns); proves coalescing
       actually happens (``coalesced > 0``) and nothing goes wrong/hung;
    2. **swap storm** — a swapper thread alternates :meth:`swap_slot`
       between two prebuilt adjacencies while clients keep submitting;
       each client verifies its result against the reference matrix of
       ``future.generation`` (even generations = matrix A, odd = B), so
       a batch that mixed generations is *observable*, not just asserted;
    3. **poisoned** — a fraction of operands carry NaN; poisoned members
       must be rejected with ``input_rejection`` while their clean
       batchmates (batch victims) still resolve correctly.

    The ``checks`` block is the acceptance evidence: zero wrong, zero
    hung, zero cross-generation results, coalescing effective, poison
    isolated.  ``ok`` is the conjunction.
    """
    from repro.serving.batching import BatchConfig

    if clients < 1 or requests_per_client < 1:
        raise ValueError("need at least one client and one request per client")
    slot_a = AdjacencySlot.from_graph(a, alpha=alpha)
    # Second adjacency for the swap storm: the reverse-permuted graph —
    # same shape and degree profile, completely different products.
    from repro.sparse.convert import from_dense

    dense_b = a.toarray()[::-1, ::-1].copy()
    b = from_dense(dense_b)
    slot_b_proto = AdjacencySlot.from_graph(b, alpha=alpha)
    sources = [slot_a.source, slot_b_proto.source]
    cbms = [slot_a.cbm, slot_b_proto.cbm]

    service = InferenceService(
        slot_a,
        workers=workers,
        queue_capacity=queue_capacity,
        default_deadline_s=deadline_s,
        retry=RetryPolicy(max_attempts=3, base_s=0.002, cap_s=0.05),
        batch=BatchConfig(
            max_columns=max_columns, latency_budget_s=latency_budget_s
        ),
        seed=seed,
    )
    report: dict = {
        "workload": {
            "nodes": a.shape[0],
            "nnz": a.nnz,
            "alpha": alpha,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "max_width": max_width,
            "deadline_s": deadline_s,
            "workers": workers,
            "queue_capacity": queue_capacity,
            "max_columns": max_columns,
            "latency_budget_s": latency_budget_s,
            "nan_fraction": nan_fraction,
            "swap_count": swap_count,
            "seed": seed,
        },
        "phases": [],
    }
    with service:
        healthy = _run_batched_phase(
            service, sources, "healthy",
            clients=clients, requests_per_client=requests_per_client,
            max_width=max_width, deadline_s=deadline_s, seed=seed + 1,
        )
        report["phases"].append(healthy.summary())

        swaps_done = [0]

        def _swapper() -> None:
            for k in range(swap_count):
                # Alternate B, A, B, ... so generation parity maps to the
                # source list: even generations serve A, odd serve B.
                incoming = AdjacencySlot(cbms[(k + 1) % 2], sources[(k + 1) % 2])
                service.swap_slot(incoming)
                swaps_done[0] += 1
                time.sleep(swap_interval_s)

        storm = _PhaseTally("swap_storm")
        swapper = threading.Thread(target=_swapper, name="bsoak-swapper")
        swapper.start()
        storm_tick = _run_batched_phase(
            service, sources, "swap_storm",
            clients=clients, requests_per_client=requests_per_client,
            max_width=max_width, deadline_s=deadline_s, seed=seed + 2,
        )
        swapper.join()
        for attr in ("ok", "wrong", "cross_gen", "shed", "deadline",
                     "rejected", "error", "hung"):
            setattr(storm, attr, getattr(storm_tick, attr))
        storm.latencies = storm_tick.latencies
        storm.violations = storm_tick.violations
        summary = storm.summary()
        summary["swaps"] = swaps_done[0]
        report["phases"].append(summary)

        poisoned = _run_batched_phase(
            service, sources, "poisoned",
            clients=clients, requests_per_client=requests_per_client,
            max_width=max_width, deadline_s=deadline_s,
            nan_fraction=nan_fraction, seed=seed + 3,
        )
        report["phases"].append(poisoned.summary())

        service_stats = service.stats.snapshot()
        health = service.health()

    violations = healthy.violations + storm.violations + poisoned.violations
    coalesced = service_stats["coalesced"]
    if coalesced == 0:
        violations.append(
            "batching stage never coalesced two requests into one batch "
            "(micro-batching untested)"
        )
    if nan_fraction > 0.0 and poisoned.rejected == 0:
        violations.append(
            "poisoned phase produced no input rejections (attribution untested)"
        )
    total_wrong = healthy.wrong + storm.wrong + poisoned.wrong
    total_hung = healthy.hung + storm.hung + poisoned.hung
    total_cross = healthy.cross_gen + storm.cross_gen + poisoned.cross_gen
    report["service"] = service_stats
    report["batching"] = health["batching"]
    report["checks"] = {
        "zero_wrong_results": total_wrong == 0,
        "zero_hung_requests": total_hung == 0,
        "zero_cross_generation": total_cross == 0,
        "coalescing_effective": coalesced > 0,
        "poison_isolated": nan_fraction == 0.0 or poisoned.rejected > 0,
        "swaps_completed": swaps_done[0] == swap_count,
    }
    report["violations"] = violations
    report["ok"] = not violations and all(report["checks"].values())
    return report
