"""Micro-batching stage: coalesce concurrent requests into one stacked SpMM.

The paper's CBM update stage costs nearly the same whether the dense
operand has 1 column or 64 — the level loop walks the same tree edges
and the multiplication stage streams the same sparse structure either
way.  Per-request forwards therefore leave the single biggest serving
throughput lever on the table: queue depth can be converted directly
into dense columns.  A :class:`BatchCollector` sits between the
service's admission queue and its executor and does exactly that:

* requests targeting the same :class:`~repro.serving.service.AdjacencySlot`
  — same adjacency **generation** and same **operator kind** (bare
  product vs GCN forward) — are coalesced into one stacked-feature
  operand ``[x₀ | x₁ | …]`` and served by a single stacked forward;
* a batch stays open for at most :attr:`BatchConfig.latency_budget_s`
  (default 3 ms) and closes **early** when the tightest member
  :class:`~repro.serving.deadline.Deadline` would otherwise be violated
  or :attr:`BatchConfig.max_columns` stacked columns are reached;
* the stacked result is split back per requester (column spans recorded
  in a :class:`BatchLayout`, auditable by
  :func:`repro.staticcheck.hazards.analyze_batch_layout`);
* 1-D vector requests ride along as width-1 columns and are squeezed
  back to 1-D on split.

Correctness contract: both the CSR kernels and the CBM multiply/update
stages are column-wise independent, so every member's slice of the
stacked product is **bitwise identical** to the product the member
would have received unbatched (the property suite asserts exactly
this).  Failure isolation is per-batch with per-request attribution:
a guard fallback or breaker transition applies to the whole batch
execution, while deadline expiry and input rejection are decided per
request, and retries re-enter the collector instead of bypassing it.

Generation purity: a batch binds its slot once, at open; members
collected later execute against that same slot, and a hot swap observed
mid-collection closes the batch early so no batch ever mixes adjacency
generations.
"""

from __future__ import annotations

import queue as _queue_mod
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.serving.deadline import Deadline
from repro.utils.validation import check_positive

#: Operator kinds a batch key can carry.  Vector and matrix requests
#: share ``KIND_PRODUCT`` — a vector is a width-1 column of the same
#: stacked SpMM; the GCN forward is a different operator (its GEMM
#: stages are applied per member block) and never mixes with bare
#: products.
KIND_PRODUCT = "product"
KIND_GCN = "gcn"


def quantize_columns(columns: int, quantum: int) -> int:
    """Round a stacked-operand width up to a multiple of ``quantum``.

    Width quantisation is what makes the workspace pool effective for
    micro-batches: batch widths vary request-to-request, and an
    exact-shape pool would miss on almost every acquire.  Rounding to a
    small quantum (8 by default) collapses the key space; the padding
    columns are zero-filled and cost one short memset plus a few wasted
    kernel columns, bounded by ``quantum - 1``.
    """
    check_positive(quantum, "quantum")
    if columns <= 0:
        raise ValueError(f"columns must be positive, got {columns}")
    return ((columns + quantum - 1) // quantum) * quantum


@dataclass(frozen=True)
class BatchConfig:
    """Tuning knobs for the micro-batching stage.

    Parameters
    ----------
    max_columns:
        Cap on stacked operand columns per batch (the paper's update
        stage amortises essentially for free up to ~64 columns; beyond
        that the multiplication stage dominates again).  A single
        request wider than the cap still executes — solo.
    latency_budget_s:
        How long an open batch may wait for co-travellers.  This is the
        throughput/latency dial: the p99 of a lightly loaded service is
        roughly its unbatched p99 plus this budget.
    close_margin_s:
        Safety reserve before the tightest member deadline: the batch
        closes at ``tightest_expiry - close_margin_s`` even when the
        latency budget has not elapsed, leaving that margin for the
        stacked execution itself.
    quantum:
        Column quantum for workspace reuse (see :func:`quantize_columns`);
        ``1`` disables padding.
    """

    max_columns: int = 64
    latency_budget_s: float = 0.003
    close_margin_s: float = 0.010
    quantum: int = 8

    def __post_init__(self) -> None:
        check_positive(self.max_columns, "max_columns")
        check_positive(self.latency_budget_s, "latency_budget_s")
        check_positive(self.quantum, "quantum")
        if self.close_margin_s < 0:
            raise ValueError(
                f"close_margin_s must be >= 0, got {self.close_margin_s}"
            )


@dataclass(frozen=True)
class BatchLayout:
    """Column map of one stacked operand: who owns which span.

    ``members`` holds one ``(offset, width)`` pair per request in batch
    order; ``total_columns`` is the (possibly quantised) stacked buffer
    width, so ``total_columns - offset_end`` trailing columns are
    zero-filled padding.  The layout is the static contract the split
    step relies on — :func:`repro.staticcheck.hazards.analyze_batch_layout`
    proves it free of cross-member aliasing (a Property 3 violation:
    one output span serving two requesters) before anything executes.
    """

    members: tuple[tuple[int, int], ...]
    total_columns: int
    n_rows: int = 0

    @classmethod
    def pack(cls, widths, *, quantum: int = 1, n_rows: int = 0) -> "BatchLayout":
        """Dense left-to-right packing of member widths (the only layout
        the collector ever produces)."""
        members = []
        offset = 0
        for w in widths:
            w = int(w)
            members.append((offset, w))
            offset += w
        total = quantize_columns(offset, quantum) if offset else 0
        return cls(members=tuple(members), total_columns=total, n_rows=int(n_rows))

    @property
    def used_columns(self) -> int:
        return sum(w for _, w in self.members)

    @property
    def padding_columns(self) -> int:
        return self.total_columns - max(
            (off + w for off, w in self.members), default=0
        )

    def spans(self) -> list[tuple[int, int]]:
        """``(lo, hi)`` half-open column spans, batch order."""
        return [(off, off + w) for off, w in self.members]


class Batch:
    """One batch bound to one adjacency slot: members + column layout."""

    __slots__ = ("slot", "generation", "kind", "members", "opened_at")

    def __init__(self, slot, kind: str, *, clock=time.monotonic):
        self.slot = slot
        self.generation = slot.generation
        self.kind = kind
        self.members: list = []
        self.opened_at = clock()

    @property
    def width(self) -> int:
        return sum(m.width for m in self.members)

    def tightest_expiry(self) -> float:
        return Deadline.tightest(m.deadline for m in self.members)

    def layout(self, *, quantum: int = 1) -> BatchLayout:
        return BatchLayout.pack(
            (m.width for m in self.members),
            quantum=quantum,
            n_rows=self.slot.cbm.shape[0],
        )


@dataclass
class CollectorStats:
    """Counters for batch formation (lock-free reads are fine: they are
    informational, bumped only by the collector's own lock holders)."""

    batches: int = 0
    budget_closes: int = 0
    deadline_closes: int = 0
    width_closes: int = 0
    swap_closes: int = 0
    requeued: int = 0

    def snapshot(self) -> dict:
        return {
            "batches": self.batches,
            "budget_closes": self.budget_closes,
            "deadline_closes": self.deadline_closes,
            "width_closes": self.width_closes,
            "swap_closes": self.swap_closes,
            "requeued": self.requeued,
        }


class BatchCollector:
    """Forms :class:`Batch` objects from the service's admitted-request queue.

    The collector owns two sources: the bounded admission queue (shared
    with :meth:`InferenceService.submit`) and an unbounded ``pending``
    deque holding requests that re-entered after a transient batch
    failure (retries **re-enter the collector**, they never bypass it)
    or that could not join the batch being formed (kind mismatch, width
    overflow).  Pending requests are preferred over fresh queue items so
    retries are not starved by new arrivals.

    Thread safety: many workers may call :meth:`next_batch`
    concurrently; each call drains items into its own private batch, so
    two workers never share a member.  The queue's ``None`` shutdown
    pills are honoured exactly — a pill swallowed mid-collection is
    credited back and delivered on the worker's next call.
    """

    def __init__(self, source_queue, config: BatchConfig, *, clock=time.monotonic):
        self.config = config
        self._queue = source_queue
        self._clock = clock
        self._pending: deque = deque()
        self._lock = threading.Lock()
        self._swallowed_pills = 0
        self.stats = CollectorStats()

    # ------------------------------------------------------------------
    def requeue(self, requests) -> None:
        """Re-enter requests (retries, batch-victims) into the collector."""
        with self._lock:
            for r in requests:
                self._pending.append(r)
                self.stats.requeued += 1

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def drain_pending(self) -> list:
        """Remove and return every pending request (service shutdown)."""
        with self._lock:
            items = list(self._pending)
            self._pending.clear()
        return items

    # ------------------------------------------------------------------
    def _pop_pending(self, batch: Batch | None, room: int):
        """First pending request compatible with ``batch`` (or any, when
        seeding with ``batch=None``); None when nothing fits."""
        with self._lock:
            for i, req in enumerate(self._pending):
                if batch is None or (req.kind == batch.kind and req.width <= room):
                    del self._pending[i]
                    return req
        return None

    def next_batch(self, current_slot) -> Batch | None:
        """Block until a batch is ready (or a shutdown pill arrives).

        ``current_slot`` is a zero-argument callable returning the
        service's live :class:`AdjacencySlot`; it is read once to bind
        the batch and re-read while collecting so a hot swap closes the
        open batch instead of mixing generations inside it.
        Returns ``None`` on shutdown.
        """
        with self._lock:
            if self._swallowed_pills:
                self._swallowed_pills -= 1
                return None
        seed = self._pop_pending(None, 0)
        if seed is None:
            item = self._queue.get()
            if item is None:
                return None
            seed = item
        cfg = self.config
        batch = Batch(current_slot(), seed.kind, clock=self._clock)
        batch.members.append(seed)
        hard_close = batch.opened_at + cfg.latency_budget_s
        while batch.width < cfg.max_columns:
            if current_slot().generation != batch.generation:
                self.stats.swap_closes += 1
                break
            close_at = min(
                hard_close, batch.tightest_expiry() - cfg.close_margin_s
            )
            wait = close_at - self._clock()
            if wait <= 0:
                if hard_close <= batch.tightest_expiry() - cfg.close_margin_s:
                    self.stats.budget_closes += 1
                else:
                    self.stats.deadline_closes += 1
                break
            room = cfg.max_columns - batch.width
            nxt = self._pop_pending(batch, room)
            if nxt is None:
                try:
                    nxt = self._queue.get(timeout=wait)
                except _queue_mod.Empty:
                    continue
                if nxt is None:
                    # Shutdown pill meant for some worker: credit it back
                    # and close this batch now.
                    with self._lock:
                        self._swallowed_pills += 1
                    break
                if nxt.kind != batch.kind or nxt.width > room:
                    with self._lock:
                        self._pending.append(nxt)
                    if nxt.kind == batch.kind:
                        self.stats.width_closes += 1
                        break
                    continue
            batch.members.append(nxt)
        else:
            self.stats.width_closes += 1
        self.stats.batches += 1
        return batch
