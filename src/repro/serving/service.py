"""In-process, thread-safe inference service over the CBM runtime.

:class:`InferenceService` turns the single-product safety of
:class:`~repro.reliability.guard.GuardedKernel` into stream safety: a
bounded request queue with admission control, per-request deadline
budgets, retry with decorrelated-jitter backoff, and a per-adjacency
circuit breaker that walks the CBM → guarded-CBM → CSR degradation
ladder (see :mod:`repro.serving.breaker`).  The contract to clients:

* :meth:`InferenceService.submit` either accepts the request or raises a
  typed admission error (:class:`~repro.errors.OverloadError` with a
  ``retry_after`` hint, or :class:`~repro.errors.ServiceUnavailable`);
* every accepted request resolves — to a validated result or a typed
  :class:`~repro.errors.ReproError` — within its deadline budget plus
  one watchdog poll; nothing hangs and nothing returns a silently wrong
  buffer.

The serving target is an :class:`AdjacencySlot` — the CBM matrix, its
CSR reference, and their shared :class:`GuardStats` — which can be
hot-swapped from a CRC-verified archive while requests are in flight:
in-flight work finishes on the old slot, new work lands on the new one,
and the old plans' workspace pools are drained.
"""

from __future__ import annotations

import queue
import threading
import time

import numpy as np

from repro.core.cbm import CBMMatrix
from repro.core.io import load_cbm
from repro.errors import (
    DeadlineExceeded,
    IntegrityError,
    NumericalError,
    OverloadError,
    ReproError,
    ServiceUnavailable,
    ShapeError,
)
from repro.reliability.guard import GuardedAdjacency, GuardedKernel, GuardStats
from repro.serving.backoff import RetryPolicy, is_transient
from repro.serving.batching import (
    KIND_GCN,
    KIND_PRODUCT,
    Batch,
    BatchCollector,
    BatchConfig,
    BatchLayout,
)
from repro.serving.breaker import CircuitBreaker, ServeTier
from repro.serving.deadline import Deadline
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import spmm, spmv
from repro.utils.validation import all_finite, check_positive


class ServiceState:
    STARTING = "starting"
    READY = "ready"
    DRAINING = "draining"
    STOPPED = "stopped"


class ServiceStats:
    """Thread-safe service counters (health endpoint and soak harness)."""

    _FIELDS = (
        "submitted",
        "completed",
        "failed",
        "shed",
        "deadline_misses",
        "input_rejections",
        "retries",
        "swaps",
        "batches",
        "coalesced",
        "batch_victims",
        "retunes",
        "autotune_attach_failures",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self._FIELDS:
            setattr(self, name, 0)

    def bump(self, name: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + by)

    def snapshot(self) -> dict:
        with self._lock:
            return {name: getattr(self, name) for name in self._FIELDS}


class InferenceFuture:
    """Resolution handle for one accepted request.

    ``result(timeout)`` blocks until the worker resolves the future,
    returning the product or raising the typed error the request ended
    with; on timeout it raises :class:`TimeoutError` (a *harness* signal —
    the service itself always resolves within the deadline budget).

    ``generation`` records which adjacency generation served the request
    (set just before the future resolves, ``None`` until then and for
    rejected requests).  Clients swap-storming the service use it to
    verify each result against the reference matrix of the generation
    that actually produced it — the observable form of the batching
    stage's generation-purity invariant.
    """

    def __init__(self) -> None:
        self._done = threading.Event()
        self._value: np.ndarray | None = None
        self._exc: BaseException | None = None
        self.generation: int | None = None

    def _resolve(self, value: np.ndarray) -> None:
        self._value = value
        self._done.set()

    def _reject(self, exc: BaseException) -> None:
        self._exc = exc
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        if not self._done.wait(timeout):
            raise TimeoutError("request not resolved within the wait timeout")
        if self._exc is not None:
            raise self._exc
        return self._value

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._done.wait(timeout):
            raise TimeoutError("request not resolved within the wait timeout")
        return self._exc


class _Request:
    __slots__ = ("x", "deadline", "future", "vector", "kind", "attempts")

    def __init__(
        self, x: np.ndarray, deadline: Deadline, vector: bool, kind: str = KIND_PRODUCT
    ):
        self.x = x
        self.deadline = deadline
        self.future = InferenceFuture()
        self.vector = vector
        self.kind = kind
        self.attempts = 0

    @property
    def width(self) -> int:
        """Dense columns this request occupies in a stacked operand."""
        return 1 if self.vector else int(self.x.shape[1])


class AdjacencySlot:
    """One hot-swappable serving target: CBM + CSR reference + shared stats.

    ``generation`` increments across swaps so health output shows which
    artifact is live.
    """

    def __init__(
        self,
        cbm: CBMMatrix,
        source: CSRMatrix,
        *,
        generation: int = 0,
        stats: GuardStats | None = None,
        tracker=None,
    ):
        if cbm.shape != source.shape:
            raise ShapeError.mismatch("slot cbm vs source", cbm.shape, source.shape)
        self.cbm = cbm
        self.source = source
        self.generation = generation
        self.stats = stats if stats is not None else GuardStats()
        # Streaming metadata: a DriftTracker whose counters health()
        # surfaces, and the graph version this slot's content represents
        # (set by repro.streaming publishers; None for static slots).
        self.tracker = tracker
        self.graph_version: int | None = None
        # Autotune state (repro.autotune): the routed executor serving
        # the FAST tier when the tuner chose csr/hybrid, the decision it
        # executes, and when it was tuned.  None = pure-CBM route (the
        # pre-autotune behaviour, byte for byte).
        self.hybrid = None
        self.tune_decision = None
        self.tuned_at: float | None = None
        # (store, index) pin held while this slot serves a store-backed
        # generation — released by retire() so retention pruning can
        # reclaim the directory only after the slot stops serving it.
        self._pin: tuple | None = None

    @classmethod
    def from_graph(
        cls, a: CSRMatrix, *, alpha: int = 0, normalized: bool = False
    ) -> "AdjacencySlot":
        """Compress a binary adjacency; keep a CSR form as reference.

        With ``normalized=True`` the slot serves the GCN-normalised
        ``Â = D^{-1/2}(A+I)D^{-1/2}`` (CBM(DAD) factorised form, weighted
        CSR reference) — the right target for GCN-forward serving.
        """
        from repro.core.builder import build_cbm

        if normalized:
            from repro.core.cbm import Variant
            from repro.graphs.laplacian import gcn_normalization, normalized_adjacency

            binary, diag = gcn_normalization(a)
            cbm, _ = build_cbm(binary, alpha=alpha, variant=Variant.DAD, diag=diag)
            return cls(cbm, normalized_adjacency(a))
        cbm, _ = build_cbm(a, alpha=alpha)
        return cls(cbm, a)

    @classmethod
    def from_archive(cls, path, *, generation: int = 0) -> "AdjacencySlot":
        """Load a stored CBM artifact (CRC-verified by :func:`load_cbm`)
        and reconstruct its CSR reference by decompression."""
        cbm = load_cbm(path)
        return cls(cbm, cbm.tocsr(), generation=generation)

    def prepare(self, *, width: int | None = None) -> None:
        """Build the kernel plan (and optionally warm the pool) before
        the slot takes traffic — swaps pay the plan cost off-path."""
        plan = self.cbm.plan()
        if width is not None:
            plan.pool.warm((self.cbm.shape[0], int(width)), np.float32, count=1)
        if self.hybrid is not None and width is not None:
            self.hybrid.prepare(int(width))

    @property
    def route(self) -> str:
        """The serving route of the FAST tier: ``cbm``, ``csr``, or ``hybrid``."""
        if self.hybrid is None:
            return "cbm"
        return self.hybrid.route

    def apply_tune(self, decision, hybrid, *, tuned_at: float | None = None) -> None:
        """Attach a tuner decision (and its executor, if non-pure-CBM)."""
        self.tune_decision = decision
        self.hybrid = hybrid
        self.tuned_at = tuned_at

    def retire(self) -> int:
        """Drain the retiring matrix's pooled workspaces; return bytes freed.

        Also releases the slot's generation pin (if it was loaded from a
        :class:`~repro.recovery.GenerationStore`), making the directory
        prunable again now that nothing serves from it.
        """
        pin, self._pin = self._pin, None
        if pin is not None:
            store, index = pin
            store.release(index)
        freed = self.cbm.drain_workspaces()
        if self.hybrid is not None:
            freed += self.hybrid.drain()
        return freed


class InferenceService:
    """Bounded-queue inference service with deadlines, retries, and a
    circuit breaker (see the module docstring for the client contract).

    Parameters
    ----------
    slot:
        The serving target (build via :meth:`AdjacencySlot.from_graph` /
        ``from_archive``).
    workers:
        Worker threads draining the queue.
    queue_capacity:
        Bound on queued (not yet executing) requests; beyond it
        :meth:`submit` sheds load with :class:`~repro.errors.OverloadError`.
    default_deadline_s:
        Deadline budget for requests that do not bring their own.
    threads / branch_timeout:
        Forwarded to the guarded kernels: ``threads`` routes products
        through the branch-parallel executor (required for mid-run
        cancellation), ``branch_timeout`` bounds a single branch replay.
    retry:
        :class:`~repro.serving.backoff.RetryPolicy` for transient errors.
    breaker:
        A preconfigured :class:`~repro.serving.breaker.CircuitBreaker`;
        by default one with the class defaults.
    weights:
        Optional ``(w0, w1)`` pair: requests then resolve to the paper's
        two-layer GCN forward ``Â σ(Â X W⁰) W¹`` instead of the bare
        product, with every ``Â`` product still routed through the
        request's serving tier.
    executor_factory:
        Forwarded to the guarded kernels' threaded path (chaos soak hook).
    batch:
        A :class:`~repro.serving.batching.BatchConfig` switches the
        workers to the micro-batching executor: queued requests
        targeting the same adjacency generation and operator kind are
        coalesced into one stacked-feature forward within the config's
        latency budget, and the stacked result is split back per
        requester (bitwise identical to the unbatched products — see
        :mod:`repro.serving.batching`).  ``None`` keeps the one-forward-
        per-request path.
    """

    def __init__(
        self,
        slot: AdjacencySlot,
        *,
        workers: int = 2,
        queue_capacity: int = 32,
        default_deadline_s: float = 5.0,
        threads: int | None = None,
        branch_timeout: float | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        weights: tuple[np.ndarray, np.ndarray] | None = None,
        executor_factory=None,
        batch: BatchConfig | None = None,
        validate: bool = True,
        seed: int = 0,
    ):
        check_positive(workers, "workers")
        check_positive(queue_capacity, "queue_capacity")
        check_positive(default_deadline_s, "default_deadline_s")
        self._slot = slot
        self.workers = workers
        self.queue_capacity = queue_capacity
        self.default_deadline_s = default_deadline_s
        self.threads = threads
        self.branch_timeout = branch_timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.weights = None
        if weights is not None:
            w0, w1 = weights
            self.weights = (
                np.asarray(w0, dtype=np.float32),
                np.asarray(w1, dtype=np.float32),
            )
        self.executor_factory = executor_factory
        self.validate = validate
        self.stats = ServiceStats()

        self._queue: "queue.Queue[_Request | None]" = queue.Queue(maxsize=queue_capacity)
        self.batch_config = batch
        self._collector = (
            BatchCollector(self._queue, batch) if batch is not None else None
        )
        self._state = ServiceState.STARTING
        self._state_lock = threading.Lock()
        self._swap_lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._pending = 0
        self._pending_cond = threading.Condition()
        self._ewma_s = 0.0
        self._ewma_lock = threading.Lock()
        self._seed = seed
        self._started = False
        self._last_retune: dict | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceService":
        with self._state_lock:
            if self._started:
                return self
            self._started = True
            # With batching enabled the batch *is* the concurrency: the
            # stacked kernels already aggregate every queued request, and
            # a second compute thread only interleaves with the first at
            # the interpreter level (measured ~5x per-kernel inflation on
            # a contended GIL), so the batched service runs exactly one
            # compute worker regardless of ``workers``.
            if self._collector is None:
                target, count = self._worker_loop, self.workers
            else:
                target, count = self._worker_loop_batched, 1
            self._threads = [
                threading.Thread(
                    target=target, args=(i,), daemon=True,
                    name=f"repro-serve-{i}",
                )
                for i in range(count)
            ]
            for t in self._threads:
                t.start()
            self._state = ServiceState.READY
        return self

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting; wait for queued + in-flight work to resolve.

        Returns True once the service is empty (False on timeout; the
        service stays DRAINING and keeps resolving what is left).
        """
        with self._state_lock:
            if self._state == ServiceState.READY:
                self._state = ServiceState.DRAINING
        end = None if timeout is None else time.monotonic() + timeout
        with self._pending_cond:
            while self._pending > 0:
                wait = None if end is None else end - time.monotonic()
                if wait is not None and wait <= 0:
                    return False
                self._pending_cond.wait(wait if wait is not None else 0.1)
        return True

    def close(self, timeout: float | None = 10.0) -> None:
        """Graceful shutdown: drain, stop the workers, reject stragglers."""
        self.drain(timeout)
        with self._state_lock:
            if self._state == ServiceState.STOPPED:
                return
            self._state = ServiceState.STOPPED
        for _ in self._threads:
            self._queue.put(None)  # one pill per worker
        for t in self._threads:
            t.join(timeout=2.0)
        # Anything still queued after a timed-out drain resolves typed.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                item.future._reject(ServiceUnavailable("service stopped"))
                self._finish_pending()
        if self._collector is not None:
            for item in self._collector.drain_pending():
                item.future._reject(ServiceUnavailable("service stopped"))
                self._finish_pending()

    @property
    def state(self) -> str:
        return self._state

    def ready(self) -> bool:
        return self._state == ServiceState.READY

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray, *, deadline_s: float | None = None) -> InferenceFuture:
        """Admit one request (dense 1-D vector or 2-D feature block).

        Raises :class:`~repro.errors.ServiceUnavailable` unless READY and
        :class:`~repro.errors.OverloadError` (with ``retry_after``) when
        the bounded queue is full — load is shed at the door, before any
        kernel work.
        """
        if self._state != ServiceState.READY:
            raise ServiceUnavailable(
                f"service is {self._state}; not accepting requests"
            )
        x = np.asarray(x)
        if x.ndim not in (1, 2):
            raise ShapeError(f"request operand must be 1-D or 2-D, got ndim={x.ndim}")
        if self.weights is not None and x.ndim != 2:
            raise ShapeError("GCN-forward serving requires a 2-D feature block")
        n = self._slot.cbm.shape[1]
        if x.shape[0] != n:
            raise ShapeError.mismatch("request operand", (n,), x.shape)
        kind = KIND_PRODUCT
        if self.weights is not None:
            kind = KIND_GCN
            p = int(self.weights[0].shape[0])
            if x.shape[1] != p:
                raise ShapeError.mismatch(
                    "GCN feature block vs W0", (n, p), tuple(x.shape)
                )
        deadline = Deadline(deadline_s if deadline_s is not None else self.default_deadline_s)
        req = _Request(x, deadline, vector=x.ndim == 1, kind=kind)
        with self._pending_cond:
            self._pending += 1
        try:
            self._queue.put_nowait(req)
        except queue.Full:
            self._finish_pending()
            self.stats.bump("shed")
            retry_after = self.retry_after_estimate()
            raise OverloadError(
                f"queue full ({self.queue_capacity} waiting); retry in "
                f"~{retry_after:.3f}s",
                retry_after=retry_after,
            ) from None
        self.stats.bump("submitted")
        return req.future

    def retry_after_estimate(self) -> float:
        """When a shed client should try again: queue depth × recent
        per-request service time, spread over the workers."""
        with self._ewma_lock:
            per_request = self._ewma_s
        depth = self._queue.qsize()
        return max(0.005, depth * max(per_request, 0.001) / self.workers)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _worker_loop(self, index: int) -> None:
        rng = np.random.default_rng(self._seed * 7919 + index)
        while True:
            req = self._queue.get()
            if req is None:
                return
            try:
                self._handle(req, rng)
            finally:
                self._finish_pending()

    def _finish_pending(self, count: int = 1) -> None:
        with self._pending_cond:
            self._pending -= count
            if self._pending <= 0:
                self._pending_cond.notify_all()

    def _handle(self, req: _Request, rng: np.random.Generator) -> None:
        if self._state == ServiceState.STOPPED:
            req.future._reject(ServiceUnavailable("service stopped"))
            return
        if req.deadline.expired:
            self.stats.bump("deadline_misses")
            req.future._reject(
                DeadlineExceeded(
                    f"deadline budget ({req.deadline.budget_s:.3f}s) expired "
                    "while the request was queued"
                )
            )
            return
        delays = self.retry.delays(rng)
        attempt = 0
        t0 = time.monotonic()
        while True:
            attempt += 1
            tier, probe = self.breaker.acquire(width=req.width)
            try:
                y = self._compute(req, tier)
            except ReproError as exc:
                if getattr(exc, "input_rejection", False):
                    # Client error: not a path failure, not retryable.
                    self.stats.bump("input_rejections")
                    req.future._reject(exc)
                    return
                self.breaker.record(tier, False, probe=probe)
                delay = next(delays)
                if (
                    is_transient(exc)
                    and attempt < self.retry.max_attempts
                    and req.deadline.remaining() > delay
                ):
                    self.stats.bump("retries")
                    time.sleep(delay)
                    continue
                self.stats.bump("failed")
                if req.deadline.expired:
                    self.stats.bump("deadline_misses")
                    final: ReproError = DeadlineExceeded(
                        f"deadline budget ({req.deadline.budget_s:.3f}s) "
                        f"exhausted after {attempt} attempt(s); last error: "
                        f"{type(exc).__name__}: {exc}"
                    )
                    final.__cause__ = exc
                else:
                    final = exc
                req.future._reject(final)
                return
            self.breaker.record(tier, True, probe=probe)
            self._observe_latency(time.monotonic() - t0)
            self.stats.bump("completed")
            req.future._resolve(y)
            return

    def _compute(self, req: _Request, tier: ServeTier) -> np.ndarray:
        slot = self._slot  # one atomic read: swaps do not tear a request
        req.future.generation = slot.generation
        x = req.x
        if tier is ServeTier.DEGRADED:
            if self.weights is not None:
                from repro.gnn.adjacency import CSRAdjacency
                from repro.gnn.gcn import two_layer_gcn_inference

                y = two_layer_gcn_inference(
                    CSRAdjacency(slot.source), x, *self.weights
                )
            elif req.vector:
                y = spmv(slot.source, x.astype(np.float32, copy=False))
            else:
                y = spmm(slot.source, x.astype(np.float32, copy=False))
            if self.validate and not all_finite(y):
                if not all_finite(np.asarray(x, dtype=np.float32)):
                    err = NumericalError(
                        "request operand contains NaN/Inf; no serving tier "
                        "can repair a corrupted input"
                    )
                    err.input_rejection = True
                    slot.stats.record_input_rejection()
                    raise err
                raise NumericalError(
                    "CSR reference product is non-finite; the stored matrix "
                    "or the operand is corrupted beyond recovery"
                )
            return y
        guarded = tier is ServeTier.GUARDED
        if not guarded and slot.hybrid is not None:
            # Tuned FAST tier: the routed executor (per-block CBM/CSR).
            # GUARDED keeps the guarded-CBM kernel and DEGRADED the CSR
            # reference, so the breaker ladder still ends at the exact
            # reference product whatever the router decided.
            return self._compute_hybrid(slot, x, req.vector)
        guard = GuardedKernel(
            slot.cbm,
            source=slot.source if guarded else None,
            strict=not guarded,
            threads=self.threads,
            branch_timeout=self.branch_timeout,
            deadline=req.deadline.expires_at if self.threads is not None else None,
            executor_factory=self.executor_factory,
            stats=slot.stats,
            validate_outputs=self.validate,
            on_degrade=(
                (lambda exc: self.breaker.note_internal_failure()) if guarded else None
            ),
        )
        if self.weights is not None:
            from repro.gnn.gcn import two_layer_gcn_inference

            return two_layer_gcn_inference(GuardedAdjacency(guard), x, *self.weights)
        if req.vector:
            return guard.matvec(x.astype(np.float32, copy=False))
        return guard.matmul(x.astype(np.float32, copy=False))

    def _compute_hybrid(self, slot: AdjacencySlot, x, vector: bool) -> np.ndarray:
        """FAST-tier forward through the tuned hybrid/CSR executor.

        A non-finite product raises :class:`NumericalError` like every
        other tier, so the breaker records the failure and retries land
        on GUARDED — a broken hybrid plan degrades, never serves junk.
        """
        hybrid = slot.hybrid
        x = np.asarray(x, dtype=np.float32)
        if self.weights is not None:
            from repro.autotune.hybrid import HybridAdjacency
            from repro.gnn.gcn import two_layer_gcn_inference

            y = two_layer_gcn_inference(HybridAdjacency(hybrid), x, *self.weights)
        elif vector:
            y = hybrid.matvec(x)
        else:
            out = hybrid.matmul(x)
            y = np.array(out, copy=True)
            hybrid.release(out)
        if self.validate and not all_finite(y):
            if not all_finite(x):
                err = NumericalError(
                    "request operand contains NaN/Inf; no serving tier "
                    "can repair a corrupted input"
                )
                err.input_rejection = True
                slot.stats.record_input_rejection()
                raise err
            raise NumericalError("hybrid-routed product is non-finite")
        return y

    def _observe_latency(self, seconds: float) -> None:
        with self._ewma_lock:
            if self._ewma_s == 0.0:
                self._ewma_s = seconds
            else:
                self._ewma_s = 0.8 * self._ewma_s + 0.2 * seconds

    # ------------------------------------------------------------------
    # Micro-batched execution (active when a BatchConfig was supplied)
    # ------------------------------------------------------------------
    def _settle_reject(self, req: _Request, exc: BaseException) -> None:
        """One request leaves the system with a typed error."""
        req.future._reject(exc)
        self._finish_pending()

    def _worker_loop_batched(self, index: int) -> None:
        rng = np.random.default_rng(self._seed * 7919 + index)
        while True:
            batch = self._collector.next_batch(lambda: self._slot)
            if batch is None:
                return
            try:
                self._handle_batch(batch, rng)
            except Exception as exc:  # defensive: never strand a member
                for req in batch.members:
                    if not req.future.done():
                        self._settle_reject(
                            req,
                            ServiceUnavailable(
                                f"internal serving failure: {type(exc).__name__}: {exc}"
                            ),
                        )

    def _handle_batch(self, batch: Batch, rng: np.random.Generator) -> None:
        """Execute one coalesced batch: per-batch tier, per-request outcomes.

        The batch executes at one serving tier (guard fallbacks and
        breaker transitions apply to the whole stacked forward), but
        every *outcome* is attributed per request: deadline expiry and
        input rejection are decided member-by-member, and members hit by
        a transient batch failure re-enter the collector for their own
        retry rather than failing with the batch.
        """
        if self._state == ServiceState.STOPPED:
            for req in batch.members:
                self._settle_reject(req, ServiceUnavailable("service stopped"))
            return
        live = []
        for req in batch.members:
            if req.deadline.expired:
                self.stats.bump("deadline_misses")
                self._settle_reject(
                    req,
                    DeadlineExceeded(
                        f"deadline budget ({req.deadline.budget_s:.3f}s) expired "
                        "while the request was queued"
                    ),
                )
            else:
                live.append(req)
        if not live:
            return
        batch.members = live
        t0 = time.monotonic()
        tier, probe = self.breaker.acquire(width=batch.width)
        try:
            outs = self._compute_batch(batch, tier)
        except ReproError as exc:
            if getattr(exc, "input_rejection", False):
                # A poisoned operand somewhere in the stack: not a path
                # failure, so the breaker hears nothing — attribute it.
                self._attribute_poison(batch, exc)
                return
            self.breaker.record(tier, False, probe=probe)
            self._retry_or_fail_batch(batch, exc, rng)
            return
        self.breaker.record(tier, True, probe=probe)
        self.stats.bump("batches")
        if len(live) > 1:
            self.stats.bump("coalesced", by=len(live))
        self._observe_latency((time.monotonic() - t0) / len(live))
        self.stats.bump("completed", by=len(live))
        for req, y in zip(live, outs):
            req.future.generation = batch.generation
            req.future._resolve(y)
        self._finish_pending(len(live))

    def _compute_batch(self, batch: Batch, tier: ServeTier) -> list[np.ndarray]:
        """Stack the members, run one forward, split the result.

        Every member's output slice is bitwise identical to the product
        it would have received unbatched: the SpMM/update-stage kernels
        are column-wise independent, and the GCN GEMM stages run on
        contiguous per-member blocks (see :mod:`repro.serving.batching`).
        Quantised padding columns are zero-filled by the pool and inert.
        """
        slot = batch.slot
        cfg = self.batch_config
        members = batch.members
        layout = batch.layout(quantum=cfg.quantum)
        plan = slot.cbm.plan()
        xs = plan.stacked_operand(layout.used_columns, np.float32, quantum=cfg.quantum)
        try:
            for req, (lo, hi) in zip(members, layout.spans()):
                col = np.asarray(req.x, dtype=np.float32)
                xs[:, lo:hi] = col[:, None] if req.vector else col
            hybrid_fast = tier is ServeTier.FAST and slot.hybrid is not None
            if tier is ServeTier.DEGRADED:
                def product(arr: np.ndarray) -> np.ndarray:
                    return spmm(slot.source, arr)
            elif hybrid_fast:
                hybrid = slot.hybrid

                def product(arr: np.ndarray) -> np.ndarray:
                    return hybrid.matmul(arr)
            else:
                guarded = tier is ServeTier.GUARDED
                guard = GuardedKernel(
                    slot.cbm,
                    source=slot.source if guarded else None,
                    strict=not guarded,
                    threads=self.threads,
                    branch_timeout=self.branch_timeout,
                    deadline=(
                        batch.tightest_expiry() if self.threads is not None else None
                    ),
                    executor_factory=self.executor_factory,
                    stats=slot.stats,
                    validate_outputs=self.validate,
                    on_degrade=(
                        (lambda exc: self.breaker.note_internal_failure())
                        if guarded
                        else None
                    ),
                )
                product = guard.matmul
            if self.weights is not None:
                outs = self._compute_batch_gcn(product, xs, layout, plan, cfg)
            else:
                ys = product(xs)
                try:
                    outs = [
                        ys[:, lo].copy() if req.vector else np.ascontiguousarray(ys[:, lo:hi])
                        for req, (lo, hi) in zip(members, layout.spans())
                    ]
                finally:
                    plan.release(ys)
            if (tier is ServeTier.DEGRADED or hybrid_fast) and self.validate:
                # The guarded tiers validate inside GuardedKernel; the CSR
                # reference and tuned-hybrid tiers validate here,
                # mirroring _compute.
                if not all(all_finite(y) for y in outs):
                    if not all_finite(xs):
                        err = NumericalError(
                            "a stacked operand contains NaN/Inf; no serving "
                            "tier can repair a corrupted input"
                        )
                        err.input_rejection = True
                        slot.stats.record_input_rejection()
                        raise err
                    raise NumericalError(
                        "CSR reference product is non-finite; the stored matrix "
                        "or an operand is corrupted beyond recovery"
                    )
            return outs
        finally:
            plan.release(xs)

    def _compute_batch_gcn(self, product, xs, layout, plan, cfg) -> list[np.ndarray]:
        """Batched two-layer GCN: stacked SpMM stages, per-member GEMMs.

        ``W⁰`` maps each member's feature width to the hidden width, so
        the GEMM stages cannot run on the stacked operand directly; each
        runs on that member's contiguous block of the stacked aggregate,
        which keeps every member bitwise identical to its unbatched
        ``Â σ(Â X W⁰) W¹``.

        When every member has the same feature width the per-member GEMM
        loop collapses into two whole-batch GEMMs on reshaped views —
        ``(n·m, p) @ W⁰`` row-partitions exactly like ``m`` separate
        ``(n, p) @ W⁰`` products, so the results stay bitwise identical
        while the per-member dispatch and strided block copies (the
        dominant single-core batch cost) disappear.
        """
        w0, w1 = self.weights
        hidden = int(w0.shape[1])
        c1 = product(xs)
        try:
            spans = layout.spans()
            widths = {hi - lo for lo, hi in spans}
            if len(widths) == 1:
                return self._batch_gcn_uniform(
                    product, c1, len(spans), widths.pop(), plan
                )
            h_layout = BatchLayout.pack(
                [hidden] * len(layout.members), quantum=cfg.quantum, n_rows=layout.n_rows
            )
            hs = plan.stacked_operand(
                h_layout.used_columns, np.float32, quantum=cfg.quantum
            )
            try:
                for (lo, hi), (hlo, hhi) in zip(spans, h_layout.spans()):
                    block = np.ascontiguousarray(c1[:, lo:hi])
                    hs[:, hlo:hhi] = np.maximum(block @ w0, 0.0)
                c2 = product(hs)
                try:
                    return [
                        np.ascontiguousarray(c2[:, hlo:hhi]) @ w1
                        for hlo, hhi in h_layout.spans()
                    ]
                finally:
                    plan.release(c2)
            finally:
                plan.release(hs)
        finally:
            plan.release(c1)

    def _batch_gcn_uniform(self, product, c1, members, width, plan) -> list[np.ndarray]:
        """Whole-batch GEMM stages for a batch of equal-width members.

        ``c1[:, :members*width]`` reshaped to ``(n·m, width)`` puts every
        member's aggregate rows through one GEMM; the hidden activations
        come back already laid out as the stacked operand of the second
        SpMM (member-major within each row), so no workspace packing or
        per-member extraction happens between the two stacked products.
        """
        w0, w1 = self.weights
        hidden = int(w0.shape[1])
        n = c1.shape[0]
        used = members * width
        # The pool may have quantised c1 wider than the batch; reshape
        # falls back to one contiguous copy in that case.
        flat = c1[:, :used].reshape(n * members, width)
        h1 = flat @ w0
        np.maximum(h1, 0.0, out=h1)
        hs = h1.reshape(n, members * hidden)
        c2 = product(hs)
        try:
            classes = int(w1.shape[1])
            o = c2[:, : members * hidden].reshape(n * members, hidden) @ w1
            stacked = np.ascontiguousarray(
                o.reshape(n, members, classes).transpose(1, 0, 2)
            )
            return [stacked[i].copy() for i in range(members)]
        finally:
            plan.release(c2)

    def _attribute_poison(self, batch: Batch, exc: ReproError) -> None:
        """Batch-level input rejection → per-member attribution.

        Members whose operand really is non-finite are rejected with
        ``input_rejection``; innocent co-travellers re-enter the
        collector as batch victims with *no attempt charged* — sharing a
        batch with a poisoned request must not consume retry budget.
        """
        poisoned, clean = [], []
        for req in batch.members:
            x = np.asarray(req.x, dtype=np.float32)
            (clean if all_finite(x) else poisoned).append(req)
        if not poisoned:
            # Attribution failed (should not happen): fail everyone with
            # the original error rather than requeueing forever.
            for req in batch.members:
                self.stats.bump("failed")
                self._settle_reject(req, exc)
            return
        for req in poisoned:
            self.stats.bump("input_rejections")
            err = NumericalError(
                "request operand contains NaN/Inf; no serving tier can "
                "repair a corrupted input"
            )
            err.input_rejection = True
            err.__cause__ = exc
            self._settle_reject(req, err)
        if clean:
            self.stats.bump("batch_victims", by=len(clean))
            self._collector.requeue(clean)

    def _retry_or_fail_batch(
        self, batch: Batch, exc: ReproError, rng: np.random.Generator
    ) -> None:
        """A transient batch failure charges every member one attempt;
        members with retry budget and deadline room re-enter the
        collector (retries never bypass the batching stage), the rest
        resolve with the typed error."""
        transient = is_transient(exc)
        delay = next(self.retry.delays(rng))
        retryable, terminal = [], []
        for req in batch.members:
            req.attempts += 1
            if (
                transient
                and req.attempts < self.retry.max_attempts
                and req.deadline.remaining() > delay
            ):
                retryable.append(req)
            else:
                terminal.append(req)
        for req in terminal:
            self.stats.bump("failed")
            if req.deadline.expired:
                self.stats.bump("deadline_misses")
                final: ReproError = DeadlineExceeded(
                    f"deadline budget ({req.deadline.budget_s:.3f}s) "
                    f"exhausted after {req.attempts} attempt(s); last error: "
                    f"{type(exc).__name__}: {exc}"
                )
                final.__cause__ = exc
            else:
                final = exc
            self._settle_reject(req, final)
        if retryable:
            self.stats.bump("retries", by=len(retryable))
            time.sleep(delay)
            self._collector.requeue(retryable)

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    def swap_slot(self, slot: AdjacencySlot, *, warm_width: int | None = None) -> dict:
        """Atomically replace the serving target.

        The new slot's plan is built (and optionally warmed) *before* it
        takes traffic; in-flight requests finish on the old slot (each
        request reads the slot reference once), and the old plans' idle
        workspaces are drained.  Returns a summary dict.
        """
        with self._swap_lock:
            slot.prepare(width=warm_width)
            old = self._slot
            slot.generation = old.generation + 1
            self._slot = slot
            self.stats.bump("swaps")
            freed = old.retire()
        return {
            "generation": slot.generation,
            "retired_workspace_bytes": freed,
            "shape": list(slot.cbm.shape),
        }

    def swap_archive(self, path, *, warm_width: int | None = None) -> dict:
        """Hot-swap from a stored CBM archive.

        :func:`~repro.core.io.load_cbm` CRC-verifies every payload array
        first — a corrupted artifact raises
        :class:`~repro.errors.IntegrityError` and the old slot keeps
        serving untouched.
        """
        slot = AdjacencySlot.from_archive(path)
        return self.swap_slot(slot, warm_width=warm_width)

    def swap_generation(
        self,
        store,
        *,
        warm_width: int | None = None,
        payload: str = "adjacency.npz",
        quarantine_bad: bool = True,
    ) -> dict:
        """Hot-swap to the newest *committed* generation of a
        :class:`~repro.recovery.GenerationStore`.

        Only committed generations (manifest commit marker present) are
        ever candidates — an in-flight or torn write simply does not
        exist to this path.  When the newest committed generation fails
        to load (:class:`~repro.errors.IntegrityError` from the CRC
        layer, a format error, or unreadable bytes), it is quarantined
        (``quarantine_bad=True``) and the swap *falls back to the
        previous committed generation*, walking history until one loads;
        the old slot keeps serving throughout.  Raises
        :class:`~repro.errors.RecoveryError` on an empty store and
        :class:`~repro.errors.IntegrityError` when no committed
        generation is loadable.
        """
        from repro.errors import FormatError, RecoveryError

        gens = store.generations()
        if not gens:
            raise RecoveryError(
                f"generation store {store.root} has no committed generation to serve"
            )
        fallbacks = 0
        last_exc: Exception | None = None
        can_pin = hasattr(store, "pin")
        for gen in reversed(gens):
            # Pin before touching the payload: a retention prune running
            # concurrently (e.g. a background rebuilder committing with
            # retain=) must not rmtree this directory mid-load.
            if can_pin:
                store.pin(gen.index)
            try:
                slot = AdjacencySlot.from_archive(gen.file(payload))
            except (FormatError, RecoveryError, OSError) as exc:
                # FormatError covers IntegrityError (its subclass): both
                # mean this generation is unusable, not that older ones are.
                if can_pin:
                    store.release(gen.index)
                last_exc = exc
                fallbacks += 1
                if quarantine_bad:
                    store.quarantine_generation(
                        gen, f"swap-rejected:{type(exc).__name__}: {exc}"
                    )
                continue
            if can_pin:
                # The pin transfers to the slot and is released by
                # retire() when a later swap retires it.
                slot._pin = (store, gen.index)
            meta = gen.manifest.get("meta", {})
            if isinstance(meta, dict) and "graph_version" in meta:
                version = meta["graph_version"]
                slot.graph_version = int(version) if version is not None else None
            if isinstance(meta, dict) and isinstance(meta.get("autotune"), dict):
                # Re-attach the generation's tuned route: rebuild the
                # decision + hybrid executor from the committed block
                # map, so a re-tune published through the store swaps in
                # with its routing intact.
                try:
                    self._attach_autotune(slot, meta["autotune"])
                except ReproError as exc:
                    # A stale/badly-shaped block map must not block the
                    # swap: the slot falls back to the pure-CBM route
                    # (always correct) and the mismatch is counted.
                    self.stats.bump("autotune_attach_failures")
                    slot.hybrid = None
                    slot.tune_decision = None
                    last_exc = exc
            try:
                summary = self.swap_slot(slot, warm_width=warm_width)
            except Exception:
                if can_pin:
                    slot._pin = None
                    store.release(gen.index)
                raise
            summary["store_generation"] = gen.index
            summary["fallbacks"] = fallbacks
            return summary
        err = IntegrityError(
            f"no loadable committed generation in {store.root} "
            f"({len(gens)} candidate(s) rejected)"
        )
        raise err from last_exc

    @staticmethod
    def _attach_autotune(slot: AdjacencySlot, meta: dict) -> None:
        """Rebuild a committed ``meta["autotune"]`` decision onto a slot."""
        from repro.autotune.cost import CostModel
        from repro.autotune.router import TuneDecision
        from repro.autotune.tune import build_hybrid

        decision = TuneDecision.from_meta(meta)
        if decision.blocks and decision.n_rows != slot.cbm.shape[0]:
            raise ShapeError(
                f"autotune block map covers {decision.n_rows} rows, "
                f"generation has {slot.cbm.shape[0]} — stale map"
            )
        model = None
        if isinstance(meta.get("model"), dict):
            model = CostModel.from_dict(meta["model"])
        slot.apply_tune(
            decision,
            build_hybrid(slot.cbm, slot.source, decision, model=model),
            tuned_at=meta.get("tuned_at"),
        )

    def current_slot(self) -> AdjacencySlot:
        """The live serving slot (the background retuner's tune target)."""
        return self._slot

    def note_retune(self, *, reason: str = "", report=None) -> None:
        """Record a completed re-tune and clear stale failure state.

        The breaker's failure window priced the *old* plan; carrying it
        into the new plan's first requests would double-punish a slot
        that was just fixed, so the window resets (state machine and
        transition log are preserved).  The fresh slot's TuneStats ring
        starts empty by construction.
        """
        self.stats.bump("retunes")
        self._last_retune = {
            "at": time.time(),
            "reason": reason,
            "chosen": getattr(report, "chosen", None),
        }
        self.breaker.reset_window(reason=f"retune:{reason}" if reason else "retune")

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def _format_health(self, slot: AdjacencySlot) -> dict:
        """Per-slot format/tuning block of :meth:`health` and :meth:`describe`."""
        hybrid = slot.hybrid
        return {
            "route": slot.route,
            "blocks": (
                hybrid.block_map()
                if hybrid is not None
                else [[0, slot.cbm.shape[0], "cbm"]]
            ),
            "tuned_at": slot.tuned_at,
            "tune": hybrid.stats.snapshot() if hybrid is not None else None,
            "last_retune": self._last_retune,
        }

    def describe(self) -> dict:
        """Operator-facing snapshot: slot, route, and tuning decision detail."""
        slot = self._slot
        d = {
            "state": self._state,
            "generation": slot.generation,
            "shape": list(slot.cbm.shape),
            "variant": slot.cbm.variant.value,
            "graph_version": slot.graph_version,
            "format": self._format_health(slot),
            "breaker": self.breaker.describe(),
        }
        if slot.hybrid is not None:
            d["hybrid"] = slot.hybrid.describe()
        if slot.tune_decision is not None:
            d["decision"] = slot.tune_decision.to_meta()
        return d

    def health(self) -> dict:
        """Liveness + readiness + the counters an operator would page on."""
        with self._ewma_lock:
            ewma = self._ewma_s
        batching = None
        if self._collector is not None:
            cfg = self.batch_config
            batching = {
                "max_columns": cfg.max_columns,
                "latency_budget_s": cfg.latency_budget_s,
                "close_margin_s": cfg.close_margin_s,
                "quantum": cfg.quantum,
                "pending": self._collector.pending_count(),
                "collector": self._collector.stats.snapshot(),
            }
        slot = self._slot
        streaming = None
        tracker = getattr(slot, "tracker", None)
        if tracker is not None:
            # Per-slot mutation pressure: drift vs the fresh-build op
            # count, patches/edges absorbed since the last rebuild, and
            # the staleness budget — what an operator watches to decide
            # whether rebuilds are keeping up with the write rate.
            streaming = tracker.snapshot()
            streaming["graph_version"] = slot.graph_version
            pin = getattr(slot, "_pin", None)
            streaming["pinned_store_generation"] = pin[1] if pin else None
        return {
            "state": self._state,
            "ready": self.ready(),
            "live_workers": sum(1 for t in self._threads if t.is_alive()),
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self.queue_capacity,
            "ewma_latency_s": ewma,
            "generation": slot.generation,
            "breaker": self.breaker.describe(),
            "batching": batching,
            "streaming": streaming,
            "format": self._format_health(slot),
            "service": self.stats.snapshot(),
            "guard": slot.stats.snapshot(),
        }
