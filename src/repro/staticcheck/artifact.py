"""Static auditing of CBM artifacts (paper Sections III, V-A, Properties 1–2).

Everything here is proved **from the artifact alone — no matmul runs**:

* **arborescence** — the compression tree is a rooted forest hanging off
  the virtual empty row: parent indices in range, no self-parents, no
  cycles (Section III);
* **delta-set consistency** — the delta CSR is structurally valid, its
  values are in {+1, −1}, virtual-parent rows carry no −1 deltas, the
  per-row counts agree with ``tree.weight``, and the *reconstructed* nnz
  accounting matches the header's ``source_nnz``;
* **Property 1** — each row's delta count never exceeds its (statically
  reconstructed) nnz, and the total delta count never exceeds the source
  nnz;
* **Property 2** — total scalar operations of one CBM SpMM stay at or
  below the CSR baseline, computed via :mod:`repro.core.opcount`;
* **scaling vectors** — diagonal lengths, non-zero/finite entries, and
  the DAD squareness / D1AD2 row-scale index-range requirements;
* **archive agreement** — header/payload consistency of a stored
  ``.npz``: format version, complete checksum table, CRC-32 match for
  every payload, and header shape vs payload shape.

Unlike :class:`~repro.core.tree.CompressionTree` (whose constructor
*raises* on a bad structure) the auditor works on **raw arrays** and
*reports*: a corrupted artifact yields an :class:`AuditReport` that
names every violated property, which is what the CLI ``repro check
artifact`` prints and the mutation-validation suite asserts on.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core import opcount
from repro.core.tree import VIRTUAL
from repro.sparse.csr import CSRMatrix
from repro.staticcheck.report import AuditReport, Severity

_MAX_LISTED = 5  # rows listed verbatim in a finding message

_ARCHIVE_PAYLOADS = (
    "tree_parent",
    "tree_weight",
    "delta_indptr",
    "delta_indices",
    "delta_data",
)

_VARIANTS = ("A", "AD", "DAD", "D1AD2")


def _fmt_rows(rows: np.ndarray) -> str:
    listed = ", ".join(str(int(r)) for r in rows[:_MAX_LISTED])
    more = f", … (+{len(rows) - _MAX_LISTED} more)" if len(rows) > _MAX_LISTED else ""
    return f"[{listed}{more}]"


def _safe_depths(parent: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Depths by relaxation, tolerating corruption.

    Returns ``(depth, bad_parent, unresolved)`` where ``bad_parent`` marks
    rows whose parent index is out of range or self-referential and
    ``unresolved`` marks rows whose depth never settles — members of a
    cycle, or descendants of a ``bad_parent`` row.  Mirrors
    :meth:`repro.core.tree.CompressionTree.depth` but never raises and
    never indexes with a corrupted parent.
    """
    n = len(parent)
    idx = np.arange(n)
    bad_parent = (parent != VIRTUAL) & ((parent < 0) | (parent >= n) | (parent == idx))
    depth = np.where(parent == VIRTUAL, 0, -1).astype(np.int64)
    pending = np.flatnonzero((depth < 0) & ~bad_parent)
    for _ in range(n + 1):
        if not len(pending):
            break
        pd = depth[parent[pending]]
        ready = pd >= 0
        if not np.any(ready):
            break
        depth[pending[ready]] = pd[ready] + 1
        pending = pending[~ready]
    unresolved = np.zeros(n, dtype=bool)
    unresolved[pending] = True
    return depth, bad_parent, unresolved


def _audit_tree(report: AuditReport, parent: np.ndarray, weight: np.ndarray) -> np.ndarray | None:
    """Arborescence checks; returns settled depths or None when broken."""
    n = len(parent)
    depth, bad_parent, unresolved = _safe_depths(parent)

    oob = np.flatnonzero(
        (parent != VIRTUAL) & ((parent < 0) | (parent >= n)) & (parent != np.arange(n))
    )
    if len(oob):
        report.add(
            "CBM-T001",
            f"tree parent index out of range at rows {_fmt_rows(oob)} — "
            "orphan branch rows reference a parent that does not exist",
        )
    selfp = np.flatnonzero(parent == np.arange(n))
    if len(selfp):
        report.add(
            "CBM-T002",
            f"rows {_fmt_rows(selfp)} are their own parent — the compression "
            "tree must be an arborescence rooted at the virtual empty row",
        )
    # Cycle members have in-range parents but never resolve; descendants
    # of bad rows also never resolve.  Separate the two for the message.
    cyclic = np.flatnonzero(unresolved)
    if len(cyclic):
        report.add(
            "CBM-T003",
            f"rows {_fmt_rows(cyclic)} never reach the virtual root — the "
            "compression tree contains a cycle (or rows descend from a "
            "corrupted parent), violating rootedness/acyclicity",
        )
    if len(oob) or len(selfp) or len(cyclic):
        report.failed("tree.arborescence")
        depths_ok = None
    else:
        report.passed("tree.arborescence")
        depths_ok = depth

    if len(weight) != n:
        report.add(
            "CBM-T004",
            f"tree weight vector has length {len(weight)}, expected {n}",
        )
        report.failed("tree.weights")
    elif np.any(weight < 0):
        report.add("CBM-T004", "tree weight vector contains negative delta counts")
        report.failed("tree.weights")
    else:
        report.passed("tree.weights")
    return depths_ok


def _audit_delta_structure(
    report: AuditReport,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    shape: tuple[int, int],
) -> bool:
    """CSR structural invariants of the delta matrix; True when sound."""
    n, m = shape
    ok = True
    if len(indptr) != n + 1 or (len(indptr) and indptr[0] != 0):
        report.add(
            "CBM-D001",
            f"delta indptr has length {len(indptr)} (expected {n + 1}) or does "
            "not start at 0",
        )
        ok = False
    elif np.any(np.diff(indptr) < 0):
        report.add("CBM-D001", "delta indptr is not non-decreasing")
        ok = False
    elif indptr[-1] != len(indices) or len(indices) != len(data):
        report.add(
            "CBM-D001",
            f"delta set truncated or padded: indptr accounts for "
            f"{int(indptr[-1])} deltas but {len(indices)} indices / "
            f"{len(data)} values are stored",
        )
        ok = False
    if len(indices) and (indices.min() < 0 or indices.max() >= m):
        report.add(
            "CBM-D001",
            f"delta column indices out of range for shape {shape}",
        )
        ok = False
    if ok:
        report.passed("delta.structure")
    else:
        report.failed("delta.structure")

    finite = np.isfinite(data) if np.issubdtype(data.dtype, np.floating) else np.ones(
        len(data), dtype=bool
    )
    bad_vals = ~finite | (np.abs(data) != 1)
    if len(data) and np.any(bad_vals):
        report.add(
            "CBM-D002",
            f"{int(np.count_nonzero(bad_vals))} delta values outside {{+1, -1}} "
            "— the unscaled delta matrix must hold pure indicator deltas",
        )
        report.failed("delta.values")
    else:
        report.passed("delta.values")
    return ok


def _reconstruct(
    report: AuditReport,
    parent: np.ndarray,
    depth: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
) -> list[np.ndarray] | None:
    """Statically replay the delta sets into per-row column sets.

    This is the auditor's own tolerant mirror of
    :func:`repro.core.deltas.reconstruct_rows`: it walks parents-first and
    reports (rather than raises) when a delta set is inconsistent with
    its parent row.  Requires a sound tree and delta structure.
    """
    n = len(parent)
    rows: list[np.ndarray | None] = [None] * n
    overlap_rows: list[int] = []
    negative_virtual: list[int] = []
    for x in np.argsort(depth, kind="stable"):
        x = int(x)
        lo, hi = int(indptr[x]), int(indptr[x + 1])
        idx = indices[lo:hi]
        val = data[lo:hi]
        plus = idx[val > 0]
        minus = idx[val < 0]
        p = int(parent[x])
        if p == VIRTUAL:
            if len(minus):
                negative_virtual.append(x)
            rows[x] = np.unique(plus)
            continue
        base = rows[p]
        if base is None:  # unreachable with a sound tree; guard anyway
            rows[x] = np.unique(plus)
            continue
        # Δ⁺ must be disjoint from the parent row and Δ⁻ a subset of it,
        # or the per-row nnz accounting (and the product) silently drifts.
        if len(np.intersect1d(plus, base)) or len(np.setdiff1d(minus, base)):
            overlap_rows.append(x)
        rows[x] = np.setdiff1d(np.union1d(base, plus), minus, assume_unique=False)
    if negative_virtual:
        report.add(
            "CBM-D004",
            f"virtual-parent rows {_fmt_rows(np.asarray(negative_virtual))} "
            "carry negative deltas — Δ⁻ against the empty row is undefined",
        )
        report.failed("delta.virtual_rows")
    else:
        report.passed("delta.virtual_rows")
    if overlap_rows:
        report.add(
            "CBM-D006",
            f"delta sets of rows {_fmt_rows(np.asarray(overlap_rows))} are "
            "inconsistent with their parent row (Δ⁺ overlaps the parent or "
            "Δ⁻ removes absent columns)",
        )
        report.failed("delta.set_consistency")
    else:
        report.passed("delta.set_consistency")
    return [r if r is not None else np.empty(0, dtype=np.int64) for r in rows]


def audit_arrays(
    parent,
    weight,
    indptr,
    indices,
    data,
    shape: tuple[int, int],
    *,
    variant: str = "A",
    diag=None,
    diag_left=None,
    source_nnz: int = 0,
    alpha=None,
    subject: str = "cbm-artifact",
    staleness_budget: int = 0,
) -> AuditReport:
    """Audit one CBM artifact given its raw arrays (never raises).

    This is the core engine behind :func:`audit_cbm` and
    :func:`audit_archive`; see the module docstring for the invariant
    catalogue.  ``alpha`` is accepted for symmetry with the archive
    header but only echoed into messages.

    ``staleness_budget`` relaxes the Property 1/2 bounds by that many
    deltas (and the matching ``2 * budget`` scalar ops for Property 2):
    a CBM patched in place by :mod:`repro.streaming` legitimately
    carries up to the configured budget of extra deltas between
    rebuilds, and auditing such an artifact against the fresh-build
    bound would report the staleness the streaming tier already tracks
    as a violation.  All structural checks (tree, ±1 deltas, weight
    agreement, nnz accounting, CRC) stay exact — only the two
    compression-quality bounds are budgeted.
    """
    report = AuditReport(subject=subject)
    parent = np.asarray(parent, dtype=np.int64).ravel()
    weight = np.asarray(weight, dtype=np.int64).ravel()
    indptr = np.asarray(indptr, dtype=np.int64).ravel()
    indices = np.asarray(indices, dtype=np.int64).ravel()
    data = np.asarray(data).ravel()
    n, m = int(shape[0]), int(shape[1])

    if len(parent) != n:
        report.add(
            "CBM-T005",
            f"tree covers {len(parent)} rows but the artifact shape is {(n, m)}",
        )
        report.failed("tree.arborescence")
        return report

    depth = _audit_tree(report, parent, weight)
    delta_ok = _audit_delta_structure(report, indptr, indices, data, (n, m))
    _audit_scaling(report, variant, diag, diag_left, (n, m))

    if depth is None or not delta_ok:
        # Structure is broken: the delta/row accounting below would index
        # with corrupted values, so the remaining properties are
        # unprovable (their checks stay unset, not failed).
        return report

    # Per-row delta counts vs the tree's recorded weights.
    counts = np.diff(indptr)
    recorded = weight if len(weight) == n else np.zeros(n, dtype=np.int64)
    mismatch = np.flatnonzero((recorded != 0) & (recorded != counts))
    if len(mismatch):
        report.add(
            "CBM-D005",
            f"rows {_fmt_rows(mismatch)} store a different number of deltas "
            "than tree.weight records — the delta set was truncated or the "
            "header is stale",
        )
        report.failed("delta.weight_agreement")
    else:
        report.passed("delta.weight_agreement")

    rows = _reconstruct(report, parent, depth, indptr, indices, data)
    row_nnz = np.asarray([len(r) for r in rows], dtype=np.int64)
    reconstructed_nnz = int(row_nnz.sum())

    if source_nnz and reconstructed_nnz != int(source_nnz):
        report.add(
            "CBM-N001",
            f"reconstructed nnz accounting ({reconstructed_nnz}) does not "
            f"match the header source_nnz ({int(source_nnz)})",
        )
        report.failed("accounting.nnz")
    else:
        report.passed("accounting.nnz")

    # Property 1 — per-row delta cost never exceeds the row's nnz.  With
    # a staleness budget, in-place patches may push individual rows over
    # as long as the aggregate overshoot stays inside the budget.
    budget = max(0, int(staleness_budget))
    over = np.flatnonzero(counts > row_nnz)
    overshoot = int((counts - row_nnz)[over].sum()) if len(over) else 0
    if len(over) and overshoot > budget:
        report.add(
            "CBM-P101",
            f"Property 1 violated: rows {_fmt_rows(over)} spend more deltas "
            "than their row nnz — compressing against the virtual row would "
            "be cheaper"
            + (f" (overshoot {overshoot} > staleness budget {budget})" if budget else ""),
            severity=Severity.WARNING,
        )
        report.failed("property1.per_row")
    else:
        report.passed("property1.per_row")
    effective_nnz = int(source_nnz) if source_nnz else reconstructed_nnz
    if int(indptr[-1]) > effective_nnz + budget:
        report.add(
            "CBM-P102",
            f"Property 1 violated in aggregate: {int(indptr[-1])} total deltas "
            f"exceed the source nnz ({effective_nnz})"
            + (f" plus the staleness budget ({budget})" if budget else ""),
            severity=Severity.WARNING,
        )
        report.failed("property1.total")
    else:
        report.passed("property1.total")

    # Property 2 — total scalar ops at or below the CSR baseline, priced
    # by the shared opcount accounting (p = 1 columns; both sides scale
    # linearly in p so one column decides the bound).
    variant_key = variant if variant in _VARIANTS else "A"
    try:
        from repro.core.tree import CompressionTree

        tree_obj = CompressionTree(parent=parent, weight=recorded)
        delta_obj = CSRMatrix(indptr, indices, np.abs(data).astype(np.float32), (n, m))
        cbm_ops = opcount.cbm_spmm_ops(delta_obj, tree_obj, 1, variant=variant_key)
        # Each budgeted extra delta costs 2 scalar ops per column, so the
        # staleness allowance translates directly into the op bound.
        csr_ops = 2 * effective_nnz + 2 * budget
        if cbm_ops.total > csr_ops:
            report.add(
                "CBM-P201",
                f"Property 2 violated: one CBM SpMM costs {cbm_ops.total} "
                f"scalar ops per column vs {csr_ops} for CSR — the "
                "compression does not pay for its update stage",
                severity=Severity.WARNING,
            )
            report.failed("property2.total_ops")
        else:
            report.passed("property2.total_ops")
    except Exception as exc:  # structure passed our audit but not the library's
        report.add(
            "CBM-P202",
            f"Property 2 not provable: container validation rejected the "
            f"artifact ({type(exc).__name__}: {exc})",
        )
        report.failed("property2.total_ops")
    return report


def _audit_scaling(
    report: AuditReport, variant: str, diag, diag_left, shape: tuple[int, int]
) -> None:
    """Diagonal-vector checks for the AD/DAD/D1AD2 factorised forms."""
    n, m = shape
    if variant not in _VARIANTS:
        report.add(
            "CBM-S003",
            f"unknown variant {variant!r}; expected one of {_VARIANTS}",
        )
        report.failed("scaling.vectors")
        return
    ok = True
    if variant == "A":
        report.passed("scaling.vectors")
        return
    if diag is None:
        report.add("CBM-S001", f"variant {variant} requires a diagonal vector")
        ok = False
    else:
        d = np.asarray(diag, dtype=np.float64).ravel()
        if len(d) != m:
            report.add(
                "CBM-S001",
                f"diagonal has length {len(d)} but the matrix has {m} columns "
                "— column-scale index range violated",
            )
            ok = False
        elif np.any(~np.isfinite(d)) or np.any(d == 0):
            report.add(
                "CBM-S001",
                "diagonal contains zero or non-finite entries; AD/DAD "
                "round-trips require invertible scaling",
            )
            ok = False
    if variant == "DAD" and n != m:
        report.add(
            "CBM-S002",
            f"variant DAD requires a square matrix but the artifact is "
            f"{n}×{m} — the single diagonal cannot scale both sides",
        )
        ok = False
    if variant == "D1AD2":
        if diag_left is None:
            report.add("CBM-S002", "variant D1AD2 requires diag_left (d1)")
            ok = False
        else:
            d1 = np.asarray(diag_left, dtype=np.float64).ravel()
            if len(d1) != n:
                report.add(
                    "CBM-S002",
                    f"diag_left has length {len(d1)} but the matrix has {n} "
                    "rows — row-scale index range violated",
                )
                ok = False
            elif np.any(~np.isfinite(d1)) or np.any(d1 == 0):
                report.add(
                    "CBM-S002",
                    "diag_left contains zero or non-finite entries",
                )
                ok = False
    if ok:
        report.passed("scaling.vectors")
    else:
        report.failed("scaling.vectors")


def audit_cbm(
    cbm, *, subject: str = "CBMMatrix", staleness_budget: int = 0
) -> AuditReport:
    """Audit a live :class:`~repro.core.cbm.CBMMatrix`.

    Works on the matrix's raw arrays, so in-place corruption *after*
    construction (which the constructor's validation cannot see) is
    still caught.  ``staleness_budget`` relaxes the Property 1/2 bounds
    for stream-patched matrices (see :func:`audit_arrays`).
    """
    return audit_arrays(
        cbm.tree.parent,
        cbm.tree.weight,
        cbm.delta.indptr,
        cbm.delta.indices,
        cbm.delta.data,
        cbm.shape,
        variant=cbm.variant.value,
        diag=cbm.diag,
        diag_left=cbm.diag_left,
        source_nnz=cbm.source_nnz,
        alpha=cbm.alpha,
        subject=subject,
        staleness_budget=staleness_budget,
    )


def audit_archive(
    path, *, subject: str | None = None, staleness_budget: int = 0
) -> AuditReport:
    """Audit a stored CBM ``.npz`` archive without loading it.

    Verifies header/payload agreement (format version, checksum table,
    CRC-32 of every payload against the header, header shape vs payload
    shape, variant/diagonal presence) and then runs the full array audit
    on the raw payloads.  Unlike :func:`repro.core.io.load_cbm` this
    never raises on corruption — it reports.
    """
    from repro.core.io import _LOADABLE_VERSIONS, checksum_array

    report = AuditReport(subject=subject if subject is not None else str(path))
    try:
        archive = np.load(path)
    except (OSError, ValueError) as exc:
        report.add("CBM-A001", f"not a readable archive: {exc}")
        report.failed("archive.header")
        return report
    with archive:
        try:
            meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        except (KeyError, ValueError) as exc:
            report.add("CBM-A001", f"missing or unparseable meta header: {exc}")
            report.failed("archive.header")
            return report
        version = meta.get("version")
        if version not in _LOADABLE_VERSIONS:
            report.add("CBM-A002", f"unsupported archive version {version!r}")
            report.failed("archive.header")
            return report

        missing = [name for name in _ARCHIVE_PAYLOADS if name not in archive.files]
        if missing:
            report.add(
                "CBM-A005",
                f"archive is missing payload arrays {missing} — header and "
                "payload disagree",
            )
            report.failed("archive.payloads")
            return report
        report.passed("archive.payloads")

        if version >= 2:
            checksums = meta.get("checksums")
            if not isinstance(checksums, dict):
                report.add(
                    "CBM-A003",
                    "version-2 archive is missing its checksum table",
                )
                report.failed("archive.checksums")
            else:
                stale = []
                for name, expected in checksums.items():
                    if name not in archive.files:
                        report.add(
                            "CBM-A005",
                            f"checksummed payload {name!r} is absent from the "
                            "archive",
                        )
                        report.failed("archive.checksums")
                        continue
                    if checksum_array(archive[name]) != int(expected):
                        stale.append(name)
                if stale:
                    report.add(
                        "CBM-A004",
                        f"stale CRC: payload arrays {stale} do not match the "
                        "header checksums — the archive bytes changed after "
                        "the header was written",
                    )
                    report.failed("archive.checksums")
                report.passed("archive.checksums")

        arrays = {name: archive[name] for name in _ARCHIVE_PAYLOADS}
        diag = archive["diag"] if "diag" in archive.files else None
        diag_left = archive["diag_left"] if "diag_left" in archive.files else None

        shape = meta.get("shape")
        if (
            not isinstance(shape, list)
            or len(shape) != 2
            or len(arrays["delta_indptr"]) != int(shape[0]) + 1
            or len(arrays["tree_parent"]) != int(shape[0])
        ):
            report.add(
                "CBM-A006",
                f"header shape {shape!r} disagrees with the payload arrays "
                f"({len(arrays['tree_parent'])} tree rows, "
                f"{max(len(arrays['delta_indptr']) - 1, 0)} delta rows)",
            )
            report.failed("archive.header")
            # Fall back to the payload's own row count so the structural
            # audit can still describe the damage.
            shape = [len(arrays["tree_parent"]), int(shape[1]) if shape else 0]
        else:
            report.passed("archive.header")

        variant = meta.get("variant", "A")
        if variant != "A" and diag is None:
            report.add(
                "CBM-A007",
                f"header declares variant {variant!r} but the archive carries "
                "no diag payload",
            )
            report.failed("archive.header")

        inner = audit_arrays(
            arrays["tree_parent"],
            arrays["tree_weight"],
            arrays["delta_indptr"],
            arrays["delta_indices"],
            arrays["delta_data"],
            (int(shape[0]), int(shape[1])),
            variant=variant,
            diag=diag,
            diag_left=diag_left,
            source_nnz=int(meta.get("source_nnz", 0) or 0),
            alpha=meta.get("alpha"),
            subject=report.subject,
            staleness_budget=staleness_budget,
        )
    report.merge(inner)
    return report
