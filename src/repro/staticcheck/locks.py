"""Lock-order and blocking-call analysis over the source tree (SC7xx).

The serving/streaming/parallel layers now hold ~16 locks across module
boundaries (service state and swap locks, the batch collector's queue
lock, the streaming mutation/rebuild locks, the shard supervisor's
breaker, the workspace-pool and shm registries, the recovery store's pin
lock).  No single function sees more than two of them, so deadlocks and
lock-convoy bugs are *emergent* — visible only in the inter-module
acquisition graph.  This pass builds that graph from the AST and proves
three properties:

``SC701`` (deadlock cycle)
    The lock acquisition graph — an edge ``A → B`` wherever some code
    path acquires ``B`` while holding ``A``, including through resolved
    calls into other functions/modules — must be acyclic.  A cycle is a
    lock-order inversion: two threads entering the cycle from different
    ends deadlock.
``SC702`` (blocking call under a lock)
    No lock may be held lexically across an unbounded blocking call:
    ``future.result()``, executor/pool dispatch (``.submit``/``.map``),
    ``concurrent.futures.wait``, zero-argument ``queue.get()`` /
    ``.wait()`` / thread ``.join()``.  The holder stalls every other
    acquirer for as long as the callee takes — the lock-convoy shape the
    soak harnesses keep reproducing.  (``Condition.wait`` on the
    condition being held is the condition idiom, not a finding.)
``SC703`` (Condition.wait outside a predicate loop)
    ``cond.wait()`` must sit inside a ``while`` predicate loop:
    conditions wake spuriously and after stolen wakeups, so a bare
    ``if``-guarded (or unguarded) wait proceeds on a false predicate.

**Lock identity.**  Locks are recognised where they are created —
``self._x = threading.Lock()/RLock()/Condition()`` in a method body,
class-body (dataclass) defaults, or module-level ``_X = Lock()`` — and
named ``Class.attr`` or ``module.attr``.  ``Condition(self._x)`` aliases
the condition to the lock it wraps.  A ``with self._x:`` over an
*unknown* attribute still counts when the name mentions lock/cond/mutex
(the same heuristic the SC401 lint uses); attribute chains on foreign
objects (``pool._lock``) are skipped — the analysis is deliberately
conservative so a finding is always actionable.

**Call resolution.**  Held-lock sets flow through calls the AST can
resolve: ``self.method()`` (same class), same-module functions,
imported names (``from repro.parallel import shm; shm.create_segment``),
and — for the acquisition graph only — methods whose name is defined by
exactly one analysed class.  SC702 itself is function-local (lexical),
so it never flags a bounded wait hidden behind a call; the graph edges
are where cross-module effects surface, as SC701 cycles.

The dynamic counterpart lives in :mod:`repro.staticcheck.witness`: the
lock-witness recorder observes real acquisition orders during soaks and
cross-checks them against this graph (every observed edge must be
predicted — the static pass over-approximates the dynamic truth).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.staticcheck.lint import _pragma_codes, iter_python_files
from repro.staticcheck.report import Finding, Severity

_LOCK_CTORS = frozenset({"Lock", "RLock"})
_COND_CTORS = frozenset({"Condition"})
_LOCKISH_MARKERS = ("lock", "cond", "mutex")

#: Method names too generic to resolve by the unique-class heuristic.
_AMBIGUOUS_METHODS = frozenset(
    {
        "get", "put", "wait", "close", "join", "submit", "result", "acquire",
        "release", "start", "stop", "run", "append", "pop", "add", "copy",
        "update", "items", "values", "keys", "clear", "read", "write",
        "flush", "send", "recv", "next", "reset", "execute",
    }
)


@dataclass(frozen=True)
class LockEdge:
    """``src`` held while ``dst`` was acquired, at ``file:line`` via ``fn``."""

    src: str
    dst: str
    file: str
    line: int
    via: str


@dataclass
class _FuncInfo:
    key: str
    file: str
    line: int
    acquires: set[str] = field(default_factory=set)
    edges: list[LockEdge] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    # (candidate keys, line, held locks at the call site)
    calls: list[tuple[tuple[str, ...], int, tuple[str, ...]]] = field(
        default_factory=list
    )


@dataclass
class LockGraph:
    """The inter-module lock acquisition graph plus per-lock metadata."""

    locks: set[str] = field(default_factory=set)
    conditions: set[str] = field(default_factory=set)
    edges: dict[tuple[str, str], list[LockEdge]] = field(default_factory=dict)

    def add_edge(self, edge: LockEdge) -> None:
        self.edges.setdefault((edge.src, edge.dst), []).append(edge)

    def edge_pairs(self) -> set[tuple[str, str]]:
        return set(self.edges)

    def has_edge(self, src: str, dst: str) -> bool:
        """Endpoint-tolerant membership test for the witness cross-check.

        Dynamic witnesses name locks ``Class.attr``; static names are
        ``Class.attr`` or ``module.attr``.  Two names match when equal
        or when they share the final attribute and either side's prefix
        is unknown to the other naming scheme.
        """
        if (src, dst) in self.edges:
            return True
        def _match(a: str, b: str) -> bool:
            return a == b or a.rsplit(".", 1)[-1] == b.rsplit(".", 1)[-1]
        return any(
            _match(src, s) and _match(dst, d) for s, d in self.edges
        )

    def cycles(self) -> list[list[str]]:
        """Strongly connected components with at least one internal edge."""
        adj: dict[str, list[str]] = {}
        for s, d in self.edges:
            adj.setdefault(s, []).append(d)
            adj.setdefault(d, [])
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[str]] = []
        counter = [0]

        def strongconnect(v: str) -> None:
            # Iterative Tarjan: recursion depth is unbounded on long chains.
            work = [(v, 0)]
            while work:
                node, pi = work[-1]
                if pi == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                succs = adj.get(node, [])
                while pi < len(succs):
                    w = succs[pi]
                    pi += 1
                    if w not in index:
                        work[-1] = (node, pi)
                        work.append((w, 0))
                        recurse = True
                        break
                    if w in on_stack:
                        low[node] = min(low[node], index[w])
                if recurse:
                    continue
                if low[node] == index[node]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    if len(comp) > 1 or (node, node) in self.edges:
                        sccs.append(sorted(comp))
                work.pop()
                if work:
                    pnode, _ = work[-1]
                    low[pnode] = min(low[pnode], low[node])

        for v in sorted(adj):
            if v not in index:
                strongconnect(v)
        return sccs


class _ModuleScanner(ast.NodeVisitor):
    """One pass over a module: lock definitions, acquisitions, blocking calls."""

    def __init__(self, path: str, modname: str, lines: list[str]):
        self.path = path
        self.modname = modname
        self.lines = lines
        self.module_locks: dict[str, str] = {}  # name -> kind
        self.class_locks: dict[str, dict[str, str]] = {}  # class -> attr -> kind
        self.cond_alias: dict[str, str] = {}  # cond lock name -> aliased lock name
        self.attr_types: dict[str, dict[str, str]] = {}  # class -> attr -> type
        self.imports: dict[str, str] = {}  # alias -> module path / imported name key
        self.funcs: dict[str, _FuncInfo] = {}
        self.classes: list[str] = []
        self._class_stack: list[str] = []
        self._func_stack: list[_FuncInfo] = []
        self._held: list[str] = []
        self._while_depth = 0

    # -- pass 1 entry: collect defs while visiting ---------------------
    def visit_Import(self, node: ast.Import) -> None:
        for a in node.names:
            self.imports[a.asname or a.name.split(".")[0]] = a.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        for a in node.names:
            self.imports[a.asname or a.name] = f"{mod}.{a.name}" if mod else a.name

    @staticmethod
    def _ctor_kind(value: ast.expr) -> str | None:
        """'lock'/'condition' when ``value`` constructs one, else None."""
        calls = [value] if isinstance(value, ast.Call) else [
            n for n in ast.walk(value) if isinstance(n, ast.Call)
        ]
        for call in calls:
            f = call.func
            name = f.attr if isinstance(f, ast.Attribute) else (
                f.id if isinstance(f, ast.Name) else None
            )
            if name in _LOCK_CTORS:
                return "lock"
            if name in _COND_CTORS:
                return "condition"
        return None

    def _record_lock_def(self, target: ast.expr, value: ast.expr) -> None:
        kind = self._ctor_kind(value)
        if kind is None:
            return
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self._class_stack
        ):
            cls = self._class_stack[-1]
            self.class_locks.setdefault(cls, {})[target.attr] = kind
            if kind == "condition" and isinstance(value, ast.Call) and value.args:
                wrapped = value.args[0]
                if (
                    isinstance(wrapped, ast.Attribute)
                    and isinstance(wrapped.value, ast.Name)
                    and wrapped.value.id == "self"
                ):
                    self.cond_alias[f"{cls}.{target.attr}"] = f"{cls}.{wrapped.attr}"
        elif isinstance(target, ast.Name):
            if self._class_stack and not self._func_stack:
                # class-body (dataclass field) default
                self.class_locks.setdefault(self._class_stack[-1], {})[
                    target.id
                ] = kind
            elif not self._class_stack and not self._func_stack:
                self.module_locks[target.id] = kind

    def _record_attr_type(self, target: ast.expr, value: ast.expr) -> None:
        """Track ``self.x = Type(...)`` so calls through ``self.x`` resolve.

        Without this, a lock taken inside a helper object's method (e.g.
        ``self.stats.bump()`` → ``ServiceStats._lock``) is invisible to
        the acquisition graph — a blind spot the dynamic witness exposed
        (SC704).  Classmethod constructors (``Type.from_x(...)``) count.
        """
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self._class_stack
            and isinstance(value, ast.Call)
        ):
            return
        f = value.func
        tname = None
        if isinstance(f, ast.Name) and f.id[:1].isupper():
            tname = f.id
        elif (
            isinstance(f, ast.Attribute)
            and isinstance(f.value, ast.Name)
            and f.value.id[:1].isupper()
        ):
            tname = f.value.id
        if tname is not None:
            self.attr_types.setdefault(self._class_stack[-1], {})[
                target.attr
            ] = tname

    def visit_Assign(self, node: ast.Assign) -> None:
        for t in node.targets:
            self._record_lock_def(t, node.value)
            self._record_attr_type(t, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_lock_def(node.target, node.value)
            self._record_attr_type(node.target, node.value)
        self.generic_visit(node)

    # -- naming --------------------------------------------------------
    def _resolve_lock(self, expr: ast.expr) -> str | None:
        """Qualified lock name of an acquired context expr, or None."""
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            recv, attr = expr.value.id, expr.attr
            if recv == "self" and self._class_stack:
                cls = self._class_stack[-1]
                if attr in self.class_locks.get(cls, {}):
                    return f"{cls}.{attr}"
                if any(m in attr.lower() for m in _LOCKISH_MARKERS):
                    return f"{cls}.{attr}"
            return None  # foreign object's lock: unresolvable receiver type
        if isinstance(expr, ast.Name):
            if expr.id in self.module_locks:
                return f"{self.modname}.{expr.id}"
            if any(m in expr.id.lower() for m in _LOCKISH_MARKERS):
                scope = self._func_stack[-1].key if self._func_stack else self.modname
                return f"{scope}.{expr.id}"
        return None

    def _lock_kind(self, name: str) -> str:
        cls_attr = name.rsplit(".", 1)
        if len(cls_attr) == 2:
            cls, attr = cls_attr
            kind = self.class_locks.get(cls, {}).get(attr)
            if kind:
                return kind
            kind = self.module_locks.get(attr) if cls == self.modname else None
            if kind:
                return kind
        return "lock"

    def _canonical(self, name: str) -> str:
        """Conditions wrapping an explicit lock alias to that lock."""
        return self.cond_alias.get(name, name)

    # -- scopes --------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.classes.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _func_key(self, name: str) -> str:
        if self._class_stack:
            return f"{self.modname}::{self._class_stack[-1]}.{name}"
        return f"{self.modname}::{name}"

    def _visit_function(self, node) -> None:
        info = _FuncInfo(key=self._func_key(node.name), file=self.path, line=node.lineno)
        self.funcs.setdefault(info.key, info)
        self._func_stack.append(self.funcs[info.key])
        held_before, self._held = self._held, []
        while_before, self._while_depth = self._while_depth, 0
        self.generic_visit(node)
        self._held = held_before
        self._while_depth = while_before
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_While(self, node: ast.While) -> None:
        self._while_depth += 1
        self.generic_visit(node)
        self._while_depth -= 1

    # -- acquisitions --------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            name = self._resolve_lock(item.context_expr)
            if name is None:
                continue
            name = self._canonical(name)
            fn = self._func_stack[-1] if self._func_stack else None
            if fn is not None:
                fn.acquires.add(name)
                for h in self._held:
                    if h != name:
                        fn.edges.append(
                            LockEdge(h, name, self.path, item.context_expr.lineno, fn.key)
                        )
            acquired.append(name)
        self._held.extend(acquired)
        self.generic_visit(node)
        for _ in acquired:
            self._held.pop()

    # -- blocking calls + cond.wait ------------------------------------
    def _emit(self, code: str, line: int, message: str,
              severity: Severity = Severity.ERROR) -> None:
        src = self.lines[line - 1] if 0 < line <= len(self.lines) else ""
        codes = _pragma_codes(src)
        if codes is not None and (not codes or code in codes):
            return
        fn = self._func_stack[-1] if self._func_stack else None
        finding = Finding(
            code=code, severity=severity, message=message, subject=self.path, line=line
        )
        if fn is not None:
            fn.findings.append(finding)
        else:  # module-level code (rare): attach to a synthetic scope
            self.funcs.setdefault(
                f"{self.modname}::<module>",
                _FuncInfo(key=f"{self.modname}::<module>", file=self.path, line=1),
            ).findings.append(finding)

    def _blocking_desc(self, node: ast.Call) -> str | None:
        f = node.func
        bare = not node.args and not node.keywords
        if isinstance(f, ast.Attribute):
            if f.attr == "result":
                return "future.result()"
            if f.attr in ("submit", "map") and isinstance(f.value, (ast.Name, ast.Attribute)):
                recv = f.value.attr if isinstance(f.value, ast.Attribute) else f.value.id
                if any(m in recv.lower() for m in ("pool", "executor", "ex")):
                    return f"pool dispatch `.{f.attr}()`"
                return None
            if f.attr == "get" and bare:
                return "queue.get() with no timeout"
            if f.attr == "join" and bare:
                return "thread.join() with no timeout"
            if f.attr == "wait" and bare:
                # cond.wait() on the condition being held is the idiom,
                # not a convoy (the wait releases that lock).
                held_cond = self._resolve_lock(f.value)
                if held_cond is not None and self._canonical(held_cond) in self._held:
                    return None
                return ".wait() with no timeout"
            return None
        if isinstance(f, ast.Name) and f.id == "wait":
            if self.imports.get("wait", "").startswith("concurrent.futures"):
                return "concurrent.futures.wait()"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        desc = self._blocking_desc(node)
        if desc is not None and self._held:
            held = ", ".join(f"`{h}`" for h in dict.fromkeys(self._held))
            self._emit(
                "SC702",
                node.lineno,
                f"{desc} while holding {held} — every other acquirer stalls "
                "for as long as the blocked call takes (lock convoy; "
                "unbounded if the peer never arrives)",
            )
        f = node.func
        if isinstance(f, ast.Attribute) and f.attr == "wait":
            cond = self._resolve_lock(f.value)
            if (
                cond is not None
                and self._lock_kind(cond) == "condition"
                and self._while_depth == 0
            ):
                self._emit(
                    "SC703",
                    node.lineno,
                    f"`{cond}.wait()` outside a `while` predicate loop — "
                    "conditions wake spuriously and after stolen wakeups, so "
                    "the caller proceeds on a false predicate; re-test the "
                    "predicate in a loop around the wait",
                )
        # record resolvable calls with the locks held at the call site
        if self._func_stack:
            candidates = self._call_candidates(node)
            if candidates:
                self._func_stack[-1].calls.append(
                    (candidates, node.lineno, tuple(dict.fromkeys(self._held)))
                )
        self.generic_visit(node)

    def _call_candidates(self, node: ast.Call) -> tuple[str, ...]:
        f = node.func
        if isinstance(f, ast.Name):
            target = self.imports.get(f.id)
            if target is not None:
                return (f"import::{target}",)
            return (f"{self.modname}::{f.id}",)
        if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name):
            recv, meth = f.value.id, f.attr
            if recv == "self" and self._class_stack:
                return (f"{self.modname}::{self._class_stack[-1]}.{meth}",)
            target = self.imports.get(recv)
            if target is not None:
                return (f"import::{target}.{meth}",)
            if meth not in _AMBIGUOUS_METHODS and not meth.startswith("__"):
                return (f"method::{meth}",)
        if (
            isinstance(f, ast.Attribute)
            and isinstance(f.value, ast.Attribute)
            and isinstance(f.value.value, ast.Name)
            and f.value.value.id == "self"
            and self._class_stack
        ):
            # self.helper.meth(): resolve through the attribute's tracked
            # constructed type (local class or imported).
            tname = self.attr_types.get(self._class_stack[-1], {}).get(
                f.value.attr
            )
            if tname is not None:
                target = self.imports.get(tname)
                if target is not None:
                    return (f"import::{target}.{f.attr}",)
                return (f"{self.modname}::{tname}.{f.attr}",)
        return ()


@dataclass
class LockScan:
    """Everything the pass learned: graph, findings, per-function info."""

    graph: LockGraph
    findings: list[Finding]
    funcs: dict[str, _FuncInfo]


def _modname(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    parts = list(rel.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[0] == "repro":
        parts = parts[1:]
    return ".".join(parts) or path.stem


def scan_locks(paths, *, root=None) -> LockScan:
    """Run the SC7xx pass over files/directories; returns graph + findings."""
    root = Path(root) if root is not None else Path.cwd()
    scanners: list[_ModuleScanner] = []
    for file in iter_python_files(paths):
        try:
            rel = str(file.resolve().relative_to(root.resolve()))
        except ValueError:
            rel = str(file)
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue  # SC001 belongs to the contract linter
        scanner = _ModuleScanner(rel, _modname(file, root), source.splitlines())
        scanner.visit(tree)
        scanners.append(scanner)
    return _link(scanners)


def scan_lock_source(source: str, path: str = "<string>", modname: str = "mod") -> LockScan:
    """Scan one module's source text (mutation-catalog entry point)."""
    scanner = _ModuleScanner(path, modname, source.splitlines())
    scanner.visit(ast.parse(source))
    return _link([scanner])


def _link(scanners: list[_ModuleScanner]) -> LockScan:
    funcs: dict[str, _FuncInfo] = {}
    by_method: dict[str, list[str]] = {}
    by_import: dict[str, str] = {}
    graph = LockGraph()
    findings: list[Finding] = []
    for sc in scanners:
        for name, kind in sc.module_locks.items():
            qual = f"{sc.modname}.{name}"
            graph.locks.add(qual)
            if kind == "condition":
                graph.conditions.add(qual)
        for cls, attrs in sc.class_locks.items():
            for name, kind in attrs.items():
                qual = f"{cls}.{name}"
                graph.locks.add(qual)
                if kind == "condition":
                    graph.conditions.add(qual)
        for key, info in sc.funcs.items():
            funcs[key] = info
            findings.extend(info.findings)
            mod, _, qual = key.partition("::")
            by_import[f"import::{mod}.{qual}"] = key
            by_import[f"import::repro.{mod}.{qual}"] = key
            if "." in qual:
                by_method.setdefault(qual.split(".", 1)[1], []).append(key)

    def resolve(candidate: str) -> str | None:
        if candidate in funcs:
            return candidate
        if candidate.startswith("import::"):
            return by_import.get(candidate)
        if candidate.startswith("method::"):
            matches = by_method.get(candidate[len("method::"):], [])
            return matches[0] if len(matches) == 1 else None
        return None

    # Transitive lock sets: which locks can a call into `key` acquire?
    effective: dict[str, set[str]] = {k: set(v.acquires) for k, v in funcs.items()}
    changed = True
    while changed:
        changed = False
        for key, info in funcs.items():
            for candidates, _line, _held in info.calls:
                for cand in candidates:
                    target = resolve(cand)
                    if target is None:
                        continue
                    extra = effective[target] - effective[key]
                    if extra:
                        effective[key] |= extra
                        changed = True

    for key, info in funcs.items():
        for edge in info.edges:
            graph.add_edge(edge)
        for candidates, line, held in info.calls:
            if not held:
                continue
            for cand in candidates:
                target = resolve(cand)
                if target is None:
                    continue
                for dst in sorted(effective[target]):
                    for src in held:
                        if src != dst:
                            graph.add_edge(
                                LockEdge(src, dst, info.file, line, key)
                            )
    for cycle in graph.cycles():
        where = []
        for s, d in sorted(graph.edge_pairs()):
            if s in cycle and d in cycle:
                e = graph.edges[(s, d)][0]
                where.append(f"{s}→{d} at {e.file}:{e.line}")
        findings.append(
            Finding(
                code="SC701",
                severity=Severity.ERROR,
                message=(
                    f"lock-order cycle {{{', '.join(cycle)}}} — two threads "
                    "entering from different ends deadlock; establish one "
                    f"global order ({'; '.join(where[:4])})"
                ),
                subject=graph.edges[
                    next((s, d) for s, d in sorted(graph.edge_pairs())
                         if s in cycle and d in cycle)
                ][0].file,
                line=graph.edges[
                    next((s, d) for s, d in sorted(graph.edge_pairs())
                         if s in cycle and d in cycle)
                ][0].line,
            )
        )
    findings.sort(key=lambda f: (f.subject, f.line or 0, f.code))
    return LockScan(graph=graph, findings=findings, funcs=funcs)


def analyze_locks(paths, *, root=None, subject: str = "lock-order"):
    """SC7xx analysis as an :class:`AuditReport` (CLI/CI entry point)."""
    from repro.staticcheck.report import AuditReport

    scan = scan_locks(paths, root=root)
    report = AuditReport(subject=subject)
    report.findings.extend(scan.findings)
    for code, check in (
        ("SC701", "locks.acyclic"),
        ("SC702", "locks.nonblocking"),
        ("SC703", "locks.predicate_wait"),
    ):
        if any(f.code == code for f in scan.findings):
            report.failed(check)
        else:
            report.passed(check)
    return report, scan.graph
