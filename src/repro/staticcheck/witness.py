"""Dynamic lock-witness recorder: observed acquisition orders vs the graph.

The SC7xx pass (:mod:`repro.staticcheck.locks`) claims its static lock
acquisition graph *over-approximates* every order the runtime can
exhibit.  That claim is only worth something if it is checked, so this
module provides the test-only instrumentation that checks it: wrap the
lock attributes of live objects in recording proxies, run a real
workload (the serving/streaming soaks, or the miniature exercise behind
``repro check concurrency --witness``), and then require every
*witnessed* edge — lock ``B`` acquired by a thread already holding
``A`` — to be present in the static graph.

A witnessed edge the static pass did not predict means the analysis has
a blind spot (an unresolved call path, a lock acquired through a foreign
object) and is reported as ``SC704``; a witnessed *pair of opposing*
edges is a live lock-order inversion — the dynamic proof of an SC701
cycle — and is reported as ``SC705``.  Both surface through the same
:class:`~repro.staticcheck.report.AuditReport` machinery as everything
else, so the CI cross-check job fails loudly instead of silently
trusting the static result.

Instrumentation is deliberately shallow: proxies record ``acquire`` /
``release`` (and context-manager entry/exit) per thread and delegate
everything else.  ``Condition.wait`` re-acquires its lock internally
without passing through the proxy — the witness sees the *acquisition
order*, which is what the graph models, not hold durations.  Nothing in
production code imports this module.
"""

from __future__ import annotations

import threading

from repro.staticcheck.report import AuditReport, Severity

_LOCK_TYPES = (type(threading.Lock()), type(threading.RLock()))


class LockWitness:
    """Records per-thread lock acquisition order across proxied locks."""

    def __init__(self):
        self._tls = threading.local()
        self._mu = threading.Lock()
        #: (held, acquired) -> observation count
        self.edges: dict[tuple[str, str], int] = {}
        #: lock name -> acquisition count
        self.acquisitions: dict[str, int] = {}

    def _stack(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def on_acquire(self, name: str) -> None:
        stack = self._stack()
        with self._mu:
            self.acquisitions[name] = self.acquisitions.get(name, 0) + 1
            for held in stack:
                if held != name:
                    key = (held, name)
                    self.edges[key] = self.edges.get(key, 0) + 1
        stack.append(name)

    def on_release(self, name: str) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                return

    def inversions(self) -> list[tuple[str, str]]:
        """Witnessed edge pairs observed in both directions (live cycles)."""
        return sorted(
            (a, b) for (a, b) in self.edges if a < b and (b, a) in self.edges
        )


class WitnessedLock:
    """Recording proxy over a Lock/RLock (drop-in for ``with``/acquire)."""

    def __init__(self, inner, name: str, witness: LockWitness):
        self._inner = inner
        self._name = name
        self._witness = witness

    def acquire(self, *args, **kwargs) -> bool:
        ok = self._inner.acquire(*args, **kwargs)
        if ok:
            self._witness.on_acquire(self._name)
        return ok

    def release(self) -> None:
        self._inner.release()
        self._witness.on_release(self._name)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class WitnessedCondition:
    """Recording proxy over a Condition: entry/exit recorded, wait delegated."""

    def __init__(self, inner, name: str, witness: LockWitness):
        self._inner = inner
        self._name = name
        self._witness = witness

    def __enter__(self):
        self._inner.__enter__()
        self._witness.on_acquire(self._name)
        return self

    def __exit__(self, *exc):
        self._witness.on_release(self._name)
        return self._inner.__exit__(*exc)

    def acquire(self, *args, **kwargs) -> bool:
        ok = self._inner.acquire(*args, **kwargs)
        if ok:
            self._witness.on_acquire(self._name)
        return ok

    def release(self) -> None:
        self._inner.release()
        self._witness.on_release(self._name)

    def wait(self, timeout=None):
        return self._inner.wait(timeout)

    def wait_for(self, predicate, timeout=None):
        return self._inner.wait_for(predicate, timeout)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()


def instrument(obj, witness: LockWitness, *, owner: str | None = None) -> list[str]:
    """Replace ``obj``'s Lock/RLock/Condition attributes with proxies.

    Returns the qualified names (``Class.attr``) now being witnessed.
    Safe to call once per object; already-proxied attributes are left
    alone.  Test-only: mutates the live object.
    """
    cls = owner or type(obj).__name__
    wrapped: list[str] = []
    for attr, val in list(vars(obj).items()):
        name = f"{cls}.{attr}"
        if isinstance(val, (WitnessedLock, WitnessedCondition)):
            continue
        if isinstance(val, _LOCK_TYPES):
            setattr(obj, attr, WitnessedLock(val, name, witness))
            wrapped.append(name)
        elif isinstance(val, threading.Condition):
            setattr(obj, attr, WitnessedCondition(val, name, witness))
            wrapped.append(name)
    return wrapped


def witness_service(service, witness: LockWitness | None = None) -> LockWitness:
    """Instrument an :class:`InferenceService` and its helpers (duck-typed).

    Wraps the service's own locks plus the stats object's and — when the
    batched path is configured — the collector's, so a soak run through
    the instrumented service records every acquisition order the serving
    layer actually exhibits.  Returns the witness for later
    :func:`cross_check`.
    """
    w = witness or LockWitness()
    instrument(service, w)
    stats = getattr(service, "stats", None)
    if stats is not None:
        instrument(stats, w)
    collector = getattr(service, "_collector", None)
    if collector is not None:
        instrument(collector, w)
    breaker = getattr(service, "breaker", None)
    if breaker is not None:
        instrument(breaker, w)
    return w


def cross_check(
    witness: LockWitness,
    graph,
    *,
    subject: str = "lock-witness",
) -> AuditReport:
    """Require every witnessed edge to be predicted by the static graph.

    ``graph`` is the :class:`~repro.staticcheck.locks.LockGraph` from
    :func:`~repro.staticcheck.locks.scan_locks`.  SC704 (warning) for an
    observed edge the static pass missed — the static result cannot be
    trusted for those locks until the blind spot is closed; SC705
    (error) for an observed two-way ordering, which is a deadlock in
    waiting regardless of what the static pass thinks.
    """
    report = AuditReport(subject=subject)
    unpredicted = [
        (a, b, n)
        for (a, b), n in sorted(witness.edges.items())
        if not graph.has_edge(a, b)
    ]
    if unpredicted:
        for a, b, n in unpredicted[:8]:
            report.add(
                "SC704",
                f"witnessed lock-order edge `{a}` → `{b}` ({n}×) is absent "
                "from the static acquisition graph — the SC7xx pass has a "
                "blind spot on this path (unresolved call or foreign-object "
                "lock); model it or the static verdict is unsound here",
                severity=Severity.WARNING,
            )
        report.failed("witness.predicted")
    else:
        report.passed("witness.predicted")
    inversions = witness.inversions()
    if inversions:
        for a, b in inversions[:8]:
            report.add(
                "SC705",
                f"witnessed lock-order inversion: `{a}` and `{b}` were each "
                "acquired while holding the other — a deadlock in waiting, "
                "observed live (dynamic confirmation of an SC701 cycle)",
            )
        report.failed("witness.acyclic")
    else:
        report.passed("witness.acyclic")
    return report
