"""Happens-before race analysis over the unified plan IR.

Two accesses *conflict* when they touch overlapping spans of the same
buffer and at least one writes.  A plan is race-free when every
conflicting pair is ordered by the happens-before relation the plan
itself establishes; this module builds that relation from the
:class:`~repro.staticcheck.ir.PlanIR` and reports every unordered
conflicting pair.  The HB edges are exactly the synchronisation the
runtime really has:

* **program order** — stages sharing a lane (one thread's replay loop, a
  worker process's write-then-commit sequence) run in list order;
* **explicit edges** — ``Stage.after`` encodes barriers (branch replay
  starts after the multiply), joins (finalise waits on every branch via
  executor dispatch/``future.result``), and commit visibility (a reader
  ordered after the publish that made the bytes reachable).

Findings:

``HZ-R401``
    Conflicting **writes** unordered by HB — two lanes would scribble
    the same rows/columns/bytes concurrently.  The cross-thread *and*
    cross-process generalisation of the branch ``shares_memory`` check.
``HZ-R402``
    A **read** conflicting with a write, unordered by HB — one lane
    consumes bytes another lane is mid-write (torn read), e.g. a serving
    thread reading a generation no publish has ordered it after.
``HZ-R403``
    A ``role="commit"`` stage that is *not* happens-after a payload
    stage it covers — the commit-marker-first torn write: the shard
    board's EPOCH lands before the slice bytes, or a manifest renames
    before its payloads are on disk, and a crash (or concurrent reader)
    observes a committed-but-garbage artifact.

Buffers marked ``atomic`` (single-reference slots swapped in one
assignment) are exempt from R401/R402; buffers governed by a span
ownership policy report overlap under their own code instead (the
layout finding already *is* the race).
"""

from __future__ import annotations

import numpy as np

from repro.staticcheck.report import AuditReport

#: Cap on reported unordered pairs per buffer: a badly broken plan
#: produces a representative sample, not a finding per row.
_MAX_PAIRS = 8


class HBGraph:
    """Reachability over stages: program order within lanes + ``after``."""

    def __init__(self, stages):
        self.stages = list(stages)
        self.index = {s.sid: i for i, s in enumerate(self.stages)}
        if len(self.index) != len(self.stages):
            raise ValueError("duplicate stage sids")
        self.succ: list[list[int]] = [[] for _ in self.stages]
        last_in_lane: dict[str, int] = {}
        for i, s in enumerate(self.stages):
            prev = last_in_lane.get(s.lane)
            if prev is not None:
                self.succ[prev].append(i)
            last_in_lane[s.lane] = i
            for pred in s.after:
                if pred not in self.index:
                    raise KeyError(f"stage {s.sid!r} is after unknown stage {pred!r}")
                self.succ[self.index[pred]].append(i)
        self._desc: dict[int, frozenset[int]] = {}

    def _descendants(self, i: int) -> frozenset[int]:
        cached = self._desc.get(i)
        if cached is not None:
            return cached
        seen: set[int] = set()
        frontier = list(self.succ[i])
        while frontier:
            j = frontier.pop()
            if j in seen:
                continue
            seen.add(j)
            frontier.extend(self.succ[j])
        out = frozenset(seen)
        self._desc[i] = out
        return out

    def reaches(self, a: str, b: str) -> bool:
        """True when stage ``a`` happens-before stage ``b``."""
        return self.index[b] in self._descendants(self.index[a])

    def ordered(self, a: str, b: str) -> bool:
        return a == b or self.reaches(a, b) or self.reaches(b, a)


def _conflicting_pairs(events):
    """Overlapping-access stage pairs from ``(lo, hi, stage, is_write)``.

    Line-sweep over span starts: an event conflicts with every *active*
    event (span still open) of a different stage when either writes.
    Returns at most a bounded sample of distinct stage pairs.
    """
    events = sorted(events, key=lambda e: (e[0], e[1]))
    active: list[tuple[int, int, bool]] = []  # (hi, stage, is_write)
    pairs: dict[tuple[int, int], bool] = {}  # (s1, s2) -> any write-write
    for lo, hi, stage, is_write in events:
        if hi <= lo:
            continue
        active = [a for a in active if a[0] > lo]
        for ahi, astage, awrite in active:
            if astage == stage or not (is_write or awrite):
                continue
            key = (min(stage, astage), max(stage, astage))
            pairs[key] = pairs.get(key, False) or (is_write and awrite)
            if len(pairs) >= 4 * _MAX_PAIRS:
                return pairs
        active.append((hi, stage, is_write))
    return pairs


def analyze_hb(ir, *, subject: str | None = None) -> AuditReport:
    """Race + commit-order analysis of a lowered plan (HZ-R4xx)."""
    report = AuditReport(subject=subject or ir.subject)
    graph = HBGraph(ir.stages)

    skip = {
        name
        for name, buf in ir.buffers.items()
        if buf.atomic or (buf.policy is not None and buf.policy.overlap is not None)
    }
    races = 0
    for name, buf in ir.buffers.items():
        if name in skip:
            continue
        events = []
        for si, stage in enumerate(ir.stages):
            for acc in stage.writes:
                if acc.buffer != name:
                    continue
                for lo, hi in np.asarray(acc.spans):
                    events.append((int(lo), int(hi), si, True))
            for acc in stage.reads:
                if acc.buffer != name:
                    continue
                for lo, hi in np.asarray(acc.spans):
                    events.append((int(lo), int(hi), si, False))
        reported = 0
        for (i, j), write_write in sorted(_conflicting_pairs(events).items()):
            a, b = ir.stages[i], ir.stages[j]
            if graph.ordered(a.sid, b.sid):
                continue
            races += 1
            reported += 1
            if reported > _MAX_PAIRS:
                break
            if write_write:
                report.add(
                    "HZ-R401",
                    f"unordered conflicting writes to `{name}`: stages "
                    f"`{a.sid}` (lane {a.lane}) and `{b.sid}` (lane {b.lane}) "
                    "write overlapping spans with no happens-before path — "
                    "two lanes would scribble the same bytes concurrently",
                )
            else:
                report.add(
                    "HZ-R402",
                    f"unordered read/write on `{name}`: stages `{a.sid}` "
                    f"(lane {a.lane}) and `{b.sid}` (lane {b.lane}) touch "
                    "overlapping spans with no happens-before path — one "
                    "lane reads bytes another is still writing (torn read)",
                )
    if races:
        report.failed("hb.races")
    else:
        report.passed("hb.races")

    torn = 0
    for stage in ir.stages:
        if stage.role != "commit":
            continue
        for covered in stage.covers:
            if not graph.reaches(covered, stage.sid):
                torn += 1
                report.add(
                    "HZ-R403",
                    f"commit-marker-first torn write: commit stage "
                    f"`{stage.sid}` publishes `{covered}` but `{covered}` is "
                    "not happens-before the commit — a reader (or a crash) "
                    "can observe the commit marker with garbage payload "
                    "bytes behind it",
                )
    if torn:
        report.failed("hb.commits")
    else:
        report.passed("hb.commits")
    return report
